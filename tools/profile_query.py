#!/usr/bin/env python3
"""Profile the query hot path with cProfile and print the top-N rows.

Builds a synthetic field, indexes it with one access method, runs the
Fig. 8a query mix through the batch engine under :mod:`cProfile`, and
prints the top-N functions by cumulative time — the quickest way to see
where a query actually spends its cycles (and the artifact CI uploads
so a perf regression comes with its own profile attached).

Standard-library profiling only (cProfile + pstats); the engine itself
needs numpy, like every other entry point.

Usage::

    PYTHONPATH=src python tools/profile_query.py
    PYTHONPATH=src python tools/profile_query.py --method LinearScan \
        --engine scalar --size 256 --top 40 --out results/profile.txt

Exit status: 0 on success, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/profile_query.py",
        description="cProfile the value-query hot path")
    parser.add_argument("--method", default="I-Hilbert",
                        choices=["LinearScan", "I-All", "I-Hilbert"],
                        help="access method to profile (default: "
                             "I-Hilbert)")
    parser.add_argument("--engine", default="vectorized",
                        choices=["vectorized", "scalar"],
                        help="execution engine (default: vectorized)")
    parser.add_argument("--size", type=int, default=128,
                        help="field side length in cells (default: 128)")
    parser.add_argument("--queries", type=int, default=10,
                        help="queries per Qinterval setting (default: 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload/data RNG seed")
    parser.add_argument("--top", type=int, default=25,
                        help="profile rows to print (default: 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "calls"],
                        help="pstats sort key (default: cumulative)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    from repro.bench.experiments import QINTERVALS_FIG8
    from repro.core import (
        BatchQueryEngine,
        IAllIndex,
        IHilbertIndex,
        LinearScanIndex,
    )
    from repro.synth import roseburg_like, value_query_workload

    factories = {
        "LinearScan": LinearScanIndex,
        "I-All": IAllIndex,
        "I-Hilbert": IHilbertIndex,
    }
    field = roseburg_like(cells_per_side=args.size)
    index = factories[args.method](field, engine=args.engine)
    workload = []
    for q in QINTERVALS_FIG8:
        workload += value_query_workload(field.value_range, q,
                                         count=args.queries,
                                         seed=args.seed)
    engine = BatchQueryEngine(index, cache_pages=1024, merge=True)
    # Warm-up pass so import-time and first-touch costs (page cache
    # fills, lazy allocations) stay out of the profile.
    engine.run(workload)
    index.clear_caches()
    index.stats.reset()

    profiler = cProfile.Profile()
    profiler.enable()
    result = engine.run(workload)
    profiler.disable()

    buf = io.StringIO()
    buf.write(f"profile: method={args.method} engine={args.engine} "
              f"field={args.size}x{args.size} "
              f"queries={len(workload)} seed={args.seed}\n")
    buf.write(f"batch: {result.groups} groups, "
              f"{result.io.page_reads} page reads, "
              f"{result.total_candidates} candidates\n\n")
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    report = buf.getvalue()
    print(report, end="")
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report)
        print(f"(written to {out})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

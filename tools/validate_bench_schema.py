#!/usr/bin/env python3
"""Validate committed benchmark artifacts against their schemas.

Understands the repo-root artifacts and dispatches on the document's
``experiment`` field: ``BENCH_throughput.json`` (parallel-engine
sweep), ``BENCH_update.json`` (live-update degradation/compaction/WAL
run), ``BENCH_serve.json`` (multi-tenant query-service load run),
``BENCH_shard.json`` (Hilbert-range scale-out sweep over tiered
remote storage) and ``BENCH_micro.json`` (hot-path kernel + ingestion
microbenchmarks with the pinned ns/op regression gate).

Standard library only — this runs in the CI lint job, which installs no
scientific stack.  The checks are deliberately structural *and*
semantic: a file that parses but reports a parallel slowdown, an update
run that diverged from a rebuild, or a compaction that failed to
recover is as much a regression as malformed JSON.

Usage: python tools/validate_bench_schema.py [BENCH_*.json]
Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""

from __future__ import annotations

import json
import sys

SCHEMA_VERSION = 1
REQUIRED_METHODS = {"LinearScan", "I-All", "I-Hilbert"}
#: Acceptance bar for post-compaction query cost vs. a fresh build.
COMPACT_RECOVERY_LIMIT = 1.10

_errors: list[str] = []


def err(msg: str) -> None:
    _errors.append(msg)


def expect(obj: dict, field: str, types, ctx: str):
    if field not in obj:
        err(f"{ctx}: missing field {field!r}")
        return None
    value = obj[field]
    if not isinstance(value, types):
        names = (types.__name__ if isinstance(types, type)
                 else "/".join(t.__name__ for t in types))
        err(f"{ctx}: field {field!r} must be {names}, "
            f"got {type(value).__name__}")
        return None
    return value


def check_point(point: dict, ctx: str) -> None:
    workers = expect(point, "workers", int, ctx)
    if workers is not None and workers < 1:
        err(f"{ctx}: workers must be >= 1, got {workers}")
    for field in ("wall_s", "qps", "speedup_vs_1"):
        value = expect(point, field, (int, float), ctx)
        if value is not None and value <= 0:
            err(f"{ctx}: {field} must be positive, got {value}")
    for field in ("page_reads", "random_reads", "sequential_reads"):
        value = expect(point, field, int, ctx)
        if value is not None and value < 0:
            err(f"{ctx}: {field} must be >= 0, got {value}")


def check_method(entry: dict, workers: list) -> None:
    name = entry.get("method", "<unnamed>")
    ctx = f"methods[{name}]"
    expect(entry, "method", str, ctx)
    expect(entry, "build_seconds", (int, float), ctx)
    expect(entry, "data_pages", int, ctx)
    expect(entry, "index_pages", int, ctx)
    expect(entry, "serial_page_reads", int, ctx)
    points = expect(entry, "points", list, ctx)
    if points is None:
        return
    before = len(_errors)
    for i, point in enumerate(points):
        if not isinstance(point, dict):
            err(f"{ctx}.points[{i}]: must be an object")
            return
        check_point(point, f"{ctx}.points[{i}]")
    if len(_errors) > before or "serial_page_reads" not in entry:
        return    # structure is broken; skip the semantic checks
    if [p["workers"] for p in points] != workers:
        err(f"{ctx}: points sweep {[p['workers'] for p in points]} "
            f"!= declared workers {workers}")
    # Parallelism must be invisible in the I/O accounting: every sweep
    # point of a method reads exactly the serial page count.
    serial = entry["serial_page_reads"]
    for point in points:
        if point["page_reads"] != serial:
            err(f"{ctx}: workers={point['workers']} read "
                f"{point['page_reads']} pages, serial read {serial}")
        if point["random_reads"] + point["sequential_reads"] \
                != point["page_reads"]:
            err(f"{ctx}: workers={point['workers']}: random + sequential "
                f"!= page_reads")
    # The point of the engine: more workers must not lose throughput.
    first, last = points[0], points[-1]
    if last["qps"] < first["qps"]:
        err(f"{ctx}: qps regressed from {first['qps']} "
            f"(workers={first['workers']}) to {last['qps']} "
            f"(workers={last['workers']})")
    pipeline = entry.get("pipeline")
    if pipeline is not None:
        check_pipeline(pipeline, points, workers, ctx)


def check_pipeline(pipeline: dict, legacy_points: list, workers: list,
                   ctx: str) -> None:
    """The merged+cached+vectorized sweep attached to a method entry."""
    pctx = f"{ctx}.pipeline"
    if not isinstance(pipeline, dict):
        err(f"{pctx}: must be an object")
        return
    cache = expect(pipeline, "cache_pages", int, pctx)
    if cache is not None and cache < 1:
        err(f"{pctx}: cache_pages must be >= 1, got {cache}")
    expect(pipeline, "merge", bool, pctx)
    oracle = expect(pipeline, "scalar_oracle_page_reads", int, pctx)
    points = expect(pipeline, "points", list, pctx)
    if points is None:
        return
    before = len(_errors)
    for i, point in enumerate(points):
        if not isinstance(point, dict):
            err(f"{pctx}.points[{i}]: must be an object")
            return
        sub = f"{pctx}.points[{i}]"
        w = expect(point, "workers", int, sub)
        if w is not None and w < 1:
            err(f"{sub}: workers must be >= 1, got {w}")
        for field in ("wall_s", "qps", "speedup_vs_legacy"):
            value = expect(point, field, (int, float), sub)
            if value is not None and value <= 0:
                err(f"{sub}: {field} must be positive, got {value}")
        for field in ("page_reads", "random_reads", "sequential_reads"):
            value = expect(point, field, int, sub)
            if value is not None and value < 0:
                err(f"{sub}: {field} must be >= 0, got {value}")
    if len(_errors) > before:
        return
    if [p["workers"] for p in points] != workers:
        err(f"{pctx}: points sweep {[p['workers'] for p in points]} "
            f"!= declared workers {workers}")
    # Byte-identity to the serial scalar oracle shows up as exactly the
    # oracle's page count at every sweep point.
    if oracle is not None:
        for point in points:
            if point["page_reads"] != oracle:
                err(f"{pctx}: workers={point['workers']} read "
                    f"{point['page_reads']} pages, scalar oracle read "
                    f"{oracle}")
    # The serving configuration must not lose to the legacy sweep at
    # the largest worker count.
    legacy_by_workers = {p["workers"]: p["qps"] for p in legacy_points
                         if isinstance(p, dict) and "workers" in p
                         and "qps" in p}
    last = points[-1]
    legacy_qps = legacy_by_workers.get(last["workers"])
    if legacy_qps is not None and last["qps"] < legacy_qps:
        err(f"{pctx}: qps {last['qps']} at workers={last['workers']} "
            f"below the legacy sweep's {legacy_qps}")


def check_common(doc: dict) -> None:
    """Envelope checks shared by every experiment artifact."""
    version = expect(doc, "schema_version", int, "top level")
    if version is not None and version != SCHEMA_VERSION:
        err(f"top level: schema_version {version} != {SCHEMA_VERSION}")
    expect(doc, "smoke", bool, "top level")

    field = expect(doc, "field", dict, "top level")
    if field is not None:
        expect(field, "type", str, "field")
        side = expect(field, "cells_per_side", int, "field")
        cells = expect(field, "cells", int, "field")
        if side is not None and cells is not None and side * side != cells:
            err(f"field: cells_per_side² = {side * side} != cells {cells}")

    workload = expect(doc, "workload", dict, "top level")
    if workload is not None:
        queries = expect(workload, "queries", int, "workload")
        per_q = expect(workload, "per_qinterval", int, "workload")
        qintervals = expect(workload, "qintervals", list, "workload")
        expect(workload, "seed", int, "workload")
        expect(workload, "estimate", str, "workload")
        if None not in (queries, per_q, qintervals) \
                and queries != per_q * len(qintervals):
            err(f"workload: queries {queries} != per_qinterval {per_q} "
                f"x {len(qintervals)} qintervals")


def validate_throughput(doc: dict) -> str:
    check_common(doc)

    device = expect(doc, "device_model", dict, "top level")
    if device is not None:
        for key in ("random_read_ms", "sequential_read_ms", "scale"):
            expect(device, key, (int, float), "device_model")

    workers = expect(doc, "workers", list, "top level")
    if workers is not None:
        if not workers or not all(isinstance(w, int) and w >= 1
                                  for w in workers):
            err(f"top level: workers must be a non-empty list of "
                f"ints >= 1, got {workers}")
        elif workers != sorted(workers):
            err(f"top level: workers must be ascending, got {workers}")

    methods = expect(doc, "methods", list, "top level")
    if methods is None or workers is None:
        return ""
    names = set()
    for entry in methods:
        if not isinstance(entry, dict):
            err("methods: every entry must be an object")
            return ""
        names.add(entry.get("method"))
        check_method(entry, workers)
    missing = REQUIRED_METHODS - names
    if missing:
        err(f"methods: missing {sorted(missing)}")
    return f"{len(methods)} methods, workers {workers}"


def check_update_step(step: dict, baseline: dict | None, ctx: str) -> None:
    applied = expect(step, "updates_applied", int, ctx)
    if applied is not None and applied < 0:
        err(f"{ctx}: updates_applied must be >= 0, got {applied}")
    fraction = expect(step, "fraction", (int, float), ctx)
    if fraction is not None and not 0 < fraction <= 1:
        err(f"{ctx}: fraction must be in (0, 1], got {fraction}")
    pages = expect(step, "page_reads", dict, ctx)
    if pages is not None:
        for method in REQUIRED_METHODS:
            reads = expect(pages, method, int, f"{ctx}.page_reads")
            if reads is not None and reads <= 0:
                err(f"{ctx}: page_reads[{method}] must be positive, "
                    f"got {reads}")
    ratios = expect(step, "ratio_vs_baseline", dict, ctx)
    if ratios is not None and baseline is not None and pages is not None:
        for method in REQUIRED_METHODS & set(ratios) & set(pages):
            base = baseline.get(method)
            if isinstance(base, int) and base > 0 \
                    and isinstance(pages.get(method), int):
                want = pages[method] / base
                got = ratios[method]
                if not isinstance(got, (int, float)) \
                        or abs(got - want) > 1e-3:
                    err(f"{ctx}: ratio_vs_baseline[{method}] {got} "
                        f"inconsistent with page_reads/baseline "
                        f"{want:.4f}")
    staleness = expect(step, "ih_staleness", dict, ctx)
    if staleness is not None:
        for key in ("subfields", "stale_subfields"):
            expect(staleness, key, int, f"{ctx}.ih_staleness")
        for key in ("max_drift", "mean_drift"):
            expect(staleness, key, (int, float), f"{ctx}.ih_staleness")
    for key in ("ih_maint_page_reads", "ih_maint_page_writes"):
        value = expect(step, key, int, ctx)
        if value is not None and value < 0:
            err(f"{ctx}: {key} must be >= 0, got {value}")


def validate_update(doc: dict) -> str:
    check_common(doc)

    updates = expect(doc, "updates", dict, "top level")
    if updates is not None:
        count = expect(updates, "count", int, "updates")
        if count is not None and count < 1:
            err(f"updates: count must be >= 1, got {count}")
        expect(updates, "seed", int, "updates")
        expect(updates, "distribution", str, "updates")

    baseline = expect(doc, "baseline_page_reads", dict, "top level")
    if baseline is not None:
        missing = REQUIRED_METHODS - set(baseline)
        if missing:
            err(f"baseline_page_reads: missing {sorted(missing)}")
        for method, reads in baseline.items():
            if not isinstance(reads, int) or reads <= 0:
                err(f"baseline_page_reads[{method}]: must be a positive "
                    f"int, got {reads!r}")

    steps = expect(doc, "steps", list, "top level")
    if steps is not None:
        if not steps:
            err("steps: must not be empty")
        last_applied = 0
        last_maint = -1
        for i, step in enumerate(steps):
            if not isinstance(step, dict):
                err(f"steps[{i}]: must be an object")
                continue
            check_update_step(step, baseline, f"steps[{i}]")
            applied = step.get("updates_applied")
            if isinstance(applied, int):
                if applied < last_applied:
                    err(f"steps[{i}]: updates_applied {applied} not "
                        f"ascending (previous {last_applied})")
                last_applied = applied
            maint = step.get("ih_maint_page_reads")
            if isinstance(maint, int):
                if maint < last_maint:
                    err(f"steps[{i}]: ih_maint_page_reads {maint} "
                        f"decreased (cumulative counter)")
                last_maint = maint

    final = expect(doc, "final", dict, "top level")
    if final is None:
        return ""
    equivalent = expect(final, "equivalent_to_rebuild", bool, "final")
    if equivalent is False:
        err("final: equivalent_to_rebuild is false — updated indexes "
            "diverged from a from-scratch rebuild")
    compaction = expect(final, "compaction", dict, "final")
    ratio = None
    if compaction is not None:
        for key in ("degraded_page_reads", "compacted_page_reads",
                    "fresh_page_reads", "reclustered_cells",
                    "subfields_before", "subfields_after"):
            value = expect(compaction, key, int, "final.compaction")
            if value is not None and value < 0:
                err(f"final.compaction: {key} must be >= 0, got {value}")
        ratio = expect(compaction, "recovery_ratio", (int, float),
                       "final.compaction")
        if ratio is not None and ratio > COMPACT_RECOVERY_LIMIT:
            err(f"final.compaction: recovery_ratio {ratio} > "
                f"{COMPACT_RECOVERY_LIMIT} — compaction failed to "
                f"restore fresh-build query cost")
    recovered = expect(final, "wal_recovery", bool, "final")
    if recovered is False:
        err("final: wal_recovery is false — WAL replay lost an "
            "acknowledged update")
    parts = [f"{len(doc.get('steps') or [])} update steps"]
    if ratio is not None:
        parts.append(f"compaction recovery {ratio:g}")
    return ", ".join(parts)


def check_tenant(entry: dict, workload_queries: int | None) -> None:
    name = entry.get("tenant", "<unnamed>")
    ctx = f"tenants[{name}]"
    expect(entry, "tenant", str, ctx)
    clients = expect(entry, "clients", int, ctx)
    if clients is not None and clients < 1:
        err(f"{ctx}: clients must be >= 1, got {clients}")
    queries = expect(entry, "queries", int, ctx)
    errors = expect(entry, "errors", int, ctx)
    if errors is not None and errors != 0:
        err(f"{ctx}: {errors} requests got error responses")
    if None not in (queries, clients, workload_queries) \
            and queries != clients * workload_queries:
        err(f"{ctx}: queries {queries} != clients {clients} x "
            f"{workload_queries} queries/client")
    for field in ("wall_s", "qps"):
        value = expect(entry, field, (int, float), ctx)
        if value is not None and value <= 0:
            err(f"{ctx}: {field} must be positive, got {value}")
    latency = expect(entry, "latency_ms", dict, ctx)
    if latency is not None:
        previous = 0.0
        for key in ("p50", "p95", "p99", "max"):
            value = expect(latency, key, (int, float),
                           f"{ctx}.latency_ms")
            if value is None:
                continue
            if value < previous:
                err(f"{ctx}.latency_ms: {key} {value} below a lower "
                    f"percentile ({previous}) — not a distribution")
            previous = value
        expect(latency, "mean", (int, float), f"{ctx}.latency_ms")
    pool = expect(entry, "pool", dict, ctx)
    if pool is not None:
        for key in ("hits", "misses", "bytes_read"):
            value = expect(pool, key, int, f"{ctx}.pool")
            if value is not None and value < 0:
                err(f"{ctx}.pool: {key} must be >= 0, got {value}")


def validate_serve(doc: dict) -> str:
    check_common(doc)

    workload = doc.get("workload")
    workload_queries = (workload.get("queries")
                        if isinstance(workload, dict) else None)

    server = expect(doc, "server", dict, "top level")
    n_tenants = clients_per_tenant = None
    if server is not None:
        for key in ("engine_workers", "executor_workers", "tenants",
                    "clients_per_tenant", "total_requests"):
            value = expect(server, key, int, "server")
            if value is not None and value < 1:
                err(f"server: {key} must be >= 1, got {value}")
        n_tenants = server.get("tenants")
        clients_per_tenant = server.get("clients_per_tenant")
        if isinstance(n_tenants, int) and n_tenants < 2:
            err(f"server: a multi-tenant run needs >= 2 tenants, "
                f"got {n_tenants}")
        if isinstance(n_tenants, int) \
                and isinstance(clients_per_tenant, int) \
                and n_tenants * clients_per_tenant < 8:
            err(f"server: {n_tenants} x {clients_per_tenant} clients "
                f"< the 8 concurrent connections the run must drive")

    tenants = expect(doc, "tenants", list, "top level")
    if tenants is not None:
        if isinstance(n_tenants, int) and len(tenants) != n_tenants:
            err(f"tenants: {len(tenants)} entries != server.tenants "
                f"{n_tenants}")
        for entry in tenants:
            if not isinstance(entry, dict):
                err("tenants: every entry must be an object")
                return ""
            check_tenant(entry, workload_queries)

    totals = expect(doc, "totals", dict, "top level")
    if totals is not None:
        queries = expect(totals, "queries", int, "totals")
        for key in ("wall_s", "qps"):
            value = expect(totals, key, (int, float), "totals")
            if value is not None and value <= 0:
                err(f"totals: {key} must be positive, got {value}")
        if isinstance(tenants, list) and queries is not None:
            per_tenant = [t.get("queries") for t in tenants
                          if isinstance(t, dict)]
            if all(isinstance(q, int) for q in per_tenant) \
                    and sum(per_tenant) != queries:
                err(f"totals: queries {queries} != sum of per-tenant "
                    f"queries {sum(per_tenant)}")

    equivalence = expect(doc, "equivalence", dict, "top level")
    if equivalence is not None:
        checked = expect(equivalence, "checked", int, "equivalence")
        mismatches = expect(equivalence, "mismatches", int,
                            "equivalence")
        if checked is not None and checked < 1:
            err(f"equivalence: checked must be >= 1, got {checked}")
        if mismatches is not None and mismatches != 0:
            err(f"equivalence: {mismatches} responses diverged from "
                f"direct engine answers")

    obs = expect(doc, "observability", dict, "top level")
    if obs is not None:
        rate = expect(obs, "trace_sample_rate", (int, float),
                      "observability")
        if rate is not None and not 0 <= rate <= 1:
            err(f"observability: trace_sample_rate must be in [0, 1], "
                f"got {rate}")
        for key in ("sampled_spans", "trace_span_events",
                    "qlog_entries"):
            value = expect(obs, key, int, "observability")
            if value is not None and value < 1:
                err(f"observability: {key} must be >= 1 (the artifact "
                    f"pass must record something), got {value}")
        wait = expect(obs, "admission_wait_ms", dict, "observability")
        if wait is not None:
            previous = 0.0
            for key in ("p50", "p95", "p99"):
                value = expect(wait, key, (int, float),
                               "observability.admission_wait_ms")
                if value is None:
                    continue
                if value < 0:
                    err(f"observability.admission_wait_ms: {key} must "
                        f"be >= 0, got {value}")
                elif value < previous:
                    err(f"observability.admission_wait_ms: {key} "
                        f"{value} below a lower percentile "
                        f"({previous}) — not a distribution")
                if value is not None and value >= 0:
                    previous = max(previous, value)
    n = len(tenants) if isinstance(tenants, list) else 0
    qps = (totals or {}).get("qps")
    return (f"{n} tenants"
            + (f", {qps} q/s total" if isinstance(qps, (int, float))
               else ""))


def validate_shard(doc: dict) -> str:
    check_common(doc)

    workload = doc.get("workload")
    workload_queries = (workload.get("queries")
                        if isinstance(workload, dict) else None)

    device = expect(doc, "device_model", dict, "top level")
    if device is not None:
        for key in ("random_read_ms", "sequential_read_ms"):
            value = expect(device, key, (int, float), "device_model")
            if value is not None and value <= 0:
                err(f"device_model: {key} must be positive, got {value}")

    base_ms = expect(doc, "baseline_device_ms", (int, float), "top level")
    if base_ms is not None and base_ms <= 0:
        err(f"baseline_device_ms must be positive, got {base_ms}")

    cache = expect(doc, "remote_cache_pages", int, "top level")
    if cache is not None and cache < 1:
        err(f"remote_cache_pages must be >= 1, got {cache}")

    sweep = expect(doc, "sweep", list, "top level")
    max_speedup = None
    if sweep is not None:
        if not sweep:
            err("sweep: must contain at least one shard-count entry")
        previous_shards = 0
        for i, entry in enumerate(sweep):
            ctx = f"sweep[{i}]"
            if not isinstance(entry, dict):
                err(f"{ctx}: every entry must be an object")
                continue
            requested = expect(entry, "shards_requested", int, ctx)
            built = expect(entry, "shards_built", int, ctx)
            if requested is not None:
                if requested <= previous_shards:
                    err(f"{ctx}: shard counts must be strictly "
                        f"ascending, got {requested} after "
                        f"{previous_shards}")
                previous_shards = requested
                if built is not None and not 1 <= built <= requested:
                    err(f"{ctx}: shards_built {built} outside "
                        f"[1, {requested}]")
            verified = expect(entry, "verified", int, ctx)
            mismatches = expect(entry, "mismatches", int, ctx)
            if mismatches is not None and mismatches != 0:
                err(f"{ctx}: {mismatches} sharded answers diverged "
                    f"from the unsharded engine")
            if verified is not None and workload_queries is not None \
                    and verified != workload_queries:
                err(f"{ctx}: verified {verified} != workload queries "
                    f"{workload_queries}")
            reads = expect(entry, "page_reads", int, ctx)
            if reads is not None and reads < 1:
                err(f"{ctx}: page_reads must be >= 1, got {reads}")
            for key in ("device_ms", "speedup"):
                value = expect(entry, key, (int, float), ctx)
                if value is not None and value <= 0:
                    err(f"{ctx}: {key} must be positive, got {value}")
            speedup = entry.get("speedup")
            if isinstance(speedup, (int, float)):
                max_speedup = max(max_speedup or 0.0, speedup)
            remote = expect(entry, "remote", dict, ctx)
            if remote is not None:
                for key in ("fetches", "evictions", "local_hits",
                            "puts"):
                    value = expect(remote, key, int, f"{ctx}.remote")
                    if value is not None and value < 0:
                        err(f"{ctx}.remote: {key} must be >= 0, "
                            f"got {value}")
                puts = remote.get("puts")
                if isinstance(puts, int) and puts < 1:
                    err(f"{ctx}.remote: a tiered run must upload "
                        f"pages (puts >= 1), got {puts}")
        if len(sweep) > 1 and max_speedup is not None \
                and max_speedup <= 1.0:
            err(f"sweep: best scale-out speedup {max_speedup} <= 1.0 "
                f"— sharding regressed the device-model cost")

    equivalence = expect(doc, "equivalence", dict, "top level")
    if equivalence is not None:
        checked = expect(equivalence, "checked", int, "equivalence")
        mismatches = expect(equivalence, "mismatches", int,
                            "equivalence")
        if checked is not None and checked < 1:
            err(f"equivalence: checked must be >= 1, got {checked}")
        if mismatches is not None and mismatches != 0:
            err(f"equivalence: {mismatches} sharded answers diverged "
                f"from the unsharded engine")
        if checked is not None and isinstance(sweep, list) \
                and workload_queries is not None \
                and checked != workload_queries * len(sweep):
            err(f"equivalence: checked {checked} != "
                f"{workload_queries} queries x {len(sweep)} "
                f"shard counts")

    n = len(sweep) if isinstance(sweep, list) else 0
    return (f"{n} shard counts"
            + (f", best speedup {max_speedup}x"
               if isinstance(max_speedup, (int, float)) else ""))


#: Kernels every micro artifact must time (the vectorized hot path).
REQUIRED_KERNELS = {"estimate_kernel", "filter_pack", "page_decode",
                    "hilbert_keys", "group_cells", "rtree_search"}
#: Acceptance bars for the ingest section of the micro artifact.
MICRO_MIN_BULK_CELLS = 1_000_000
MICRO_MIN_BULK_SPEEDUP = 10.0


def validate_micro(doc: dict) -> str:
    version = expect(doc, "schema_version", int, "top level")
    if version is not None and version != SCHEMA_VERSION:
        err(f"top level: schema_version {version} != {SCHEMA_VERSION}")
    smoke = expect(doc, "smoke", bool, "top level")
    if smoke:
        err("top level: the committed micro artifact must come from a "
            "full run (smoke runs write no JSON)")
    expect(doc, "seed", int, "top level")

    gate = expect(doc, "gate", dict, "top level")
    if gate is not None:
        ratio = expect(gate, "max_ratio", (int, float), "gate")
        if ratio is not None and ratio <= 1.0:
            err(f"gate: max_ratio must be > 1.0, got {ratio}")

    kernels = expect(doc, "kernels", dict, "top level")
    if kernels is not None:
        missing = REQUIRED_KERNELS - set(kernels)
        if missing:
            err(f"kernels: missing {sorted(missing)}")
        for name, stats in kernels.items():
            ctx = f"kernels[{name}]"
            if not isinstance(stats, dict):
                err(f"{ctx}: must be an object")
                continue
            ops = expect(stats, "ops_per_round", int, ctx)
            if ops is not None and ops < 1:
                err(f"{ctx}: ops_per_round must be >= 1, got {ops}")
            rounds = expect(stats, "rounds", int, ctx)
            if rounds is not None and rounds < 3:
                err(f"{ctx}: rounds must be >= 3, got {rounds}")
            best = expect(stats, "best_ns_per_op", (int, float), ctx)
            median = expect(stats, "median_ns_per_op", (int, float), ctx)
            if best is not None and best <= 0:
                err(f"{ctx}: best_ns_per_op must be positive, got {best}")
            if None not in (best, median) and median < best:
                err(f"{ctx}: median_ns_per_op {median} below best "
                    f"{best} — not a distribution")

    ingest = expect(doc, "ingest", dict, "top level")
    speedup = None
    if ingest is not None:
        bulk = expect(ingest, "bulk", dict, "ingest")
        if bulk is not None:
            cells = expect(bulk, "cells", int, "ingest.bulk")
            if cells is not None and cells < MICRO_MIN_BULK_CELLS:
                err(f"ingest.bulk: cells {cells} below the "
                    f"{MICRO_MIN_BULK_CELLS}-cell acceptance bar")
            cps = expect(bulk, "cells_per_second", (int, float),
                         "ingest.bulk")
            if cps is not None and cps <= 0:
                err(f"ingest.bulk: cells_per_second must be positive, "
                    f"got {cps}")
        incremental = expect(ingest, "incremental", dict, "ingest")
        if incremental is not None:
            cps = expect(incremental, "cells_per_second", (int, float),
                         "ingest.incremental")
            if cps is not None and cps <= 0:
                err(f"ingest.incremental: cells_per_second must be "
                    f"positive, got {cps}")
        speedup = expect(ingest, "speedup_bulk_vs_incremental",
                         (int, float), "ingest")
        if speedup is not None and speedup < MICRO_MIN_BULK_SPEEDUP:
            err(f"ingest: speedup_bulk_vs_incremental {speedup} below "
                f"the {MICRO_MIN_BULK_SPEEDUP}x acceptance bar")
    n = len(kernels) if isinstance(kernels, dict) else 0
    return (f"{n} kernels"
            + (f", bulk ingest {speedup}x vs per-insert"
               if isinstance(speedup, (int, float)) else ""))


#: Configurations every committed aggregate frontier must report.
AGGREGATE_CONFIGS = {"exact", "hybrid-1pct", "hybrid-0.1pct", "model"}
AGGREGATE_KINDS = {"count", "sum", "area"}


def validate_aggregate(doc: dict) -> str:
    version = expect(doc, "schema_version", int, "top level")
    if version is not None and version != SCHEMA_VERSION:
        err(f"top level: schema_version {version} != {SCHEMA_VERSION}")
    smoke = expect(doc, "smoke", bool, "top level")
    if smoke:
        err("top level: the committed aggregate artifact must come from "
            "a full run (smoke runs write no JSON)")

    field = expect(doc, "field", dict, "top level")
    if field is not None:
        cells = expect(field, "cells", int, "field")
        if cells is not None and cells < 4096:
            err(f"field: cells {cells} below the 4096-cell "
                f"acceptance bar")

    workload = expect(doc, "workload", dict, "top level")
    if workload is not None:
        queries = expect(workload, "queries", int, "workload")
        if queries is not None and queries < 24:
            err(f"workload: queries {queries} below 24")
        kinds = expect(workload, "kinds", list, "workload")
        if kinds is not None and AGGREGATE_KINDS - set(kinds):
            err(f"workload: kinds missing "
                f"{sorted(AGGREGATE_KINDS - set(kinds))}")

    model = expect(doc, "model", dict, "top level")
    if model is not None:
        degree = expect(model, "degree", int, "model")
        if degree is not None and not 1 <= degree <= 8:
            err(f"model: degree {degree} outside [1, 8]")
        subfields = expect(model, "subfields", int, "model")
        if subfields is not None and subfields < 1:
            err(f"model: subfields must be >= 1, got {subfields}")
        expect(model, "nbytes", int, "model")
        fit = expect(model, "fit_seconds", (int, float), "model")
        if fit is not None and fit < 0:
            err(f"model: fit_seconds must be >= 0, got {fit}")

    gate = expect(doc, "gate", dict, "top level")
    max_slowdown = None
    if gate is not None:
        max_slowdown = expect(gate, "max_slowdown", (int, float), "gate")
        if max_slowdown is not None and max_slowdown <= 1.0:
            err(f"gate: max_slowdown must be > 1.0, got {max_slowdown}")

    configs = expect(doc, "configs", list, "top level")
    by_name = {}
    if configs is not None:
        for i, entry in enumerate(configs):
            ctx = f"configs[{i}]"
            if not isinstance(entry, dict):
                err(f"{ctx}: must be an object")
                continue
            name = expect(entry, "name", str, ctx)
            if name is not None:
                by_name[name] = entry
            wall = expect(entry, "wall_seconds", (int, float), ctx)
            if wall is not None and wall <= 0:
                err(f"{ctx}: wall_seconds must be positive, got {wall}")
            ops = expect(entry, "ops", int, ctx)
            if ops is not None and ops < 1:
                err(f"{ctx}: ops must be >= 1, got {ops}")
            pages = expect(entry, "pages", int, ctx)
            if pages is not None and pages < 0:
                err(f"{ctx}: pages must be >= 0, got {pages}")
            expect(entry, "max_rel_error_pct", (int, float), ctx)
        missing = AGGREGATE_CONFIGS - set(by_name)
        if missing:
            err(f"configs: missing {sorted(missing)}")

    # Semantic checks on the frontier itself.
    if AGGREGATE_CONFIGS <= set(by_name):
        exact = by_name["exact"]
        model_cfg = by_name["model"]
        hybrid = by_name["hybrid-1pct"]
        if model_cfg.get("pages", 0) != 0:
            err(f"configs[model]: a pure-model run must read 0 pages, "
                f"got {model_cfg.get('pages')}")
        if exact.get("max_rel_error_pct", 0) != 0:
            err("configs[exact]: exact error must be 0")
        if isinstance(exact.get("wall_seconds"), (int, float)) and \
                isinstance(hybrid.get("wall_seconds"), (int, float)) \
                and max_slowdown is not None:
            ratio = hybrid["wall_seconds"] / exact["wall_seconds"]
            if ratio > max_slowdown:
                err(f"configs: hybrid-1pct wall {ratio:.2f}x exact "
                    f"exceeds the {max_slowdown}x gate")
        if isinstance(model_cfg.get("ops_per_second"), (int, float)) \
                and isinstance(exact.get("ops_per_second"),
                               (int, float)) \
                and model_cfg["ops_per_second"] \
                <= exact["ops_per_second"]:
            err("configs: model ops/s not above exact ops/s — the "
                "frontier collapsed")

    equivalence = expect(doc, "equivalence", dict, "top level")
    if equivalence is not None:
        checked = expect(equivalence, "checked", int, "equivalence")
        if checked is not None and checked < 1:
            err("equivalence: no tolerance=0 answers checked")
        mismatches = expect(equivalence, "mismatches", int,
                            "equivalence")
        if mismatches:
            err(f"equivalence: {mismatches} hybrid tolerance=0 answers "
                f"diverged from exact")
    n = len(by_name)
    return f"{n} configs on the accuracy-vs-speed frontier"


VALIDATORS = {
    "throughput": validate_throughput,
    "update": validate_update,
    "serve": validate_serve,
    "shard": validate_shard,
    "micro": validate_micro,
    "aggregate": validate_aggregate,
}


def validate(doc) -> str:
    if not isinstance(doc, dict):
        err("top level: must be a JSON object")
        return ""
    experiment = expect(doc, "experiment", str, "top level")
    if experiment is None:
        return ""
    validator = VALIDATORS.get(experiment)
    if validator is None:
        err(f"top level: unknown experiment {experiment!r} "
            f"(known: {sorted(VALIDATORS)})")
        return ""
    return validator(doc)


def main(argv: list[str]) -> int:
    path = argv[1] if len(argv) > 1 else "BENCH_throughput.json"
    if len(argv) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    detail = validate(doc)
    if _errors:
        for message in _errors:
            print(f"error: {path}: {message}", file=sys.stderr)
        return 1
    print(f"{path}: valid (schema v{SCHEMA_VERSION}, "
          f"{doc['experiment']}{': ' + detail if detail else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

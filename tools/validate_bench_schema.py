#!/usr/bin/env python3
"""Validate BENCH_throughput.json against its committed schema.

Standard library only — this runs in the CI lint job, which installs no
scientific stack.  The checks are deliberately structural *and*
semantic: a file that parses but reports a parallel slowdown, mismatched
page counts across worker sweeps, or a missing method is as much a
regression as malformed JSON.

Usage: python tools/validate_bench_schema.py [BENCH_throughput.json]
Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""

from __future__ import annotations

import json
import sys

SCHEMA_VERSION = 1
REQUIRED_METHODS = {"LinearScan", "I-All", "I-Hilbert"}

_errors: list[str] = []


def err(msg: str) -> None:
    _errors.append(msg)


def expect(obj: dict, field: str, types, ctx: str):
    if field not in obj:
        err(f"{ctx}: missing field {field!r}")
        return None
    value = obj[field]
    if not isinstance(value, types):
        names = (types.__name__ if isinstance(types, type)
                 else "/".join(t.__name__ for t in types))
        err(f"{ctx}: field {field!r} must be {names}, "
            f"got {type(value).__name__}")
        return None
    return value


def check_point(point: dict, ctx: str) -> None:
    workers = expect(point, "workers", int, ctx)
    if workers is not None and workers < 1:
        err(f"{ctx}: workers must be >= 1, got {workers}")
    for field in ("wall_s", "qps", "speedup_vs_1"):
        value = expect(point, field, (int, float), ctx)
        if value is not None and value <= 0:
            err(f"{ctx}: {field} must be positive, got {value}")
    for field in ("page_reads", "random_reads", "sequential_reads"):
        value = expect(point, field, int, ctx)
        if value is not None and value < 0:
            err(f"{ctx}: {field} must be >= 0, got {value}")


def check_method(entry: dict, workers: list) -> None:
    name = entry.get("method", "<unnamed>")
    ctx = f"methods[{name}]"
    expect(entry, "method", str, ctx)
    expect(entry, "build_seconds", (int, float), ctx)
    expect(entry, "data_pages", int, ctx)
    expect(entry, "index_pages", int, ctx)
    expect(entry, "serial_page_reads", int, ctx)
    points = expect(entry, "points", list, ctx)
    if points is None:
        return
    before = len(_errors)
    for i, point in enumerate(points):
        if not isinstance(point, dict):
            err(f"{ctx}.points[{i}]: must be an object")
            return
        check_point(point, f"{ctx}.points[{i}]")
    if len(_errors) > before or "serial_page_reads" not in entry:
        return    # structure is broken; skip the semantic checks
    if [p["workers"] for p in points] != workers:
        err(f"{ctx}: points sweep {[p['workers'] for p in points]} "
            f"!= declared workers {workers}")
    # Parallelism must be invisible in the I/O accounting: every sweep
    # point of a method reads exactly the serial page count.
    serial = entry["serial_page_reads"]
    for point in points:
        if point["page_reads"] != serial:
            err(f"{ctx}: workers={point['workers']} read "
                f"{point['page_reads']} pages, serial read {serial}")
        if point["random_reads"] + point["sequential_reads"] \
                != point["page_reads"]:
            err(f"{ctx}: workers={point['workers']}: random + sequential "
                f"!= page_reads")
    # The point of the engine: more workers must not lose throughput.
    first, last = points[0], points[-1]
    if last["qps"] < first["qps"]:
        err(f"{ctx}: qps regressed from {first['qps']} "
            f"(workers={first['workers']}) to {last['qps']} "
            f"(workers={last['workers']})")


def validate(doc) -> None:
    if not isinstance(doc, dict):
        err("top level: must be a JSON object")
        return
    version = expect(doc, "schema_version", int, "top level")
    if version is not None and version != SCHEMA_VERSION:
        err(f"top level: schema_version {version} != {SCHEMA_VERSION}")
    experiment = expect(doc, "experiment", str, "top level")
    if experiment is not None and experiment != "throughput":
        err(f"top level: experiment {experiment!r} != 'throughput'")
    expect(doc, "smoke", bool, "top level")

    field = expect(doc, "field", dict, "top level")
    if field is not None:
        expect(field, "type", str, "field")
        side = expect(field, "cells_per_side", int, "field")
        cells = expect(field, "cells", int, "field")
        if side is not None and cells is not None and side * side != cells:
            err(f"field: cells_per_side² = {side * side} != cells {cells}")

    workload = expect(doc, "workload", dict, "top level")
    if workload is not None:
        queries = expect(workload, "queries", int, "workload")
        per_q = expect(workload, "per_qinterval", int, "workload")
        qintervals = expect(workload, "qintervals", list, "workload")
        expect(workload, "seed", int, "workload")
        expect(workload, "estimate", str, "workload")
        if None not in (queries, per_q, qintervals) \
                and queries != per_q * len(qintervals):
            err(f"workload: queries {queries} != per_qinterval {per_q} "
                f"x {len(qintervals)} qintervals")

    device = expect(doc, "device_model", dict, "top level")
    if device is not None:
        for key in ("random_read_ms", "sequential_read_ms", "scale"):
            expect(device, key, (int, float), "device_model")

    workers = expect(doc, "workers", list, "top level")
    if workers is not None:
        if not workers or not all(isinstance(w, int) and w >= 1
                                  for w in workers):
            err(f"top level: workers must be a non-empty list of "
                f"ints >= 1, got {workers}")
        elif workers != sorted(workers):
            err(f"top level: workers must be ascending, got {workers}")

    methods = expect(doc, "methods", list, "top level")
    if methods is None or workers is None:
        return
    names = set()
    for entry in methods:
        if not isinstance(entry, dict):
            err("methods: every entry must be an object")
            return
        names.add(entry.get("method"))
        check_method(entry, workers)
    missing = REQUIRED_METHODS - names
    if missing:
        err(f"methods: missing {sorted(missing)}")


def main(argv: list[str]) -> int:
    path = argv[1] if len(argv) > 1 else "BENCH_throughput.json"
    if len(argv) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    validate(doc)
    if _errors:
        for message in _errors:
            print(f"error: {path}: {message}", file=sys.stderr)
        return 1
    print(f"{path}: valid (schema v{SCHEMA_VERSION}, "
          f"{len(doc['methods'])} methods, workers {doc['workers']})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Terrain elevation bands and the geography of subfields (paper Fig. 7).

Extracts an exact elevation isoband from a terrain DEM through the
I-Hilbert index and renders two ASCII maps: the answer regions of the
band query, and the spatial footprint of the subfields the index built
(the picture paper Fig. 7 shows for Roseburg).

Run:  python examples/terrain_isoband.py [--show-subfields]
"""

import argparse

import numpy as np

from repro import IHilbertIndex, ValueQuery
from repro.synth import roseburg_like

#: Characters used to paint distinct subfields on the map.
GLYPHS = "abcdefghijklmnopqrstuvwxyz0123456789"


def ascii_answer_map(field, cell_ids, width: int = 64) -> str:
    """Coarse map marking cells that contain answer regions."""
    grid = np.zeros((field.rows, field.cols), dtype=bool)
    for cid in cell_ids:
        i, j = field.cell_position(int(cid))
        grid[j, i] = True
    step = max(1, field.cols // width)
    lines = []
    for j in range(0, field.rows, step):
        row = grid[j:j + step]
        line = "".join(
            "#" if row[:, i:i + step].any() else "."
            for i in range(0, field.cols, step))
        lines.append(line)
    return "\n".join(lines)


def ascii_subfield_map(field, index, width: int = 64) -> str:
    """Map painting each cell with its subfield's glyph."""
    owner = np.empty(field.num_cells, dtype=np.int64)
    for sf in index.subfields:
        owner[index.order[sf.ptr_start:sf.ptr_end + 1]] = sf.sf_id
    step = max(1, field.cols // width)
    lines = []
    for j in range(0, field.rows, step):
        chars = []
        for i in range(0, field.cols, step):
            cid = field.cell_id(i, j)
            chars.append(GLYPHS[owner[cid] % len(GLYPHS)])
        lines.append("".join(chars))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--show-subfields", action="store_true",
                        help="also print the subfield footprint map "
                             "(paper Fig. 7)")
    parser.add_argument("--size", type=int, default=64,
                        help="terrain cells per side (default 64)")
    args = parser.parse_args()

    field = roseburg_like(cells_per_side=args.size)
    vr = field.value_range
    index = IHilbertIndex(field)
    print(f"terrain {args.size}x{args.size}, elevations "
          f"{vr.lo:.0f}..{vr.hi:.0f} m, "
          f"{index.num_subfields} subfields")

    lo = vr.lo + 0.45 * vr.length
    hi = vr.lo + 0.55 * vr.length
    result = index.query(ValueQuery(lo, hi), estimate="regions")
    print(f"\nisoband [{lo:.0f}, {hi:.0f}] m: "
          f"{result.candidate_count} candidate cells, "
          f"{len(result.regions)} exact polygons, "
          f"area {result.area:.0f} cells")
    print("\nanswer map ('#' = cell contributes to the band):")
    cell_ids = {r.cell_id for r in result.regions}
    print(ascii_answer_map(field, cell_ids))

    if args.show_subfields:
        print("\nsubfield footprints (one glyph per subfield, "
              "paper Fig. 7):")
        print(ascii_subfield_map(field, index))
        sizes = [sf.num_cells for sf in index.subfields]
        print(f"\nsubfields: {len(sizes)}, cells per subfield "
              f"mean {np.mean(sizes):.1f}, max {max(sizes)}")


if __name__ == "__main__":
    main()

"""3-D volume fields: ore-grade queries in a geological block model.

The paper's introduction names three-dimensional fields ("geological
structures") as a target; this example builds a synthetic ore body on a
voxel grid, indexes the tetrahedral cells with I-Hilbert over the
3-D Hilbert curve, and asks the mining question: *where is the ore grade
between 2 % and 5 %?* — a field value query whose answer is a volume.

Run:  python examples/geology_volume.py
"""

import numpy as np

from repro import IHilbertIndex, LinearScanIndex, ValueQuery, VolumeField


def make_ore_body(side: int = 24, seed: int = 42) -> VolumeField:
    """Ore grade (%) on a (side x side x side) voxel grid.

    Two ellipsoidal high-grade lodes embedded in low-grade host rock,
    plus log-normal assay noise.
    """
    rng = np.random.default_rng(seed)
    axis = np.arange(side + 1, dtype=float)
    z, y, x = np.meshgrid(axis, axis, axis, indexing="ij")
    grade = np.full_like(x, 0.2)           # host rock background
    for cx, cy, cz, r, peak in ((side * 0.35, side * 0.4, side * 0.5,
                                 side * 0.22, 8.0),
                                (side * 0.7, side * 0.6, side * 0.3,
                                 side * 0.15, 5.0)):
        d2 = (((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2)
              / r ** 2)
        grade += peak * np.exp(-d2 * 2.0)
    grade *= rng.lognormal(0.0, 0.15, size=grade.shape)
    return VolumeField(grade)


def main() -> None:
    field = make_ore_body()
    vr = field.value_range
    print(f"block model: {field.num_cells} voxel cells "
          f"({field.nx}x{field.ny}x{field.nz}), "
          f"grades {vr.lo:.2f}..{vr.hi:.2f} %")

    query = ValueQuery(2.0, 5.0)
    print(f"\nquery: ore grade in [{query.lo:.0f} %, {query.hi:.0f} %]")
    print(f"{'method':>12} {'candidates':>11} {'volume':>9} "
          f"{'pages':>6} {'random':>7}")
    for method_cls in (LinearScanIndex, IHilbertIndex):
        index = method_cls(field)
        result = index.query(query)
        print(f"{index.name:>12} {result.candidate_count:>11} "
              f"{result.area:>9.1f} {result.io.page_reads:>6} "
              f"{result.io.random_reads:>7}")

    index = IHilbertIndex(field)
    info = index.describe()
    print(f"\n3-D I-Hilbert: curve={info['curve']} "
          f"(dim {index.curve.dim}), {info['subfields']} subfields over "
          f"{info['cells']} cells")

    # Grade-tonnage style sweep: volume above increasing cutoffs.
    print("\ncutoff-grade sweep (volume above cutoff):")
    for cutoff in (0.5, 1.0, 2.0, 4.0, 6.0):
        result = index.query(ValueQuery.at_least(cutoff, vr.hi))
        print(f"  grade >= {cutoff:4.1f} %: {result.area:9.1f} cells "
              f"({result.area / field.num_cells:6.2%})"
              f"  [{result.io.page_reads} pages]")

    # Conventional query: grade at a drill-hole intercept.
    x, y, z = 8.4, 9.6, 12.1
    print(f"\nQ1: grade at drill point ({x}, {y}, {z}) = "
          f"{field.value_at(x, y, z):.2f} %")


if __name__ == "__main__":
    main()

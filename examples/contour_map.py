"""Contour maps through the value index, with index persistence.

Extracts a family of elevation isolines from a terrain DEM.  Each
contour level is an exact-match field value query (paper §2.2.2); the
candidate cells feed the marching extraction, so only contributing cells
are ever read.  The built index is then saved to disk and reloaded — the
reload answers the same queries from pages alone, without the field.

Run:  python examples/contour_map.py
"""

import tempfile
from pathlib import Path

from repro import IHilbertIndex, ValueQuery, load_index, save_index
from repro.field import DEMField, extract_isolines, total_length
from repro.synth import roseburg_like


def main() -> None:
    field = roseburg_like(cells_per_side=128)
    vr = field.value_range
    index = IHilbertIndex(field)
    print(f"terrain: {field.num_cells} cells, elevations "
          f"{vr.lo:.0f}..{vr.hi:.0f} m "
          f"({index.num_subfields} subfields)")

    print(f"\n{'contour':>9} {'cells':>7} {'segments':>9} "
          f"{'length':>9} {'pages':>6}")
    levels = [vr.lo + frac * vr.length
              for frac in (0.2, 0.35, 0.5, 0.65, 0.8)]
    for level in levels:
        index.clear_caches()
        before = index.stats.snapshot()
        candidates = index._candidates(level, level)
        pages = index.stats.diff(before).page_reads
        segments = extract_isolines(DEMField, candidates, level)
        print(f"{level:>8.0f}m {len(candidates):>7} {len(segments):>9} "
              f"{total_length(segments):>9.0f} {pages:>6}")

    # Persist the index and query the reloaded copy.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "terrain-index"
        save_index(index, path)
        size = sum(f.stat().st_size for f in path.iterdir())
        print(f"\nsaved index to {path.name}/ ({size / 1024:.0f} KiB)")

        reloaded = load_index(path)
        query = ValueQuery(levels[2], levels[2])
        original = index.query(query)
        again = reloaded.query(query)
        print(f"reloaded index answers the {levels[2]:.0f} m contour "
              f"query identically: {again.candidate_count} candidates "
              f"(original {original.candidate_count}), "
              f"{again.io.page_reads} pages read")


if __name__ == "__main__":
    main()

"""The paper's ocean scenario: find where salmon can be fished.

Section 1 of the paper motivates field value queries with: "Find regions
where the temperature is between 20° and 25° and the salinity is between
12% and 13%".  This example builds two co-registered scalar fields
(sea-surface temperature and salinity over one grid), indexes each with
I-Hilbert, and answers the conjunctive query exactly.

Run:  python examples/ocean_salmon.py
"""

import numpy as np
from scipy.ndimage import gaussian_filter

from repro import DEMField, IHilbertIndex, conjunctive_query
from repro.synth import fractal_dem_heights


def make_ocean(cells: int = 128, seed: int = 7):
    """Two smooth, co-registered ocean fields on a (cells x cells) grid."""
    # Temperature: warm in the south, cooler north, plus mesoscale eddies.
    base = np.linspace(25.0, 12.0, cells + 1)[:, None]
    eddies = gaussian_filter(fractal_dem_heights(cells, 0.8, seed=seed), 2)
    eddies = eddies / max(abs(eddies.min()), eddies.max()) * 3.0
    temperature = DEMField(base + eddies)

    # Salinity: fresher near the (western) river mouth, saltier offshore.
    xs = np.linspace(0.0, 1.0, cells + 1)[None, :]
    plume = 10.5 + 3.5 * xs ** 0.5
    swirl = gaussian_filter(
        fractal_dem_heights(cells, 0.8, seed=seed + 1), 3)
    swirl = swirl / max(abs(swirl.min()), swirl.max()) * 0.6
    salinity = DEMField(plume + swirl)
    return temperature, salinity


def main() -> None:
    temperature, salinity = make_ocean()
    t_range = temperature.value_range
    s_range = salinity.value_range
    print(f"ocean grid: {temperature.num_cells} cells")
    print(f"temperature: {t_range.lo:.1f}..{t_range.hi:.1f} °C")
    print(f"salinity:    {s_range.lo:.2f}..{s_range.hi:.2f} %")

    t_index = IHilbertIndex(temperature)
    s_index = IHilbertIndex(salinity)

    print("\nquery: 20 °C <= T <= 25 °C  AND  12 % <= S <= 13 %")
    result = conjunctive_query([t_index, s_index],
                               [(20.0, 25.0), (12.0, 13.0)],
                               with_regions=True)
    total = temperature.num_cells
    print(f"temperature candidates: {result.per_field_candidates[0]} "
          f"cells ({result.per_field_candidates[0] / total:.1%})")
    print(f"salinity candidates:    {result.per_field_candidates[1]} "
          f"cells ({result.per_field_candidates[1] / total:.1%})")
    print(f"cells satisfying both:  {result.common_cells}")
    print(f"fishing-ground area:    {result.area:.1f} cells "
          f"({result.area / total:.2%} of the sea)")
    print(f"I/O for the whole conjunction: {result.io.page_reads} pages "
          f"({result.io.random_reads} random)")

    if result.regions:
        cx = np.mean([p[0] for p in result.regions[0].polygon])
        cy = np.mean([p[1] for p in result.regions[0].polygon])
        print(f"\nfirst fishing ground: cell {result.regions[0].cell_id}, "
              f"around grid position ({cx:.1f}, {cy:.1f})")

    # Sanity check: both conditions hold at that spot.
    if result.regions:
        t = temperature.value_at(cx, cy)
        s = salinity.value_at(cx, cy)
        print(f"check: T({cx:.1f},{cy:.1f}) = {t:.2f} °C, "
              f"S = {s:.2f} %  -> "
              f"{'inside' if 20 <= t <= 25 and 12 <= s <= 13 else 'edge of'}"
              f" the query box")


if __name__ == "__main__":
    main()

"""Spatio-temporal value queries: a week-long heat wave.

Stacks daily temperature snapshots into a :class:`TemporalField` (the
paper's formal model explicitly includes the temporal coordinate) and
asks space-time questions: *how much area-time exceeded 30 °C?*, *when
was a given site uncomfortably hot?* — all through the same value-domain
index, with time as the third Hilbert axis.

Run:  python examples/spacetime_weather.py
"""

import numpy as np
from scipy.ndimage import gaussian_filter

from repro import IHilbertIndex, LinearScanIndex, TemporalField, ValueQuery
from repro.synth import fractal_dem_heights


def make_week(side: int = 48, days: int = 8, seed: int = 30) -> TemporalField:
    """Daily mean temperature grids with a passing heat dome."""
    base = gaussian_filter(fractal_dem_heights(side, 0.8, seed=seed), 2)
    base = 22.0 + 4.0 * (base - base.min()) / (base.max() - base.min())
    axis = np.linspace(0.0, 1.0, side + 1)
    yy, xx = np.meshgrid(axis, axis, indexing="ij")
    snaps = []
    for day in range(days):
        # The heat dome drifts west-to-east and peaks mid-week.
        cx = (day + 0.5) / days
        strength = 12.0 * np.exp(-((day - days / 2.0) / 2.0) ** 2)
        dome = strength * np.exp(-(((xx - cx) / 0.25) ** 2
                                   + ((yy - 0.5) / 0.35) ** 2))
        snaps.append(base + dome)
    return TemporalField(np.stack(snaps), t0=0.0, dt=1.0)


def main() -> None:
    week = make_week()
    vr = week.value_range
    print(f"space-time field: {week.num_steps} daily snapshots over a "
          f"{week.nx}x{week.ny} grid -> {week.num_cells} space-time "
          f"cells, temperatures {vr.lo:.1f}..{vr.hi:.1f} °C")

    threshold = 30.0
    query = ValueQuery.at_least(threshold, vr.hi)
    print(f"\nquery: where/when was it >= {threshold:.0f} °C?")
    for method_cls in (LinearScanIndex, IHilbertIndex):
        index = method_cls(week)
        result = index.query(query)
        print(f"  {index.name:>10}: {result.candidate_count} candidate "
              f"space-time cells, {result.area:.0f} cell-days of heat, "
              f"{result.io.page_reads} pages "
              f"({result.io.random_reads} random)")

    index = IHilbertIndex(week)
    print(f"  (3-D Hilbert over (x, y, t): "
          f"{index.describe()['subfields']} subfields)")

    # Daily heat extent through time slices.
    print("\ndaily area above threshold:")
    for day in range(week.num_steps):
        field = week.step_field(day)
        scan = LinearScanIndex(field)
        area = scan.query(ValueQuery.at_least(
            threshold, max(threshold, field.value_range.hi))).area
        bar = "#" * int(area / 25.0)
        print(f"  day {day}: {area:7.1f} cells {bar}")

    # Site-level duration: how long was downtown too hot?
    x, y = week.nx / 2.0, week.ny / 2.0
    hours = week.duration_in_band(x, y, threshold, vr.hi + 1.0) * 24.0
    print(f"\ndowntown ({x:.0f}, {y:.0f}) spent {hours:.1f} hours "
          f"above {threshold:.0f} °C this week.")


if __name__ == "__main__":
    main()

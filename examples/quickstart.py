"""Quickstart: index a terrain field and run field value queries.

Builds the three access methods from the paper over a synthetic terrain,
runs the same value query against each, and prints the answers plus the
I/O each method paid — the paper's comparison in miniature.

Run:  python examples/quickstart.py
"""

from repro import (
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    PointIndex,
    ValueQuery,
)
from repro.synth import roseburg_like


def main() -> None:
    # A 128x128-cell terrain (a stand-in for a USGS DEM tile).
    field = roseburg_like(cells_per_side=128)
    vr = field.value_range
    print(f"terrain: {field.num_cells} cells, "
          f"elevations {vr.lo:.0f}..{vr.hi:.0f} m")

    # Q1, the conventional query: what is the elevation at a point?
    points = PointIndex(field)
    x, y = 30.5, 99.25
    print(f"\nQ1: elevation at ({x}, {y}) = "
          f"{points.value_at(x, y):.1f} m")

    # Q2, the paper's field value query: where is the elevation in
    # [300 m, 320 m]?
    query = ValueQuery(300.0, 320.0)
    print(f"\nQ2: regions where elevation is in "
          f"[{query.lo:.0f}, {query.hi:.0f}] m")
    print(f"{'method':>12} {'candidates':>11} {'area':>9} "
          f"{'pages':>6} {'random':>7}")
    for method_cls in (LinearScanIndex, IAllIndex, IHilbertIndex):
        index = method_cls(field)
        result = index.query(query)
        print(f"{index.name:>12} {result.candidate_count:>11} "
              f"{result.area:>9.1f} {result.io.page_reads:>6} "
              f"{result.io.random_reads:>7}")

    # The winning method exposes its structure.
    index = IHilbertIndex(field)
    info = index.describe()
    print(f"\nI-Hilbert groups {info['cells']} cells into "
          f"{info['subfields']} subfields "
          f"({info['cells'] / info['subfields']:.0f} cells each on "
          f"average), indexed by a "
          f"{info['index_pages']}-page 1-D R*-tree.")

    # Exact answer polygons are available on demand.
    regions = index.query(ValueQuery(300.0, 302.0),
                          estimate="regions").regions
    print(f"\nExact regions for [300, 302] m: {len(regions)} polygons, "
          f"e.g. first piece in cell {regions[0].cell_id} with "
          f"{len(regions[0].polygon)} vertices, "
          f"area {regions[0].area:.3f} cells.")


if __name__ == "__main__":
    main()

"""Vector fields: wind-speed queries (the paper's §5 future work).

Builds a synthetic wind field (two co-registered components u, v),
computes exact per-cell magnitude intervals (max at a vertex by
convexity; min by distance from the origin to the value-space triangle),
and answers: *where does the wind blow between 10 and 15 m/s?* —
combined with a component-wise conjunctive query for westerly sectors.

Run:  python examples/wind_vectors.py
"""

import numpy as np
from scipy.ndimage import gaussian_filter

from repro import IHilbertIndex, VectorField, conjunctive_query
from repro.synth import fractal_dem_heights


def make_wind(side: int = 64, seed: int = 11) -> VectorField:
    """A storm-like rotational wind field plus turbulent detail."""
    axis = np.linspace(-1.0, 1.0, side + 1)
    yy, xx = np.meshgrid(axis, axis, indexing="ij")
    r2 = xx ** 2 + yy ** 2
    swirl = 22.0 * np.exp(-r2 * 3.0)         # vortex speed profile
    u = -yy * swirl + 6.0                     # background westerly
    v = xx * swirl
    u += gaussian_filter(fractal_dem_heights(side, 0.6, seed=seed), 2) * 3
    v += gaussian_filter(fractal_dem_heights(side, 0.6, seed=seed + 1),
                         2) * 3
    return VectorField(u, v)


def main() -> None:
    wind = make_wind()
    vr = wind.magnitude_range()
    print(f"wind field: {wind.num_cells} cells, speeds "
          f"{vr.lo:.1f}..{vr.hi:.1f} m/s")

    lo, hi = 10.0, 15.0
    candidates = wind.magnitude_candidates(lo, hi)
    area = wind.magnitude_area(lo, hi, depth=5)
    print(f"\nspeed in [{lo:.0f}, {hi:.0f}] m/s: "
          f"{len(candidates)} candidate cells, area {area:.1f} cells "
          f"({area / wind.num_cells:.1%} of the domain)")

    # Gale-force check at a few stations.
    print("\nstations:")
    for x, y in ((10.0, 32.0), (32.0, 32.0), (55.0, 12.0)):
        speed = wind.magnitude_at(x, y)
        direction = np.degrees(wind.direction_at(x, y)) % 360.0
        print(f"  ({x:4.0f}, {y:4.0f}): {speed:5.1f} m/s "
              f"from {direction:5.1f}°")

    # Component query through the scalar machinery: strong westerlies
    # (u >= 8) with weak crosswind (|v| <= 3) — a conjunction over the
    # two component fields, exactly like the paper's ocean scenario.
    u_index = IHilbertIndex(wind.u)
    v_index = IHilbertIndex(wind.v)
    u_hi = float(wind.u.value_range.hi)
    result = conjunctive_query([u_index, v_index],
                               [(8.0, u_hi), (-3.0, 3.0)])
    print(f"\nwesterly corridor (u >= 8 m/s, |v| <= 3 m/s): "
          f"{result.common_cells} cells, area {result.area:.1f} "
          f"({result.io.page_reads} pages for the conjunction)")


if __name__ == "__main__":
    main()

"""The paper's urban-noise scenario on a TIN.

Section 1: "Find regions where the noise level is higher than 80 dB".
This example builds the Lyon-like synthetic noise TIN (the Fig. 8b
workload), indexes it with all three methods, answers the one-sided
query, and reports the noisy area and the per-method I/O.

Run:  python examples/urban_noise.py
"""

from repro import (
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    ValueQuery,
)
from repro.synth import lyon_like


def main() -> None:
    tin = lyon_like(num_sites=2000, seed=69003)
    vr = tin.value_range
    xmin, ymin, xmax, ymax = tin.bounds
    district_area = (xmax - xmin) * (ymax - ymin)
    print(f"noise TIN: {tin.num_cells} triangles over a "
          f"{xmax - xmin:.0f} m x {ymax - ymin:.0f} m district")
    print(f"noise levels: {vr.lo:.1f}..{vr.hi:.1f} dB")

    # One-sided query, clamped to the field's value range.
    query = ValueQuery.at_least(80.0, vr.hi)
    print(f"\nquery: noise level >= {query.lo:.0f} dB")

    print(f"{'method':>12} {'candidates':>11} {'noisy m²':>12} "
          f"{'pages':>6} {'random':>7}")
    noisy_area = None
    for method_cls in (LinearScanIndex, IAllIndex, IHilbertIndex):
        index = method_cls(tin)
        result = index.query(query)
        noisy_area = result.area
        print(f"{index.name:>12} {result.candidate_count:>11} "
              f"{result.area:>12.0f} {result.io.page_reads:>6} "
              f"{result.io.random_reads:>7}")

    print(f"\n~{noisy_area:.0f} m² ({noisy_area / district_area:.2%} of "
          f"the district) exceeds 80 dB.")

    # Exact polygonal noise map pieces for the worst hotspots.
    index = IHilbertIndex(tin)
    hotspots = index.query(ValueQuery.at_least(min(90.0, vr.hi - 0.1),
                                               vr.hi),
                           estimate="regions").regions
    print(f"hotspots over 90 dB: {len(hotspots)} polygon(s)")
    for region in hotspots[:5]:
        x = sum(p[0] for p in region.polygon) / len(region.polygon)
        y = sum(p[1] for p in region.polygon) / len(region.polygon)
        print(f"  triangle {region.cell_id:>5} near "
              f"({x:7.1f}, {y:7.1f}): {region.area:8.1f} m²")


if __name__ == "__main__":
    main()

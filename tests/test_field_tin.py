"""Unit tests for TINField."""

import numpy as np
import pytest

from repro.field import TINField
from repro.geometry import Interval

SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_VALUES = np.array([10.0, 20.0, 30.0, 40.0])
SQUARE_TRIS = np.array([[0, 1, 2], [0, 2, 3]])


def make_square():
    return TINField(SQUARE, SQUARE_VALUES, SQUARE_TRIS)


def test_validation_errors():
    with pytest.raises(ValueError):
        TINField(np.zeros((3, 3)), np.zeros(3))
    with pytest.raises(ValueError):
        TINField(SQUARE, np.zeros(3), SQUARE_TRIS)
    with pytest.raises(ValueError):
        TINField(SQUARE, SQUARE_VALUES, np.array([[0, 1, 9]]))
    with pytest.raises(ValueError):
        TINField(SQUARE, SQUARE_VALUES, np.zeros((0, 3), dtype=int))
    with pytest.raises(ValueError):
        TINField(SQUARE, SQUARE_VALUES, np.array([[0, 1]]))


def test_auto_triangulation():
    field = TINField(SQUARE, SQUARE_VALUES)
    assert field.num_cells == 2


def test_structure():
    field = make_square()
    assert field.num_cells == 2
    assert field.value_range == Interval(10.0, 40.0)
    assert field.bounds == (0.0, 0.0, 1.0, 1.0)


def test_cell_intervals():
    field = make_square()
    assert field.cell_interval(0) == Interval(10.0, 30.0)
    assert field.cell_interval(1) == Interval(10.0, 40.0)


def test_records_inline_geometry():
    field = make_square()
    rec = field.cell_records()[0]
    assert rec["cell_id"] == 0
    assert tuple(rec["vs"]) == (10.0, 20.0, 30.0)
    assert tuple(rec["xs"]) == (0.0, 1.0, 1.0)
    assert tuple(rec["ys"]) == (0.0, 0.0, 1.0)


def test_centroids():
    field = make_square()
    centroids = field.cell_centroids()
    assert centroids.shape == (2, 2)
    assert tuple(centroids[0]) == pytest.approx((2.0 / 3.0, 1.0 / 3.0))


def test_value_at_vertices_and_interior():
    field = make_square()
    assert field.value_at(0.0, 0.0) == pytest.approx(10.0)
    assert field.value_at(1.0, 1.0) == pytest.approx(30.0)
    # Centroid of triangle 0 is the mean of its vertex values.
    assert field.value_at(2.0 / 3.0, 1.0 / 3.0) == pytest.approx(20.0)


def test_value_at_outside_raises():
    field = make_square()
    with pytest.raises(ValueError):
        field.value_at(2.0, 2.0)
    assert field.locate_cell(2.0, 2.0) == -1


def test_estimate_area_full_range():
    field = make_square()
    records = field.cell_records()
    assert TINField.estimate_area(records, 10.0, 40.0) == pytest.approx(1.0)


def test_estimate_area_complement():
    field = make_square()
    records = field.cell_records()
    low = TINField.estimate_area(records, 10.0, 25.0)
    high = TINField.estimate_area(records, 25.0, 40.0)
    assert low + high == pytest.approx(1.0)


def test_estimate_area_empty():
    field = make_square()
    records = field.cell_records()
    assert TINField.estimate_area(records[:0], 0.0, 1.0) == 0.0
    assert TINField.estimate_area(records, 100.0, 200.0) == 0.0


def test_record_triangles_single():
    field = make_square()
    triangles = TINField.record_triangles(field.cell_records()[1])
    assert len(triangles) == 1
    points, values = triangles[0]
    assert values == [10.0, 30.0, 40.0]


def test_record_mbrs():
    field = make_square()
    mbrs = TINField.record_mbrs(field.cell_records())
    assert tuple(mbrs[0]) == (0.0, 0.0, 1.0, 1.0)


def test_smooth_tin_fixture(small_tin):
    assert small_tin.num_cells > 100
    records = small_tin.cell_records()
    full = TINField.estimate_area(records, small_tin.value_range.lo,
                                  small_tin.value_range.hi)
    from scipy.spatial import ConvexHull
    assert full == pytest.approx(ConvexHull(small_tin.points).volume,
                                 rel=1e-3)

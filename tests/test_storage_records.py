"""Unit and property tests for the fixed-size RecordStore."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DiskManager, RecordStore

DTYPE = np.dtype([("key", np.int64), ("value", np.float64)])


def make_store(page_size=80, cache_pages=0):
    # 80-byte pages leave 64 usable bytes after the 16-byte frame
    # header: 4 of the 16-byte test records per page.
    disk = DiskManager(page_size=page_size)
    return RecordStore(disk, DTYPE, cache_pages=cache_pages)


def test_records_per_page_from_usable_page_size():
    store = make_store(page_size=80)
    assert store.disk.usable_page_size == 64
    assert store.records_per_page == 4   # 16-byte records


def test_record_too_large_rejected():
    disk = DiskManager(page_size=24)   # 8 usable bytes < one record
    with pytest.raises(ValueError):
        RecordStore(disk, DTYPE)


def test_append_returns_sequential_rids():
    store = make_store()
    assert store.append((1, 1.0)) == 0
    assert store.append((2, 2.0)) == 1
    assert len(store) == 2


def test_get_roundtrip():
    store = make_store()
    store.append((7, 3.5))
    rec = store.get(0)
    assert rec["key"] == 7
    assert rec["value"] == 3.5


def test_get_out_of_range():
    store = make_store()
    with pytest.raises(IndexError):
        store.get(0)
    store.append((1, 1.0))
    with pytest.raises(IndexError):
        store.get(1)
    with pytest.raises(IndexError):
        store.get(-1)


def test_partial_page_then_fill_reuses_page():
    store = make_store(page_size=80)   # 4 records per page
    store.append((0, 0.0))
    assert store.num_pages == 1
    for k in range(1, 4):
        store.append((k, float(k)))
    # The page was filled in place, not duplicated.
    assert store.num_pages == 1
    store.append((4, 4.0))
    assert store.num_pages == 2
    assert [int(store.get(i)["key"]) for i in range(5)] == [0, 1, 2, 3, 4]


def test_extend_bulk_matches_appends():
    a = make_store()
    b = make_store()
    rows = [(k, k * 0.5) for k in range(23)]
    for row in rows:
        a.append(row)
    rids = b.extend(np.array(rows, dtype=DTYPE))
    assert rids == range(0, 23)
    for i in range(23):
        assert a.get(i) == b.get(i)


def test_extend_after_partial_tail():
    store = make_store(page_size=80)
    store.append((100, 1.0))
    store.extend(np.array([(k, 0.0) for k in range(10)], dtype=DTYPE))
    assert len(store) == 11
    assert int(store.get(0)["key"]) == 100
    assert [int(store.get(i)["key"]) for i in range(1, 11)] == list(range(10))


def test_read_page_contents_and_lengths():
    store = make_store(page_size=80)
    store.extend(np.array([(k, 0.0) for k in range(6)], dtype=DTYPE))
    assert len(store.read_page(0)) == 4
    assert len(store.read_page(1)) == 2
    assert list(store.read_page(1)["key"]) == [4, 5]


def test_read_page_out_of_range():
    store = make_store()
    with pytest.raises(IndexError):
        store.read_page(0)


def test_scan_visits_all_records_in_order():
    store = make_store(page_size=80)
    store.extend(np.array([(k, 0.0) for k in range(13)], dtype=DTYPE))
    seen = [int(k) for page in store.scan() for k in page["key"]]
    assert seen == list(range(13))


def test_scan_is_sequential_io():
    store = make_store(page_size=80)
    store.extend(np.array([(k, 0.0) for k in range(16)], dtype=DTYPE))
    store.disk.stats.reset()
    store.disk.reset_head()
    list(store.scan())
    assert store.disk.stats.random_reads == 1
    assert store.disk.stats.sequential_reads == 3


def test_read_range_inclusive():
    store = make_store(page_size=80)
    store.extend(np.array([(k, 0.0) for k in range(12)], dtype=DTYPE))
    block = store.read_range(3, 9)
    assert list(block["key"]) == list(range(3, 10))


def test_read_range_single_record():
    store = make_store(page_size=80)
    store.extend(np.array([(k, 0.0) for k in range(5)], dtype=DTYPE))
    assert list(store.read_range(2, 2)["key"]) == [2]


def test_read_range_empty_when_inverted():
    store = make_store(page_size=80)
    store.append((0, 0.0))
    assert len(store.read_range(1, 0)) == 0


def test_read_range_out_of_bounds():
    store = make_store(page_size=80)
    store.append((0, 0.0))
    with pytest.raises(IndexError):
        store.read_range(0, 1)


def test_read_range_mid_page_boundaries():
    # 4 records per page: rids 5..14 start mid-page 1 and end mid-page 3.
    # The first and last page slices must be trimmed before the
    # concatenate, so no neighbouring record leaks in at either edge.
    store = make_store(page_size=80)
    store.extend(np.array([(k, float(k)) for k in range(20)], dtype=DTYPE))
    block = store.read_range(5, 14)
    assert list(block["key"]) == list(range(5, 15))
    assert len(block) == 10
    # Whole-page interior slices are untouched by the trimming.
    assert list(store.read_range(4, 11)["key"]) == list(range(4, 12))
    # Start and end inside the same page.
    assert list(store.read_range(9, 10)["key"]) == [9, 10]
    # End lands on the partially filled tail page.
    assert list(store.read_range(14, 19)["key"]) == list(range(14, 20))


def test_read_range_reads_each_page_once():
    store = make_store(page_size=80)
    store.extend(np.array([(k, 0.0) for k in range(20)], dtype=DTYPE))
    store.disk.stats.reset()
    store.disk.reset_head()
    store.read_range(5, 14)   # pages 1..3
    assert store.disk.stats.page_reads == 3


def test_page_ids_are_contiguous_for_burst_build():
    store = make_store(page_size=80)
    store.extend(np.array([(k, 0.0) for k in range(20)], dtype=DTYPE))
    ids = store.page_ids
    assert list(ids) == list(range(ids[0], ids[0] + len(ids)))


def test_cache_pages_serve_hits():
    store = make_store(page_size=80, cache_pages=2)
    store.extend(np.array([(k, 0.0) for k in range(4)], dtype=DTYPE))
    store.disk.stats.reset()
    store.read_page(0)
    store.read_page(0)
    assert store.disk.stats.page_reads == 1
    assert store.disk.stats.cache_hits == 1


def test_randomized_roundtrip_through_checksum_frames():
    """Seeded random workloads survive a full frame serialize/restore.

    Every page of a randomly grown store is exported as its on-disk
    frame (header + checksum + payload) and re-imported into a fresh
    disk; records must come back bit-identical, including the
    partially-filled tail page.
    """
    import random

    rng = random.Random(1234)
    for _round in range(20):
        store = make_store(page_size=80)
        count = rng.randrange(0, 30)
        rows = [(rng.randrange(-2**40, 2**40), rng.random())
                for _ in range(count)]
        for row in rows:
            if rng.random() < 0.5:
                store.append(row)
            else:
                store.extend(np.array([row], dtype=DTYPE))
        restored = DiskManager(page_size=80)
        for pid in range(store.disk.num_pages):
            restored.allocate()
            restored.store_frame(pid, store.disk.frame_bytes(pid))
        for page_no, page_id in enumerate(store.page_ids):
            n = len(store.read_page(page_no))
            got = np.frombuffer(restored.read(page_id), dtype=DTYPE,
                                count=n)
            expected = np.array(rows[page_no * 4:page_no * 4 + n],
                                dtype=DTYPE)
            assert (got == expected).all()


def test_roundtrip_edge_cases_max_payload_and_empty_page():
    # Max payload: a completely full page uses every usable byte.
    store = make_store(page_size=80)
    store.extend(np.array([(k, float(k)) for k in range(4)], dtype=DTYPE))
    assert store.num_pages == 1
    frame = store.disk.frame_bytes(store.page_ids[0])
    restored = DiskManager(page_size=80)
    restored.allocate()
    restored.store_frame(0, frame)
    back = np.frombuffer(restored.read(0), dtype=DTYPE, count=4)
    assert list(back["key"]) == [0, 1, 2, 3]
    # Empty page: an allocated-but-unwritten page round-trips as zeros.
    empty_disk = DiskManager(page_size=80)
    pid = empty_disk.allocate()
    restored2 = DiskManager(page_size=80)
    restored2.allocate()
    restored2.store_frame(0, empty_disk.frame_bytes(pid))
    assert restored2.read(0) == bytes(64)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 10), min_size=1, max_size=30))
def test_property_mixed_appends_match_reference(batch_sizes):
    """Arbitrary append/extend interleavings reproduce the flat list."""
    store = make_store(page_size=80)
    reference = []
    key = 0
    for size in batch_sizes:
        if size == 0:
            store.append((key, float(key)))
            reference.append(key)
            key += 1
        else:
            rows = [(key + i, float(key + i)) for i in range(size)]
            store.extend(np.array(rows, dtype=DTYPE))
            reference.extend(k for k, _v in rows)
            key += size
    assert len(store) == len(reference)
    seen = [int(k) for page in store.scan() for k in page["key"]]
    assert seen == reference
    # Random access agrees as well.
    for rid in range(0, len(reference), 7):
        assert int(store.get(rid)["key"]) == reference[rid]

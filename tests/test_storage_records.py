"""Unit and property tests for the fixed-size RecordStore."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DiskManager, RecordStore

DTYPE = np.dtype([("key", np.int64), ("value", np.float64)])


def make_store(page_size=64, cache_pages=0):
    disk = DiskManager(page_size=page_size)
    return RecordStore(disk, DTYPE, cache_pages=cache_pages)


def test_records_per_page_from_page_size():
    store = make_store(page_size=64)
    assert store.records_per_page == 4   # 16-byte records


def test_record_too_large_rejected():
    disk = DiskManager(page_size=8)
    with pytest.raises(ValueError):
        RecordStore(disk, DTYPE)


def test_append_returns_sequential_rids():
    store = make_store()
    assert store.append((1, 1.0)) == 0
    assert store.append((2, 2.0)) == 1
    assert len(store) == 2


def test_get_roundtrip():
    store = make_store()
    store.append((7, 3.5))
    rec = store.get(0)
    assert rec["key"] == 7
    assert rec["value"] == 3.5


def test_get_out_of_range():
    store = make_store()
    with pytest.raises(IndexError):
        store.get(0)
    store.append((1, 1.0))
    with pytest.raises(IndexError):
        store.get(1)
    with pytest.raises(IndexError):
        store.get(-1)


def test_partial_page_then_fill_reuses_page():
    store = make_store(page_size=64)   # 4 records per page
    store.append((0, 0.0))
    assert store.num_pages == 1
    for k in range(1, 4):
        store.append((k, float(k)))
    # The page was filled in place, not duplicated.
    assert store.num_pages == 1
    store.append((4, 4.0))
    assert store.num_pages == 2
    assert [int(store.get(i)["key"]) for i in range(5)] == [0, 1, 2, 3, 4]


def test_extend_bulk_matches_appends():
    a = make_store()
    b = make_store()
    rows = [(k, k * 0.5) for k in range(23)]
    for row in rows:
        a.append(row)
    rids = b.extend(np.array(rows, dtype=DTYPE))
    assert rids == range(0, 23)
    for i in range(23):
        assert a.get(i) == b.get(i)


def test_extend_after_partial_tail():
    store = make_store(page_size=64)
    store.append((100, 1.0))
    store.extend(np.array([(k, 0.0) for k in range(10)], dtype=DTYPE))
    assert len(store) == 11
    assert int(store.get(0)["key"]) == 100
    assert [int(store.get(i)["key"]) for i in range(1, 11)] == list(range(10))


def test_read_page_contents_and_lengths():
    store = make_store(page_size=64)
    store.extend(np.array([(k, 0.0) for k in range(6)], dtype=DTYPE))
    assert len(store.read_page(0)) == 4
    assert len(store.read_page(1)) == 2
    assert list(store.read_page(1)["key"]) == [4, 5]


def test_read_page_out_of_range():
    store = make_store()
    with pytest.raises(IndexError):
        store.read_page(0)


def test_scan_visits_all_records_in_order():
    store = make_store(page_size=64)
    store.extend(np.array([(k, 0.0) for k in range(13)], dtype=DTYPE))
    seen = [int(k) for page in store.scan() for k in page["key"]]
    assert seen == list(range(13))


def test_scan_is_sequential_io():
    store = make_store(page_size=64)
    store.extend(np.array([(k, 0.0) for k in range(16)], dtype=DTYPE))
    store.disk.stats.reset()
    store.disk.reset_head()
    list(store.scan())
    assert store.disk.stats.random_reads == 1
    assert store.disk.stats.sequential_reads == 3


def test_read_range_inclusive():
    store = make_store(page_size=64)
    store.extend(np.array([(k, 0.0) for k in range(12)], dtype=DTYPE))
    block = store.read_range(3, 9)
    assert list(block["key"]) == list(range(3, 10))


def test_read_range_single_record():
    store = make_store(page_size=64)
    store.extend(np.array([(k, 0.0) for k in range(5)], dtype=DTYPE))
    assert list(store.read_range(2, 2)["key"]) == [2]


def test_read_range_empty_when_inverted():
    store = make_store(page_size=64)
    store.append((0, 0.0))
    assert len(store.read_range(1, 0)) == 0


def test_read_range_out_of_bounds():
    store = make_store(page_size=64)
    store.append((0, 0.0))
    with pytest.raises(IndexError):
        store.read_range(0, 1)


def test_page_ids_are_contiguous_for_burst_build():
    store = make_store(page_size=64)
    store.extend(np.array([(k, 0.0) for k in range(20)], dtype=DTYPE))
    ids = store.page_ids
    assert list(ids) == list(range(ids[0], ids[0] + len(ids)))


def test_cache_pages_serve_hits():
    store = make_store(page_size=64, cache_pages=2)
    store.extend(np.array([(k, 0.0) for k in range(4)], dtype=DTYPE))
    store.disk.stats.reset()
    store.read_page(0)
    store.read_page(0)
    assert store.disk.stats.page_reads == 1
    assert store.disk.stats.cache_hits == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 10), min_size=1, max_size=30))
def test_property_mixed_appends_match_reference(batch_sizes):
    """Arbitrary append/extend interleavings reproduce the flat list."""
    store = make_store(page_size=64)
    reference = []
    key = 0
    for size in batch_sizes:
        if size == 0:
            store.append((key, float(key)))
            reference.append(key)
            key += 1
        else:
            rows = [(key + i, float(key + i)) for i in range(size)]
            store.extend(np.array(rows, dtype=DTYPE))
            reference.extend(k for k, _v in rows)
            key += size
    assert len(store) == len(reference)
    seen = [int(k) for page in store.scan() for k in page["key"]]
    assert seen == reference
    # Random access agrees as well.
    for rid in range(0, len(reference), 7):
        assert int(store.get(rid)["key"]) == reference[rid]

"""Unit tests for the simulated disk (DiskManager)."""

import pytest

from repro.storage import DiskManager, IOStats, PAGE_SIZE, PageError


def test_allocate_returns_consecutive_ids():
    disk = DiskManager()
    assert disk.allocate() == 0
    assert disk.allocate() == 1
    assert disk.num_pages == 2


def test_allocate_many_contiguous():
    disk = DiskManager()
    first = disk.allocate_many(5)
    assert first == 0
    assert disk.num_pages == 5
    assert disk.allocate() == 5


def test_allocate_many_negative_raises():
    disk = DiskManager()
    with pytest.raises(PageError):
        disk.allocate_many(-1)


def test_new_page_is_zeroed():
    disk = DiskManager()
    pid = disk.allocate()
    assert disk.read(pid) == bytes(PAGE_SIZE)


def test_write_read_roundtrip():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, b"hello")
    data = disk.read(pid)
    assert data[:5] == b"hello"
    assert len(data) == PAGE_SIZE


def test_short_write_zero_padded():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, b"x")
    assert disk.read(pid)[1:] == bytes(PAGE_SIZE - 1)


def test_oversized_write_raises():
    disk = DiskManager()
    pid = disk.allocate()
    with pytest.raises(PageError):
        disk.write(pid, bytes(PAGE_SIZE + 1))


def test_out_of_range_read_raises():
    disk = DiskManager()
    with pytest.raises(PageError):
        disk.read(0)
    disk.allocate()
    with pytest.raises(PageError):
        disk.read(1)
    with pytest.raises(PageError):
        disk.read(-1)


def test_first_read_is_random():
    disk = DiskManager()
    disk.allocate()
    disk.read(0)
    assert disk.stats.random_reads == 1
    assert disk.stats.sequential_reads == 0


def test_consecutive_reads_are_sequential():
    disk = DiskManager()
    disk.allocate_many(4)
    for pid in range(4):
        disk.read(pid)
    assert disk.stats.random_reads == 1
    assert disk.stats.sequential_reads == 3
    assert disk.stats.skipped_pages == 0


def test_backward_read_is_random():
    disk = DiskManager()
    disk.allocate_many(3)
    disk.read(2)
    disk.read(0)
    assert disk.stats.random_reads == 2


def test_rereading_same_page_is_random():
    disk = DiskManager()
    disk.allocate()
    disk.read(0)
    disk.read(0)
    # The head moved past page 0; re-reading costs a full rotation/seek.
    assert disk.stats.random_reads == 2


def test_near_seek_counts_sequential_with_skips():
    disk = DiskManager(near_window=4)
    disk.allocate_many(10)
    disk.read(0)
    disk.read(3)   # gap of 2 pages, within window
    assert disk.stats.sequential_reads == 1
    assert disk.stats.skipped_pages == 2
    disk.read(9)   # gap of 5 pages, outside window
    assert disk.stats.random_reads == 2


def test_near_window_zero_is_strict():
    disk = DiskManager(near_window=0)
    disk.allocate_many(4)
    disk.read(0)
    disk.read(1)
    disk.read(3)
    assert disk.stats.sequential_reads == 1
    assert disk.stats.random_reads == 2


def test_reset_head_makes_next_read_random():
    disk = DiskManager()
    disk.allocate_many(2)
    disk.read(0)
    disk.reset_head()
    disk.read(1)
    assert disk.stats.random_reads == 2


def test_shared_stats_aggregate_across_files():
    stats = IOStats()
    a = DiskManager(stats=stats, name="a")
    b = DiskManager(stats=stats, name="b")
    a.allocate()
    b.allocate()
    a.read(0)
    b.read(0)
    assert stats.page_reads == 2


def test_write_counts():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, b"d")
    assert disk.stats.page_writes == 1
    assert disk.stats.pages_allocated == 1


def test_custom_page_size():
    disk = DiskManager(page_size=64)
    pid = disk.allocate()
    disk.write(pid, bytes(64))
    assert len(disk.read(pid)) == 64
    with pytest.raises(PageError):
        disk.write(pid, bytes(65))

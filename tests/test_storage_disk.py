"""Unit tests for the simulated disk (DiskManager)."""

import pytest

from repro.storage import (
    DiskManager,
    IOStats,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
    PageError,
)

#: Payload capacity of a default page (the frame header takes the rest).
USABLE = PAGE_SIZE - PAGE_HEADER_SIZE


def test_allocate_returns_consecutive_ids():
    disk = DiskManager()
    assert disk.allocate() == 0
    assert disk.allocate() == 1
    assert disk.num_pages == 2


def test_allocate_many_contiguous():
    disk = DiskManager()
    first = disk.allocate_many(5)
    assert first == 0
    assert disk.num_pages == 5
    assert disk.allocate() == 5


def test_allocate_many_negative_raises():
    disk = DiskManager()
    with pytest.raises(PageError):
        disk.allocate_many(-1)


def test_usable_page_size_accounts_for_header():
    disk = DiskManager()
    assert disk.usable_page_size == USABLE
    assert disk.usable_page_size + PAGE_HEADER_SIZE == disk.page_size


def test_new_page_is_zeroed():
    disk = DiskManager()
    pid = disk.allocate()
    assert disk.read(pid) == bytes(USABLE)


def test_write_read_roundtrip():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, b"hello")
    data = disk.read(pid)
    assert data[:5] == b"hello"
    assert len(data) == USABLE


def test_short_write_zero_padded():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, b"x")
    assert disk.read(pid)[1:] == bytes(USABLE - 1)


def test_oversized_write_raises():
    disk = DiskManager()
    pid = disk.allocate()
    with pytest.raises(PageError):
        disk.write(pid, bytes(USABLE + 1))


def test_tiny_page_size_rejected():
    # A page must leave payload room after the frame header.
    with pytest.raises(PageError):
        DiskManager(page_size=PAGE_HEADER_SIZE)


def test_out_of_range_read_raises():
    disk = DiskManager()
    with pytest.raises(PageError):
        disk.read(0)
    disk.allocate()
    with pytest.raises(PageError):
        disk.read(1)
    with pytest.raises(PageError):
        disk.read(-1)


def test_first_read_is_random():
    disk = DiskManager()
    disk.allocate()
    disk.read(0)
    assert disk.stats.random_reads == 1
    assert disk.stats.sequential_reads == 0


def test_consecutive_reads_are_sequential():
    disk = DiskManager()
    disk.allocate_many(4)
    for pid in range(4):
        disk.read(pid)
    assert disk.stats.random_reads == 1
    assert disk.stats.sequential_reads == 3
    assert disk.stats.skipped_pages == 0


def test_backward_read_is_random():
    disk = DiskManager()
    disk.allocate_many(3)
    disk.read(2)
    disk.read(0)
    assert disk.stats.random_reads == 2


def test_rereading_same_page_is_random():
    disk = DiskManager()
    disk.allocate()
    disk.read(0)
    disk.read(0)
    # The head moved past page 0; re-reading costs a full rotation/seek.
    assert disk.stats.random_reads == 2


def test_near_seek_counts_sequential_with_skips():
    disk = DiskManager(near_window=4)
    disk.allocate_many(10)
    disk.read(0)
    disk.read(3)   # gap of 2 pages, within window
    assert disk.stats.sequential_reads == 1
    assert disk.stats.skipped_pages == 2
    disk.read(9)   # gap of 5 pages, outside window
    assert disk.stats.random_reads == 2


def test_near_window_zero_is_strict():
    disk = DiskManager(near_window=0)
    disk.allocate_many(4)
    disk.read(0)
    disk.read(1)
    disk.read(3)
    assert disk.stats.sequential_reads == 1
    assert disk.stats.random_reads == 2


def test_reset_head_makes_next_read_random():
    disk = DiskManager()
    disk.allocate_many(2)
    disk.read(0)
    disk.reset_head()
    disk.read(1)
    assert disk.stats.random_reads == 2


def test_shared_stats_aggregate_across_files():
    stats = IOStats()
    a = DiskManager(stats=stats, name="a")
    b = DiskManager(stats=stats, name="b")
    a.allocate()
    b.allocate()
    a.read(0)
    b.read(0)
    assert stats.page_reads == 2


def test_write_counts():
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, b"d")
    assert disk.stats.page_writes == 1
    assert disk.stats.pages_allocated == 1


# -- checksum framing -------------------------------------------------------


def test_read_returns_stored_object_without_copying():
    # The no-fault read path must not allocate per read: the very bytes
    # object stored by write comes back on every read.
    disk = DiskManager()
    pid = disk.allocate()
    disk.write(pid, b"payload")
    assert disk.read(pid) is disk.read(pid)


def test_frame_roundtrip_preserves_payload_and_length():
    disk = DiskManager(page_size=80)
    pid = disk.allocate()
    disk.write(pid, b"abcdef")
    frame = disk.frame_bytes(pid)
    assert len(frame) == 80
    other = DiskManager(page_size=80)
    other.allocate()
    other.store_frame(0, frame)
    assert other.read(0) == disk.read(pid)
    assert other._lens[0] == 6


def test_frame_roundtrip_max_payload():
    disk = DiskManager(page_size=80)
    pid = disk.allocate()
    payload = bytes(range(64))
    disk.write(pid, payload)
    other = DiskManager(page_size=80)
    other.allocate()
    other.store_frame(0, disk.frame_bytes(pid))
    assert other.read(0) == payload


def test_frame_roundtrip_empty_page():
    # A never-written (all-zero) page frames and restores cleanly.
    disk = DiskManager(page_size=80)
    pid = disk.allocate()
    other = DiskManager(page_size=80)
    other.allocate()
    other.store_frame(0, disk.frame_bytes(pid))
    assert other.read(0) == bytes(64)
    assert other._lens[0] == 0


def test_store_frame_rejects_corrupted_payload():
    from repro.storage import CorruptPageError
    disk = DiskManager(page_size=80)
    pid = disk.allocate()
    disk.write(pid, b"good bytes")
    frame = bytearray(disk.frame_bytes(pid))
    frame[-1] ^= 0xFF   # damage the payload, keep the header
    other = DiskManager(page_size=80)
    other.allocate()
    with pytest.raises(CorruptPageError):
        other.store_frame(0, bytes(frame))


def test_store_frame_rejects_bad_magic():
    from repro.storage import CorruptPageError
    disk = DiskManager(page_size=80)
    disk.allocate()
    with pytest.raises(CorruptPageError):
        disk.store_frame(0, bytes(80))


def test_bit_flip_on_stored_page_raises_on_read():
    from repro.storage import CorruptPageError
    disk = DiskManager(page_size=80)
    pid = disk.allocate()
    disk.write(pid, b"important")
    disk._flip_bit(pid, byte_index=3, bit=5)
    with pytest.raises(CorruptPageError):
        disk.read(pid)
    assert disk.stats.checksum_failures == 1
    # The failed transfer still moved the head: the read was accounted.
    assert disk.stats.page_reads == 1


def test_verify_page_is_unaccounted():
    disk = DiskManager(page_size=80)
    pid = disk.allocate()
    disk.write(pid, b"x")
    reads_before = disk.stats.page_reads
    assert disk.verify_page(pid)
    disk._flip_bit(pid, 0, 0)
    assert not disk.verify_page(pid)
    assert disk.stats.page_reads == reads_before


def test_custom_page_size():
    disk = DiskManager(page_size=80)
    assert disk.usable_page_size == 64
    pid = disk.allocate()
    disk.write(pid, bytes(64))
    assert len(disk.read(pid)) == 64
    with pytest.raises(PageError):
        disk.write(pid, bytes(65))

"""Unit tests for the synthetic data and workload generators."""

import numpy as np
import pytest

from repro.geometry import Interval
from repro.synth import (
    diamond_square,
    fractal_dem_heights,
    lyon_like,
    monotonic_field,
    monotonic_heights,
    noise_level,
    roseburg_like,
    value_query_workload,
)


def test_diamond_square_shape():
    grid = diamond_square(4, 0.5, seed=0)
    assert grid.shape == (17, 17)


def test_diamond_square_deterministic_by_seed():
    a = diamond_square(4, 0.5, seed=42)
    b = diamond_square(4, 0.5, seed=42)
    c = diamond_square(4, 0.5, seed=43)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_diamond_square_roughness_ordering():
    """Higher H (paper §4.2) yields a smoother surface."""
    def roughness(grid):
        span = grid.max() - grid.min()
        return np.abs(np.diff(grid, axis=0)).mean() / span

    rough = diamond_square(5, 0.1, seed=1)
    smooth = diamond_square(5, 0.9, seed=1)
    assert roughness(smooth) < roughness(rough)


def test_diamond_square_validation():
    with pytest.raises(ValueError):
        diamond_square(0, 0.5)
    with pytest.raises(ValueError):
        diamond_square(4, 1.5)
    with pytest.raises(ValueError):
        diamond_square(4, -0.1)


def test_fractal_dem_heights_power_of_two_unchanged():
    grid = fractal_dem_heights(32, 0.5, seed=0)
    assert grid.shape == (33, 33)
    # A power-of-two size is the direct diamond-square grid, bit for bit.
    assert np.array_equal(grid, diamond_square(5, 0.5, seed=0))


def test_fractal_dem_heights_any_size():
    # Non-power-of-two sizes crop the next power-of-two generation.
    grid = fractal_dem_heights(48, 0.5, seed=0)
    assert grid.shape == (49, 49)
    assert np.array_equal(grid, diamond_square(6, 0.5, seed=0)[:49, :49])
    with pytest.raises(ValueError):
        fractal_dem_heights(0, 0.5)


def test_monotonic_heights():
    grid = monotonic_heights(4)
    assert grid.shape == (5, 5)
    assert grid[0, 0] == 0.0
    assert grid[4, 4] == 8.0
    assert grid[2, 3] == 5.0
    with pytest.raises(ValueError):
        monotonic_heights(0)


def test_monotonic_field_range():
    field = monotonic_field(16)
    assert field.value_range == Interval(0.0, 32.0)
    assert field.num_cells == 256


def test_lyon_like_triangle_count():
    tin = lyon_like(num_sites=600, seed=1)
    # Delaunay of n random sites has ~2n triangles.
    assert 1000 <= tin.num_cells <= 1250


def test_lyon_like_db_range_plausible():
    tin = lyon_like(num_sites=400, seed=2)
    vr = tin.value_range
    # Urban noise: between ambient (35 dB) and loud sources (~110 dB).
    assert 35.0 <= vr.lo <= 80.0
    assert 60.0 <= vr.hi <= 115.0


def test_lyon_like_validation():
    with pytest.raises(ValueError):
        lyon_like(num_sites=2)


def test_noise_level_decays_from_sources():
    # Noise at many random spots must vary (sources create hotspots).
    rng = np.random.default_rng(0)
    xs = rng.uniform(0, 2000, 200)
    ys = rng.uniform(0, 2000, 200)
    levels = noise_level(xs, ys, seed=3)
    assert levels.std() > 1.0


def test_roseburg_like_range_and_size():
    field = roseburg_like(cells_per_side=64)
    assert field.num_cells == 64 * 64
    assert field.value_range.lo == pytest.approx(100.0)
    assert field.value_range.hi == pytest.approx(600.0)


def test_roseburg_like_deterministic():
    a = roseburg_like(cells_per_side=32)
    b = roseburg_like(cells_per_side=32)
    assert np.array_equal(a.heights, b.heights)


def test_workload_lengths_and_bounds():
    vr = Interval(100.0, 600.0)
    queries = value_query_workload(vr, 0.05, count=50, seed=1)
    assert len(queries) == 50
    for q in queries:
        assert q.length == pytest.approx(0.05 * 500.0)
        assert vr.lo <= q.lo and q.hi <= vr.hi + 1e-9


def test_workload_exact_queries():
    queries = value_query_workload(Interval(0.0, 10.0), 0.0, count=10)
    assert all(q.length == 0.0 for q in queries)


def test_workload_deterministic_by_seed():
    vr = Interval(0.0, 1.0)
    a = value_query_workload(vr, 0.1, count=5, seed=9)
    b = value_query_workload(vr, 0.1, count=5, seed=9)
    assert a == b


def test_workload_validation():
    vr = Interval(0.0, 1.0)
    with pytest.raises(ValueError):
        value_query_workload(vr, 1.5)
    with pytest.raises(ValueError):
        value_query_workload(vr, 0.1, count=0)

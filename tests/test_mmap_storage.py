"""Unit tests for the zero-copy mmap storage backend.

Covers the properties the list backend cannot express: read-only
``memoryview`` payloads, lazy batched checksum verification (good
neighbours verified in one sweep, a damaged page never silently
accepted), and map growth keeping previously exported views alive.
Behavioural parity under faults is covered by the backend-parametrized
``test_storage_faults.py`` matrix.
"""

import numpy as np
import pytest

from repro.storage import (
    CorruptPageError,
    DiskManager,
    FaultInjector,
    MmapDiskManager,
    RetryingMmapDiskManager,
    RetryPolicy,
    TransientIOError,
)


def _disk(page_size=80, **kw):
    return MmapDiskManager(page_size=page_size, **kw)


# -- zero-copy reads ---------------------------------------------------------


def test_read_returns_readonly_memoryview():
    disk = _disk()
    pid = disk.allocate()
    disk.write(pid, b"payload bytes")
    view = disk.read(pid)
    assert isinstance(view, memoryview)
    assert view.readonly
    assert bytes(view[:13]) == b"payload bytes"
    with pytest.raises(TypeError):
        view[0] = 0


def test_payload_matches_list_backend_bit_for_bit():
    mm, ls = _disk(), DiskManager(page_size=80)
    rng = np.random.default_rng(0)
    for _ in range(5):
        data = rng.integers(0, 256, size=40, dtype=np.uint8).tobytes()
        a, b = mm.allocate(), ls.allocate()
        assert a == b
        mm.write(a, data)
        ls.write(b, data)
    for pid in range(5):
        assert bytes(mm.read(pid)) == ls.read(pid)
        assert bytes(mm.page_payload(pid)) == ls.page_payload(pid)
        assert mm.frame_bytes(pid) == ls.frame_bytes(pid)


def test_views_feed_numpy_without_copy():
    disk = _disk(page_size=4096)
    pid = disk.allocate()
    values = np.arange(64, dtype="<f8")
    disk.write(pid, values.tobytes())
    view = disk.read(pid)
    decoded = np.frombuffer(view, dtype="<f8", count=64)
    assert np.array_equal(decoded, values)
    # The array aliases the map — zero copies happened.
    assert decoded.base is not None


def test_fresh_pages_read_as_zeros():
    disk = _disk()
    pid = disk.allocate()
    assert bytes(disk.read(pid)) == b"\x00" * disk.usable_page_size


def test_growth_keeps_existing_data_and_old_views_alive():
    disk = _disk()
    pid = disk.allocate()
    disk.write(pid, b"before growth")
    old_view = disk.read(pid)
    # Force a remap: exceed the current capacity.
    disk.allocate_many(disk._capacity)
    assert bytes(disk.read(pid)[:13]) == b"before growth"
    # The superseded map stays alive behind the exported view.
    assert bytes(old_view[:13]) == b"before growth"
    disk.write(pid, b"after growth!")
    assert bytes(disk.read(pid)[:13]) == b"after growth!"
    assert bytes(old_view[:13]) == b"before growth"


# -- lazy batched verification -----------------------------------------------


def test_corruption_in_a_burst_is_attributed_to_its_page():
    disk = _disk()
    disk.allocate_many(8)
    for pid in range(8):
        disk.write(pid, bytes([pid]) * 16)
    disk._flip_bit(3, byte_index=2, bit=6)
    # Reading page 0 sweeps the whole unverified run 0..7: the good
    # pages verify, the bad one does not, and no error is raised because
    # the *requested* page is fine.
    assert bytes(disk.read(0)[:16]) == bytes([0]) * 16
    assert bytes(disk._verified) == b"\x01\x01\x01\x00\x01\x01\x01\x01"
    # The damaged page itself always raises — lazy batching never
    # silently accepts it, no matter which reads surround it.
    for _ in range(2):
        with pytest.raises(CorruptPageError) as exc:
            disk.read(3)
        assert exc.value.page_id == 3
    assert disk.stats.checksum_failures == 2
    assert bytes(disk.read(4)[:16]) == bytes([4]) * 16


def test_write_clears_the_verified_flag():
    disk = _disk()
    pid = disk.allocate()
    disk.write(pid, b"first")
    disk.read(pid)
    assert disk._verified[pid] == 1
    disk.write(pid, b"second")
    assert disk._verified[pid] == 0
    assert bytes(disk.read(pid)[:6]) == b"second"


def test_burst_is_bounded():
    disk = _disk()
    n = MmapDiskManager.VERIFY_BURST + 10
    disk.allocate_many(n)
    disk.read(0)
    # One sweep verifies at most VERIFY_BURST pages; the tail stays lazy.
    assert sum(disk._verified) == MmapDiskManager.VERIFY_BURST
    disk.read(MmapDiskManager.VERIFY_BURST)
    assert sum(disk._verified) == n


def test_bad_header_is_detected():
    disk = _disk()
    pid = disk.allocate()
    disk.write(pid, b"payload")
    # Smash the frame magic, not the payload.
    disk._view[pid * disk.page_size] = 0xFF
    disk._verified[pid] = 0
    with pytest.raises(CorruptPageError) as exc:
        disk.read(pid)
    assert "header" in str(exc.value)


def test_verify_page_is_an_unaccounted_scrub():
    disk = _disk()
    pid = disk.allocate()
    disk.write(pid, b"scrub me")
    assert disk.verify_page(pid)
    disk._flip_bit(pid, byte_index=0, bit=0)
    assert not disk.verify_page(pid)
    assert disk.stats.page_reads == 0
    assert disk.stats.checksum_failures == 0


def test_store_frame_roundtrip_and_rejection():
    src = _disk()
    pid = src.allocate()
    src.write(pid, b"framed payload")
    frame = src.frame_bytes(pid)

    dst = _disk()
    dst.allocate()
    dst.store_frame(0, frame)
    assert bytes(dst.read(0)[:14]) == b"framed payload"

    bad = bytearray(frame)
    bad[-1] ^= 0x01          # corrupt the payload, keep the header
    with pytest.raises(CorruptPageError):
        dst.store_frame(0, bytes(bad))
    # Unverified install defers detection to the next read.
    dst.store_frame(0, bytes(bad), verify=False)
    with pytest.raises(CorruptPageError):
        dst.read(0)


# -- accounting parity -------------------------------------------------------


def test_stats_match_list_backend_exactly():
    def drive(disk):
        disk.allocate_many(12)
        for pid in range(12):
            disk.write(pid, bytes([pid]) * 8)
        for pid in [0, 1, 2, 7, 8, 11, 3, 4]:   # mixed seq/random
            disk.read(pid)
        return disk.stats

    mm, ls = drive(_disk()), drive(DiskManager(page_size=80))
    assert mm == ls or mm.__dict__ == ls.__dict__
    assert mm.page_reads == ls.page_reads
    assert mm.sequential_reads == ls.sequential_reads
    assert mm.random_reads == ls.random_reads
    assert mm.skipped_pages == ls.skipped_pages
    assert mm.page_writes == ls.page_writes
    assert mm.pages_allocated == ls.pages_allocated


def test_retrying_mmap_disk_cures_transients():
    disk = RetryingMmapDiskManager(
        page_size=80, retry_policy=RetryPolicy(max_attempts=3))
    pid = disk.allocate()
    disk.write(pid, b"still here")
    disk.fault_injector = FaultInjector(seed=0)
    disk.fault_injector.add("read_error", max_faults=1)
    assert bytes(disk.read(pid)[:10]) == b"still here"
    assert disk.stats.read_retries == 1
    disk.fault_injector = FaultInjector(seed=0)
    disk.fault_injector.add("read_error")
    with pytest.raises(TransientIOError):
        disk.read(pid)

"""Unit tests for IOStats counters."""

from repro.storage import IOStats


def test_reset_zeroes_everything():
    s = IOStats(page_reads=5, sequential_reads=2, random_reads=3,
                skipped_pages=4, page_writes=1, pages_allocated=9,
                cache_hits=7)
    s.reset()
    assert s == IOStats()


def test_snapshot_is_independent_copy():
    s = IOStats(page_reads=1)
    snap = s.snapshot()
    s.page_reads = 10
    assert snap.page_reads == 1


def test_diff_returns_deltas():
    s = IOStats(page_reads=10, random_reads=4, sequential_reads=6,
                skipped_pages=2, cache_hits=1)
    earlier = IOStats(page_reads=3, random_reads=1, sequential_reads=2,
                      skipped_pages=1)
    d = s.diff(earlier)
    assert d.page_reads == 7
    assert d.random_reads == 3
    assert d.sequential_reads == 4
    assert d.skipped_pages == 1
    assert d.cache_hits == 1


def test_simulated_cost_weights_random_higher():
    s = IOStats(random_reads=1, sequential_reads=10)
    assert s.simulated_cost() == 1.0 + 10 * 0.1


def test_simulated_cost_counts_skipped_as_sequential():
    s = IOStats(sequential_reads=1, skipped_pages=3)
    assert s.simulated_cost(random_read=1.0, sequential_read=0.1) == \
        (1 + 3) * 0.1


def test_simulated_cost_custom_weights():
    s = IOStats(random_reads=2, sequential_reads=4)
    assert s.simulated_cost(random_read=8.5, sequential_read=0.2) == \
        2 * 8.5 + 4 * 0.2

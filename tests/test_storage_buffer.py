"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage import BufferPool, DiskManager


def make_disk(pages=8):
    disk = DiskManager()
    for i in range(pages):
        pid = disk.allocate()
        disk.write(pid, bytes([i]) * 8)
    disk.stats.reset()
    disk.reset_head()
    return disk


def test_hit_avoids_disk_read():
    disk = make_disk()
    pool = BufferPool(disk, capacity=4)
    pool.read(0)
    assert disk.stats.page_reads == 1
    pool.read(0)
    assert disk.stats.page_reads == 1
    assert disk.stats.cache_hits == 1


def test_capacity_zero_disables_caching():
    disk = make_disk()
    pool = BufferPool(disk, capacity=0)
    pool.read(0)
    pool.read(0)
    assert disk.stats.page_reads == 2
    assert disk.stats.cache_hits == 0
    assert len(pool) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        BufferPool(make_disk(), capacity=-1)


def test_lru_eviction_order():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    pool.read(0)
    pool.read(1)
    pool.read(0)      # refresh page 0; page 1 is now LRU
    pool.read(2)      # evicts page 1
    disk.stats.reset()
    pool.read(0)
    assert disk.stats.cache_hits == 1
    pool.read(1)
    assert disk.stats.page_reads == 1   # page 1 was evicted


def test_capacity_bound_holds():
    disk = make_disk()
    pool = BufferPool(disk, capacity=3)
    for pid in range(8):
        pool.read(pid)
    assert len(pool) == 3


def test_write_through_and_cache_refresh():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    pool.write(0, b"new")
    assert disk.stats.page_writes == 1
    disk.stats.reset()
    data = pool.read(0)
    assert data[:3] == b"new"
    assert disk.stats.cache_hits == 1   # served from the refreshed frame


def test_clear_drops_frames():
    disk = make_disk()
    pool = BufferPool(disk, capacity=4)
    pool.read(0)
    pool.clear()
    assert len(pool) == 0
    disk.stats.reset()
    pool.read(0)
    assert disk.stats.page_reads == 1


def test_read_returns_disk_content():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    assert pool.read(3)[:8] == bytes([3]) * 8


# -- hit/miss/eviction counters and resize (batch engine support) -----------

def test_pool_counters_track_hits_misses_evictions():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    pool.read(0)            # miss
    pool.read(0)            # hit
    pool.read(1)            # miss
    pool.read(2)            # miss, evicts page 0
    counters = pool.counters()
    assert counters.hits == 1
    assert counters.misses == 3
    assert counters.evictions == 1
    assert counters.accesses == 4
    assert counters.hit_rate == pytest.approx(0.25)


def test_pool_counters_diff_and_sum():
    disk = make_disk()
    pool = BufferPool(disk, capacity=4)
    pool.read(0)
    before = pool.counters()
    pool.read(0)
    pool.read(1)
    delta = pool.counters().diff(before)
    assert (delta.hits, delta.misses) == (1, 1)
    total = delta + before
    assert (total.hits, total.misses) == (pool.hits, pool.misses)


def test_hit_rate_of_unused_pool_is_zero():
    pool = BufferPool(make_disk(), capacity=2)
    assert pool.counters().hit_rate == 0.0


def test_clear_does_not_count_as_eviction():
    pool = BufferPool(make_disk(), capacity=4)
    pool.read(0)
    pool.clear()
    assert pool.counters().evictions == 0


def test_reset_counters_keeps_frames():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    pool.read(0)
    pool.reset_counters()
    assert pool.counters().accesses == 0
    disk.stats.reset()
    pool.read(0)                       # frame survived the counter reset
    assert pool.counters().hits == 1


def test_resize_grow_keeps_frames():
    disk = make_disk()
    pool = BufferPool(disk, capacity=1)
    pool.read(0)
    pool.resize(4)
    for pid in (1, 2, 3):
        pool.read(pid)
    assert len(pool) == 4
    disk.stats.reset()
    pool.read(0)
    assert disk.stats.cache_hits == 1


def test_resize_shrink_evicts_lru_first():
    disk = make_disk()
    pool = BufferPool(disk, capacity=3)
    pool.read(0)
    pool.read(1)
    pool.read(2)
    pool.read(0)            # page 1 is now least recently used
    pool.resize(2)
    assert len(pool) == 2
    assert pool.counters().evictions == 1
    disk.stats.reset()
    pool.read(0)
    pool.read(2)
    assert disk.stats.cache_hits == 2  # survivors are the two MRU pages
    pool.read(1)
    assert disk.stats.page_reads == 1  # the LRU page was evicted


def test_resize_to_zero_disables_caching():
    pool = BufferPool(make_disk(), capacity=2)
    pool.read(0)
    pool.resize(0)
    assert len(pool) == 0
    pool.read(0)
    assert pool.counters().hits == 0


def test_resize_negative_rejected():
    pool = BufferPool(make_disk(), capacity=2)
    with pytest.raises(ValueError):
        pool.resize(-1)

"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage import BufferPool, DiskManager


def make_disk(pages=8):
    disk = DiskManager()
    for i in range(pages):
        pid = disk.allocate()
        disk.write(pid, bytes([i]) * 8)
    disk.stats.reset()
    disk.reset_head()
    return disk


def test_hit_avoids_disk_read():
    disk = make_disk()
    pool = BufferPool(disk, capacity=4)
    pool.read(0)
    assert disk.stats.page_reads == 1
    pool.read(0)
    assert disk.stats.page_reads == 1
    assert disk.stats.cache_hits == 1


def test_capacity_zero_disables_caching():
    disk = make_disk()
    pool = BufferPool(disk, capacity=0)
    pool.read(0)
    pool.read(0)
    assert disk.stats.page_reads == 2
    assert disk.stats.cache_hits == 0
    assert len(pool) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        BufferPool(make_disk(), capacity=-1)


def test_lru_eviction_order():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    pool.read(0)
    pool.read(1)
    pool.read(0)      # refresh page 0; page 1 is now LRU
    pool.read(2)      # evicts page 1
    disk.stats.reset()
    pool.read(0)
    assert disk.stats.cache_hits == 1
    pool.read(1)
    assert disk.stats.page_reads == 1   # page 1 was evicted


def test_capacity_bound_holds():
    disk = make_disk()
    pool = BufferPool(disk, capacity=3)
    for pid in range(8):
        pool.read(pid)
    assert len(pool) == 3


def test_write_through_and_cache_refresh():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    pool.write(0, b"new")
    assert disk.stats.page_writes == 1
    disk.stats.reset()
    data = pool.read(0)
    assert data[:3] == b"new"
    assert disk.stats.cache_hits == 1   # served from the refreshed frame


def test_clear_drops_frames():
    disk = make_disk()
    pool = BufferPool(disk, capacity=4)
    pool.read(0)
    pool.clear()
    assert len(pool) == 0
    disk.stats.reset()
    pool.read(0)
    assert disk.stats.page_reads == 1


def test_read_returns_disk_content():
    disk = make_disk()
    pool = BufferPool(disk, capacity=2)
    assert pool.read(3)[:8] == bytes([3]) * 8

"""Write-ahead log: durability protocol, torn-tail recovery, crash matrix.

The WAL is the acknowledgment point of the live-update protocol: an
update batch survives any crash after ``append`` returns and is
invisible after any crash before it.  This suite pins both halves — the
log file format (round-trip, LSN monotonicity, checkpoint truncation,
torn-tail discard vs. CRC corruption) and the index-level guarantee
(for every crash point, reload + replay yields either exactly the
pre-update index or exactly the post-update one, never a mix).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core import (
    IHilbertIndex,
    ValueQuery,
    load_index,
    save_index,
)
from repro.core.base import UPDATE_CRASH_POINTS
from repro.field import DEMField
from repro.storage import (
    SimulatedCrash,
    WalError,
    WriteAheadLog,
    scan_wal,
)
from repro.storage.scrub import scrub_index
from repro.synth import fractal_dem_heights

RECORD_DTYPE = np.dtype([("cell_id", "<i8"), ("vmin", "<f4"),
                         ("vmax", "<f4")])


def make_batch(rng, count=5):
    cell_ids = rng.choice(1000, size=count, replace=False).astype(np.int64)
    records = np.zeros(count, dtype=RECORD_DTYPE)
    records["cell_id"] = cell_ids
    records["vmin"] = rng.random(count).astype(np.float32)
    records["vmax"] = records["vmin"] + 1.0
    return cell_ids, records


# -- file format -------------------------------------------------------------

def test_roundtrip_across_reopen(tmp_path):
    path = tmp_path / "wal.log"
    rng = np.random.default_rng(0)
    batches = [make_batch(rng) for _ in range(3)]
    with WriteAheadLog(path) as wal:
        for cell_ids, records in batches:
            wal.append(cell_ids, records)
        assert len(wal) == 3
        assert wal.last_lsn == 2

    reopened = WriteAheadLog(path)
    assert len(reopened) == 3
    for batch, (cell_ids, records) in zip(reopened.pending, batches):
        assert np.array_equal(batch.cell_ids, cell_ids)
        decoded = batch.decode(RECORD_DTYPE)
        assert np.array_equal(decoded["vmin"], records["vmin"])
        assert np.array_equal(decoded["vmax"], records["vmax"])
    reopened.close()


def test_decode_rejects_wrong_record_size(tmp_path):
    rng = np.random.default_rng(1)
    with WriteAheadLog(tmp_path / "wal.log") as wal:
        wal.append(*make_batch(rng))
        with pytest.raises(WalError, match="byte"):
            wal.pending[0].decode(np.dtype([("x", "<f8")]))


def test_append_validates_inputs(tmp_path):
    rng = np.random.default_rng(2)
    cell_ids, records = make_batch(rng)
    with WriteAheadLog(tmp_path / "wal.log") as wal:
        with pytest.raises(ValueError):
            wal.append(cell_ids[:-1], records)
        with pytest.raises(TypeError):
            wal.append(cell_ids, np.zeros(len(cell_ids)))
        with pytest.raises(ValueError):
            wal.append(cell_ids, records, crash_point="not-a-point")


def test_checkpoint_truncates_and_lsn_keeps_counting(tmp_path):
    path = tmp_path / "wal.log"
    rng = np.random.default_rng(3)
    wal = WriteAheadLog(path)
    wal.append(*make_batch(rng))
    wal.append(*make_batch(rng))
    size_before = path.stat().st_size
    assert wal.checkpoint() == 2
    assert len(wal) == 0
    assert wal.last_lsn is None
    assert path.stat().st_size < size_before
    # LSNs are monotone across the checkpoint — replay after a crash
    # between save and truncate must not see a reused LSN.
    assert wal.append(*make_batch(rng)) == 2
    wal.close()
    assert [b.lsn for b in WriteAheadLog(path).pending] == [2]


def test_torn_tail_is_discarded_and_truncated(tmp_path):
    path = tmp_path / "wal.log"
    rng = np.random.default_rng(4)
    with WriteAheadLog(path) as wal:
        wal.append(*make_batch(rng))
        wal.append(*make_batch(rng))
        intact = path.stat().st_size
    # A crash mid-append leaves a half-written record at the tail.
    with open(path, "ab") as fh:
        fh.write(b"WREC\x99\x00\x00\x00partial")
    scan = scan_wal(path)
    assert scan.torn_tail
    assert len(scan.batches) == 2

    wal = WriteAheadLog(path)
    assert len(wal) == 2
    assert wal.torn_tail_discarded > 0
    assert path.stat().st_size == intact    # tail physically removed
    wal.close()


def test_midfile_corruption_raises_not_discards(tmp_path):
    path = tmp_path / "wal.log"
    rng = np.random.default_rng(5)
    with WriteAheadLog(path) as wal:
        wal.append(*make_batch(rng))
        wal.append(*make_batch(rng))
    raw = bytearray(path.read_bytes())
    raw[16 + 20 + 4] ^= 0x01       # payload byte of the first record
    path.write_bytes(raw)
    scan = scan_wal(path)
    assert not scan.torn_tail
    assert "CRC" in scan.error
    with pytest.raises(WalError, match="CRC"):
        WriteAheadLog(path)


def test_wal_file_header_is_versioned(tmp_path):
    path = tmp_path / "wal.log"
    WriteAheadLog(path).close()
    magic, version, _ = struct.unpack_from("<8sII", path.read_bytes())
    assert magic == b"RPROWAL1"
    assert version == 1


@pytest.mark.parametrize("point", ["pre-append", "torn-append"])
def test_append_crash_before_ack_loses_only_that_batch(tmp_path, point):
    path = tmp_path / "wal.log"
    rng = np.random.default_rng(6)
    wal = WriteAheadLog(path)
    wal.append(*make_batch(rng))
    with pytest.raises(SimulatedCrash):
        wal.append(*make_batch(rng), crash_point=point)
    wal.close()
    assert len(WriteAheadLog(path)) == 1


def test_append_crash_pre_sync_is_unacknowledged_but_may_survive(tmp_path):
    """pre-sync is the gray zone: the batch was never acknowledged, so
    losing it would be legal — but the simulated crash leaves the fully
    written record in the file, and recovery accepts it (replay of an
    unacknowledged batch is allowed, silent loss of an acknowledged one
    is not)."""
    path = tmp_path / "wal.log"
    rng = np.random.default_rng(6)
    wal = WriteAheadLog(path)
    wal.append(*make_batch(rng))
    with pytest.raises(SimulatedCrash):
        wal.append(*make_batch(rng), crash_point="pre-sync")
    wal.close()
    reopened = WriteAheadLog(path)
    assert len(reopened) == 2
    assert [b.lsn for b in reopened.pending] == [0, 1]
    reopened.close()


def test_append_crash_after_fsync_is_durable(tmp_path):
    path = tmp_path / "wal.log"
    rng = np.random.default_rng(7)
    wal = WriteAheadLog(path)
    with pytest.raises(SimulatedCrash):
        wal.append(*make_batch(rng), crash_point="post-append")
    wal.close()
    assert len(WriteAheadLog(path)) == 1


# -- index-level crash matrix ------------------------------------------------

def _field():
    return DEMField(fractal_dem_heights(16, 0.5, seed=21))


def _answers(index, queries):
    out = []
    for q in queries:
        index.clear_caches()
        r = index.query(q)
        out.append((r.candidate_count, round(r.area, 9)))
    return out


@pytest.mark.parametrize("point", UPDATE_CRASH_POINTS)
def test_crash_matrix_all_or_nothing(tmp_path, point):
    """Reload after a crash equals exactly one of the two legal states."""
    rng = np.random.default_rng(31)
    directory = tmp_path / "idx"
    index = IHilbertIndex(_field())
    save_index(index, directory)
    index.attach_wal(directory / "wal.log")

    ids = rng.choice(index.field.num_vertices, size=40, replace=False)
    vr = index.field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=40).astype(np.float32)
    vr = index.field.value_range
    queries = [ValueQuery(vr.lo, vr.lo + 0.3 * (vr.hi - vr.lo)),
               ValueQuery(vr.lo + 0.4 * (vr.hi - vr.lo), vr.hi)]

    before_twin = IHilbertIndex(_field())
    after_twin = IHilbertIndex(_field())
    after_twin.apply_updates(ids, vals)
    before = _answers(before_twin, queries)
    after = _answers(after_twin, queries)
    assert before != after      # the workload must discriminate

    with pytest.raises(SimulatedCrash):
        index.apply_updates(ids, vals, crash_point=point)

    recovered = load_index(directory)
    got = _answers(recovered, queries)
    if point in ("wal-appended", "post-append"):
        # Acknowledged: the update MUST survive.
        assert got == after, f"{point}: acknowledged update lost"
        assert len(recovered.wal.pending) == 1
    elif point == "pre-sync":
        # Unacknowledged but fully written: either outcome is legal; in
        # the simulation the flushed record survives and is replayed.
        assert got in (before, after), f"{point}: recovered a mix"
    else:
        assert got == before, f"{point}: unacknowledged update leaked"
        assert len(recovered.wal.pending) == 0


def test_acknowledged_update_survives_without_any_page_write(tmp_path):
    """The window the WAL exists for: ack'd, zero data pages written."""
    rng = np.random.default_rng(32)
    directory = tmp_path / "idx"
    index = IHilbertIndex(_field())
    save_index(index, directory)
    index.attach_wal(directory / "wal.log")
    ids = rng.choice(index.field.num_vertices, size=10, replace=False)
    vr = index.field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=10).astype(np.float32)
    with pytest.raises(SimulatedCrash):
        index.apply_updates(ids, vals, crash_point="wal-appended")

    recovered = load_index(directory)
    twin = IHilbertIndex(_field())
    twin.apply_updates(ids, vals)
    assert np.array_equal(recovered.store.read_range(0, len(twin.store) - 1),
                          twin.store.read_range(0, len(twin.store) - 1))


def test_replay_is_idempotent_across_double_reload(tmp_path):
    rng = np.random.default_rng(33)
    directory = tmp_path / "idx"
    index = IHilbertIndex(_field())
    save_index(index, directory)
    index.attach_wal(directory / "wal.log")
    ids = rng.choice(index.field.num_vertices, size=25, replace=False)
    vr = index.field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=25).astype(np.float32)
    with pytest.raises(SimulatedCrash):
        index.apply_updates(ids, vals, crash_point="post-append")

    # First recovery replays but crashes before it can checkpoint;
    # the second replay of the same batch must be a no-op.
    first = load_index(directory)
    second = load_index(directory)
    vr = _field().value_range
    q = ValueQuery(vr.lo, vr.hi)
    assert _answers(first, [q]) == _answers(second, [q])


def test_save_index_checkpoints_the_wal(tmp_path):
    rng = np.random.default_rng(34)
    directory = tmp_path / "idx"
    index = IHilbertIndex(_field())
    save_index(index, directory)
    index.attach_wal(directory / "wal.log")
    ids = rng.choice(index.field.num_vertices, size=10, replace=False)
    vr = index.field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=10).astype(np.float32)
    index.apply_updates(ids, vals)
    assert len(index.wal) == 1
    save_index(index, directory)
    assert len(index.wal) == 0
    # The truncated log carries no batches for the next open either.
    reloaded = load_index(directory)
    assert len(reloaded.wal) == 0


def test_attach_wal_refuses_silent_pending_batches(tmp_path):
    rng = np.random.default_rng(35)
    directory = tmp_path / "idx"
    index = IHilbertIndex(_field())
    save_index(index, directory)
    index.attach_wal(directory / "wal.log")
    ids = rng.choice(index.field.num_vertices, size=5, replace=False)
    vr = index.field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=5).astype(np.float32)
    with pytest.raises(SimulatedCrash):
        index.apply_updates(ids, vals, crash_point="wal-appended")

    fresh = IHilbertIndex(_field())
    with pytest.raises(ValueError, match="pending"):
        fresh.attach_wal(directory / "wal.log")
    # replay=True applies them instead.
    fresh.attach_wal(directory / "wal.log", replay=True)
    twin = IHilbertIndex(_field())
    twin.apply_updates(ids, vals)
    vr = _field().value_range
    q = ValueQuery(vr.lo, vr.hi)
    assert _answers(fresh, [q]) == _answers(twin, [q])


# -- scrub integration -------------------------------------------------------

def test_scrub_reports_pending_batches_as_clean(tmp_path):
    rng = np.random.default_rng(36)
    directory = tmp_path / "idx"
    index = IHilbertIndex(_field())
    save_index(index, directory)
    index.attach_wal(directory / "wal.log")
    ids = rng.choice(index.field.num_vertices, size=5, replace=False)
    vr = index.field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=5).astype(np.float32)
    index.apply_updates(ids, vals)

    report = scrub_index(directory)
    assert report.ok
    wal_lines = [f for f in report.files if f.role == "wal"]
    assert len(wal_lines) == 1
    assert "1 pending batch" in wal_lines[0].detail


def test_scrub_classifies_torn_tail_clean_corruption_not(tmp_path):
    rng = np.random.default_rng(37)
    directory = tmp_path / "idx"
    index = IHilbertIndex(_field())
    save_index(index, directory)
    index.attach_wal(directory / "wal.log")
    ids = rng.choice(index.field.num_vertices, size=5, replace=False)
    vr = index.field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=5).astype(np.float32)
    index.apply_updates(ids, vals)
    path = directory / "wal.log"

    with open(path, "ab") as fh:
        fh.write(b"WREC\xff\xff")            # torn tail: still CLEAN
    assert scrub_index(directory).ok

    raw = bytearray(path.read_bytes())
    raw[16 + 20 + 2] ^= 0x10                 # CRC damage: CORRUPT
    path.write_bytes(raw)
    report = scrub_index(directory)
    assert not report.ok
    wal_lines = [f for f in report.files if f.role == "wal"]
    assert not wal_lines[0].ok

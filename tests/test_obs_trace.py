"""Tests for the span tracer: nesting, counter attribution, exporters,
and the zero-overhead guarantee of the disabled (null) tracer."""

import json
import tracemalloc

import pytest

from repro.core import (
    BatchQueryEngine,
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    ValueQuery,
)
from repro.obs.export import (
    render_span_tree,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_trace,
)
from repro.obs.trace import NULL_TRACER, Tracer


@pytest.fixture
def traced_index(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    tracer = Tracer().attach(index)
    return index, tracer


def _query_interval(field, fraction=0.3):
    vr = field.value_range
    span = vr.hi - vr.lo
    lo = vr.lo + 0.3 * span
    return lo, lo + fraction * span


# -- structure ---------------------------------------------------------------

def test_span_tree_nesting(traced_index):
    index, tracer = traced_index
    lo, hi = _query_interval(index.field)
    index.query(ValueQuery(lo, hi))

    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.name == "query"
    assert root.attrs["method"] == "I-Hilbert"
    names = [child.name for child in root.children]
    assert names == ["filter", "fetch", "estimate"]
    assert all(not c.children for c in root.children)


def test_two_queries_two_roots(traced_index):
    index, tracer = traced_index
    lo, hi = _query_interval(index.field)
    index.query(ValueQuery(lo, hi))
    index.query(ValueQuery(lo, hi))
    assert len(tracer.roots) == 2
    tracer.clear()
    assert tracer.roots == []


def test_linearscan_span_names(smooth_dem):
    index = LinearScanIndex(smooth_dem)
    tracer = Tracer().attach(index)
    lo, hi = _query_interval(smooth_dem)
    index.query(ValueQuery(lo, hi))
    root = tracer.roots[0]
    assert [c.name for c in root.children] == ["fetch", "estimate"]
    assert root.children[0].attrs["path"] == "scan"


def test_iall_span_names(smooth_dem):
    index = IAllIndex(smooth_dem)
    tracer = Tracer().attach(index)
    lo, hi = _query_interval(smooth_dem, fraction=0.1)
    index.query(ValueQuery(lo, hi))
    root = tracer.roots[0]
    assert [c.name for c in root.children] == ["filter", "fetch",
                                               "estimate"]


# -- counter attribution -----------------------------------------------------

def test_self_deltas_partition_query_total(traced_index):
    """Exclusive (self) page-read deltas over the span tree telescope
    to exactly the query's accounted total."""
    index, tracer = traced_index
    lo, hi = _query_interval(index.field)
    index.clear_caches()
    result = index.query(ValueQuery(lo, hi))
    assert result.io.page_reads > 0

    root = tracer.roots[0]
    assert root.io.page_reads == result.io.page_reads
    self_sum = sum(span.self_io.page_reads for span, _ in root.walk())
    assert self_sum == result.io.page_reads
    # Same telescoping for the random/sequential split.
    assert (sum(s.self_io.random_reads for s, _ in root.walk())
            == result.io.random_reads)
    assert (sum(s.self_io.sequential_reads for s, _ in root.walk())
            == result.io.sequential_reads)


def test_batch_span_tree_and_attribution(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    tracer = Tracer().attach(index)
    vr = smooth_dem.value_range
    step = (vr.hi - vr.lo) / 4
    queries = [ValueQuery(vr.lo + step, vr.lo + 2 * step),
               ValueQuery(vr.lo + 1.5 * step, vr.lo + 2.5 * step),
               ValueQuery(vr.hi - step, vr.hi)]
    batch = BatchQueryEngine(index).run(queries)

    root = tracer.roots[0]
    assert root.name == "batch"
    assert root.attrs["queries"] == 3
    assert root.attrs["groups"] == batch.groups
    names = [c.name for c in root.children]
    assert names[0] == "merge"
    assert names[1:] == [f"group[{i}]" for i in range(batch.groups)]
    # Two overlapping queries collapse into the first group.
    assert root.children[1].attrs["size"] == 2

    self_sum = sum(span.self_io.page_reads for span, _ in root.walk())
    assert self_sum == batch.io.page_reads == root.io.page_reads


def test_pool_counters_recorded(smooth_dem):
    index = IHilbertIndex(smooth_dem, cache_pages=64)
    tracer = Tracer().attach(index)
    lo, hi = _query_interval(smooth_dem)
    index.query(ValueQuery(lo, hi))
    index.query(ValueQuery(lo, hi))  # warm: pure pool hits
    warm = tracer.roots[1]
    assert warm.pool is not None
    assert warm.pool.hits > 0
    assert warm.io.page_reads == 0
    assert warm.io.cache_hits == warm.pool.hits


# -- exporters ---------------------------------------------------------------

def test_render_span_tree_shape(traced_index):
    index, tracer = traced_index
    lo, hi = _query_interval(index.field)
    index.query(ValueQuery(lo, hi))
    text = render_span_tree(tracer)
    lines = text.splitlines()
    assert lines[0].startswith("query")
    assert any(line.startswith("|-- filter") for line in lines)
    assert any(line.startswith("`-- estimate") for line in lines)


def test_chrome_trace_round_trip(traced_index, tmp_path):
    index, tracer = traced_index
    lo, hi = _query_interval(index.field)
    index.clear_caches()
    result = index.query(ValueQuery(lo, hi))

    path = tmp_path / "trace.json"
    count = write_trace(tracer, path)
    doc = json.loads(path.read_text())
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(events) == count == 4
    for event in events:
        assert event["dur"] >= 0
        assert event["ts"] >= 0
    # Exclusive deltas in args reconstruct the query total exactly.
    assert (sum(e["args"]["page_reads_self"] for e in events)
            == result.io.page_reads)
    root_events = [e for e in events if e["name"] == "query"]
    assert root_events[0]["args"]["page_reads"] == result.io.page_reads


def test_jsonl_export(traced_index, tmp_path):
    index, tracer = traced_index
    lo, hi = _query_interval(index.field)
    index.query(ValueQuery(lo, hi))
    path = tmp_path / "trace.jsonl"
    count = write_trace(tracer, path)
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    assert len(records) == count
    assert records[0]["name"] == "query" and records[0]["depth"] == 0
    assert {r["name"] for r in records if r["depth"] == 1} == {
        "filter", "fetch", "estimate"}
    assert spans_to_jsonl([]) == ""
    assert spans_to_chrome_trace([])["traceEvents"][0]["ph"] == "M"


def test_cli_trace_flag(tmp_path, capsys):
    """--trace writes Chrome trace JSON whose self deltas sum to the
    query's reported page reads (the acceptance criterion)."""
    import numpy as np

    from repro.cli import main
    from repro.synth import roseburg_like_heights

    heights = tmp_path / "terrain.npy"
    np.save(heights, roseburg_like_heights(cells_per_side=32))
    index_dir = tmp_path / "idx"
    trace_path = tmp_path / "trace.json"
    assert main(["build", str(heights), str(index_dir)]) == 0
    capsys.readouterr()
    assert main(["query", str(index_dir), "250", "300",
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    reported = int(out.split("I/O: ")[1].split(" pages")[0])

    doc = json.loads(trace_path.read_text())
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert sum(e["args"]["page_reads_self"] for e in events) == reported


# -- the disabled path -------------------------------------------------------

def test_default_tracer_is_shared_null(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    other = LinearScanIndex(smooth_dem)
    assert index.tracer is NULL_TRACER
    assert other.tracer is NULL_TRACER
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


def test_detach_restores_null(traced_index):
    index, tracer = traced_index
    assert index.tracer is tracer
    Tracer.detach(index)
    assert index.tracer is NULL_TRACER


def test_disabled_tracer_identical_io(smooth_dem):
    """Tracing must never perturb the accounted I/O it observes."""
    lo, hi = _query_interval(smooth_dem)

    plain = IHilbertIndex(smooth_dem)
    plain.clear_caches()
    untraced = plain.query(ValueQuery(lo, hi))

    traced_idx = IHilbertIndex(smooth_dem)
    Tracer().attach(traced_idx)
    traced_idx.clear_caches()
    traced = traced_idx.query(ValueQuery(lo, hi))

    assert untraced.io == traced.io
    assert untraced.candidate_count == traced.candidate_count


def test_null_span_allocates_nothing():
    """The disabled hot path reuses one shared span object: entering
    and exiting it must not allocate."""
    for _ in range(8):  # warm up caches/specialization
        with NULL_TRACER.span("warmup"):
            pass
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(256):
            with NULL_TRACER.span("fetch"):
                pass
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert after == before

"""Unit and property tests for the n-D Rect primitive."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect

coord = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw, dim=2):
    lows, highs = [], []
    for _ in range(dim):
        a = draw(coord)
        b = draw(coord)
        lows.append(min(a, b))
        highs.append(max(a, b))
    return Rect(tuple(lows), tuple(highs))


def test_construction_and_dim():
    r = Rect((0.0, 1.0), (2.0, 3.0))
    assert r.dim == 2
    assert r.lows == (0.0, 1.0)
    assert r.highs == (2.0, 3.0)


def test_mismatched_dims_rejected():
    with pytest.raises(ValueError):
        Rect((0.0,), (1.0, 2.0))


def test_inverted_box_rejected():
    with pytest.raises(ValueError):
        Rect((1.0,), (0.0,))


def test_from_interval_and_point():
    assert Rect.from_interval(1.0, 2.0) == Rect((1.0,), (2.0,))
    assert Rect.from_point((3.0, 4.0)) == Rect((3.0, 4.0), (3.0, 4.0))


def test_area_margin_center():
    r = Rect((0.0, 0.0), (2.0, 3.0))
    assert r.area() == 6.0
    assert r.margin() == 5.0
    assert r.center() == (1.0, 1.5)


def test_1d_area_is_length():
    assert Rect.from_interval(2.0, 7.0).area() == 5.0


def test_union():
    a = Rect((0.0, 0.0), (1.0, 1.0))
    b = Rect((2.0, -1.0), (3.0, 0.5))
    assert a.union(b) == Rect((0.0, -1.0), (3.0, 1.0))


def test_intersects_closed_boundaries():
    a = Rect((0.0, 0.0), (1.0, 1.0))
    assert a.intersects(Rect((1.0, 1.0), (2.0, 2.0)))   # corner touch
    assert not a.intersects(Rect((1.01, 0.0), (2.0, 1.0)))


def test_contains_and_contains_point():
    outer = Rect((0.0, 0.0), (10.0, 10.0))
    inner = Rect((1.0, 1.0), (2.0, 2.0))
    assert outer.contains(inner)
    assert not inner.contains(outer)
    assert outer.contains_point((0.0, 10.0))
    assert not outer.contains_point((-0.1, 5.0))


def test_intersection_area():
    a = Rect((0.0, 0.0), (2.0, 2.0))
    b = Rect((1.0, 1.0), (3.0, 3.0))
    assert a.intersection_area(b) == 1.0
    assert a.intersection_area(Rect((5.0, 5.0), (6.0, 6.0))) == 0.0
    # Touching boxes overlap with zero area.
    assert a.intersection_area(Rect((2.0, 0.0), (3.0, 2.0))) == 0.0


def test_enlargement():
    a = Rect((0.0, 0.0), (1.0, 1.0))
    b = Rect((2.0, 0.0), (3.0, 1.0))
    assert a.enlargement(b) == 3.0 - 1.0
    assert a.enlargement(a) == 0.0


@given(rects(), rects())
def test_property_union_contains_operands(a, b):
    u = a.union(b)
    assert u.contains(a)
    assert u.contains(b)
    assert u.area() >= max(a.area(), b.area())


@given(rects(), rects())
def test_property_intersects_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)
    assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))


@given(rects(), rects())
def test_property_positive_overlap_implies_intersects(a, b):
    if a.intersection_area(b) > 0:
        assert a.intersects(b)


@given(rects(dim=3), rects(dim=3))
def test_property_enlargement_non_negative_3d(a, b):
    assert a.enlargement(b) >= -1e-9

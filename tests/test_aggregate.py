"""Tests for the learned-polynomial approximate aggregate subsystem.

The contract under test: every model answer carries a guaranteed bound
(``|value - exact| <= bound``), the hybrid path honors a requested
tolerance by greedy exact fallback, ``tolerance=0`` degenerates to the
byte-for-byte exact answer, and the models survive updates, compaction
and persistence without the guarantee going stale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AGGREGATE_KINDS,
    AggregateResult,
    EngineFacade,
    IHilbertIndex,
    LinearScanIndex,
    PersistError,
    ValueQuery,
    load_index,
    save_index,
)
from repro.core.aggregate import exact_aggregate
from repro.field import DEMField
from repro.shard import ShardedEngine
from repro.synth import fractal_dem_heights


@pytest.fixture(scope="module")
def field():
    return DEMField(fractal_dem_heights(16, 0.9, seed=11))


@pytest.fixture(scope="module")
def index(field):
    idx = IHilbertIndex(field)
    idx.fit_aggregate_models()
    return idx


def workload(field, n=30, seed=4):
    rng = np.random.default_rng(seed)
    records = field.cell_records()
    vlo = float(records["vmin"].min())
    vhi = float(records["vmax"].max())
    span = vhi - vlo
    queries = []
    for _ in range(n):
        lo = vlo + rng.uniform(0.0, 0.95) * span
        hi = min(vhi, lo + rng.uniform(0.01, 0.3) * span)
        queries.append((lo, hi))
    return queries


# ---------------------------------------------------- bound guarantee

@pytest.mark.parametrize("kind", AGGREGATE_KINDS)
def test_model_answers_within_bound(index, field, kind):
    for lo, hi in workload(field):
        exact = exact_aggregate(index, kind, lo, hi)
        got = index.aggregate(kind, lo, hi, mode="model")
        assert got.mode == "model"
        if np.isfinite(got.bound):
            assert abs(got.value - exact.value) <= got.bound
        assert got.exact_subfields == 0


@pytest.mark.parametrize("kind", AGGREGATE_KINDS)
def test_hybrid_tolerance_zero_is_exact(index, field, kind):
    """tolerance=0 must drive every boundary subfield to the exact path
    and reproduce the exact value bit for bit."""
    for lo, hi in workload(field, n=12):
        exact = index.aggregate(kind, lo, hi, mode="exact")
        got = index.aggregate(kind, lo, hi, tolerance=0.0, mode="hybrid")
        assert got.value == exact.value
        assert got.bound == 0.0
        assert got.model_subfields == 0
        # The standalone global-sum path agrees to rounding.
        ref = exact_aggregate(index, kind, lo, hi)
        assert got.value == pytest.approx(ref.value, rel=1e-12, abs=1e-9)


def test_hybrid_respects_tolerance(index, field):
    for tolerance in (50.0, 5.0, 0.5):
        for lo, hi in workload(field, n=10, seed=9):
            got = index.aggregate("count", lo, hi,
                                  tolerance=tolerance, mode="hybrid")
            assert got.bound <= tolerance
            exact = exact_aggregate(index, "count", lo, hi)
            assert abs(got.value - exact.value) <= got.bound


def test_exact_count_matches_query_path(index, field):
    for lo, hi in workload(field, n=8, seed=2):
        result = index.query(ValueQuery(lo, hi))
        index.clear_caches()
        got = index.aggregate("count", lo, hi, mode="exact")
        assert got.value == float(result.candidate_count)
        assert got.bound == 0.0


def test_avg_consistent_with_count_and_sum(index, field):
    lo, hi = workload(field, n=1, seed=6)[0]
    count = index.aggregate("count", lo, hi, mode="exact")
    total = index.aggregate("sum", lo, hi, mode="exact")
    avg = index.aggregate("avg", lo, hi, mode="exact")
    assert avg.value == pytest.approx(total.value / count.value)


def test_empty_range_aggregates_to_zero(index, field):
    records = field.cell_records()
    above = float(records["vmax"].max()) + 5.0
    for kind in AGGREGATE_KINDS:
        got = index.aggregate(kind, above, above + 1.0, mode="model")
        assert got.value == 0.0
        assert got.bound == 0.0 or kind == "avg"


# ------------------------------------------------ degenerate geometry

def test_constant_field_flat_atoms():
    """Every triangle is flat at 5.0: the point band [5, 5] must count
    and cover everything, and [5.1, 6] nothing."""
    f = DEMField(np.full((5, 5), 5.0))
    idx = IHilbertIndex(f)
    idx.fit_aggregate_models()
    n_cells = len(f.cell_records())
    for mode in ("model", "hybrid", "exact"):
        got = idx.aggregate("count", 5.0, 5.0, mode=mode)
        assert got.value == pytest.approx(float(n_cells), abs=got.bound)
        area = idx.aggregate("area", 5.0, 5.0, mode=mode)
        assert area.value == pytest.approx(float(n_cells),
                                           abs=area.bound)
    assert idx.aggregate("count", 5.1, 6.0, mode="exact").value == 0.0


# -------------------------------------------------- update lifecycle

def test_models_survive_updates_and_compaction():
    # Private field: apply_updates mutates the field's vertex values,
    # which would poison the module-scoped fixtures.
    field = DEMField(fractal_dem_heights(16, 0.9, seed=11))
    idx = IHilbertIndex(field)
    idx.fit_aggregate_models()
    rng = np.random.default_rng(0)
    n_vertices = field.num_vertices
    lo, hi = workload(field, n=1, seed=13)[0]
    for _ in range(3):
        ids = rng.choice(n_vertices, size=12, replace=False)
        vr = field.value_range
        values = rng.uniform(vr.lo, vr.hi, size=12)
        idx.apply_updates(ids, values)
        for kind in ("count", "sum", "area"):
            exact = exact_aggregate(idx, kind, lo, hi)
            got = idx.aggregate(kind, lo, hi, mode="model")
            assert abs(got.value - exact.value) <= got.bound
    idx.compact()
    for kind in ("count", "sum", "area"):
        exact = exact_aggregate(idx, kind, lo, hi)
        got = idx.aggregate(kind, lo, hi, mode="model")
        assert abs(got.value - exact.value) <= got.bound


def test_lazy_fit_on_first_aggregate(field):
    idx = IHilbertIndex(field)
    assert idx.aggregate_models is None
    got = idx.aggregate("count", *workload(field, n=1)[0])
    assert idx.aggregate_models is not None
    assert got.bound >= 0.0


# ------------------------------------------------------- persistence

def test_persistence_roundtrip_preserves_models(index, field, tmp_path):
    save_index(index, tmp_path)
    back = load_index(tmp_path)
    assert back.aggregate_models is not None
    assert back.aggregate_models.degree == index.aggregate_models.degree
    for lo, hi in workload(field, n=6, seed=21):
        for kind in AGGREGATE_KINDS:
            a = index.aggregate(kind, lo, hi, mode="model")
            b = back.aggregate(kind, lo, hi, mode="model")
            assert a.value == b.value
            assert a.bound == b.bound


def test_persistence_gc_keeps_one_model_file(index, tmp_path):
    save_index(index, tmp_path)
    save_index(index, tmp_path)
    npz = sorted(tmp_path.glob("agg-*.npz"))
    assert len(npz) == 1


def test_persistence_without_models(field, tmp_path):
    idx = IHilbertIndex(field)
    save_index(idx, tmp_path)
    back = load_index(tmp_path)
    assert back.aggregate_models is None
    # Lazy fit still works on the reloaded index.
    got = back.aggregate("count", *workload(field, n=1)[0])
    assert got.bound >= 0.0


# ------------------------------------------------- facade and errors

def test_facade_aggregate(field):
    facade = EngineFacade()
    facade.open_field("terrain", IHilbertIndex(field))
    lo, hi = workload(field, n=1, seed=17)[0]
    result = facade.aggregate("terrain", "sum", lo, hi, tolerance=10.0)
    assert result.kind == "sum"
    assert result.bound <= 10.0


def test_linear_scan_supports_only_exact(field):
    idx = LinearScanIndex(field)
    lo, hi = workload(field, n=1)[0]
    got = idx.aggregate("count", lo, hi, mode="exact")
    assert got.bound == 0.0
    with pytest.raises(ValueError, match="aggregate models"):
        idx.aggregate("count", lo, hi, mode="model")


def test_validation_errors(index):
    with pytest.raises(ValueError):
        index.aggregate("median", 0.0, 1.0)
    with pytest.raises(ValueError):
        index.aggregate("count", 2.0, 1.0)
    with pytest.raises(ValueError):
        index.aggregate("count", 0.0, 1.0, tolerance=-1.0)
    with pytest.raises(ValueError):
        index.aggregate("count", 0.0, 1.0, mode="psychic")


def test_result_to_dict_serializes_infinite_bound():
    result = AggregateResult(
        kind="avg", lo=0.0, hi=1.0, value=0.0, bound=float("inf"),
        mode="model", tolerance=None, covered_subfields=0,
        model_subfields=1, exact_subfields=0, page_reads=0)
    payload = result.to_dict()
    assert payload["bound"] is None
    assert payload["value"] == 0.0


# ------------------------------------------------------------ shards

@pytest.mark.parametrize("n_shards", [2, 3])
def test_sharded_matches_unsharded(field, index, n_shards):
    engine = ShardedEngine(field, n_shards=n_shards, method="I-Hilbert")
    for lo, hi in workload(field, n=8, seed=29):
        for kind in AGGREGATE_KINDS:
            exact = exact_aggregate(index, kind, lo, hi)
            got = engine.aggregate(kind, lo, hi, mode="exact")
            assert got.value == pytest.approx(exact.value,
                                              rel=1e-12, abs=1e-9)
            hybrid = engine.aggregate(kind, lo, hi,
                                      tolerance=5.0, mode="hybrid")
            if np.isfinite(hybrid.bound):
                assert abs(hybrid.value - exact.value) <= \
                    hybrid.bound + 1e-9
            if kind != "avg":
                assert hybrid.bound <= 5.0

"""Regression pin of the paper's §3.1.2 cost function.

The prose formula, on values normalized so the field range has extent 1,
is ``C = P / SI`` with access probability ``P = L + 0.5`` (``L`` the
subfield's interval size, 0.5 the average query extent) and ``SI`` the
sum of member-cell interval sizes; a cell joins the open subfield only
when that *strictly* decreases ``C``.  These tests pin exact numbers for
both the normalized formula and the Fig. 5 worked example so a refactor
of ``core/cost.py`` cannot silently drift from the paper.
"""

from __future__ import annotations

import pytest

from repro.core import CostBasedGrouping, IHilbertIndex, group_cells
from repro.field import DEMField
from repro.synth import fractal_dem_heights

#: The paper's normalized-space configuration: interval size
#: I = max - min + 1 and P = L + 0.5.
NORMALIZED = dict(unit=1.0, avg_query=0.5)


def test_normalized_cost_is_L_plus_half_over_SI():
    policy = CostBasedGrouping(**NORMALIZED)
    # One cell [0.2, 0.4]: L = 0.2 + 1, SI = 1.2 -> C = (1.2 + 0.5) / 1.2.
    state = policy.open_group(0.2, 0.4)
    assert policy.cost(state) == pytest.approx(1.7 / 1.2)
    # Admit [0.3, 0.5]: L = 0.3 + 1, SI = 1.2 + 1.2 = 2.4
    #   -> C = (1.3 + 0.5) / 2.4 = 0.75 < 1.7 / 1.2: admitted.
    after = policy.admit(state, 0.3, 0.5)
    assert after is not None
    assert policy.cost(after) == pytest.approx(1.8 / 2.4)
    # Admitting a far-away cell [5.0, 5.1] would give
    #   C = (4.9 + 1 + 0.5) / (2.4 + 1.1) = 6.4 / 3.5 > 0.75: rejected.
    assert policy.admit(after, 5.0, 5.1) is None


def test_grouping_rule_requires_strict_decrease():
    # A strictly lower cost admits: identical constant cells under the
    # normalized formula go from C = 1.5/1 to C = 1.5/2.
    policy = CostBasedGrouping(**NORMALIZED)
    state = policy.open_group(0.0, 0.0)
    assert policy.cost(state) == pytest.approx(1.5)
    after = policy.admit(state, 0.0, 0.0)
    assert after is not None
    assert policy.cost(after) == pytest.approx(0.75)

    # An *equal* cost must reject.  With avg_query = 0, state [0, 1]
    # costs (1+1)/2 = 1 and admitting [2, 5] would cost (5+1)/6 = 1:
    # unchanged, so the cell starts a new subfield.
    policy = CostBasedGrouping(unit=1.0, avg_query=0.0)
    state = policy.open_group(0.0, 1.0)
    assert policy.cost(state) == pytest.approx(1.0)
    assert policy.cost((0.0, 5.0, 6.0)) == pytest.approx(1.0)
    assert policy.admit(state, 2.0, 5.0) is None


def test_fig5_worked_example_exact_fractions():
    """Fig. 5: subfield {c1..c4} costs 21/45; adding c5 gives 31/58."""
    policy = CostBasedGrouping(unit=1.0, avg_query=0.0)
    cells = [(20.0, 30.0), (25.0, 34.0), (20.0, 30.0), (28.0, 40.0)]
    state = policy.open_group(*cells[0])
    for vmin, vmax in cells[1:]:
        state = policy.admit(state, vmin, vmax)
        assert state is not None
    assert policy.cost(state) == pytest.approx(21.0 / 45.0)
    rejected = (min(state[0], 38.0), max(state[1], 50.0), state[2] + 13.0)
    assert policy.cost(rejected) == pytest.approx(31.0 / 58.0)
    assert policy.admit(state, 38.0, 50.0) is None

    groups = group_cells([20.0, 25.0, 20.0, 28.0, 38.0],
                         [30.0, 34.0, 30.0, 40.0, 50.0], policy)
    assert groups == [(0, 3), (4, 4)]


def test_ihilbert_default_grouping_matches_normalized_formula():
    """IHilbertIndex defaults express C = (L + 0.5)/SI in raw value
    units: unit = value span, avg_query = span / 2."""
    field = DEMField(fractal_dem_heights(16, 0.5, seed=2))
    index = IHilbertIndex(field)
    grouping = index.grouping
    assert isinstance(grouping, CostBasedGrouping)
    span = field.value_range.length
    assert grouping.unit == pytest.approx(span)
    assert grouping.avg_query == pytest.approx(0.5 * span)

"""Property suite for the selectivity estimator's boundary semantics.

Regression cases from the estimator fix — a query endpoint landing
exactly on a cell-interval endpoint must count the touching cell — plus
Hypothesis properties pinning :meth:`FieldStatistics.estimate_candidates`
against the exact interval-stabbing count, and planner stability checks
for queries sitting exactly on histogram bin edges.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FieldStatistics, IHilbertIndex
from repro.core.planner import estimate_plan
from repro.field import DEMField
from repro.synth import fractal_dem_heights


def exact_stabbing(vmins, vmaxs, lo, hi):
    """Ground truth: #cells whose closed interval intersects [lo, hi]."""
    vmins = np.asarray(vmins, dtype=np.float64)
    vmaxs = np.asarray(vmaxs, dtype=np.float64)
    return float(((vmins <= hi) & (vmaxs >= lo)).sum())


def stats_for(intervals, bins=64):
    vmins = np.array([a for a, _ in intervals], dtype=np.float64)
    vmaxs = np.array([b for _, b in intervals], dtype=np.float64)
    return FieldStatistics.from_intervals(vmins, vmaxs, bins=bins)


# --------------------------------------------------- regression cases

REPRO_INTERVALS = [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (5.0, 6.0)]


def test_vmax_on_query_lo_is_counted():
    """The ISSUE repro: [2.0, 2.5] touches (1, 2) at vmax == lo and
    overlaps (2, 3) — exactly two candidates, not one."""
    stats = stats_for(REPRO_INTERVALS)
    assert stats.estimate_candidates(2.0, 2.5) == 2.0


def test_vmin_on_query_hi_is_counted():
    """Mirror side: the point query [2.0, 2.0] touches (1, 2) at
    vmax == lo and (2, 3) at vmin == hi — both count."""
    stats = stats_for(REPRO_INTERVALS)
    assert stats.estimate_candidates(2.0, 2.0) == 2.0
    assert stats.estimate_candidates(1.0, 2.0) == 3.0


def test_query_between_gaps():
    """[3.5, 4.5] falls in the gap between (2, 3) and (5, 6): off the
    histogram grid the estimate interpolates, but it stays within one
    bin's mass of the true zero and never goes negative."""
    stats = stats_for(REPRO_INTERVALS)
    estimate = stats.estimate_candidates(3.5, 4.5)
    assert 0.0 <= estimate <= 2.0
    # At grid values the gap's edges are exact again.
    assert stats.estimate_candidates(3.0, 5.0) == 2.0


def test_query_entirely_below_and_above():
    stats = stats_for(REPRO_INTERVALS)
    assert stats.estimate_candidates(-2.0, -1.0) == 0.0
    assert stats.estimate_candidates(10.0, 11.0) == 0.0


def test_degenerate_constant_field():
    """Eight cells all pinned at 5.0: the point query [5.0, 5.0] must
    report every cell (the linspace grid would collapse here)."""
    stats = stats_for([(5.0, 5.0)] * 8)
    assert stats.estimate_candidates(5.0, 5.0) == 8.0
    assert stats.estimate_selectivity(5.0, 5.0) == 1.0
    assert stats.estimate_candidates(4.0, 4.5) == 0.0


def test_point_queries_at_every_endpoint():
    stats = stats_for(REPRO_INTERVALS)
    vmins = np.array([a for a, _ in REPRO_INTERVALS])
    vmaxs = np.array([b for _, b in REPRO_INTERVALS])
    for v in np.unique(np.concatenate([vmins, vmaxs])):
        assert stats.estimate_candidates(v, v) == \
            exact_stabbing(vmins, vmaxs, v, v)


# ---------------------------------------------------- hypothesis suite

# A small value pool keeps the distinct endpoint count within the bin
# budget, so the histogram grid *is* the endpoint set and any query
# whose endpoints sit on data values must be answered exactly —
# including every touching-endpoint configuration.
small_values = st.integers(min_value=0, max_value=24).map(float)
small_intervals = st.lists(
    st.tuples(small_values, small_values).map(sorted),
    min_size=1, max_size=40)


@st.composite
def intervals_with_grid_query(draw):
    intervals = draw(small_intervals)
    points = sorted({v for ab in intervals for v in ab})
    lo = draw(st.sampled_from(points))
    hi = draw(st.sampled_from(points))
    return intervals, min(lo, hi), max(lo, hi)


@given(case=intervals_with_grid_query())
@settings(max_examples=200, deadline=None)
def test_exact_when_query_sits_on_data(case):
    intervals, lo, hi = case
    stats = stats_for(intervals, bins=64)
    vmins = [a for a, _ in intervals]
    vmaxs = [b for _, b in intervals]
    assert stats.estimate_candidates(lo, hi) == \
        exact_stabbing(vmins, vmaxs, lo, hi)


finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
dense_intervals = st.lists(
    st.tuples(finite, finite).map(sorted), min_size=2, max_size=120)


@given(intervals=dense_intervals, lo=finite, hi=finite)
@settings(max_examples=200, deadline=None)
def test_error_bounded_by_one_bin_mass(intervals, lo, hi):
    """With a coarse grid each of the estimator's two histogram terms
    interpolates inside one bin, and the true count lies between that
    bin's table values — so the total error is at most the heaviest
    bin's mass per table."""
    lo, hi = min(lo, hi), max(lo, hi)
    stats = stats_for(intervals, bins=8)
    vmins = [a for a, _ in intervals]
    vmaxs = [b for _, b in intervals]
    exact = exact_stabbing(vmins, vmaxs, lo, hi)
    estimate = stats.estimate_candidates(lo, hi)
    slack = (float(np.max(np.diff(stats.cum_low), initial=0.0))
             + float(np.max(np.diff(stats.cum_high_strict), initial=0.0)))
    assert abs(estimate - exact) <= slack + 1e-6
    assert 0.0 <= estimate <= stats.num_cells


@given(intervals=small_intervals)
@settings(max_examples=100, deadline=None)
def test_full_range_query_counts_everything(intervals):
    stats = stats_for(intervals, bins=64)
    assert stats.estimate_candidates(stats.value_lo,
                                     stats.value_hi) == len(intervals)


# ------------------------------------------------- planner stability

@pytest.fixture(scope="module")
def planner_index():
    field = DEMField(fractal_dem_heights(16, 0.9, seed=3))
    return IHilbertIndex(field)


def test_plan_choice_stable_at_bin_edges(planner_index):
    """Queries sitting exactly on histogram bin edges must plan the
    same as the 1-ulp-widened query: the boundary fix means no cell
    flickers in or out of the estimate at a grid value."""
    index = planner_index
    stats = index.statistics()
    for edge in stats.edges:
        e = float(edge)
        at_edge = estimate_plan(index, e, e)
        widened = estimate_plan(index, np.nextafter(e, -np.inf),
                                np.nextafter(e, np.inf))
        assert at_edge.path == widened.path
        assert at_edge == estimate_plan(index, e, e)  # deterministic


def test_estimates_exact_at_bin_edges(planner_index):
    """On a field whose distinct endpoints fit the bin budget the grid
    *is* the endpoint set, so edge-value queries are exact."""
    field = DEMField(fractal_dem_heights(4, 0.9, seed=5))
    records = field.cell_records()
    vmins = records["vmin"].astype(np.float64)
    vmaxs = records["vmax"].astype(np.float64)
    stats = FieldStatistics.from_intervals(vmins, vmaxs, bins=256)
    assert len(stats.edges) <= 257
    for edge in stats.edges:
        e = float(edge)
        assert stats.estimate_candidates(e, e) == \
            exact_stabbing(vmins, vmaxs, e, e)


def test_plan_extremes(planner_index):
    """Sanity on the choice itself: the full-range query sweeps the
    file (scan) and an empty-range query off the top plans filtered."""
    index = planner_index
    stats = index.statistics()
    full = estimate_plan(index, stats.value_lo, stats.value_hi)
    assert full.path == "scan"
    empty = estimate_plan(index, stats.value_hi + 1.0,
                          stats.value_hi + 2.0)
    assert empty.path == "filtered"
    assert empty.est_pages == 0

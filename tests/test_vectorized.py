"""Vectorized-engine equivalence: the fast path changes nothing but time.

The vectorized executor (``engine="vectorized"``, the default) must be
observationally identical to the scalar page-at-a-time path
(``engine="scalar"``): same candidate sets, same answer areas, and the
same :class:`~repro.storage.stats.IOStats` field by field — page counts,
sequential/random classification, cache hits — across the full matrix of
{DEM, TIN} fields × {LinearScan, I-All, I-Hilbert} methods × {list,
mmap} disk backends.  Plus hypothesis round-trips of the shared
frame→records codec both engines decode through.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    ValueQuery,
)
from repro.field import DEMField
from repro.storage.codec import decode_pages, decode_records
from repro.synth import fractal_dem_heights, lyon_like

METHODS = {
    "LinearScan": LinearScanIndex,
    "I-All": IAllIndex,
    "I-Hilbert": IHilbertIndex,
}

FIELDS = {
    "dem": lambda: DEMField(fractal_dem_heights(24, 0.6, seed=11)),
    "tin": lambda: lyon_like(num_sites=220, seed=7),
}


def queries_for(field) -> list[ValueQuery]:
    """Interval, exact and one-sided queries over the value range."""
    rng = np.random.default_rng(42)
    vr = field.value_range
    span = vr.hi - vr.lo
    queries = [
        ValueQuery(vr.lo, vr.hi),                    # everything
        ValueQuery.exact(float(field.cell_records()["vmin"][0])),
        ValueQuery.at_least(vr.lo + 0.5 * span, vr.hi),
    ]
    for _ in range(12):
        lo = vr.lo + rng.random() * span
        queries.append(ValueQuery(lo, min(vr.hi, lo + rng.random()
                                          * 0.2 * span)))
    return queries


@pytest.fixture(scope="module", params=sorted(FIELDS))
def field(request):
    return FIELDS[request.param]()


@pytest.mark.parametrize("method", sorted(METHODS))
@pytest.mark.parametrize("backend", ["list", "mmap"])
def test_vectorized_equals_scalar(field, method, backend, tmp_path_factory):
    """Answers AND I/O accounting match the scalar engine exactly."""
    kwargs = {"disk_backend": backend}
    vec = METHODS[method](field, engine="vectorized", **kwargs)
    scl = METHODS[method](field, engine="scalar", **kwargs)
    for query in queries_for(field):
        for index in (vec, scl):
            index.clear_caches()
            index.stats.reset()
        rv = vec.query(query)
        rs = scl.query(query)
        assert rv.candidate_count == rs.candidate_count, query
        assert rv.area == rs.area, query
        assert rv.io == rs.io, query
        assert vec.stats == scl.stats, query


@pytest.mark.parametrize("method", sorted(METHODS))
def test_vectorized_equals_scalar_warm_cache(field, method):
    """The batched pool fetch keeps hit/miss accounting identical."""
    vec = METHODS[method](field, engine="vectorized", cache_pages=64)
    scl = METHODS[method](field, engine="scalar", cache_pages=64)
    for query in queries_for(field)[:8]:
        rv = vec.query(query)     # caches deliberately NOT cleared
        rs = scl.query(query)
        assert rv.candidate_count == rs.candidate_count
        assert rv.area == rs.area
        assert rv.io == rs.io
    assert vec.stats == scl.stats
    assert vec.store.pool.counters() == scl.store.pool.counters()


def test_engine_validated():
    field = FIELDS["dem"]()
    with pytest.raises(ValueError, match="engine"):
        LinearScanIndex(field, engine="simd")


def test_scalar_engine_is_preserved_on_candidates():
    """The scalar escape hatch actually takes the per-page path."""
    field = FIELDS["dem"]()
    index = LinearScanIndex(field, engine="scalar")
    assert not index._vector_fetch_ok()
    index = LinearScanIndex(field, engine="vectorized")
    assert index._vector_fetch_ok()


# -- codec round-trips -------------------------------------------------------

RECORD_DTYPE = np.dtype([("vmin", "<f4"), ("vmax", "<f4"),
                         ("cell", "<i8")])


@st.composite
def record_arrays(draw, max_len=64):
    n = draw(st.integers(min_value=0, max_value=max_len))
    arr = np.zeros(n, dtype=RECORD_DTYPE)
    floats = st.floats(allow_nan=False, width=32)
    arr["vmin"] = draw(st.lists(floats, min_size=n, max_size=n))
    arr["vmax"] = draw(st.lists(floats, min_size=n, max_size=n))
    arr["cell"] = draw(st.lists(
        st.integers(min_value=-2**62, max_value=2**62),
        min_size=n, max_size=n))
    return arr


@given(arr=record_arrays())
@settings(max_examples=100, deadline=None)
def test_codec_roundtrip_single_frame(arr):
    """decode_records(tobytes) is the identity (bit-for-bit)."""
    out = decode_records(arr.tobytes(), RECORD_DTYPE, len(arr))
    assert out.dtype == RECORD_DTYPE
    assert out.tobytes() == arr.tobytes()


@given(arrs=st.lists(record_arrays(max_len=16), min_size=0, max_size=8))
@settings(max_examples=100, deadline=None)
def test_codec_roundtrip_multi_frame(arrs):
    """decode_pages over per-page frames equals the concatenation."""
    payloads = [a.tobytes() for a in arrs]
    counts = [len(a) for a in arrs]
    out = decode_pages(payloads, RECORD_DTYPE, counts)
    want = (np.concatenate(arrs) if arrs
            else np.empty(0, dtype=RECORD_DTYPE))
    assert out.tobytes() == want.tobytes()
    assert len(out) == sum(counts)


def test_codec_offset_and_inferred_count():
    arr = np.arange(6, dtype=np.int64)
    raw = b"\x00" * 8 + arr.tobytes()
    out = decode_records(raw, np.int64, offset=8)
    assert out.tolist() == arr.tolist()


def test_codec_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        decode_pages([b""], np.int64, [0, 0])

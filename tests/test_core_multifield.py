"""Unit tests for conjunctive multi-field queries (ocean scenario, §1)."""

import numpy as np
import pytest

from repro.core import IHilbertIndex, LinearScanIndex, conjunctive_query
from repro.field import DEMField


def make_pair():
    """Two co-registered fields over one 8×8 grid.

    'Temperature' grows along x, 'salinity' along y, so conjunction
    regions are axis-aligned and easy to reason about.
    """
    coords = np.arange(9, dtype=float)
    temperature = DEMField(np.tile(coords, (9, 1)))            # = x
    salinity = DEMField(np.tile(coords[:, None], (1, 9)))      # = y
    return temperature, salinity


def test_conjunction_area_is_rectangle():
    temperature, salinity = make_pair()
    result = conjunctive_query(
        [IHilbertIndex(temperature), IHilbertIndex(salinity)],
        [(2.0, 5.0), (1.0, 4.0)])
    # Region: 2<=x<=5 and 1<=y<=4 -> a 3x3 square.
    assert result.area == pytest.approx(9.0)
    assert result.common_cells > 0


def test_conjunction_matches_any_index_combination():
    temperature, salinity = make_pair()
    a = conjunctive_query(
        [LinearScanIndex(temperature), LinearScanIndex(salinity)],
        [(2.0, 5.0), (1.0, 4.0)])
    b = conjunctive_query(
        [IHilbertIndex(temperature), IHilbertIndex(salinity)],
        [(2.0, 5.0), (1.0, 4.0)])
    assert a.area == pytest.approx(b.area)
    assert a.common_cells == b.common_cells


def test_conjunction_with_regions():
    temperature, salinity = make_pair()
    result = conjunctive_query(
        [IHilbertIndex(temperature), IHilbertIndex(salinity)],
        [(2.0, 5.0), (1.0, 4.0)], with_regions=True)
    assert result.regions
    assert sum(r.area for r in result.regions) == pytest.approx(result.area)
    for region in result.regions:
        for x, y in region.polygon:
            assert 2.0 - 1e-9 <= x <= 5.0 + 1e-9
            assert 1.0 - 1e-9 <= y <= 4.0 + 1e-9


def test_conjunction_empty_when_bands_disjoint_in_space():
    temperature, salinity = make_pair()
    result = conjunctive_query(
        [IHilbertIndex(temperature), IHilbertIndex(salinity)],
        [(0.0, 1.0), (7.0, 8.0)])
    # x in [0,1] and y in [7,8]: a 1x1 corner square.
    assert result.area == pytest.approx(1.0)


def test_conjunction_no_common_cells():
    temperature, _salinity = make_pair()
    other = DEMField(np.zeros((9, 9)))
    result = conjunctive_query(
        [IHilbertIndex(temperature), IHilbertIndex(other)],
        [(2.0, 3.0), (5.0, 6.0)])   # 'other' is all zeros: no candidates
    assert result.common_cells == 0
    assert result.area == 0.0


def test_validation_errors():
    temperature, salinity = make_pair()
    idx = IHilbertIndex(temperature)
    with pytest.raises(ValueError):
        conjunctive_query([idx], [(0.0, 1.0)])
    with pytest.raises(ValueError):
        conjunctive_query([idx, IHilbertIndex(salinity)], [(0.0, 1.0)])
    small = DEMField(np.zeros((3, 3)))
    with pytest.raises(ValueError):
        conjunctive_query([idx, IHilbertIndex(small)],
                          [(0.0, 1.0), (0.0, 1.0)])


def test_three_way_conjunction():
    temperature, salinity = make_pair()
    combined = DEMField(temperature.heights + salinity.heights)   # x + y
    result = conjunctive_query(
        [IHilbertIndex(temperature), IHilbertIndex(salinity),
         IHilbertIndex(combined)],
        [(2.0, 5.0), (1.0, 4.0), (0.0, 6.0)])
    # Third band x+y<=6 clips the 3x3 square's upper-right corner.
    assert 0.0 < result.area < 9.0


def test_per_field_candidate_counts():
    temperature, salinity = make_pair()
    result = conjunctive_query(
        [IHilbertIndex(temperature), IHilbertIndex(salinity)],
        [(2.0, 5.0), (1.0, 4.0)])
    assert len(result.per_field_candidates) == 2
    assert all(c > 0 for c in result.per_field_candidates)
    assert result.io.page_reads > 0

"""Shared fixtures: small deterministic fields of every kind."""

from __future__ import annotations

import numpy as np
import pytest

from repro.field import DEMField, TINField
from repro.synth import fractal_dem_heights, monotonic_heights


#: The DEM of paper Fig. 1 / Fig. 5 (3×3 cells, values 40..120).
PAPER_FIG1_HEIGHTS = np.array([
    [40.0, 48.0, 56.0, 80.0],
    [50.0, 60.0, 90.0, 84.0],
    [80.0, 80.0, 110.0, 120.0],
    [64.0, 74.0, 110.0, 88.0],
])


@pytest.fixture
def paper_dem() -> DEMField:
    """The 3×3-cell continuous DEM from paper Fig. 1."""
    return DEMField(PAPER_FIG1_HEIGHTS.copy())


@pytest.fixture
def smooth_dem() -> DEMField:
    """A 32×32 smooth fractal DEM (H=0.9)."""
    return DEMField(fractal_dem_heights(32, 0.9, seed=7))


@pytest.fixture
def rough_dem() -> DEMField:
    """A 32×32 rough fractal DEM (H=0.2)."""
    return DEMField(fractal_dem_heights(32, 0.2, seed=7))


@pytest.fixture
def mono_dem() -> DEMField:
    """A 16×16 monotonic DEM (w = x + y)."""
    return DEMField(monotonic_heights(16))


@pytest.fixture
def small_tin() -> TINField:
    """A ~200-triangle TIN over random sites with a smooth value field."""
    rng = np.random.default_rng(11)
    points = rng.uniform(0.0, 100.0, size=(120, 2))
    values = (np.sin(points[:, 0] / 20.0) * 10.0
              + points[:, 1] * 0.3 + 50.0)
    return TINField(points, values)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for per-test randomness."""
    return np.random.default_rng(12345)

"""Failure-matrix tests: fault kind × access method × workload.

The contract under test: a query against faulty storage returns the
exact answer or raises a typed error (`TransientIOError`,
`CorruptPageError`) — it never returns a silently wrong answer.  With
``on_fault="skip"`` it may instead return an explicitly *degraded*
answer that reports every skipped page.  All fault schedules are driven
by one seeded RNG, so every test here is exactly reproducible.

Everything is parametrized over both storage backends: the per-page
``list`` backend and the zero-copy ``mmap`` backend with lazy batch
checksum verification must be indistinguishable under every fault kind
— same typed errors, same counters, same degraded answers.
"""

import pytest

from repro.core import (
    BatchQueryEngine,
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    ValueQuery,
)
from repro.obs.metrics import REGISTRY
from repro.storage import (
    CorruptPageError,
    DiskManager,
    FaultInjector,
    FaultSpec,
    MmapDiskManager,
    PageFault,
    RetryingDiskManager,
    RetryingMmapDiskManager,
    RetryPolicy,
    TransientIOError,
)

METHODS = {
    "LinearScan": LinearScanIndex,
    "I-All": IAllIndex,
    "I-Hilbert": IHilbertIndex,
}

BACKENDS = ["list", "mmap"]
DISK_CLASSES = {"list": DiskManager, "mmap": MmapDiskManager}
RETRYING_CLASSES = {"list": RetryingDiskManager,
                    "mmap": RetryingMmapDiskManager}


def _workloads(field) -> list[ValueQuery]:
    """Three query shapes: full-range, narrow band, exact value."""
    vr = field.value_range
    mid = (vr.lo + vr.hi) / 2
    return [
        ValueQuery(vr.lo, vr.hi),
        ValueQuery(vr.lo + 0.3 * vr.length, vr.lo + 0.4 * vr.length),
        ValueQuery.exact(mid),
    ]


# -- FaultSpec / FaultInjector mechanics ------------------------------------


def test_fault_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultSpec(kind="gamma_ray")


def test_fault_spec_rejects_bad_probability():
    with pytest.raises(ValueError):
        FaultSpec(kind="read_error", probability=1.5)


def _one_page_disk(payload=b"stored payload", backend="list"):
    disk = DISK_CLASSES[backend](page_size=80)
    pid = disk.allocate()
    disk.write(pid, payload)
    return disk, pid


@pytest.mark.parametrize("backend", BACKENDS)
def test_schedule_fires_at_exact_operations(backend):
    disk, pid = _one_page_disk(backend=backend)
    injector = FaultInjector(seed=0)
    injector.add("read_error", schedule={1})
    disk.fault_injector = injector
    disk.read(pid)                      # op 0: clean
    with pytest.raises(TransientIOError):
        disk.read(pid)                  # op 1: scheduled fault
    disk.read(pid)                      # op 2: clean again
    assert [e.op_index for e in injector.events] == [1]
    assert injector.events[0].kind == "read_error"
    assert injector.events[0].page_id == pid


@pytest.mark.parametrize("backend", BACKENDS)
def test_page_targeting_limits_blast_radius(backend):
    disk = DISK_CLASSES[backend](page_size=80)
    a, b = disk.allocate(), disk.allocate()
    disk.write(a, b"page a")
    disk.write(b, b"page b")
    injector = FaultInjector(seed=0)
    injector.add("read_error", page_ids={b})
    disk.fault_injector = injector
    assert disk.read(a)[:6] == b"page a"
    with pytest.raises(TransientIOError):
        disk.read(b)


@pytest.mark.parametrize("backend", BACKENDS)
def test_max_faults_bounds_the_injection(backend):
    disk, pid = _one_page_disk(backend=backend)
    disk.fault_injector = FaultInjector(seed=0)
    disk.fault_injector.add("read_error", max_faults=2)
    for _ in range(2):
        with pytest.raises(TransientIOError):
            disk.read(pid)
    # Budget spent: reads succeed from now on.
    assert disk.read(pid)[:6] == b"stored"
    assert len(disk.fault_injector.events) == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_latency_is_accounted_not_fatal(backend):
    disk, pid = _one_page_disk(backend=backend)
    injector = FaultInjector(seed=0)
    injector.add("latency", latency_ms=2.5, schedule={0, 1})
    disk.fault_injector = injector
    disk.read(pid)
    disk.read(pid)
    disk.read(pid)
    assert injector.injected_latency_ms == pytest.approx(5.0)
    assert [e.kind for e in injector.events] == ["latency", "latency"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_bit_flip_damage_is_permanent(backend):
    disk, pid = _one_page_disk(backend=backend)
    disk.fault_injector = FaultInjector(seed=5)
    disk.fault_injector.add("bit_flip", max_faults=1)
    with pytest.raises(CorruptPageError):
        disk.read(pid)
    # Detaching the injector does not heal the page: the stored bytes
    # themselves are damaged, exactly like real bit rot.
    disk.fault_injector = None
    with pytest.raises(CorruptPageError):
        disk.read(pid)
    assert disk.stats.checksum_failures == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_torn_write_detected_on_next_read(backend):
    disk, pid = _one_page_disk(b"first version of this page",
                               backend=backend)
    injector = FaultInjector(seed=3)
    injector.add("torn_write")
    disk.fault_injector = injector
    disk.write(pid, bytes(range(64)))
    disk.fault_injector = None
    assert [e.kind for e in injector.events] == ["torn_write"]
    # The new header landed but only a prefix of the new payload did;
    # the checksum catches the mixture.
    with pytest.raises(CorruptPageError):
        disk.read(pid)


@pytest.mark.parametrize("backend", BACKENDS)
def test_disk_level_fault_sequence_is_seed_deterministic(backend):
    def run(seed):
        disk = DISK_CLASSES[backend](page_size=80)
        for i in range(8):
            disk.write(disk.allocate(), bytes([i]) * 10)
        injector = FaultInjector(seed=seed)
        injector.add("read_error", probability=0.4)
        disk.fault_injector = injector
        outcomes = []
        for pid in list(range(8)) * 4:
            try:
                disk.read(pid)
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("fault")
        return outcomes, injector.events

    outcomes_a, events_a = run(seed=42)
    outcomes_b, events_b = run(seed=42)
    assert outcomes_a == outcomes_b
    assert events_a == events_b
    assert "fault" in outcomes_a and "ok" in outcomes_a
    _outcomes_c, events_c = run(seed=43)
    assert events_c != events_a


# -- retry policy ------------------------------------------------------------


def test_retry_policy_backoff_is_exponential():
    policy = RetryPolicy(max_attempts=4, backoff_base_ms=1.0,
                         backoff_factor=2.0)
    assert [policy.backoff_ms(a) for a in (1, 2, 3)] == [1.0, 2.0, 4.0]


def test_retry_policy_rejects_zero_attempts():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_retries_cure_transient_faults(backend):
    disk = RETRYING_CLASSES[backend](
        page_size=80, retry_policy=RetryPolicy(max_attempts=4))
    pid = disk.allocate()
    disk.write(pid, b"survives")
    disk.fault_injector = FaultInjector(seed=0)
    disk.fault_injector.add("read_error", max_faults=2)
    assert disk.read(pid)[:8] == b"survives"
    assert disk.stats.read_retries == 2
    # Every attempt is an accounted transfer.
    assert disk.stats.page_reads == 3
    assert disk.simulated_backoff_ms == pytest.approx(1.0 + 2.0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_retry_exhaustion_raises_typed_error(backend):
    disk = RETRYING_CLASSES[backend](
        page_size=80, retry_policy=RetryPolicy(max_attempts=3))
    pid = disk.allocate()
    disk.fault_injector = FaultInjector(seed=0)
    disk.fault_injector.add("read_error")   # every attempt fails
    with pytest.raises(TransientIOError):
        disk.read(pid)
    assert disk.stats.read_retries == 2     # 3 attempts = 2 retries


@pytest.mark.parametrize("backend", BACKENDS)
def test_corruption_is_never_retried(backend):
    disk = RETRYING_CLASSES[backend](
        page_size=80, retry_policy=RetryPolicy(max_attempts=4))
    pid = disk.allocate()
    disk.write(pid, b"rotten")
    disk._flip_bit(pid, byte_index=2, bit=4)
    with pytest.raises(CorruptPageError):
        disk.read(pid)
    # Re-reading rotten bytes cannot help; exactly one attempt was made.
    assert disk.stats.read_retries == 0
    assert disk.stats.page_reads == 1


# -- the failure matrix ------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kind", ["read_error", "bit_flip"])
@pytest.mark.parametrize("method", sorted(METHODS))
def test_matrix_exact_answer_or_typed_error(method, kind, backend,
                                            smooth_dem):
    """Under random faults every query is exactly right or typed-fails."""
    clean = METHODS[method](smooth_dem, disk_backend=backend)
    queries = _workloads(smooth_dem)
    expected = []
    for q in queries:
        clean.clear_caches()
        expected.append(clean.query(q).candidate_count)

    faulty = METHODS[method](smooth_dem, disk_backend=backend)
    injector = faulty.inject_faults(FaultInjector(seed=11))
    injector.add(kind, probability=0.25)
    outcomes = []
    for q, want in zip(queries, expected):
        faulty.clear_caches()
        try:
            got = faulty.query(q).candidate_count
        except (TransientIOError, CorruptPageError):
            outcomes.append("error")
        else:
            assert got == want, (
                f"{method}/{kind}: survived the fault schedule but "
                f"answered {got} instead of {want}")
            outcomes.append("exact")
    # The schedule actually fired; the seed makes this reproducible.
    assert injector.events


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", sorted(METHODS))
def test_matrix_retry_policy_recovers_exact_answers(method, backend,
                                                    smooth_dem):
    """With retries enabled, transient faults cost I/O, not correctness."""
    clean = METHODS[method](smooth_dem)
    policy = RetryPolicy(max_attempts=5, backoff_base_ms=0.5)
    faulty = METHODS[method](smooth_dem, retry_policy=policy,
                             disk_backend=backend)
    injector = faulty.inject_faults(FaultInjector(seed=3))
    injector.add("read_error", max_faults=3)
    for q in _workloads(smooth_dem):
        clean.clear_caches()
        faulty.clear_caches()
        assert (faulty.query(q).candidate_count
                == clean.query(q).candidate_count)
    assert faulty.stats.read_retries == 3
    assert len(injector.events) == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_matrix_fault_sequence_is_seed_deterministic(backend, smooth_dem):
    def run(seed):
        index = IHilbertIndex(smooth_dem, disk_backend=backend)
        injector = index.inject_faults(FaultInjector(seed=seed))
        injector.add("read_error", probability=0.5)
        outcomes = []
        for q in _workloads(smooth_dem):
            index.clear_caches()
            try:
                outcomes.append(index.query(q).candidate_count)
            except TransientIOError as exc:
                outcomes.append(("transient", exc.disk, exc.page_id))
        return outcomes, injector.events

    outcomes_a, events_a = run(seed=21)
    outcomes_b, events_b = run(seed=21)
    assert outcomes_a == outcomes_b
    assert events_a == events_b


def test_backends_agree_on_fault_outcomes(smooth_dem):
    """Same seed, same schedule: both backends fail identically."""
    def run(backend):
        index = IHilbertIndex(smooth_dem, disk_backend=backend)
        injector = index.inject_faults(FaultInjector(seed=21))
        injector.add("read_error", probability=0.5)
        outcomes = []
        for q in _workloads(smooth_dem):
            index.clear_caches()
            try:
                outcomes.append(index.query(q).candidate_count)
            except TransientIOError as exc:
                outcomes.append(("transient", exc.disk, exc.page_id))
        return outcomes, [(e.kind, e.page_id, e.op_index)
                          for e in injector.events]

    assert run("list") == run("mmap")


# -- graceful degradation (on_fault="skip") ----------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_skip_mode_is_an_explicit_lower_bound(backend, smooth_dem):
    index = LinearScanIndex(smooth_dem, disk_backend=backend)
    vr = smooth_dem.value_range
    q = ValueQuery(vr.lo, vr.hi)
    total = index.query(q).candidate_count
    assert total == len(index.store)

    lost = len(index.store.read_page(2))
    pid = index.store.page_ids[2]
    index.data_disk._flip_bit(pid, byte_index=5, bit=1)
    index.clear_caches()
    result = index.query(q, on_fault="skip")
    assert result.degraded
    assert result.candidate_count == total - lost
    assert [f.page_id for f in result.faults] == [pid]
    assert result.faults[0].kind == "CorruptPageError"
    assert result.faults[0].disk == "data"
    # The default mode refuses to answer from the same damage.
    index.clear_caches()
    with pytest.raises(CorruptPageError):
        index.query(q)


def test_clean_query_is_never_marked_degraded(smooth_dem):
    index = LinearScanIndex(smooth_dem)
    result = index.query(_workloads(smooth_dem)[0], on_fault="skip")
    assert not result.degraded
    assert result.faults == []


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", ["I-All", "I-Hilbert"])
def test_skip_mode_indexed_methods_report_the_page(method, backend,
                                                   smooth_dem):
    index = METHODS[method](smooth_dem, disk_backend=backend)
    q = _workloads(smooth_dem)[0]
    clean_count = index.query(q).candidate_count
    pid = index.store.page_ids[1]
    index.data_disk._flip_bit(pid, byte_index=0, bit=7)
    index.clear_caches()
    result = index.query(q, on_fault="skip")
    assert result.degraded
    assert result.candidate_count < clean_count
    assert {f.page_id for f in result.faults} == {pid}
    assert all(isinstance(f, PageFault) for f in result.faults)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", ["I-All", "I-Hilbert"])
def test_index_page_faults_always_raise(method, backend, smooth_dem):
    # A damaged tree cannot bound what it missed, so skip mode still
    # raises for index-file pages.
    index = METHODS[method](smooth_dem, disk_backend=backend)
    index.index_disk._flip_bit(index.tree._root_id, byte_index=0, bit=0)
    index.clear_caches()
    with pytest.raises(CorruptPageError):
        index.query(_workloads(smooth_dem)[0], on_fault="skip")


def test_query_rejects_unknown_fault_mode(smooth_dem):
    index = LinearScanIndex(smooth_dem)
    with pytest.raises(ValueError):
        index.query(_workloads(smooth_dem)[0], on_fault="ignore")


@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_mode_is_reset_after_a_degraded_query(backend, smooth_dem):
    index = LinearScanIndex(smooth_dem, disk_backend=backend)
    pid = index.store.page_ids[0]
    index.data_disk._flip_bit(pid, byte_index=1, bit=1)
    q = _workloads(smooth_dem)[0]
    index.query(q, on_fault="skip")
    index.clear_caches()
    # The skip mode must not leak into the next (default-mode) query.
    with pytest.raises(CorruptPageError):
        index.query(q)


# -- batch engine ------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_skip_attaches_faults_to_the_fetching_member(backend,
                                                           smooth_dem):
    index = IHilbertIndex(smooth_dem, disk_backend=backend)
    vr = smooth_dem.value_range
    pid = index.store.page_ids[1]
    index.data_disk._flip_bit(pid, byte_index=3, bit=2)
    index.clear_caches()
    engine = BatchQueryEngine(index)
    # Two overlapping queries merge into one group; the fault belongs
    # to the member that performed the group's fetch.
    queries = [ValueQuery(vr.lo, vr.hi),
               ValueQuery(vr.lo, (vr.lo + vr.hi) / 2)]
    batch = engine.run(queries, on_fault="skip")
    assert batch.groups == 1
    flagged = [r for r in batch.results if r.faults]
    assert len(flagged) == 1
    assert flagged[0].io.page_reads > 0
    assert flagged[0].faults[0].page_id == pid


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_default_mode_raises(backend, smooth_dem):
    index = IHilbertIndex(smooth_dem, disk_backend=backend)
    pid = index.store.page_ids[1]
    index.data_disk._flip_bit(pid, byte_index=3, bit=2)
    index.clear_caches()
    engine = BatchQueryEngine(index)
    vr = smooth_dem.value_range
    with pytest.raises(CorruptPageError):
        engine.run([ValueQuery(vr.lo, vr.hi)])


def test_batch_rejects_unknown_fault_mode(smooth_dem):
    engine = BatchQueryEngine(LinearScanIndex(smooth_dem))
    with pytest.raises(ValueError):
        engine.run(_workloads(smooth_dem), on_fault="ignore")


# -- metrics -----------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_counters_reach_the_registry(backend, smooth_dem):
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        index = LinearScanIndex(smooth_dem,
                                retry_policy=RetryPolicy(max_attempts=4),
                                disk_backend=backend)
        injector = index.inject_faults(FaultInjector(seed=0))
        injector.add("read_error", max_faults=2)
        pid = index.store.page_ids[0]
        index.data_disk._flip_bit(pid, byte_index=0, bit=0)
        result = index.query(_workloads(smooth_dem)[0], on_fault="skip")
        assert result.degraded
        retries = REGISTRY.get("repro_disk_read_retries_total")
        assert retries.value(disk="data") == 2
        injected = REGISTRY.get("repro_disk_injected_faults_total")
        assert injected.value(disk="data", kind="read_error") == 2
        corrupt = REGISTRY.get("repro_disk_corrupt_pages_total")
        assert corrupt.value(disk="data") == 1
        degraded = REGISTRY.get("repro_queries_degraded_total")
        assert degraded.value(method="LinearScan") == 1
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


# -- the remote tier ---------------------------------------------------------
#
# Cold pages live in a latency-modeled object store and are fetched on
# demand into a per-disk local cache.  The same fault contract applies:
# transient fetch errors are retried with backoff, permanent corruption
# surfaces as a typed `CorruptPageError` on the first attempt, and
# `on_fault="skip"` degrades one shard without poisoning the gather.

from repro.core.query import ValueQuery as _VQ  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402
from repro.storage import (  # noqa: E402
    RemoteFetchError,
    RetryingRemoteDiskManager,
    SimulatedObjectStore,
    remote_backend,
)


def _remote_disk(**kwargs):
    store = SimulatedObjectStore()
    disk = RetryingRemoteDiskManager(
        page_size=80, store=store, cache_pages=0, **kwargs)
    pid = disk.allocate()
    disk.write(pid, b"cold bytes")
    return store, disk, pid


def test_remote_transient_fetch_errors_are_retried_with_backoff():
    store, disk, pid = _remote_disk(
        retry_policy=RetryPolicy(max_attempts=4))
    store.fail_next_gets([0, 1])        # first two fetches fail
    assert disk.read(pid)[:10] == b"cold bytes"
    assert disk.stats.read_retries == 2
    assert disk.simulated_backoff_ms == pytest.approx(1.0 + 2.0)
    assert store.counters()["failed_gets"] == 2
    # Every attempt was a charged round-trip to the store.
    assert store.counters()["gets"] == 3


def test_remote_fetch_exhaustion_raises_typed_error():
    store, disk, pid = _remote_disk(
        retry_policy=RetryPolicy(max_attempts=3))
    store.fail_next_gets(range(10))
    with pytest.raises(TransientIOError):
        disk.read(pid)
    assert disk.stats.read_retries == 2


def test_remote_fetch_error_is_a_transient_io_error():
    assert issubclass(RemoteFetchError, TransientIOError)


def test_remote_permanent_corruption_is_typed_and_never_retried():
    store, disk, pid = _remote_disk(
        retry_policy=RetryPolicy(max_attempts=4))
    store.corrupt(disk._key(pid), byte_index=1, bit=2)
    with pytest.raises(CorruptPageError):
        disk.read(pid)
    assert disk.stats.read_retries == 0


def test_remote_backend_answers_match_local_backend(smooth_dem):
    """An index whose pages live in the object store answers exactly
    like one on local storage, under a transient-fault schedule."""
    plain = IHilbertIndex(smooth_dem, disk_backend="list")
    store = SimulatedObjectStore()
    remote = IHilbertIndex(
        smooth_dem, retry_policy=RetryPolicy(max_attempts=5),
        disk_backend=remote_backend(store, cache_pages=2))
    store.fail_next_gets([0, 3, 7])
    for query in _workloads(smooth_dem):
        expected = plain.query(query)
        got = remote.query(query)
        assert got.candidate_count == expected.candidate_count
        assert got.area == expected.area
    assert store.counters()["failed_gets"] == 3


def test_remote_cache_fetch_and_eviction_accounting(smooth_dem):
    store = SimulatedObjectStore()
    engine = ShardedEngine(smooth_dem, n_shards=2, method="I-Hilbert",
                           remote_store=store, remote_cache_pages=1)
    vr = smooth_dem.value_range
    engine.query(_VQ(vr.lo, vr.hi))
    engine.clear_caches()
    engine.query(_VQ(vr.lo, vr.hi))
    counters = engine.remote_counters()
    assert counters["total"]["fetches"] > 0
    assert counters["total"]["evictions"] > 0
    assert counters["store"]["gets"] == counters["total"]["fetches"]
    # Per-shard attribution covers every shard and sums to the total.
    assert set(counters["shards"]) == {rt.name for rt in engine.shards}
    assert sum(c.get("fetches", 0) for c in counters["shards"].values()) \
        == counters["total"]["fetches"]


def test_remote_skip_degrades_one_shard_without_poisoning_gather(
        smooth_dem):
    store = SimulatedObjectStore()
    engine = ShardedEngine(smooth_dem, n_shards=4, method="I-Hilbert",
                           remote_store=store, remote_cache_pages=0)
    victim = engine.shards[2]
    store.corrupt(f"shard-{victim.uid}/data/0", byte_index=5, bit=1)
    vr = smooth_dem.value_range
    with pytest.raises(CorruptPageError):
        engine.query(_VQ(vr.lo, vr.hi))
    result = engine.query(_VQ(vr.lo, vr.hi), on_fault="skip")
    assert result.degraded
    assert len(result.faults) == 1
    # Healthy shards contributed all their cells.
    missing = smooth_dem.num_cells - result.candidate_count
    assert 0 < missing <= engine.shard_map.page_quantum

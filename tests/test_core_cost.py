"""Unit and property tests for grouping policies (paper §3.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostBasedGrouping, ThresholdGrouping, group_cells


def test_paper_worked_example_costs():
    """Fig. 5: Subfield 1 costs 21/45 before and 31/58 after adding c5."""
    policy = CostBasedGrouping(unit=1.0, avg_query=0.0)
    state = policy.open_group(20.0, 30.0)       # c1, interval size 11
    state = policy.admit(state, 25.0, 34.0)     # c2, size 10
    state = policy.admit(state, 20.0, 30.0)     # c3, size 11
    state = policy.admit(state, 28.0, 40.0)     # c4, size 13
    assert state is not None
    assert policy.cost(state) == pytest.approx(21.0 / 45.0, abs=1e-3)
    # Adding c5 (38..50) would raise the cost to ~31/58: rejected.
    after = (min(state[0], 38.0), max(state[1], 50.0), state[2] + 13.0)
    assert policy.cost(after) == pytest.approx(31.0 / 58.0, abs=1e-3)
    assert policy.admit(state, 38.0, 50.0) is None


def test_paper_worked_example_grouping():
    vmins = [20.0, 25.0, 20.0, 28.0, 38.0]
    vmaxs = [30.0, 34.0, 30.0, 40.0, 50.0]
    groups = group_cells(vmins, vmaxs,
                         CostBasedGrouping(unit=1.0, avg_query=0.0))
    assert groups[0] == (0, 3)
    assert groups[1][0] == 4


def test_cost_grouping_validation():
    with pytest.raises(ValueError):
        CostBasedGrouping(unit=-1.0)
    with pytest.raises(ValueError):
        CostBasedGrouping(unit=0.0, avg_query=0.0)


def test_identical_cells_merge():
    policy = CostBasedGrouping(unit=1.0)
    groups = group_cells([5.0] * 20, [7.0] * 20, policy)
    assert groups == [(0, 19)]


def test_disjoint_values_split():
    policy = CostBasedGrouping(unit=1.0)
    vmins = [0.0, 0.0, 1000.0, 1000.0]
    vmaxs = [1.0, 1.0, 1001.0, 1001.0]
    groups = group_cells(vmins, vmaxs, policy)
    assert groups == [(0, 1), (2, 3)]


def test_threshold_grouping_respects_bound():
    policy = ThresholdGrouping(threshold=5.0, unit=1.0)
    vmins = np.array([0.0, 2.0, 4.0, 6.0, 8.0])
    vmaxs = vmins + 1.0
    groups = group_cells(vmins, vmaxs, policy)
    for start, end in groups:
        extent = vmaxs[start:end + 1].max() - vmins[start:end + 1].min()
        assert extent + 1.0 <= 5.0


def test_threshold_grouping_validation():
    with pytest.raises(ValueError):
        ThresholdGrouping(threshold=0.0)


def test_group_cells_empty():
    assert group_cells([], [], CostBasedGrouping()) == []


def test_group_cells_length_mismatch():
    with pytest.raises(ValueError):
        group_cells([0.0], [1.0, 2.0], CostBasedGrouping())


def test_single_cell_single_group():
    assert group_cells([1.0], [2.0], CostBasedGrouping()) == [(0, 0)]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0, 10, allow_nan=False)),
                min_size=1, max_size=80),
       st.sampled_from(["paper", "normalized", "threshold"]))
def test_property_groups_tile_input(cells, flavor):
    """Every grouping policy must tile [0, n) contiguously."""
    vmins = [lo for lo, _w in cells]
    vmaxs = [lo + w for lo, w in cells]
    if flavor == "paper":
        policy = CostBasedGrouping(unit=1.0, avg_query=0.0)
    elif flavor == "normalized":
        policy = CostBasedGrouping(unit=100.0, avg_query=50.0)
    else:
        policy = ThresholdGrouping(threshold=20.0)
    groups = group_cells(vmins, vmaxs, policy)
    expected = 0
    for start, end in groups:
        assert start == expected
        assert end >= start
        expected = end + 1
    assert expected == len(cells)


@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=2,
                max_size=50))
def test_property_cost_admission_is_strict_improvement(values):
    """When a cell is admitted, the subfield cost strictly decreases."""
    policy = CostBasedGrouping(unit=1.0)
    state = policy.open_group(values[0], values[0] + 1.0)
    for v in values[1:]:
        before = policy.cost(state)
        admitted = policy.admit(state, v, v + 1.0)
        if admitted is None:
            state = policy.open_group(v, v + 1.0)
        else:
            assert policy.cost(admitted) < before
            state = admitted

"""Unit tests for DEMField against the paper's Fig. 1 example."""

import numpy as np
import pytest

from repro.field import DEMField
from repro.geometry import Interval


def test_shape_validation():
    with pytest.raises(ValueError):
        DEMField(np.zeros(4))
    with pytest.raises(ValueError):
        DEMField(np.zeros((1, 5)))
    with pytest.raises(ValueError):
        DEMField(np.zeros((3, 3)), cell_size=0.0)


def test_paper_fig1_structure(paper_dem):
    assert paper_dem.num_cells == 9
    assert paper_dem.rows == 3 and paper_dem.cols == 3
    assert paper_dem.value_range == Interval(40.0, 120.0)
    assert paper_dem.bounds == (0.0, 0.0, 3.0, 3.0)


def test_paper_fig1_cell_intervals(paper_dem):
    # Cell c1 (top-left in Fig. 1) has corners 40, 48, 60, 50.
    assert paper_dem.cell_interval(0) == Interval(40.0, 60.0)
    # Example query of §2.2.2: cells whose interval intersects [55, 59]
    # are c1..c4 (ids 0..3 in row-major order).
    hits = [cid for cid in range(9)
            if paper_dem.cell_interval(cid).intersects(Interval(55.0, 59.0))]
    assert hits == [0, 1, 2, 3]


def test_cell_id_roundtrip(paper_dem):
    for j in range(3):
        for i in range(3):
            cid = paper_dem.cell_id(i, j)
            assert paper_dem.cell_position(cid) == (i, j)


def test_cell_id_bounds(paper_dem):
    with pytest.raises(IndexError):
        paper_dem.cell_id(3, 0)
    with pytest.raises(IndexError):
        paper_dem.cell_position(9)


def test_records_are_self_contained(paper_dem):
    records = paper_dem.cell_records()
    assert len(records) == 9
    rec = records[0]
    assert rec["cell_id"] == 0
    assert tuple(rec["corners"]) == (40.0, 48.0, 60.0, 50.0)
    assert rec["vmin"] == 40.0 and rec["vmax"] == 60.0
    assert (rec["i"], rec["j"]) == (0, 0)


def test_centroids(paper_dem):
    centroids = paper_dem.cell_centroids()
    assert centroids.shape == (9, 2)
    assert tuple(centroids[0]) == (0.5, 0.5)
    assert tuple(centroids[8]) == (2.5, 2.5)


def test_value_at_vertices(paper_dem):
    heights = paper_dem.heights
    for j in (0, 1, 2, 3):
        for i in (0, 1, 2, 3):
            assert paper_dem.value_at(float(i), float(j)) == \
                pytest.approx(float(heights[j, i]), abs=1e-4)


def test_value_at_edge_midpoint_is_linear(paper_dem):
    # Midpoint of the edge between samples 40 and 48.
    assert paper_dem.value_at(0.5, 0.0) == pytest.approx(44.0, abs=1e-4)


def test_value_at_outside_raises(paper_dem):
    with pytest.raises(ValueError):
        paper_dem.value_at(-0.1, 0.0)
    with pytest.raises(ValueError):
        paper_dem.value_at(0.0, 3.5)


def test_locate_cell(paper_dem):
    assert paper_dem.locate_cell(0.5, 0.5) == 0
    assert paper_dem.locate_cell(2.5, 0.5) == 2
    assert paper_dem.locate_cell(2.5, 2.5) == 8
    # Domain boundary clamps into the last cell.
    assert paper_dem.locate_cell(3.0, 3.0) == 8
    assert paper_dem.locate_cell(3.1, 0.0) == -1


def test_cell_size_scales_domain():
    field = DEMField(np.zeros((3, 3)), cell_size=10.0)
    assert field.bounds == (0.0, 0.0, 20.0, 20.0)
    assert field.locate_cell(15.0, 5.0) == 1
    assert field.to_record_space(15.0, 5.0) == (1.5, 0.5)


def test_estimate_area_full_range_is_total(paper_dem):
    records = paper_dem.cell_records()
    area = DEMField.estimate_area(records, 40.0, 120.0)
    assert area == pytest.approx(9.0)


def test_estimate_area_complement(paper_dem):
    records = paper_dem.cell_records()
    low = DEMField.estimate_area(records, 40.0, 75.0)
    high = DEMField.estimate_area(records, 75.0, 120.0)
    assert low + high == pytest.approx(9.0)
    assert 0.0 < low < 9.0


def test_estimate_area_empty_inputs(paper_dem):
    records = paper_dem.cell_records()
    assert DEMField.estimate_area(records[:0], 0.0, 1.0) == 0.0
    assert DEMField.estimate_area(records, 200.0, 300.0) == 0.0


def test_record_triangles_cover_cell(paper_dem):
    rec = paper_dem.cell_records()[4]
    triangles = DEMField.record_triangles(rec)
    assert len(triangles) == 2
    total = 0.0
    for points, values in triangles:
        (x0, y0), (x1, y1), (x2, y2) = points
        total += abs((x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)) / 2.0
        assert len(values) == 3
    assert total == pytest.approx(1.0)


def test_record_mbrs(paper_dem):
    mbrs = DEMField.record_mbrs(paper_dem.cell_records())
    assert mbrs.shape == (9, 4)
    assert tuple(mbrs[0]) == (0.0, 0.0, 1.0, 1.0)
    assert tuple(mbrs[8]) == (2.0, 2.0, 3.0, 3.0)


def test_intervals_array_matches_records(paper_dem):
    arr = paper_dem.intervals_array()
    records = paper_dem.cell_records()
    assert np.array_equal(arr[:, 0], records["vmin"])
    assert np.array_equal(arr[:, 1], records["vmax"])

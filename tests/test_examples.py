"""Smoke tests for the example scripts.

Every example must at least compile; the cheap ones are executed
end-to-end with their output sanity-checked.
"""

import py_compile
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert {"quickstart.py", "ocean_salmon.py", "urban_noise.py",
            "terrain_isoband.py", "geology_volume.py",
            "wind_vectors.py", "contour_map.py",
            "spacetime_weather.py"} <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def _run(path, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart_runs(capsys):
    out = _run(EXAMPLES_DIR / "quickstart.py", capsys=capsys)
    assert "I-Hilbert" in out
    assert "Exact regions" in out


def test_urban_noise_runs(capsys):
    out = _run(EXAMPLES_DIR / "urban_noise.py", capsys=capsys)
    assert "exceeds 80 dB" in out


def test_terrain_isoband_runs(capsys):
    out = _run(EXAMPLES_DIR / "terrain_isoband.py",
               argv=["--size", "32"], capsys=capsys)
    assert "isoband" in out
    assert "#" in out          # the ASCII answer map


def test_spacetime_weather_runs(capsys):
    out = _run(EXAMPLES_DIR / "spacetime_weather.py", capsys=capsys)
    assert "cell-days of heat" in out
    assert "hours" in out

"""Thread-safety hammers for the shared mutable state.

The parallel engine serializes *fetches*, but the buffer pool and the
metrics registry are still shared objects that concurrent code paths may
touch; their internal locks must keep every counter exact — these tests
assert precise totals, not merely "no crash".
"""

import threading

import pytest

from repro.obs.metrics import REGISTRY
from repro.storage import BufferPool, MmapDiskManager, PoolCounters

N_THREADS = 8
ROUNDS = 400


def _hammer(worker):
    """Run ``worker(thread_index)`` on N_THREADS threads, via a barrier."""
    barrier = threading.Barrier(N_THREADS)
    errors = []

    def runner(t):
        try:
            barrier.wait()
            worker(t)
        except BaseException as exc:   # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(t,))
               for t in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


def test_buffer_pool_hammer_keeps_exact_counters():
    disk = MmapDiskManager(page_size=80)
    n_pages = 16
    disk.allocate_many(n_pages)
    for pid in range(n_pages):
        disk.write(pid, bytes([pid]) * 16)
    pool = BufferPool(disk, capacity=n_pages)

    def worker(t):
        for i in range(ROUNDS):
            pid = (t * 7 + i) % n_pages
            assert bytes(pool.read(pid)[:16]) == bytes([pid]) * 16

    _hammer(worker)
    counters = pool.counters()
    total = N_THREADS * ROUNDS
    # Every access is either a hit or a miss — none lost to a race.
    assert counters.hits + counters.misses == total
    # Capacity covers the working set: each page misses at most once per
    # load, and every miss is exactly one accounted disk read.
    assert counters.evictions == 0
    assert disk.stats.page_reads == counters.misses
    assert n_pages <= counters.misses <= total


def test_buffer_pool_hammer_with_evictions():
    disk = MmapDiskManager(page_size=80)
    n_pages = 32
    disk.allocate_many(n_pages)
    for pid in range(n_pages):
        disk.write(pid, bytes([pid]) * 16)
    pool = BufferPool(disk, capacity=4)    # far below the working set

    def worker(t):
        for i in range(ROUNDS):
            pid = (t + 3 * i) % n_pages
            assert bytes(pool.read(pid)[:16]) == bytes([pid]) * 16

    _hammer(worker)
    counters = pool.counters()
    assert counters.hits + counters.misses == N_THREADS * ROUNDS
    assert disk.stats.page_reads == counters.misses
    assert counters.evictions == counters.misses - len(pool)
    assert len(pool) == 4


def test_pool_counters_sum_is_componentwise():
    a = PoolCounters(hits=1, misses=2, evictions=3)
    b = PoolCounters(hits=10, misses=20, evictions=30)
    assert a + b == PoolCounters(hits=11, misses=22, evictions=33)


def test_metrics_hammer_counts_every_increment():
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        counter = REGISTRY.counter("repro_test_hammer_total", "test")
        gauge = REGISTRY.gauge("repro_test_hammer_gauge", "test")
        histogram = REGISTRY.histogram("repro_test_hammer_hist", "test")

        def worker(t):
            for i in range(ROUNDS):
                counter.inc(1, shard=str(t % 2))
                gauge.inc(2)
                histogram.observe(float(i % 10))

        _hammer(worker)
        total = N_THREADS * ROUNDS
        assert counter.value(shard="0") + counter.value(shard="1") == total
        assert gauge.value() == 2 * total
        assert histogram.value() == total      # observation count
        # Each thread observed 0..9 repeated ROUNDS/10 times: the sum is
        # exact, so no observation was lost or double-counted.
        assert histogram.sum() \
            == pytest.approx(N_THREADS * (ROUNDS // 10) * 45)
        assert histogram.mean() == pytest.approx(4.5)
    finally:
        REGISTRY.disable()
        REGISTRY.reset()

"""Thread-safety hammers for the shared mutable state.

The parallel engine serializes *fetches*, but the buffer pool and the
metrics registry are still shared objects that concurrent code paths may
touch; their internal locks must keep every counter exact — these tests
assert precise totals, not merely "no crash".
"""

import threading

import pytest

from repro.obs.metrics import REGISTRY
from repro.storage import (BufferPool, MmapDiskManager, PoolCounters,
                           TenantCounters)

N_THREADS = 8
ROUNDS = 400


def _hammer(worker):
    """Run ``worker(thread_index)`` on N_THREADS threads, via a barrier."""
    barrier = threading.Barrier(N_THREADS)
    errors = []

    def runner(t):
        try:
            barrier.wait()
            worker(t)
        except BaseException as exc:   # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(t,))
               for t in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


def test_buffer_pool_hammer_keeps_exact_counters():
    disk = MmapDiskManager(page_size=80)
    n_pages = 16
    disk.allocate_many(n_pages)
    for pid in range(n_pages):
        disk.write(pid, bytes([pid]) * 16)
    pool = BufferPool(disk, capacity=n_pages)

    def worker(t):
        for i in range(ROUNDS):
            pid = (t * 7 + i) % n_pages
            assert bytes(pool.read(pid)[:16]) == bytes([pid]) * 16

    _hammer(worker)
    counters = pool.counters()
    total = N_THREADS * ROUNDS
    # Every access is either a hit or a miss — none lost to a race.
    assert counters.hits + counters.misses == total
    # Capacity covers the working set: each page misses at most once per
    # load, and every miss is exactly one accounted disk read.
    assert counters.evictions == 0
    assert disk.stats.page_reads == counters.misses
    assert n_pages <= counters.misses <= total


def test_buffer_pool_hammer_with_evictions():
    disk = MmapDiskManager(page_size=80)
    n_pages = 32
    disk.allocate_many(n_pages)
    for pid in range(n_pages):
        disk.write(pid, bytes([pid]) * 16)
    pool = BufferPool(disk, capacity=4)    # far below the working set

    def worker(t):
        for i in range(ROUNDS):
            pid = (t + 3 * i) % n_pages
            assert bytes(pool.read(pid)[:16]) == bytes([pid]) * 16

    _hammer(worker)
    counters = pool.counters()
    assert counters.hits + counters.misses == N_THREADS * ROUNDS
    assert disk.stats.page_reads == counters.misses
    assert counters.evictions == counters.misses - len(pool)
    assert len(pool) == 4


def test_pool_counters_sum_is_componentwise():
    a = PoolCounters(hits=1, misses=2, evictions=3)
    b = PoolCounters(hits=10, misses=20, evictions=30)
    assert a + b == PoolCounters(hits=11, misses=22, evictions=33)


def _tenant_pool(n_pages=16, capacity=None, page_size=80):
    disk = MmapDiskManager(page_size=page_size)
    disk.allocate_many(n_pages)
    for pid in range(n_pages):
        disk.write(pid, bytes([pid]) * 16)
    return BufferPool(disk, capacity=n_pages if capacity is None
                      else capacity)


def test_tenant_counters_pin_exact_totals():
    """Per-tenant hits/misses/bytes must sum exactly to the pool's."""
    pool = _tenant_pool(n_pages=8)
    page_bytes = len(pool.read(0, tenant="alice"))   # 1 miss
    for pid in range(1, 8):
        pool.read(pid, tenant="alice")       # 7 more misses
    for pid in range(8):
        pool.read(pid, tenant="alice")       # 8 hits
    for pid in range(4):
        pool.read(pid, tenant="bob")         # 4 hits
    pool.read(0)                             # unattributed hit

    tenants = pool.tenant_counters()
    assert tenants["alice"] == TenantCounters(hits=8, misses=8,
                                              bytes_read=16 * page_bytes)
    assert tenants["bob"] == TenantCounters(hits=4, misses=0,
                                            bytes_read=4 * page_bytes)
    counters = pool.counters()
    assert counters.hits == 13 and counters.misses == 8
    # Attributed accesses can never exceed the pool's own accounting.
    attributed = sum(t.accesses for t in tenants.values())
    assert attributed == counters.accesses - 1    # the unattributed read


def test_tenant_residency_never_double_counts_shared_pages():
    """A page resident for several tenants is counted once, not per
    tenant — the serve-layer regression this subsystem exists for."""
    pool = _tenant_pool(n_pages=8)
    page_bytes = len(pool.read(0, tenant="alice"))
    for pid in range(1, 6):
        pool.read(pid, tenant="alice")        # alice touches 0..5
    for pid in range(4, 8):
        pool.read(pid, tenant="bob")          # bob touches 4..7
    pool.read(3)                              # tenant-less re-read: no-op

    residency = pool.tenant_residency()
    alice = residency["tenants"]["alice"]
    bob = residency["tenants"]["bob"]
    # Pages 4 and 5 are shared; they appear in each tenant's shared
    # figure (visibility) but once in the pool-level totals.
    assert alice == {"exclusive_pages": 4,
                     "exclusive_bytes": 4 * page_bytes,
                     "shared_pages": 2, "shared_bytes": 2 * page_bytes}
    assert bob == {"exclusive_pages": 2,
                   "exclusive_bytes": 2 * page_bytes,
                   "shared_pages": 2, "shared_bytes": 2 * page_bytes}
    assert residency["shared_pages"] == 2
    assert residency["unattributed_pages"] == 0
    assert residency["resident_pages"] == len(pool) == 8
    # The no-double-count invariant: exclusive + shared + unattributed
    # partitions the resident set exactly.
    assert (alice["exclusive_pages"] + bob["exclusive_pages"]
            + residency["shared_pages"]
            + residency["unattributed_pages"]) \
        == residency["resident_pages"]
    assert (alice["exclusive_bytes"] + bob["exclusive_bytes"]
            + residency["shared_bytes"]
            + residency["unattributed_bytes"]) \
        == residency["resident_bytes"]


def test_tenant_residency_forgets_evicted_and_invalidated_pages():
    pool = _tenant_pool(n_pages=8, capacity=2)
    for pid in range(8):
        pool.read(pid, tenant="alice")
    residency = pool.tenant_residency()
    # Only the two resident frames may be attributed, however many
    # pages alice has touched in her lifetime.
    assert residency["resident_pages"] == 2
    assert residency["tenants"]["alice"]["exclusive_pages"] == 2
    pool.invalidate(7)
    residency = pool.tenant_residency()
    assert residency["tenants"]["alice"]["exclusive_pages"] == 1
    assert residency["resident_pages"] == 1
    # Traffic counters survive; residency reflects the present only.
    assert pool.tenant_counters()["alice"].misses == 8
    pool.clear()
    assert pool.tenant_residency()["resident_pages"] == 0
    pool.reset_tenant_counters()
    assert pool.tenant_counters() == {}


def test_tenant_hammer_keeps_exact_per_tenant_counters():
    """Concurrent tenants on one shared pool: per-tenant counters and
    residency totals stay exact under the hammer."""
    n_pages = 16
    pool = _tenant_pool(n_pages=n_pages)
    tenants = [f"tenant-{t % 4}" for t in range(N_THREADS)]

    def worker(t):
        tenant = tenants[t]
        for i in range(ROUNDS):
            pid = (t * 5 + i) % n_pages
            data = pool.read(pid, tenant=tenant)
            assert bytes(data[:16]) == bytes([pid]) * 16

    _hammer(worker)
    per_tenant = pool.tenant_counters()
    counters = pool.counters()
    total = N_THREADS * ROUNDS
    # Every access was attributed — and none twice.
    assert sum(t.accesses for t in per_tenant.values()) == total
    assert counters.accesses == total
    assert sum(t.hits for t in per_tenant.values()) == counters.hits
    assert sum(t.misses for t in per_tenant.values()) == counters.misses
    # 2 threads share each tenant name: 4 tenants, exact byte totals.
    assert set(per_tenant) == {f"tenant-{i}" for i in range(4)}
    page_bytes = len(pool.read(0))
    assert sum(t.bytes_read for t in per_tenant.values()) \
        == total * page_bytes
    # Every page was read by several tenants and stayed resident, so
    # the residency report must classify all frames as shared.
    residency = pool.tenant_residency()
    assert residency["resident_pages"] == n_pages
    assert residency["shared_pages"] == n_pages
    assert residency["unattributed_pages"] == 0
    for entry in residency["tenants"].values():
        assert entry["exclusive_pages"] == 0


def test_metrics_hammer_counts_every_increment():
    REGISTRY.enable()
    REGISTRY.reset()
    try:
        counter = REGISTRY.counter("repro_test_hammer_total", "test")
        gauge = REGISTRY.gauge("repro_test_hammer_gauge", "test")
        histogram = REGISTRY.histogram("repro_test_hammer_hist", "test")

        def worker(t):
            for i in range(ROUNDS):
                counter.inc(1, shard=str(t % 2))
                gauge.inc(2)
                histogram.observe(float(i % 10))

        _hammer(worker)
        total = N_THREADS * ROUNDS
        assert counter.value(shard="0") + counter.value(shard="1") == total
        assert gauge.value() == 2 * total
        assert histogram.value() == total      # observation count
        # Each thread observed 0..9 repeated ROUNDS/10 times: the sum is
        # exact, so no observation was lost or double-counted.
        assert histogram.sum() \
            == pytest.approx(N_THREADS * (ROUNDS // 10) * 45)
        assert histogram.mean() == pytest.approx(4.5)
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


def test_metrics_snapshots_stay_consistent_under_publishers():
    """collect() taken mid-hammer must be internally consistent: for the
    paired counter each snapshot's shard values sum to a multiple of the
    per-iteration increment, and the histogram's bucket counts always
    sum to its count field — a torn read would break either."""
    registry = REGISTRY
    registry.enable()
    registry.reset()
    stop = threading.Event()
    snapshots = []
    try:
        counter = registry.counter("repro_test_snap_total", "test")
        histogram = registry.histogram("repro_test_snap_hist", "test",
                                       buckets=(2, 4, 8))

        def reader():
            while not stop.is_set():
                snapshots.append({m["name"]: m
                                  for m in registry.collect()["metrics"]})

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()

        def worker(t):
            for i in range(ROUNDS):
                # Two series bumped by the same amount per iteration.
                counter.inc(3, shard="a")
                counter.inc(3, shard="b")
                histogram.observe(float(i % 10))

        _hammer(worker)
        stop.set()
        reader_thread.join()
        snapshots.append({m["name"]: m
                          for m in registry.collect()["metrics"]})

        assert snapshots
        for snap in snapshots:
            hist = snap.get("repro_test_snap_hist")
            if hist is not None:
                for row in hist["series"]:
                    # Per-metric locking: a row is never half-updated.
                    assert sum(row["bucket_counts"]) == row["count"]
            count = snap.get("repro_test_snap_total")
            if count is not None:
                for row in count["series"]:
                    assert row["value"] % 3 == 0
        # The final snapshot carries the exact totals.
        final = snapshots[-1]["repro_test_snap_total"]["series"]
        assert sum(r["value"] for r in final) == N_THREADS * ROUNDS * 6
    finally:
        stop.set()
        registry.disable()
        registry.reset()


def test_metrics_toggling_mid_flight_never_corrupts():
    """enable()/disable() racing instrumented publishers: the guarded
    sites may or may not record each round (the flag is advisory), but
    the registry must stay structurally sound and every recorded value
    must be a full, untorn increment."""
    registry = REGISTRY
    registry.enable()
    registry.reset()
    try:
        counter = registry.counter("repro_test_toggle_total", "test")

        def worker(t):
            if t == 0:
                # One thread flips the switch as fast as it can.
                for _ in range(ROUNDS):
                    registry.disable()
                    registry.enable()
            else:
                for _ in range(ROUNDS):
                    if registry.enabled:     # the instrumented-site idiom
                        counter.inc(5)
                    registry.collect()       # concurrent scrapes

        _hammer(worker)
        assert registry.enabled
        # Whatever subset of rounds saw enabled=True, each one landed as
        # exactly one +5 — no partial or doubled increments.
        value = counter.value()
        assert value % 5 == 0
        assert 0 <= value <= (N_THREADS - 1) * ROUNDS * 5
        # Collection still works and reflects the same value.
        (family,) = [m for m in registry.collect()["metrics"]
                     if m["name"] == "repro_test_toggle_total"]
        assert family["series"][0]["value"] == value
    finally:
        REGISTRY.enable()
        REGISTRY.disable()
        REGISTRY.reset()

"""Unit tests for the batch query engine (core/batch.py)."""

from __future__ import annotations

import pytest

from repro.core import (
    BatchQueryEngine,
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    PlannedIndex,
    ValueQuery,
    merge_queries,
    run_sequential,
)
from repro.core.batch import QueryGroup
from repro.field import DEMField
from repro.synth import fractal_dem_heights, value_query_workload

METHODS = [LinearScanIndex, IAllIndex, IHilbertIndex, PlannedIndex]


@pytest.fixture(scope="module")
def field():
    return DEMField(fractal_dem_heights(32, 0.5, seed=4))


@pytest.fixture(scope="module")
def workload(field):
    queries = []
    for q in (0.0, 0.05, 0.15):
        queries += value_query_workload(field.value_range, q, count=12,
                                        seed=1)
    return queries


# -- interval sort/merge -----------------------------------------------------

def test_merge_sorts_and_merges_overlaps():
    queries = [ValueQuery(5.0, 7.0), ValueQuery(0.0, 2.0),
               ValueQuery(1.0, 3.0), ValueQuery(6.5, 9.0)]
    groups = merge_queries(queries)
    assert [(g.lo, g.hi) for g in groups] == [(0.0, 3.0), (5.0, 9.0)]
    assert groups[0].members == (1, 2)
    assert groups[1].members == (0, 3)


def test_merge_touching_intervals():
    groups = merge_queries([ValueQuery(0.0, 1.0), ValueQuery(1.0, 2.0)])
    assert len(groups) == 1
    assert (groups[0].lo, groups[0].hi) == (0.0, 2.0)


def test_merge_disjoint_stay_separate():
    queries = [ValueQuery(3.0, 4.0), ValueQuery(0.0, 1.0)]
    groups = merge_queries(queries)
    assert [(g.lo, g.hi) for g in groups] == [(0.0, 1.0), (3.0, 4.0)]
    assert all(g.size == 1 for g in groups)


def test_merge_disabled_keeps_one_group_per_query():
    queries = [ValueQuery(0.0, 2.0), ValueQuery(1.0, 3.0)]
    groups = merge_queries(queries, merge=False)
    assert len(groups) == 2
    # Still sorted on the value axis for cache locality.
    assert groups[0].lo <= groups[1].lo


def test_merge_empty():
    assert merge_queries([]) == []


def test_query_group_size():
    assert QueryGroup(0.0, 1.0, (3, 1, 2)).size == 3


# -- engine vs. one-at-a-time execution --------------------------------------

@pytest.mark.parametrize("cls", METHODS, ids=lambda c: c.name)
@pytest.mark.parametrize("merge", [True, False], ids=["merged", "unmerged"])
def test_batch_matches_sequential_answers(field, workload, cls, merge):
    index = cls(field)
    seq = run_sequential(index, workload, estimate="area")
    index.clear_caches()
    batch = BatchQueryEngine(index, merge=merge).run(workload,
                                                     estimate="area")
    assert len(batch) == len(workload)
    for one, many in zip(seq.results, batch.results):
        assert one.query == many.query          # original order preserved
        assert one.candidate_count == many.candidate_count
        assert many.area == pytest.approx(one.area, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("cls", METHODS, ids=lambda c: c.name)
def test_batch_reads_fewer_pages_than_cold_sequential(field, workload, cls):
    index = cls(field)
    seq = run_sequential(index, workload, estimate="area", cold=True)
    index.clear_caches()
    batch = BatchQueryEngine(index).run(workload, estimate="area")
    assert batch.io.page_reads < seq.io.page_reads
    assert batch.pool.hits > 0


def test_per_query_io_sums_to_batch_io(field, workload):
    index = IHilbertIndex(field)
    batch = BatchQueryEngine(index).run(workload)
    assert sum(r.io.page_reads for r in batch.results) == batch.io.page_reads
    assert sum(r.io.cache_hits for r in batch.results) == batch.io.cache_hits


def test_batch_restores_pool_capacity(field):
    index = IHilbertIndex(field, cache_pages=2)
    engine = BatchQueryEngine(index, cache_pages=64)
    vr = field.value_range
    engine.run([ValueQuery(vr.lo, vr.hi)])
    assert index.store.pool.capacity == 2
    assert len(index.store.pool) <= 2
    assert index.tree.pool.capacity == 2


def test_batch_never_shrinks_a_larger_configured_pool(field):
    index = IHilbertIndex(field, cache_pages=4096)
    engine = BatchQueryEngine(index, cache_pages=8)
    vr = field.value_range
    engine.run([ValueQuery(vr.lo, vr.hi)])
    assert index.store.pool.capacity == 4096


def test_batch_estimate_modes(field):
    index = LinearScanIndex(field)
    vr = field.value_range
    span = vr.hi - vr.lo
    queries = [ValueQuery(vr.lo + 0.4 * span, vr.lo + 0.5 * span)]
    none = BatchQueryEngine(index).run(queries, estimate="none")
    assert none.results[0].area is None
    regions = BatchQueryEngine(index).run(queries, estimate="regions")
    assert regions.results[0].regions is not None
    single = index.query(queries[0], estimate="regions")
    assert len(regions.results[0].regions) == len(single.regions)
    assert regions.results[0].area == pytest.approx(single.area)
    with pytest.raises(ValueError):
        BatchQueryEngine(index).run(queries, estimate="bogus")


def test_empty_batch(field):
    index = LinearScanIndex(field)
    batch = BatchQueryEngine(index).run([])
    assert len(batch) == 0
    assert batch.io.page_reads == 0
    assert batch.groups == 0


def test_out_of_range_batch(field):
    index = IHilbertIndex(field)
    vr = field.value_range
    batch = BatchQueryEngine(index).run(
        [ValueQuery(vr.hi + 1.0, vr.hi + 2.0)])
    assert batch.results[0].candidate_count == 0
    assert batch.results[0].area == 0.0


def test_negative_cache_pages_rejected(field):
    with pytest.raises(ValueError):
        BatchQueryEngine(LinearScanIndex(field), cache_pages=-1)


def test_total_candidates(field):
    index = LinearScanIndex(field)
    vr = field.value_range
    queries = [ValueQuery(vr.lo, vr.hi), ValueQuery(vr.lo, vr.hi)]
    batch = BatchQueryEngine(index).run(queries)
    assert batch.total_candidates == 2 * field.num_cells

"""Unit tests for the R* split algorithm."""

import numpy as np

from repro.geometry import Rect
from repro.rstar import choose_split_axis, rstar_split


def boxes(pairs):
    return [(Rect((x0, y0), (x1, y1)), i)
            for i, (x0, y0, x1, y1) in enumerate(pairs)]


def test_split_preserves_all_entries():
    rng = np.random.default_rng(0)
    entries = []
    for i in range(20):
        x, y = rng.random(2) * 10
        entries.append((Rect((x, y), (x + 1, y + 1)), i))
    left, right = rstar_split(entries, min_fill=8, dim=2)
    assert len(left) + len(right) == 20
    assert {i for _r, i in left} | {i for _r, i in right} == set(range(20))
    assert not ({i for _r, i in left} & {i for _r, i in right})


def test_split_respects_min_fill():
    entries = boxes([(i, 0, i + 0.5, 1) for i in range(10)])
    left, right = rstar_split(entries, min_fill=4, dim=2)
    assert len(left) >= 4
    assert len(right) >= 4


def test_split_separates_two_clusters():
    # Two well-separated clusters along x must split cleanly.
    cluster_a = [(i * 0.1, 0.0, i * 0.1 + 0.05, 1.0) for i in range(5)]
    cluster_b = [(100 + i * 0.1, 0.0, 100 + i * 0.1 + 0.05, 1.0)
                 for i in range(5)]
    entries = boxes(cluster_a + cluster_b)
    left, right = rstar_split(entries, min_fill=4, dim=2)
    sides = [{i for _r, i in group} for group in (left, right)]
    assert {0, 1, 2, 3, 4} in sides
    assert {5, 6, 7, 8, 9} in sides


def test_split_axis_prefers_separable_dimension():
    # Entries well separated along y but interleaved along x: sorting on
    # axis 1 gives much smaller group margins, so axis 1 must win.
    entries = boxes([((i * 3) % 8, i * 10, (i * 3) % 8 + 1, i * 10 + 1)
                     for i in range(8)])
    assert choose_split_axis(entries, min_fill=3, dim=2) == 1


def test_split_1d_intervals():
    entries = [(Rect.from_interval(float(i), float(i + 1)), i)
               for i in range(10)]
    left, right = rstar_split(entries, min_fill=4, dim=1)
    left_ids = sorted(i for _r, i in left)
    right_ids = sorted(i for _r, i in right)
    # 1-D sorted split yields two contiguous runs.
    assert left_ids == list(range(left_ids[0], left_ids[0] + len(left_ids)))
    assert right_ids == list(
        range(right_ids[0], right_ids[0] + len(right_ids)))


def test_split_zero_overlap_when_possible():
    entries = boxes([(i, 0, i + 0.9, 1) for i in range(10)])
    left, right = rstar_split(entries, min_fill=4, dim=2)

    def mbr(group):
        box = group[0][0]
        for r, _i in group[1:]:
            box = box.union(r)
        return box

    assert mbr(left).intersection_area(mbr(right)) == 0.0

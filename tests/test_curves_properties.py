"""Property-based tests for the space-filling-curve layer.

Exhaustive bijection checks on the full grid for orders 1–6 (the range
the indexes actually use for the test-scale fields), plus hypothesis-
driven round-trips at random coordinates and the Hilbert locality
property: cells adjacent on the curve (distance exactly 1 apart) are
grid neighbors — the property the subfield clustering relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    GrayCodeCurve,
    HilbertCurve2D,
    HilbertCurveND,
    ZOrderCurve,
)

CURVES_2D = {
    "hilbert-fast": HilbertCurve2D,
    "hilbert-nd": lambda order: HilbertCurveND(order, 2),
    "zorder": lambda order: ZOrderCurve(order, 2),
    "gray": lambda order: GrayCodeCurve(order, 2),
}

ORDERS = range(1, 7)


def full_grid(side: int) -> np.ndarray:
    xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    return np.column_stack([xs.ravel(), ys.ravel()])


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("make", sorted(CURVES_2D), ids=str)
def test_encode_bijective_on_full_domain(make, order):
    """Vectorized encoding visits every curve position exactly once."""
    curve = CURVES_2D[make](order)
    indices = curve.indices(full_grid(curve.side))
    assert len(indices) == curve.size
    assert np.array_equal(np.sort(indices), np.arange(curve.size))


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("make", sorted(CURVES_2D), ids=str)
def test_decode_inverts_encode_on_full_domain(make, order):
    """coords(index(p)) == p for every grid point (and both agree with
    the scalar encoder)."""
    curve = CURVES_2D[make](order)
    grid = full_grid(curve.side)
    indices = curve.indices(grid)
    for (x, y), d in zip(grid.tolist(), indices.tolist()):
        assert curve.index((x, y)) == d
        assert curve.coords(d) == (x, y)


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_roundtrip_random_coords(data):
    """Random curve/order/point: encode↔decode is the identity."""
    make = data.draw(st.sampled_from(sorted(CURVES_2D)))
    order = data.draw(st.integers(min_value=1, max_value=6))
    curve = CURVES_2D[make](order)
    x = data.draw(st.integers(min_value=0, max_value=curve.side - 1))
    y = data.draw(st.integers(min_value=0, max_value=curve.side - 1))
    d = curve.index((x, y))
    assert 0 <= d < curve.size
    assert curve.coords(d) == (x, y)


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_hilbert_curve_neighbors_are_grid_neighbors(data):
    """Positions exactly 1 apart on the Hilbert curve are exactly 1 apart
    on the grid (Manhattan distance 1) — in 2-D and 3-D."""
    dim = data.draw(st.sampled_from([2, 3]))
    order = data.draw(st.integers(min_value=1, max_value=6 if dim == 2
                                  else 3))
    curve = HilbertCurve2D(order) if dim == 2 \
        else HilbertCurveND(order, dim)
    d = data.draw(st.integers(min_value=0, max_value=curve.size - 2))
    here = curve.coords(d)
    there = curve.coords(d + 1)
    manhattan = sum(abs(a - b) for a, b in zip(here, there))
    assert manhattan == 1


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_keys_matches_scalar_index(data):
    """``keys(xs, ys)`` equals the scalar encoder element by element."""
    order = data.draw(st.integers(min_value=1, max_value=6))
    curve = HilbertCurve2D(order)
    n = data.draw(st.integers(min_value=0, max_value=64))
    coord = st.integers(min_value=0, max_value=curve.side - 1)
    xs = np.array(data.draw(st.lists(coord, min_size=n, max_size=n)),
                  dtype=np.int64)
    ys = np.array(data.draw(st.lists(coord, min_size=n, max_size=n)),
                  dtype=np.int64)
    keys = curve.keys(xs, ys)
    assert keys.shape == (n,)
    assert keys.tolist() == [curve.index((int(x), int(y)))
                             for x, y in zip(xs, ys)]


def test_keys_rejects_mismatched_shapes():
    curve = HilbertCurve2D(3)
    with pytest.raises(ValueError, match="same shape"):
        curve.keys(np.arange(3), np.arange(4))


def test_keys_rejects_out_of_grid():
    curve = HilbertCurve2D(2)
    with pytest.raises(ValueError, match="outside grid"):
        curve.keys(np.array([curve.side]), np.array([0]))


@pytest.mark.parametrize("make,order", [("zorder", 2), ("gray", 2)])
def test_non_hilbert_curves_do_jump(make, order):
    """Sanity contrast: Z-order and Gray-code orders are bijective but
    not everywhere-adjacent, which is why Hilbert wins the clustering
    ablation."""
    curve = CURVES_2D[make](order)
    distances = []
    prev = curve.coords(0)
    for d in range(1, curve.size):
        cur = curve.coords(d)
        distances.append(sum(abs(a - b) for a, b in zip(cur, prev)))
        prev = cur
    assert max(distances) > 1

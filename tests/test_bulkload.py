"""Bulk-load ingestion: fast to build, indistinguishable once built.

The bulk path (sort by Hilbert key → sequential page pack → bottom-up
R*-tree) must produce an index a query cannot tell from the incremental
build: identical answers, and — because the packing replicates the
incremental layout exactly — byte-identical data pages and identical
page counts (the documented bound is equality).  Persistence rides the
same WAL/manifest machinery, so a bulk-built index must scrub clean and
survive a crash at every save point with old-or-new semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EngineFacade,
    IAllIndex,
    IHilbertIndex,
    ValueQuery,
    bulk_build,
    bulk_methods,
    load_index,
    save_index,
)
from repro.core.persist import SAVE_INDEX_CRASH_POINTS
from repro.field import DEMField
from repro.geometry import Rect
from repro.rstar import RStarTree
from repro.storage import DiskManager, SimulatedCrash, scrub_index
from repro.synth import fractal_dem_heights, lyon_like

FIELDS = {
    "dem": lambda: DEMField(fractal_dem_heights(24, 0.5, seed=17)),
    "tin": lambda: lyon_like(num_sites=180, seed=23),
}


def queries_for(field, n=15):
    rng = np.random.default_rng(99)
    vr = field.value_range
    span = vr.hi - vr.lo
    out = [ValueQuery(vr.lo, vr.hi)]
    for _ in range(n):
        lo = vr.lo + rng.random() * span
        out.append(ValueQuery(lo, min(vr.hi, lo + rng.random()
                                      * 0.15 * span)))
    return out


def _data_payloads(index) -> list[bytes]:
    disk = index.store.disk
    return [disk.read(pid) for pid in range(disk.num_pages)]


@pytest.mark.parametrize("fname", sorted(FIELDS))
@pytest.mark.parametrize("method", ["I-Hilbert", "I-All"])
def test_bulk_build_equals_incremental(fname, method):
    """Same answers, same page counts, byte-identical data pages."""
    field = FIELDS[fname]()
    cls = {"I-Hilbert": IHilbertIndex, "I-All": IAllIndex}[method]
    incremental = (cls(field) if method == "I-Hilbert"
                   else cls(field, bulk=False))
    bulk, report = bulk_build(field, method=method)
    assert report.cells == field.num_cells
    assert report.cells_per_second > 0
    # Page-count bound: the sequential pack reproduces the incremental
    # layout exactly, so the documented bound is equality.
    assert bulk.data_pages == incremental.data_pages
    assert _data_payloads(bulk) == _data_payloads(incremental)
    if method == "I-Hilbert":
        assert len(bulk.subfields) == len(incremental.subfields)
        assert bulk.subfields == incremental.subfields
    for query in queries_for(field):
        ri = incremental.query(query)
        rb = bulk.query(query)
        assert ri.candidate_count == rb.candidate_count, query
        assert ri.area == rb.area, query


def test_bulk_tree_pages_match_object_path():
    """bulk_load_arrays packs the same tree pages as Rect bulk_load."""
    rng = np.random.default_rng(5)
    n = 700
    lo = rng.random(n) * 100.0
    hi = lo + rng.random(n) * 3.0
    via_arrays = RStarTree(dim=1, disk=DiskManager(name="a"))
    via_arrays.bulk_load_arrays(lo, hi, np.arange(n, dtype=np.int64))
    via_arrays.flush()
    via_objects = RStarTree(dim=1, disk=DiskManager(name="b"))
    via_objects.bulk_load([Rect.from_interval(float(a), float(b))
                           for a, b in zip(lo, hi)], range(n))
    via_objects.flush()
    assert via_arrays.disk.num_pages == via_objects.disk.num_pages
    for pid in range(via_arrays.disk.num_pages):
        assert via_arrays.disk.read(pid) == via_objects.disk.read(pid)


def test_bulk_extend_matches_extend_layout():
    """bulk_extend writes the same pages/ids as record-by-record extend."""
    field = FIELDS["dem"]()
    a = IHilbertIndex(field)              # incremental fill
    b, _ = bulk_build(field)              # bulk fill
    assert a.store._page_ids == b.store._page_ids
    assert a.store._tail_len == b.store._tail_len
    assert len(a.store) == len(b.store)


def test_bulk_extend_tail_fallback():
    """A non-page-aligned store falls back to the serial extend path."""
    field = FIELDS["dem"]()
    index, _ = bulk_build(field)
    store = index.store
    extra = np.zeros(3, dtype=store.dtype)
    before = len(store)
    store.bulk_extend(extra)              # tail occupied -> extend()
    assert len(store) == before + 3


def test_bulk_build_rejects_unknown_method():
    field = FIELDS["dem"]()
    with pytest.raises(ValueError, match="no bulk build path"):
        bulk_build(field, method="LinearScan")
    assert "I-Hilbert" in bulk_methods()


def test_bulk_index_scrubs_clean(tmp_path):
    index, _ = bulk_build(FIELDS["dem"]())
    save_index(index, tmp_path / "idx")
    report = scrub_index(tmp_path / "idx")
    assert report.ok


@pytest.mark.parametrize("point", SAVE_INDEX_CRASH_POINTS)
def test_bulk_index_crash_safe_save(tmp_path, point):
    """save_index of a bulk-built index is old-or-new at every step."""
    directory = tmp_path / "idx"
    field = FIELDS["dem"]()
    old, _ = bulk_build(field)
    save_index(old, directory)
    old_answers = [old.query(q).area for q in queries_for(field, n=5)]

    new, _ = bulk_build(field, grouping=None)
    with pytest.raises(SimulatedCrash):
        save_index(new, directory, crash_point=point)
    back = load_index(directory)
    back_answers = [back.query(q).area for q in queries_for(field, n=5)]
    # Either complete version answers identically here (same field),
    # and the directory must still scrub clean — never a torn mixture.
    assert back_answers == old_answers
    assert scrub_index(directory).ok


def test_facade_bulk_build_and_query():
    facade = EngineFacade()
    field = FIELDS["dem"]()
    info = facade.bulk_build("terrain", field)
    assert info["bulk"]["cells"] == field.num_cells
    assert info["bulk"]["cells_per_second"] > 0
    direct = IHilbertIndex(field)
    for query in queries_for(field, n=5):
        got = facade.query("terrain", query.lo, query.hi)
        want = direct.query(query)
        assert got.area == want.area
        assert got.candidate_count == want.candidate_count


def test_cli_build_bulk(tmp_path, capsys):
    from repro.cli import main
    heights = fractal_dem_heights(16, 0.5, seed=3)
    np.save(tmp_path / "h.npy", heights)
    rc = main(["build", str(tmp_path / "h.npy"),
               str(tmp_path / "idx"), "--bulk"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bulk load:" in out and "cells/s" in out
    assert scrub_index(tmp_path / "idx").ok
    reloaded = load_index(tmp_path / "idx")
    direct = IHilbertIndex(DEMField(heights))
    q = ValueQuery(*map(float, (heights.min(), heights.mean())))
    assert reloaded.query(q).area == direct.query(q).area

"""Rolling SLO windows: slot recycling, percentiles, publication."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.rolling import (LATENCY_BUCKETS_MS, RollingStats,
                               percentile_from_buckets)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def stats(clock) -> RollingStats:
    return RollingStats(slot_s=10.0, slots=6, clock=clock)


def _series(stats, tenant="t1", op="query"):
    rows = [r for r in stats.snapshot()["series"]
            if r["tenant"] == tenant and r["op"] == op]
    assert len(rows) <= 1
    return rows[0] if rows else None


class TestPercentileFromBuckets:
    def test_empty_is_zero(self):
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 0], 0.5) == 0.0

    def test_interpolates_inside_the_crossing_bucket(self):
        # 10 observations, all in the (1.0, 2.0] bucket: the median
        # lands halfway through that bucket's width.
        counts = [0, 10, 0]
        assert percentile_from_buckets((1.0, 2.0), counts, 0.5) == 1.5

    def test_overflow_clamps_to_last_finite_bound(self):
        counts = [0, 0, 5]        # everything past the largest bound
        assert percentile_from_buckets((1.0, 2.0), counts, 0.99) == 2.0

    def test_rank_walks_cumulative_counts(self):
        # 90 fast + 10 slow: p95 must come from the slow bucket.
        counts = [90, 10, 0]
        p95 = percentile_from_buckets((1.0, 10.0), counts, 0.95)
        assert 1.0 < p95 <= 10.0
        p50 = percentile_from_buckets((1.0, 10.0), counts, 0.50)
        assert p50 <= 1.0


class TestRollingWindow:
    def test_observe_then_snapshot(self, stats, clock):
        for _ in range(10):
            stats.observe("t1", "query", 2.0)
        row = _series(stats)
        assert row["count"] == 10
        assert row["errors"] == 0
        assert row["latency_ms"]["mean"] == 2.0
        assert 1.0 <= row["latency_ms"]["p50"] <= 2.5
        # Young process: the window covers at least one slot width.
        assert row["qps"] == 10 / stats.window_s()

    def test_old_traffic_ages_out_slot_by_slot(self, stats, clock):
        stats.observe("t1", "query", 1.0)
        clock.advance(30.0)
        stats.observe("t1", "query", 1.0)
        assert _series(stats)["count"] == 2    # both inside the window
        clock.advance(35.0)                    # first slot now expired
        assert _series(stats)["count"] == 1
        clock.advance(60.0)                    # everything expired
        assert _series(stats) is None

    def test_slot_reuse_zeroes_stale_contents(self, stats, clock):
        stats.observe("t1", "query", 1.0)
        # Come back exactly one full ring later: same slot index,
        # different epoch — the old counts must not leak through.
        clock.advance(6 * 10.0)
        stats.observe("t1", "query", 5.0)
        row = _series(stats)
        assert row["count"] == 1
        assert row["latency_ms"]["mean"] == 5.0

    def test_series_are_per_tenant_and_op(self, stats):
        stats.observe("alice", "query", 1.0)
        stats.observe("alice", "batch", 1.0)
        stats.observe("bob", "query", 1.0)
        keys = {(r["tenant"], r["op"])
                for r in stats.snapshot()["series"]}
        assert keys == {("alice", "query"), ("alice", "batch"),
                        ("bob", "query")}

    def test_outcome_buckets(self, stats):
        stats.observe("t1", "query", 1.0, outcome="ok")
        stats.observe("t1", "query", 1.0, outcome="timeout")
        stats.observe("t1", "query", 1.0, outcome="quota")
        stats.observe("t1", "query", 1.0, outcome="backpressure")
        stats.observe("t1", "query", 1.0, outcome="internal")
        stats.observe("t1", "query", 1.0, outcome="bad-request")
        row = _series(stats)
        assert row["count"] == 6
        assert row["timeouts"] == 1
        assert row["rejections"] == 2
        assert row["errors"] == 2
        assert row["timeout_rate"] == pytest.approx(1 / 6, abs=1e-4)
        assert row["rejection_rate"] == pytest.approx(2 / 6, abs=1e-4)

    def test_window_never_exceeds_ring_span(self, stats, clock):
        clock.advance(10_000.0)
        assert stats.window_s() == 60.0

    def test_reset_forgets_everything(self, stats):
        stats.observe("t1", "query", 1.0)
        stats.reset()
        assert stats.snapshot()["series"] == []

    def test_constructor_validation(self, clock):
        with pytest.raises(ValueError):
            RollingStats(slot_s=0.0, clock=clock)
        with pytest.raises(ValueError):
            RollingStats(slots=1, clock=clock)
        with pytest.raises(ValueError):
            RollingStats(buckets=(), clock=clock)

    def test_latencies_beyond_last_bound_hit_overflow(self, stats):
        huge = LATENCY_BUCKETS_MS[-1] * 10
        for _ in range(4):
            stats.observe("t1", "query", huge)
        row = _series(stats)
        # Clamped estimate: the overflow bucket reports the last bound.
        assert row["latency_ms"]["p99"] == LATENCY_BUCKETS_MS[-1]


class TestPublish:
    def test_publish_pushes_gauges(self, stats):
        registry = MetricsRegistry()
        for _ in range(5):
            stats.observe("t1", "query", 2.0)
        stats.observe("t1", "query", 2.0, outcome="timeout")
        stats.publish(registry)
        qps = registry.get("repro_slo_qps")
        assert qps.value(tenant="t1", op="query") > 0
        latency = registry.get("repro_slo_latency_ms")
        assert latency.value(tenant="t1", op="query",
                             quantile="p95") > 0
        timeout_rate = registry.get("repro_slo_timeout_rate")
        assert timeout_rate.value(tenant="t1", op="query") == \
            pytest.approx(1 / 6, abs=1e-4)

    def test_quiet_series_zero_instead_of_freezing(self, clock):
        stats = RollingStats(slot_s=10.0, slots=6, clock=clock)
        registry = MetricsRegistry()
        stats.observe("t1", "query", 2.0)
        stats.publish(registry)
        assert registry.get("repro_slo_qps").value(
            tenant="t1", op="query") > 0
        clock.advance(600.0)      # window empties; series still known
        stats.publish(registry)
        assert registry.get("repro_slo_qps").value(
            tenant="t1", op="query") == 0.0
        assert registry.get("repro_slo_latency_ms").value(
            tenant="t1", op="query", quantile="p99") == 0.0


class TestConcurrency:
    def test_parallel_observers_lose_nothing(self, stats):
        n, per = 8, 500

        def pump(i):
            for _ in range(per):
                stats.observe(f"t{i % 2}", "query", 1.0)

        threads = [threading.Thread(target=pump, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(r["count"] for r in stats.snapshot()["series"])
        assert total == n * per

"""Parallel query engine: serial equivalence, determinism, tracing.

The contract of :class:`~repro.core.parallel.ParallelQueryEngine` is
that parallelism is *invisible* in every output: answers, per-query I/O
attribution, total page counts and fault semantics must be identical to
the serial :class:`~repro.core.batch.BatchQueryEngine` at every worker
count, on both storage backends.  Only wall time may differ.
"""

import pytest

from repro.core import (
    BatchQueryEngine,
    DeviceModel,
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    ParallelQueryEngine,
    ParallelResult,
    ValueQuery,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.storage import CorruptPageError, FaultInjector, IOStats
from repro.synth.queries import value_query_workload

METHODS = {
    "LinearScan": LinearScanIndex,
    "I-All": IAllIndex,
    "I-Hilbert": IHilbertIndex,
}


def _workload(field, count=12, seed=9):
    """A mixed workload: random bands plus overlapping wide queries."""
    vr = field.value_range
    queries = value_query_workload(vr, 0.1, count=count, seed=seed)
    # Two overlapping wide bands exercise merging without collapsing the
    # whole workload into a single group.
    queries += [ValueQuery(vr.lo, vr.lo + 0.3 * vr.length),
                ValueQuery(vr.lo + 0.25 * vr.length,
                           vr.lo + 0.45 * vr.length)]
    return queries


def _serial_reference(index, queries, estimate="area"):
    index.clear_caches()
    index.stats.reset()
    return BatchQueryEngine(index, cache_pages=0, merge=True).run(
        queries, estimate=estimate)


# -- construction ------------------------------------------------------------


def test_rejects_bad_worker_count(smooth_dem):
    index = LinearScanIndex(smooth_dem)
    with pytest.raises(ValueError):
        ParallelQueryEngine(index, workers=0)


def test_rejects_negative_cache_pages(smooth_dem):
    index = LinearScanIndex(smooth_dem)
    with pytest.raises(ValueError):
        ParallelQueryEngine(index, cache_pages=-1)


def test_rejects_unknown_fault_mode(smooth_dem):
    engine = ParallelQueryEngine(LinearScanIndex(smooth_dem))
    with pytest.raises(ValueError):
        engine.run(_workload(smooth_dem), on_fault="ignore")


def test_empty_batch(smooth_dem):
    result = ParallelQueryEngine(LinearScanIndex(smooth_dem)).run([])
    assert isinstance(result, ParallelResult)
    assert result.results == []
    assert result.workers == 0
    assert result.io == IOStats()


# -- serial equivalence ------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("method", sorted(METHODS))
def test_matches_serial_engine_exactly(method, workers, smooth_dem):
    queries = _workload(smooth_dem)
    index = METHODS[method](smooth_dem)
    serial = _serial_reference(index, queries)

    index.clear_caches()
    index.stats.reset()
    par = ParallelQueryEngine(index, workers=workers,
                              cache_pages=0).run(queries)

    assert par.groups == serial.groups
    for s, p in zip(serial.results, par.results):
        assert p.candidate_count == s.candidate_count
        assert p.area == s.area
        assert p.io == s.io
    # Total accounting is byte-identical, not merely close.
    assert par.io == serial.io
    assert sum(par.worker_io, IOStats()) == par.io


@pytest.mark.parametrize("workers", [1, 4])
def test_mmap_backend_matches_serial(workers, smooth_dem):
    queries = _workload(smooth_dem)
    index = IHilbertIndex(smooth_dem, disk_backend="mmap")
    serial = _serial_reference(index, queries)

    index.clear_caches()
    index.stats.reset()
    par = ParallelQueryEngine(index, workers=workers,
                              cache_pages=0).run(queries)
    assert [r.candidate_count for r in par.results] \
        == [r.candidate_count for r in serial.results]
    assert [r.area for r in par.results] == [r.area for r in serial.results]
    assert par.io == serial.io


def test_unmerged_batches_match_too(smooth_dem):
    queries = _workload(smooth_dem)
    index = IAllIndex(smooth_dem)
    index.clear_caches()
    index.stats.reset()
    serial = BatchQueryEngine(index, cache_pages=0, merge=False).run(queries)
    index.clear_caches()
    index.stats.reset()
    par = ParallelQueryEngine(index, workers=4, cache_pages=0,
                              merge=False).run(queries)
    assert par.groups == len(queries)
    assert [r.io for r in par.results] == [r.io for r in serial.results]
    assert par.io == serial.io


def test_shared_cache_equivalence(smooth_dem):
    # With a shared buffer pool the ticketed fetch order must reproduce
    # the serial engine's cache-hit pattern exactly.
    queries = _workload(smooth_dem)
    index = IHilbertIndex(smooth_dem)
    index.clear_caches()
    index.stats.reset()
    serial = BatchQueryEngine(index, cache_pages=64).run(queries)
    assert serial.io.cache_hits > 0

    index.clear_caches()
    index.stats.reset()
    par = ParallelQueryEngine(index, workers=4, cache_pages=64).run(queries)
    assert par.io == serial.io
    assert par.pool == serial.pool


def test_worker_count_is_clamped_to_groups(smooth_dem):
    vr = smooth_dem.value_range
    index = LinearScanIndex(smooth_dem)
    par = ParallelQueryEngine(index, workers=8).run(
        [ValueQuery(vr.lo, vr.hi)])
    assert par.groups == 1
    assert par.workers == 1
    assert len(par.worker_io) == 1


def test_device_model_converts_io_to_seconds():
    device = DeviceModel(random_read_ms=10.0, sequential_read_ms=1.0,
                         scale=0.5)
    io = IOStats(page_reads=7, random_reads=2, sequential_reads=4,
                 skipped_pages=1)
    assert device.delay_s(io) == pytest.approx((20.0 + 5.0) * 0.5 / 1000)


def test_device_waits_do_not_change_results(smooth_dem):
    queries = _workload(smooth_dem, count=4)
    index = IHilbertIndex(smooth_dem)
    serial = _serial_reference(index, queries)
    index.clear_caches()
    index.stats.reset()
    par = ParallelQueryEngine(
        index, workers=4, cache_pages=0,
        device=DeviceModel(scale=0.01)).run(queries)
    assert par.io == serial.io
    assert [r.candidate_count for r in par.results] \
        == [r.candidate_count for r in serial.results]
    assert all(w >= 0.0 for w in par.worker_wall_s)


# -- determinism -------------------------------------------------------------


def test_two_runs_are_bit_identical(smooth_dem):
    queries = _workload(smooth_dem)

    def run():
        index = IHilbertIndex(smooth_dem)
        par = ParallelQueryEngine(index, workers=4,
                                  cache_pages=0).run(queries)
        return ([r.candidate_count for r in par.results],
                [r.area for r in par.results],
                par.io, par.worker_io)

    assert run() == run()


def test_worker_io_is_a_static_partition(smooth_dem):
    # Worker w owns groups g ≡ w (mod workers); its I/O total is a pure
    # function of the workload, never of thread scheduling.
    queries = _workload(smooth_dem)
    index = IAllIndex(smooth_dem)
    first = ParallelQueryEngine(index, workers=3,
                                cache_pages=0).run(queries)
    index.clear_caches()
    index.stats.reset()
    second = ParallelQueryEngine(index, workers=3,
                                 cache_pages=0).run(queries)
    assert first.worker_io == second.worker_io
    assert len(first.worker_io) == first.workers


# -- tracing -----------------------------------------------------------------


def test_span_tree_nests_workers_under_parallel(smooth_dem):
    queries = _workload(smooth_dem, count=6)
    index = IHilbertIndex(smooth_dem)
    tracer = Tracer().attach(index)
    try:
        par = ParallelQueryEngine(index, workers=2,
                                  cache_pages=0).run(queries)
    finally:
        Tracer.detach(index)

    assert [r.name for r in tracer.roots] == ["parallel"]
    pspan = tracer.roots[0]
    assert pspan.attrs["workers"] == 2
    names = [c.name for c in pspan.children]
    assert names[0] == "merge"
    assert names[1:] == ["worker[0]", "worker[1]"]
    for w, wspan in enumerate(pspan.children[1:]):
        # Grafted worker roots carry that worker's fetch I/O.
        assert wspan.io == par.worker_io[w]
        owned = [c.name for c in wspan.children]
        assert owned == [f"group[{g}]"
                         for g in range(w, par.groups, par.workers)]
        for gspan in wspan.children:
            assert gspan.io is not None
            assert {"lo", "hi", "size"} <= set(gspan.attrs)
    # Per-group fetch I/O over all workers adds up to the batch total.
    group_io = sum((g.io for w in pspan.children[1:]
                    for g in w.children), IOStats())
    assert group_io == par.io


def test_index_tracer_is_restored_after_the_batch(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    assert index.tracer is NULL_TRACER
    ParallelQueryEngine(index, workers=2).run(_workload(smooth_dem, count=4))
    assert index.tracer is NULL_TRACER

    tracer = Tracer().attach(index)
    try:
        ParallelQueryEngine(index, workers=2).run(
            _workload(smooth_dem, count=4))
        assert index.tracer is tracer
    finally:
        Tracer.detach(index)


# -- faults ------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["list", "mmap"])
def test_raise_mode_propagates_the_serial_error(backend, smooth_dem):
    queries = _workload(smooth_dem)
    index = IHilbertIndex(smooth_dem, disk_backend=backend)
    pid = index.store.page_ids[1]
    index.data_disk._flip_bit(pid, byte_index=3, bit=2)

    index.clear_caches()
    with pytest.raises(CorruptPageError) as serial_exc:
        BatchQueryEngine(index, cache_pages=0).run(queries)

    index.clear_caches()
    with pytest.raises(CorruptPageError) as par_exc:
        ParallelQueryEngine(index, workers=4, cache_pages=0).run(queries)
    # Ticketed fetches fail in serial order, so the parallel engine
    # surfaces exactly the error the serial engine raised.
    assert par_exc.value.page_id == serial_exc.value.page_id
    assert par_exc.value.disk == serial_exc.value.disk
    # A failed batch leaves the index usable (tracer/fault mode reset).
    assert index.tracer is NULL_TRACER
    index.clear_caches()
    vr = smooth_dem.value_range
    band = ValueQuery(vr.lo, vr.lo + 0.1 * vr.length)
    assert index.query(band).candidate_count >= 0


@pytest.mark.parametrize("backend", ["list", "mmap"])
def test_skip_mode_matches_serial_degradation(backend, smooth_dem):
    queries = _workload(smooth_dem)
    index = IHilbertIndex(smooth_dem, disk_backend=backend)
    pid = index.store.page_ids[1]
    index.data_disk._flip_bit(pid, byte_index=3, bit=2)

    index.clear_caches()
    index.stats.reset()
    serial = BatchQueryEngine(index, cache_pages=0).run(
        queries, on_fault="skip")
    index.clear_caches()
    index.stats.reset()
    par = ParallelQueryEngine(index, workers=4, cache_pages=0).run(
        queries, on_fault="skip")

    assert [r.degraded for r in par.results] \
        == [r.degraded for r in serial.results]
    assert [[f.page_id for f in r.faults] for r in par.results] \
        == [[f.page_id for f in r.faults] for r in serial.results]
    assert [r.candidate_count for r in par.results] \
        == [r.candidate_count for r in serial.results]
    assert par.io == serial.io
    assert any(r.degraded for r in par.results)


def test_transient_faults_retry_identically(smooth_dem):
    from repro.storage import RetryPolicy
    queries = _workload(smooth_dem)

    def run(engine_cls, **kw):
        index = IHilbertIndex(
            smooth_dem, retry_policy=RetryPolicy(max_attempts=5),
            disk_backend="mmap")
        injector = index.inject_faults(FaultInjector(seed=17))
        injector.add("read_error", max_faults=4)
        batch = engine_cls(index, cache_pages=0, **kw).run(queries)
        return ([r.candidate_count for r in batch.results], batch.io,
                [(e.kind, e.page_id, e.op_index) for e in injector.events])

    serial_out = run(BatchQueryEngine)
    par_out = run(ParallelQueryEngine, workers=4)
    # Ticketed fetches keep the injector's op counter on the serial
    # schedule, so the same faults hit the same operations.
    assert par_out == serial_out
    assert serial_out[1].read_retries == 4

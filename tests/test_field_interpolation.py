"""Unit and property tests for interpolation functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field import (
    barycentric_coordinates,
    bilinear,
    inverse_distance,
    linear_triangle,
    nearest,
    plane_coefficients,
    triangle_band_fraction,
    triangle_fraction_below,
)

TRI = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]

value = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)


def test_plane_coefficients_reproduce_vertices():
    vals = [1.0, 3.0, 5.0]
    a, b, c = plane_coefficients(TRI, vals)
    for (x, y), v in zip(TRI, vals):
        assert a * x + b * y + c == pytest.approx(v)


def test_plane_coefficients_degenerate_rejected():
    with pytest.raises(ValueError):
        plane_coefficients([(0, 0), (1, 1), (2, 2)], [0, 1, 2])


def test_linear_triangle_center_is_mean():
    center = (1.0 / 3.0, 1.0 / 3.0)
    assert linear_triangle(center, TRI, [3.0, 6.0, 9.0]) == pytest.approx(6.0)


def test_barycentric_vertices_and_center():
    assert barycentric_coordinates((0.0, 0.0), TRI) == \
        pytest.approx((1.0, 0.0, 0.0))
    assert barycentric_coordinates((1.0, 0.0), TRI) == \
        pytest.approx((0.0, 1.0, 0.0))
    assert sum(barycentric_coordinates((0.2, 0.3), TRI)) == pytest.approx(1.0)


def test_bilinear_corners_and_center():
    corners = (1.0, 2.0, 3.0, 4.0)    # v00, v10, v11, v01
    assert bilinear((0.0, 0.0), (0.0, 0.0), 1.0, corners) == 1.0
    assert bilinear((1.0, 0.0), (0.0, 0.0), 1.0, corners) == 2.0
    assert bilinear((1.0, 1.0), (0.0, 0.0), 1.0, corners) == 3.0
    assert bilinear((0.0, 1.0), (0.0, 0.0), 1.0, corners) == 4.0
    assert bilinear((0.5, 0.5), (0.0, 0.0), 1.0, corners) == 2.5


def test_nearest():
    assert nearest((0.1, 0.1), TRI, [10.0, 20.0, 30.0]) == 10.0
    assert nearest((0.9, 0.05), TRI, [10.0, 20.0, 30.0]) == 20.0


def test_inverse_distance_exact_on_sample():
    assert inverse_distance((0.0, 0.0), TRI, [10.0, 20.0, 30.0]) == 10.0


def test_inverse_distance_bounded_by_samples():
    v = inverse_distance((0.3, 0.3), TRI, [10.0, 20.0, 30.0])
    assert 10.0 <= v <= 30.0


def test_fraction_below_known_values():
    # v0=0, v1=1, v2=2 on a triangle.
    assert triangle_fraction_below(0.0, 1.0, 2.0, -1.0) == 0.0
    assert triangle_fraction_below(0.0, 1.0, 2.0, 0.0) == 0.0
    assert triangle_fraction_below(0.0, 1.0, 2.0, 2.0) == 1.0
    assert triangle_fraction_below(0.0, 1.0, 2.0, 3.0) == 1.0
    # At the median value: (1-0)^2 / ((1-0)(2-0)) = 0.5.
    assert triangle_fraction_below(0.0, 1.0, 2.0, 1.0) == pytest.approx(0.5)
    # Quarter point in the lower segment: (0.5)^2/(1*2) = 0.125.
    assert triangle_fraction_below(0.0, 1.0, 2.0, 0.5) == pytest.approx(0.125)


def test_fraction_below_flat_triangle():
    assert triangle_fraction_below(5.0, 5.0, 5.0, 4.9) == 0.0
    assert triangle_fraction_below(5.0, 5.0, 5.0, 5.0) == 1.0
    assert triangle_fraction_below(5.0, 5.0, 5.0, 5.1) == 1.0


def test_fraction_below_two_equal_low_vertices():
    # v0=v1=0, v2=1: below t -> 1 - (1-t)^2.
    assert triangle_fraction_below(0.0, 0.0, 1.0, 0.5) == pytest.approx(0.75)


def test_fraction_below_two_equal_high_vertices():
    # v0=0, v1=v2=1: below t -> t^2.
    assert triangle_fraction_below(0.0, 1.0, 1.0, 0.5) == pytest.approx(0.25)


def test_fraction_below_vectorized():
    v0 = np.array([0.0, 0.0])
    v1 = np.array([1.0, 0.0])
    v2 = np.array([2.0, 1.0])
    out = triangle_fraction_below(v0, v1, v2, np.array([1.0, 0.5]))
    assert out[0] == pytest.approx(0.5)
    assert out[1] == pytest.approx(0.75)


def test_band_fraction_full_band_is_one():
    assert triangle_band_fraction(1.0, 2.0, 4.0, 1.0, 4.0) == 1.0


def test_band_fraction_flat_triangle_on_boundary():
    assert triangle_band_fraction(3.0, 3.0, 3.0, 3.0, 5.0) == 1.0
    assert triangle_band_fraction(3.0, 3.0, 3.0, 0.0, 3.0) == 1.0
    assert triangle_band_fraction(3.0, 3.0, 3.0, 4.0, 5.0) == 0.0


@given(value, value, value, value)
def test_property_fraction_below_monotone(v0, v1, v2, t):
    lower = triangle_fraction_below(v0, v1, v2, t)
    higher = triangle_fraction_below(v0, v1, v2, t + 1.0)
    assert 0.0 <= lower <= 1.0
    assert lower <= higher + 1e-12


@given(value, value, value, value, value)
def test_property_band_partition(v0, v1, v2, a, b):
    """Band [min,m] + band [m,max] covers the full triangle exactly.

    A completely flat triangle whose value equals the split point is a
    legitimate member of BOTH closed bands (the paper's intervals are
    closed), so exactness is only required away from that measure-zero
    case.
    """
    lo, hi = min(a, b), max(a, b)
    vmin = min(v0, v1, v2) - 1.0
    vmax = max(v0, v1, v2) + 1.0
    mid = (lo + hi) / 2.0
    left = triangle_band_fraction(v0, v1, v2, vmin, mid)
    right = triangle_band_fraction(v0, v1, v2, mid, vmax)
    total = triangle_band_fraction(v0, v1, v2, vmin, vmax)
    assert total == pytest.approx(1.0)
    if v0 == v1 == v2 == mid:
        assert left == 1.0 and right == 1.0
    else:
        assert left + right == pytest.approx(1.0, abs=1e-9)


@given(value, value, value, value, value)
def test_property_band_fraction_bounded_and_monotone(v0, v1, v2, a, b):
    lo, hi = min(a, b), max(a, b)
    frac = triangle_band_fraction(v0, v1, v2, lo, hi)
    wider = triangle_band_fraction(v0, v1, v2, lo - 1.0, hi + 1.0)
    assert 0.0 <= frac <= 1.0
    assert frac <= wider + 1e-12

"""Unit, randomized and property tests for the R*-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.rstar import RStarTree


def random_boxes(n, rng, extent=100.0, size=5.0):
    out = []
    for i in range(n):
        x, y = rng.random(2) * extent
        w, h = rng.random(2) * size
        out.append((Rect((x, y), (x + w, y + h)), i))
    return out


def brute_search(data, query):
    return sorted(i for rect, i in data if rect.intersects(query))


def test_empty_tree_search():
    tree = RStarTree(dim=2)
    assert list(tree.search(Rect((0.0, 0.0), (1.0, 1.0)))) == []
    assert len(tree) == 0
    assert tree.height == 1


def test_single_insert_and_search():
    tree = RStarTree(dim=1)
    tree.insert(Rect.from_interval(1.0, 2.0), 7)
    assert list(tree.search(Rect.from_interval(1.5, 1.6))) == [7]
    assert list(tree.search(Rect.from_interval(3.0, 4.0))) == []
    assert len(tree) == 1


def test_dimension_mismatch_rejected():
    tree = RStarTree(dim=2)
    with pytest.raises(ValueError):
        tree.insert(Rect.from_interval(0.0, 1.0), 0)
    with pytest.raises(ValueError):
        tree.search(Rect.from_interval(0.0, 1.0))


def test_max_entries_validation():
    with pytest.raises(ValueError):
        RStarTree(dim=1, max_entries=3)
    with pytest.raises(ValueError):
        RStarTree(dim=1, max_entries=100000)


def test_duplicate_rect_different_ids():
    tree = RStarTree(dim=1, max_entries=4)
    r = Rect.from_interval(0.0, 1.0)
    for i in range(10):
        tree.insert(r, i)
    assert sorted(tree.search(r)) == list(range(10))


def test_insert_grows_height():
    tree = RStarTree(dim=2, max_entries=4)
    rng = np.random.default_rng(1)
    for rect, i in random_boxes(100, rng):
        tree.insert(rect, i)
    assert tree.height >= 3
    tree.check_invariants()


def test_insert_search_matches_brute_force():
    tree = RStarTree(dim=2, max_entries=8)
    rng = np.random.default_rng(2)
    data = random_boxes(400, rng)
    for rect, i in data:
        tree.insert(rect, i)
    tree.check_invariants()
    for _ in range(40):
        x, y = rng.random(2) * 90
        query = Rect((x, y), (x + 10, y + 10))
        assert sorted(tree.search(query)) == brute_search(data, query)


def test_search_entries_returns_rects():
    tree = RStarTree(dim=1, max_entries=4)
    tree.insert(Rect.from_interval(0.0, 1.0), 5)
    tree.insert(Rect.from_interval(10.0, 11.0), 6)
    found = tree.search_entries(Rect.from_interval(0.5, 0.6))
    assert found == [(Rect.from_interval(0.0, 1.0), 5)]


def test_delete_removes_only_exact_entry():
    tree = RStarTree(dim=1, max_entries=4)
    a = Rect.from_interval(0.0, 1.0)
    b = Rect.from_interval(0.0, 2.0)
    tree.insert(a, 1)
    tree.insert(b, 2)
    assert tree.delete(a, 1)
    assert not tree.delete(a, 1)          # already gone
    assert not tree.delete(b, 99)         # id mismatch
    assert sorted(tree.search(Rect.from_interval(0.0, 5.0))) == [2]
    assert len(tree) == 1


def test_delete_condenses_tree():
    tree = RStarTree(dim=2, max_entries=4)
    rng = np.random.default_rng(3)
    data = random_boxes(200, rng)
    for rect, i in data:
        tree.insert(rect, i)
    for rect, i in data[:150]:
        assert tree.delete(rect, i)
    tree.check_invariants()
    rest = data[150:]
    for _ in range(20):
        x, y = rng.random(2) * 90
        query = Rect((x, y), (x + 15, y + 15))
        assert sorted(tree.search(query)) == brute_search(rest, query)


def test_delete_everything_leaves_empty_tree():
    tree = RStarTree(dim=1, max_entries=4)
    data = [(Rect.from_interval(float(i), float(i + 1)), i)
            for i in range(50)]
    for rect, i in data:
        tree.insert(rect, i)
    for rect, i in data:
        assert tree.delete(rect, i)
    assert len(tree) == 0
    assert list(tree.search(Rect.from_interval(0.0, 100.0))) == []


def test_bulk_load_matches_dynamic_inserts():
    rng = np.random.default_rng(4)
    data = random_boxes(500, rng)
    dynamic = RStarTree(dim=2, max_entries=16)
    for rect, i in data:
        dynamic.insert(rect, i)
    packed = RStarTree(dim=2, max_entries=16)
    packed.bulk_load([r for r, _i in data], [i for _r, i in data])
    packed.check_invariants()
    for _ in range(30):
        x, y = rng.random(2) * 90
        query = Rect((x, y), (x + 10, y + 10))
        assert sorted(dynamic.search(query)) == sorted(packed.search(query))


def test_bulk_load_1d_intervals():
    tree = RStarTree(dim=1)
    rects = [Rect.from_interval(float(i), float(i + 2)) for i in range(1000)]
    tree.bulk_load(rects, range(1000))
    tree.check_invariants()
    assert sorted(tree.search(Rect.from_interval(500.5, 500.6))) == \
        [499, 500]


def test_bulk_load_requires_empty_tree():
    tree = RStarTree(dim=1)
    tree.insert(Rect.from_interval(0.0, 1.0), 0)
    with pytest.raises(ValueError):
        tree.bulk_load([Rect.from_interval(0.0, 1.0)], [1])


def test_bulk_load_validates_lengths_and_fill():
    tree = RStarTree(dim=1)
    with pytest.raises(ValueError):
        tree.bulk_load([Rect.from_interval(0.0, 1.0)], [1, 2])
    with pytest.raises(ValueError):
        tree.bulk_load([Rect.from_interval(0.0, 1.0)], [1], fill=0.0)


def test_bulk_load_empty_is_noop():
    tree = RStarTree(dim=1)
    tree.bulk_load([], [])
    assert len(tree) == 0


def test_bulk_load_no_underfull_nodes():
    # 171 = one full leaf + a 1-entry remainder; balancing must fix it.
    tree = RStarTree(dim=1)
    n = tree.capacity + 1
    rects = [Rect.from_interval(float(i), float(i)) for i in range(n)]
    tree.bulk_load(rects, range(n))
    tree.check_invariants()


def test_search_accounts_page_reads():
    tree = RStarTree(dim=1, max_entries=8)
    for i in range(100):
        tree.insert(Rect.from_interval(float(i), float(i + 1)), i)
    tree.flush()
    tree.disk.stats.reset()
    tree.search(Rect.from_interval(50.0, 51.0))
    assert tree.disk.stats.page_reads >= tree.height


def test_buffer_pool_serves_repeat_searches():
    tree = RStarTree(dim=1, max_entries=8, cache_pages=64)
    for i in range(100):
        tree.insert(Rect.from_interval(float(i), float(i + 1)), i)
    query = Rect.from_interval(10.0, 11.0)
    tree.search(query)
    tree.disk.stats.reset()
    tree.search(query)
    assert tree.disk.stats.page_reads == 0
    assert tree.disk.stats.cache_hits > 0


def test_root_mbr():
    tree = RStarTree(dim=1, max_entries=4)
    assert tree.root_mbr() is None
    tree.insert(Rect.from_interval(2.0, 3.0), 0)
    tree.insert(Rect.from_interval(7.0, 9.0), 1)
    assert tree.root_mbr() == Rect.from_interval(2.0, 9.0)


def test_forced_reinsert_path_is_exercised():
    """With a tiny capacity, inserts trigger reinsert + cascading splits."""
    tree = RStarTree(dim=2, max_entries=5)
    rng = np.random.default_rng(5)
    # Clustered insertion order provokes overflow in hot regions.
    data = []
    for c in range(10):
        cx, cy = rng.random(2) * 100
        for k in range(30):
            x, y = cx + rng.random() * 5, cy + rng.random() * 5
            rect = Rect((x, y), (x + 0.5, y + 0.5))
            data.append((rect, len(data)))
            tree.insert(rect, len(data) - 1)
    tree.check_invariants()
    query = Rect((0.0, 0.0), (110.0, 110.0))   # covers every box
    assert sorted(tree.search(query)) == list(range(len(data)))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0, 100, allow_nan=False),
                          st.floats(0, 5, allow_nan=False),
                          st.floats(0, 5, allow_nan=False)),
                min_size=1, max_size=120),
       st.integers(0, 10000))
def test_property_insert_delete_search(entries, seed):
    """Random workloads keep invariants and agree with brute force."""
    tree = RStarTree(dim=2, max_entries=6)
    data = []
    for i, (x, y, w, h) in enumerate(entries):
        rect = Rect((x, y), (x + w, y + h))
        tree.insert(rect, i)
        data.append((rect, i))
    # Delete a deterministic subset.
    rng = np.random.default_rng(seed)
    keep = []
    for rect, i in data:
        if rng.random() < 0.4:
            assert tree.delete(rect, i)
        else:
            keep.append((rect, i))
    tree.check_invariants()
    for _ in range(5):
        x, y = rng.random(2) * 90
        query = Rect((x, y), (x + 20, y + 20))
        assert sorted(tree.search(query)) == brute_search(keep, query)

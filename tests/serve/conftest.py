"""Serve-layer fixtures: an in-process server on an ephemeral port.

The harness boots a real :class:`~repro.serve.server.FieldServer` on a
private event loop in a daemon thread (exactly the embedding the bench
load generator uses), with a small deterministic DEM open as
``"terrain"``.  Tests talk to it over real TCP through
:class:`~repro.serve.client.FieldClient`, so every assertion exercises
the wire protocol end to end.
"""

from __future__ import annotations

import pytest

from repro.core import EngineFacade, IHilbertIndex
from repro.field import DEMField
from repro.serve import (
    AdmissionController,
    FieldClient,
    FieldServer,
    ServerThread,
    TenantQuota,
)
from repro.synth import fractal_dem_heights


@pytest.fixture
def dem() -> DEMField:
    """A 32x32 deterministic DEM every serve test queries."""
    return DEMField(fractal_dem_heights(32, 0.9, seed=7))


@pytest.fixture
def value_band(dem):
    """A (lo, hi) band guaranteed to intersect the DEM's values."""
    vr = dem.value_range
    span = vr.hi - vr.lo
    return vr.lo + 0.3 * span, vr.lo + 0.6 * span


@pytest.fixture(params=["plain", "sharded"])
def terrain_source(request, dem):
    """The ``"terrain"`` mount, parametrized over both facade paths.

    Every suite using the default ``server``/``client`` fixtures runs
    once against a plain :class:`IHilbertIndex` and once against a
    2-shard :class:`~repro.shard.ShardedEngine` — the two ways a field
    mounts into a facade — with no test duplication.  Servers booted
    with an explicit ``facade=`` are unaffected.
    """
    if request.param == "sharded":
        from repro.shard import ShardedEngine
        return ShardedEngine(dem, n_shards=2, method="I-Hilbert")
    return IHilbertIndex(dem)


@pytest.fixture
def boot_server(dem):
    """Factory booting servers; every one is stopped at teardown.

    Returns ``(server, host, port)``.  Keyword arguments pass through
    to :class:`FieldServer`; ``default_quota``/``quotas`` configure the
    admission controller; ``facade=None`` builds one with ``"terrain"``
    open over the fixture DEM.
    """
    harnesses: list[ServerThread] = []

    def boot(*, facade=None, default_quota=None, quotas=None, **kwargs):
        if facade is None:
            facade = EngineFacade(default_workers=2)
            facade.open_field("terrain", IHilbertIndex(dem))
        admission = AdmissionController(
            default=default_quota or TenantQuota(),
            quotas=quotas or {})
        server = FieldServer(facade=facade, admission=admission,
                             **kwargs)
        harness = ServerThread(server)
        host, port = harness.start()
        harnesses.append(harness)
        server.harness = harness        # for tests driving the loop
        return server, host, port

    yield boot
    for harness in harnesses:
        harness.stop()


@pytest.fixture
def server(boot_server, terrain_source):
    """A default server with ``"terrain"`` open (both mount paths)."""
    facade = EngineFacade(default_workers=2)
    facade.open_field("terrain", terrain_source)
    return boot_server(facade=facade)


@pytest.fixture
def client(server):
    """One connected client (tenant ``"t1"``) against ``server``."""
    _, host, port = server
    with FieldClient(host, port, tenant="t1") as c:
        yield c


def connect(server, tenant="t1") -> FieldClient:
    """Open an extra client connection against a ``(server, host,
    port)`` triple (caller closes)."""
    _, host, port = server
    return FieldClient(host, port, tenant=tenant)

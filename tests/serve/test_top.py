"""The ``repro top`` console: pure-function rendering + a live session."""

from __future__ import annotations

import io

from repro.serve import run_top
from repro.serve.top import render_frame

from .conftest import connect


def _payloads():
    """Hand-built metrics/stats payloads shaped like the server verbs."""
    metrics = {
        "slo": {
            "window_s": 60.0,
            "series": [{
                "tenant": "alice", "op": "query", "window_s": 60.0,
                "count": 600, "qps": 10.0,
                "latency_ms": {"p50": 1.2, "p95": 8.7, "p99": 1500.0,
                               "mean": 2.0},
                "errors": 6, "timeouts": 0, "rejections": 12,
                "error_rate": 0.01, "timeout_rate": 0.0,
                "rejection_rate": 0.02,
            }],
        },
        "metrics": [
            {"name": "repro_cell_updates_total",
             "series": [{"labels": {}, "value": 42.0}]},
            {"name": "repro_compactions_total",
             "series": [{"labels": {"field": "terrain"}, "value": 3.0}]},
            {"name": "repro_subfield_staleness",
             "series": [{"labels": {"field": "a"}, "value": 2.0},
                        {"labels": {"field": "b"}, "value": 7.0}]},
        ],
    }
    stats = {
        "server": {"requests": 1234, "active": 2, "open_connections": 5,
                   "sampled": 17, "qlog_entries": 3},
        "admission": {
            "alice": {"pending": 1, "inflight": 2, "tokens": 7.5,
                      "admitted": 600, "rejected_quota": 12,
                      "rejected_backpressure": 0, "timeouts": 0},
            "bob": {"pending": 0, "inflight": 0, "tokens": None,
                    "admitted": 10, "rejected_quota": 0,
                    "rejected_backpressure": 1, "timeouts": 2},
        },
        "fields": {
            "terrain": {"method": "I-Hilbert", "queries": 600,
                        "io": {"page_reads": 9000},
                        "pool": {"hits": 75, "misses": 25,
                                 "resident_pages": 40, "capacity": 64}},
        },
    }
    return metrics, stats


class TestRenderFrame:
    def test_frame_is_a_pure_function_of_the_payloads(self):
        metrics, stats = _payloads()
        first = render_frame(metrics, stats, "h:1", 2.0)
        second = render_frame(metrics, stats, "h:1", 2.0)
        assert first == second

    def test_header_counts(self):
        frame = render_frame(*_payloads(), address="h:1", interval_s=2.0)
        header = frame.splitlines()[0]
        assert "requests=1234" in header
        assert "sampled=17" in header
        assert "qlog=3" in header

    def test_slo_row_formats_rates_and_latency(self):
        frame = render_frame(*_payloads(), address="h:1", interval_s=2.0)
        (row,) = [l for l in frame.splitlines() if "alice" in l
                  and "query" in l]
        assert "10.0" in row            # qps
        assert "1.20" in row            # p50 ms
        assert "1.50s" in row           # p99 crosses into seconds
        assert "1.0%" in row            # error rate
        assert "2.0%" in row            # rejection rate

    def test_admission_rows_show_unlimited_tokens_as_inf(self):
        frame = render_frame(*_payloads(), address="h:1", interval_s=2.0)
        (bob,) = [l for l in frame.splitlines()
                  if l.strip().startswith("bob")]
        assert "inf" in bob
        (alice,) = [l for l in frame.splitlines()
                    if l.strip().startswith("alice") and "7.5" in l]
        assert "600" in alice

    def test_fields_table_computes_hit_rate(self):
        frame = render_frame(*_payloads(), address="h:1", interval_s=2.0)
        (row,) = [l for l in frame.splitlines()
                  if l.strip().startswith("terrain")]
        assert "I-Hilbert" in row
        assert "75.0%" in row
        assert "40/64" in row

    def test_maintenance_line_aggregates_registry_families(self):
        frame = render_frame(*_payloads(), address="h:1", interval_s=2.0)
        (line,) = [l for l in frame.splitlines()
                   if l.startswith("Maintenance")]
        assert "updates=42" in line
        assert "compactions=3" in line
        assert "worst-staleness=7" in line

    def test_empty_payloads_render_placeholders(self):
        frame = render_frame({}, {}, "h:1", 2.0)
        assert "(no traffic in window)" in frame
        assert "(no tenants yet)" in frame
        assert "(none open)" in frame


class TestRunTop:
    def test_one_shot_against_a_live_server(self, server, value_band):
        srv, host, port = server
        with connect(server, tenant="alice") as client:
            for _ in range(3):
                client.query("terrain", *value_band)
        out = io.StringIO()
        frames = run_top(host, port, tenant="_top", interval_s=0.01,
                         iterations=1, out=out, refresh=False)
        assert frames == 1
        text = out.getvalue()
        assert f"repro top — {host}:{port}" in text
        assert "alice" in text          # the traffic we just generated
        assert "terrain" in text
        # The console's own metrics/stats requests count too.
        assert "_top" in text or "query" in text

    def test_multiple_iterations_append_frames(self, server):
        _, host, port = server
        out = io.StringIO()
        frames = run_top(host, port, interval_s=0.0, iterations=3,
                         out=out, refresh=False)
        assert frames == 3
        assert out.getvalue().count("repro top — ") == 3
        assert "\x1b[" not in out.getvalue()     # no ANSI in append mode

    def test_refresh_mode_emits_clear_sequences(self, server):
        _, host, port = server
        out = io.StringIO()
        run_top(host, port, interval_s=0.0, iterations=2, out=out,
                refresh=True)
        assert out.getvalue().count("\x1b[H\x1b[J") == 2

    def test_auto_detect_falls_back_to_append(self, server):
        _, host, port = server
        out = io.StringIO()      # not a TTY
        run_top(host, port, interval_s=0.0, iterations=1, out=out)
        assert "\x1b[" not in out.getvalue()


class TestTopCLI:
    def test_top_once(self, server, capsys):
        from repro.cli import main
        _, host, port = server
        assert main(["top", f"{host}:{port}", "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top — " in out
        assert "terrain" in out

    def test_top_rejects_bad_address(self):
        from repro.cli import main
        import pytest
        with pytest.raises(SystemExit):
            main(["top", "not-an-address", "--once"])

    def test_top_reports_connection_failure(self):
        from repro.cli import main
        import pytest
        # A port nothing listens on: the error surfaces as SystemExit,
        # not a traceback.
        with pytest.raises(SystemExit, match="error"):
            main(["top", "127.0.0.1:1", "--once"])

"""End-to-end server behavior over real TCP connections."""

import json
import threading
import time

import numpy as np
import pytest

from repro.serve import ClientError, MAX_FRAME_BYTES, ServerError

from .conftest import connect


def wait_until(predicate, timeout_s=5.0, interval_s=0.005):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def make_slow(index, delay_s):
    """Wrap ``index.query`` with a sleep; returns an un-patch callable."""
    original = index.query

    def slow(*args, **kwargs):
        time.sleep(delay_s)
        return original(*args, **kwargs)

    index.query = slow
    return lambda: setattr(index, "query", original)


# -- basic verbs -------------------------------------------------------------

def test_ping_and_fields(client):
    assert client.ping() is True
    listing = client.fields()
    assert set(listing["fields"]) == {"terrain"}
    # "I-Hilbert" on the plain mount, "Sharded[I-Hilbert]" on the
    # sharded one — either way the access method is visible.
    assert "I-Hilbert" in listing["fields"]["terrain"]["method"]
    assert listing["catalog"] == []


def test_query_over_the_wire_matches_direct_engine_call(server, client,
                                                        value_band):
    srv, _, _ = server
    lo, hi = value_band
    direct = srv.facade.query("terrain", lo, hi)
    answer = client.query("terrain", lo, hi)
    assert answer["candidates"] == direct.candidate_count
    assert answer["area"] == direct.area          # JSON floats are exact
    assert answer["degraded"] is False
    assert answer["io"]["page_reads"] >= 0


@pytest.mark.parametrize("kind", ["count", "sum", "area"])
def test_aggregate_over_the_wire_matches_direct_call(server, client,
                                                     value_band, kind):
    srv, _, _ = server
    lo, hi = value_band
    for params in (dict(mode="exact"), dict(mode="hybrid", tolerance=0.0),
                   dict(mode="hybrid", tolerance=5.0), dict(mode="model")):
        direct = srv.facade.aggregate("terrain", kind, lo, hi, **params)
        answer = client.aggregate("terrain", kind, lo, hi, **params)
        assert answer["value"] == direct.value    # JSON floats are exact
        assert answer["bound"] == direct.bound
        assert answer["kind"] == kind
        assert answer["mode"] == params["mode"]
    exact = client.aggregate("terrain", kind, lo, hi, mode="exact")
    zero = client.aggregate("terrain", kind, lo, hi,
                            mode="hybrid", tolerance=0.0)
    assert zero["value"] == exact["value"]
    assert zero["bound"] == 0.0


def test_aggregate_default_mode_and_avg(client, value_band):
    lo, hi = value_band
    answer = client.aggregate("terrain", "avg", lo, hi)
    assert answer["mode"] == "hybrid"
    count = client.aggregate("terrain", "count", lo, hi, mode="exact")
    total = client.aggregate("terrain", "sum", lo, hi, mode="exact")
    exact_avg = client.aggregate("terrain", "avg", lo, hi, mode="exact")
    assert exact_avg["value"] == pytest.approx(
        total["value"] / count["value"])
    if answer["bound"] is not None:
        assert abs(answer["value"] - exact_avg["value"]) \
            <= answer["bound"] + 1e-9


def test_concurrent_clients_get_byte_identical_answers(server, dem):
    """Eight clients hammering four bands concurrently must all get the
    single-threaded oracle's answers, byte for byte."""
    srv, _, _ = server
    vr = dem.value_range
    span = vr.hi - vr.lo
    bands = [(vr.lo + f * span, vr.lo + (f + 0.2) * span)
             for f in (0.1, 0.3, 0.5, 0.7)]
    oracle = {band: srv.facade.query("terrain", *band) for band in bands}

    n_clients = 8
    barrier = threading.Barrier(n_clients)
    failures = []

    def run(k):
        try:
            with connect(server, tenant=f"tenant-{k % 3}") as c:
                barrier.wait()
                for band in bands * 3:
                    answer = c.query("terrain", *band)
                    want = oracle[band]
                    assert answer["candidates"] == want.candidate_count
                    assert answer["area"] == want.area
        except BaseException as exc:   # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=run, args=(k,))
               for k in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures
    assert srv.counts["ok"] >= n_clients * len(bands) * 3


def test_batch_over_the_wire(server, client, value_band):
    srv, _, _ = server
    lo, hi = value_band
    queries = [(lo, hi), ((lo + hi) / 2, hi)]
    direct = srv.facade.batch("terrain", queries)
    answer = client.batch("terrain", queries)
    assert len(answer["results"]) == 2
    for got, want in zip(answer["results"], direct.results):
        assert got["candidates"] == want.candidate_count
        assert got["area"] == want.area
    assert answer["groups"] >= 1


def test_query_regions_estimate_caps_payload(client, value_band):
    lo, hi = value_band
    answer = client.query("terrain", lo, hi, estimate="regions",
                          max_regions=2)
    assert answer["regions_total"] >= len(answer["regions"])
    assert len(answer["regions"]) <= 2
    for region in answer["regions"]:
        assert {"cell_id", "area", "polygon"} <= set(region)


def test_update_changes_answers_over_the_wire(client):
    band = (123_456.0, 123_457.0)
    assert client.query("terrain", *band)["candidates"] == 0
    result = client.update("terrain", [0, 1, 4], [123_456.5] * 3)
    assert result["cells_rewritten"] > 0
    assert client.query("terrain", *band)["candidates"] > 0


# -- request validation ------------------------------------------------------

@pytest.mark.parametrize("params,code", [
    (dict(op="query", field="terrain", lo=5.0, hi=1.0), "bad-request"),
    (dict(op="query", field="terrain", lo="x", hi=1.0), "bad-request"),
    (dict(op="query", field="terrain", lo=0.0), "bad-request"),
    (dict(op="query", field="terrain", lo=0.0, hi=1.0,
          estimate="bogus"), "bad-request"),
    (dict(op="query", field="nope", lo=0.0, hi=1.0), "unknown-field"),
    (dict(op="batch", field="terrain", queries=[]), "bad-request"),
    (dict(op="batch", field="terrain", queries=[[1.0]]), "bad-request"),
    (dict(op="batch", field="terrain",
          queries=[[2.0, 1.0]]), "bad-request"),
    (dict(op="update", field="terrain", vertex_ids=[0],
          values=[1.0, 2.0]), "bad-request"),
    (dict(op="update", field="terrain", vertex_ids=[0.5],
          values=[1.0]), "bad-request"),
    (dict(op="update", field="terrain", vertex_ids=[True],
          values=[1.0]), "bad-request"),
    (dict(op="stats", field=7), "bad-request"),
    (dict(op="aggregate", field="terrain", kind="median",
          lo=0.0, hi=1.0), "bad-request"),
    (dict(op="aggregate", field="terrain", kind="count",
          lo=5.0, hi=1.0), "bad-request"),
    (dict(op="aggregate", field="terrain", kind="count",
          lo=0.0, hi=1.0, tolerance=-1.0), "bad-request"),
    (dict(op="aggregate", field="terrain", kind="count",
          lo=0.0, hi=1.0, mode="psychic"), "bad-request"),
    (dict(op="aggregate", field="nope", kind="count",
          lo=0.0, hi=1.0), "unknown-field"),
])
def test_invalid_requests_get_typed_errors(client, params, code):
    # Don't pop: the parametrize dicts are shared across fixture params.
    kwargs = {k: v for k, v in params.items() if k != "op"}
    with pytest.raises(ServerError) as excinfo:
        client.request(params["op"], **kwargs)
    assert excinfo.value.code == code


def test_malformed_frame_answers_and_connection_survives(client):
    response = json.loads(client.send_raw(b"definitely not json\n"))
    assert response == {"id": None, "ok": False,
                        "error": response["error"]}
    assert response["error"]["code"] == "bad-frame"
    assert client.ping()


def test_oversized_frame_closes_the_connection(server):
    with connect(server) as c:
        frame = (b'{"op": "ping", "pad": "' + b"x" * MAX_FRAME_BYTES
                 + b'"}\n')
        response = json.loads(c.send_raw(frame))
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-frame"
        # The tail of an oversized line cannot be resynchronized: the
        # server closes; the next read sees EOF.
        with pytest.raises(ClientError):
            c.ping()


# -- catalog open/close ------------------------------------------------------

def test_open_is_catalog_gated_and_idempotent(boot_server, dem, tmp_path):
    npy = tmp_path / "hills.npy"
    np.save(npy, dem.heights)
    server = boot_server(catalog={"hills": npy})
    with connect(server) as c:
        with pytest.raises(ServerError) as excinfo:
            c.query("hills", 0.0, 1.0)          # catalogued, not open yet
        assert excinfo.value.code == "unknown-field"

        opened = c.open("hills")
        assert opened["opened"] is True
        assert opened["info"]["source"].endswith("hills.npy")
        again = c.open("hills")                  # idempotent
        assert again["opened"] is False

        vr = dem.value_range
        assert c.query("hills", vr.lo, vr.hi)["candidates"] > 0

        # Arbitrary paths are not in the catalog: never openable.
        with pytest.raises(ServerError) as excinfo:
            c.open(str(npy))
        assert excinfo.value.code == "unknown-field"

        assert c.close_field("hills")["closed"] is True
        with pytest.raises(ServerError) as excinfo:
            c.query("hills", 0.0, 1.0)
        assert excinfo.value.code == "unknown-field"


# -- stats & metrics ---------------------------------------------------------

def test_stats_reports_server_admission_and_tenants(server, value_band):
    srv, _, _ = server
    lo, hi = value_band
    with connect(server, tenant="alice") as c:
        c.query("terrain", lo, hi)
        stats = c.stats("terrain")
    assert stats["field"] == "terrain"
    assert stats["tenants"]["alice"]["hits"] \
        + stats["tenants"]["alice"]["misses"] > 0
    assert stats["admission"]["alice"]["admitted"] == 1
    block = stats["server"]
    assert block["requests"] >= 1
    assert block["outcomes"].get("ok", 0) >= 1
    assert block["stopping"] is False
    assert srv.requests_served >= 2


def test_metrics_verb_json_and_text(boot_server, value_band):
    server = boot_server(enable_metrics=True)
    lo, hi = value_band
    with connect(server) as c:
        c.query("terrain", lo, hi)
        dump = c.metrics()
        assert dump["format"] == "json"
        names = {m["name"] for m in dump["metrics"]}
        assert "repro_serve_requests_total" in names
        assert "repro_serve_request_ms" in names
        text = c.metrics(format="text")
        assert "repro_serve_requests_total" in text["text"]


# -- lifecycle ---------------------------------------------------------------

def test_graceful_shutdown_drains_in_flight_requests(boot_server, dem,
                                                     value_band):
    """A client mid-request during stop() gets its answer, not a reset."""
    server = boot_server()
    srv, host, port = server
    unpatch = make_slow(srv.facade.handle("terrain").index, 0.4)
    lo, hi = value_band
    answers, failures = [], []

    def run():
        try:
            with connect(server) as c:
                answers.append(c.query("terrain", lo, hi))
        except BaseException as exc:   # pragma: no cover - failure path
            failures.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    try:
        assert wait_until(lambda: srv.active_requests == 1)
        srv.harness.submit(srv.stop())       # drains before closing
        thread.join(10.0)
        assert not failures
        assert len(answers) == 1
        assert answers[0]["candidates"] >= 0
        # The listener is gone: new connections are refused.
        with pytest.raises(OSError):
            connect(server)
    finally:
        unpatch()
        thread.join(1.0)


def test_requests_during_drain_get_shutting_down(boot_server):
    server = boot_server()
    srv, _, _ = server
    with connect(server) as warm:
        assert warm.ping()
        # A connection whose first frame arrives during the drain
        # window gets the typed shutting-down answer, not a reset.
        with connect(server) as c:
            srv._stopping = True             # simulate drain window
            try:
                with pytest.raises(ServerError) as excinfo:
                    c.ping()
                assert excinfo.value.code == "shutting-down"
            finally:
                srv._stopping = False


def test_max_requests_stops_the_server(boot_server):
    server = boot_server(max_requests=2)
    srv, _, _ = server
    with connect(server) as c:
        assert c.ping()
        assert c.ping()
        srv.harness.submit(srv.wait_stopped())
        with pytest.raises(ClientError):
            c.ping()
    with pytest.raises(OSError):
        connect(server)


def test_stop_is_idempotent(server):
    srv, _, _ = server
    srv.harness.submit(srv.stop())
    srv.harness.submit(srv.stop())           # second call: waits, no-op
    assert srv.active_requests == 0

"""End-to-end trace propagation through the serving stack.

The acceptance contract of DESIGN.md §11: a client-supplied
``trace_id`` forces the request to be sampled, the response echoes the
id, and the server retains a span tree bracketing protocol decode,
admission wait, the engine's own ``query → plan/filter/fetch/estimate``
spans, and response encode — all under that one id.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import QueryLog, span_to_tree
from repro.serve import ServerError

from .conftest import connect


def _span_names(root) -> list[str]:
    return [span.name for span, _ in root.walk()]


def _child(root, name):
    for child in root.children:
        if child.name == name:
            return child
    raise AssertionError(
        f"no {name!r} child under {root.name!r}: "
        f"{[c.name for c in root.children]}")


class TestClientSuppliedTraceId:
    def test_trace_id_is_echoed_in_the_response(self, server, value_band):
        srv, host, port = server
        with connect(server) as client:
            reply = client.query("terrain", *value_band,
                                 trace_id="deadbeef0042")
        assert reply["trace_id"] == "deadbeef0042"

    def test_span_tree_brackets_the_whole_request(self, server,
                                                  value_band):
        srv, _, _ = server
        with connect(server) as client:
            client.query("terrain", *value_band, trace_id="abc123")
        assert len(srv.sampled) == 1
        root = srv.sampled[0]
        assert root.name == "request[query]"
        assert root.attrs["trace_id"] == "abc123"
        assert root.attrs["tenant"] == "t1"
        assert root.attrs["outcome"] == "ok"
        # The event-loop side of the tree.
        for name in ("decode", "admission", "engine", "encode"):
            _child(root, name)
        # The engine's own spans, grafted under "engine".
        engine = _child(root, "engine")
        names = _span_names(engine)
        assert "query" in names
        assert "filter" in names
        assert "fetch" in names
        assert "estimate" in names

    def test_engine_spans_nest_inside_the_engine_span(self, server,
                                                      value_band):
        srv, _, _ = server
        with connect(server) as client:
            client.query("terrain", *value_band, trace_id="abc123")
        root = srv.sampled[0]
        engine = _child(root, "engine")
        query = _child(engine, "query")
        # Engine spans carry real I/O accounting from the index.
        assert query.io is not None
        assert "I-Hilbert" in query.attrs["method"]
        # Wall-clock sanity: children fit inside their parent.
        assert root.t0_ns <= engine.t0_ns <= engine.t1_ns <= root.t1_ns

    def test_admission_span_records_queue_depth_and_wait(self, server,
                                                         value_band):
        srv, _, _ = server
        with connect(server) as client:
            client.query("terrain", *value_band, trace_id="abc123")
        admission = _child(srv.sampled[0], "admission")
        assert admission.attrs["queue_depth"] == 0
        assert admission.attrs["wait_ms"] >= 0.0

    def test_parent_span_rides_along(self, server, value_band):
        srv, _, _ = server
        with connect(server) as client:
            client.query("terrain", *value_band, trace_id="abc123",
                         parent_span="span-007")
        assert srv.sampled[0].attrs["parent_span"] == "span-007"

    def test_error_outcomes_are_traced_too(self, server):
        srv, _, _ = server
        with connect(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("nope", 0.0, 1.0, trace_id="abc123")
        assert excinfo.value.code == "unknown-field"
        root = srv.sampled[0]
        assert root.attrs["outcome"] == "unknown-field"
        assert root.attrs["trace_id"] == "abc123"

    def test_span_tree_serializes_for_the_qlog(self, server, value_band):
        srv, _, _ = server
        with connect(server) as client:
            client.query("terrain", *value_band, trace_id="abc123")
        tree = span_to_tree(srv.sampled[0])
        assert tree["name"] == "request[query]"
        json.dumps(tree)   # JSON-safe all the way down


class TestSampling:
    def test_unsampled_by_default(self, server, value_band):
        srv, _, _ = server
        with connect(server) as client:
            reply = client.query("terrain", *value_band)
        assert "trace_id" not in reply
        assert len(srv.sampled) == 0
        assert srv.sampled_total == 0

    def test_sample_rate_one_samples_everything(self, boot_server,
                                                value_band):
        server = boot_server(trace_sample_rate=1.0)
        srv, _, _ = server
        with connect(server) as client:
            replies = [client.query("terrain", *value_band)
                       for _ in range(3)]
        assert srv.sampled_total == 3
        ids = {reply["trace_id"] for reply in replies}
        assert len(ids) == 3            # fresh id per request
        recorded = {root.attrs["trace_id"] for root in srv.sampled}
        assert recorded == ids

    def test_client_trace_mode_stamps_every_request(self, server,
                                                    value_band):
        srv, host, port = server
        from repro.serve import FieldClient
        with FieldClient(host, port, tenant="t1", trace=True) as client:
            first = client.query("terrain", *value_band)
            second = client.query("terrain", *value_band)
        assert first["trace_id"] != second["trace_id"]
        assert srv.sampled_total == 2

    def test_sampled_retention_is_bounded(self, boot_server, value_band):
        server = boot_server(trace_sample_rate=1.0, keep_sampled=2)
        srv, _, _ = server
        with connect(server) as client:
            for _ in range(5):
                client.query("terrain", *value_band)
        assert srv.sampled_total == 5
        assert len(srv.sampled) == 2

    def test_bad_trace_id_is_rejected(self, server):
        with connect(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("terrain", 0.0, 1.0, trace_id="x" * 65)
        assert excinfo.value.code == "bad-request"


class TestSlowQueryLogOverTheWire:
    def test_slow_requests_land_in_the_qlog(self, boot_server,
                                            value_band, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", latency_ms=0.0)
        server = boot_server(qlog=qlog, trace_sample_rate=1.0)
        srv, _, _ = server
        with connect(server, tenant="alice") as client:
            client.query("terrain", *value_band, trace_id="abc123")
        entries = qlog.read_entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["tenant"] == "alice"
        assert entry["op"] == "query"
        assert entry["outcome"] == "ok"
        assert entry["trace_id"] == "abc123"
        assert entry["latency_ms"] > 0
        assert entry["admission_wait_ms"] >= 0
        assert entry["queue_depth"] == 0
        assert entry["io"]["page_reads"] >= 0
        assert entry["method"] == "I-Hilbert"
        assert entry["args"]["field"] == "terrain"
        assert entry["spans"]["name"] == "request[query]"

    def test_fast_requests_stay_out(self, boot_server, value_band,
                                    tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", latency_ms=60_000.0)
        server = boot_server(qlog=qlog)
        with connect(server) as client:
            client.query("terrain", *value_band)
        assert qlog.read_entries() == []

    def test_page_threshold_logs_unsampled_requests(self, boot_server,
                                                    value_band,
                                                    tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", latency_ms=None, pages=0)
        server = boot_server(qlog=qlog)
        with connect(server) as client:
            client.query("terrain", *value_band)
        entries = qlog.read_entries()
        assert len(entries) == 1
        assert "spans" not in entries[0]     # unsampled: no tree
        assert "trace_id" not in entries[0]

    def test_big_batch_args_are_summarized(self, boot_server, value_band,
                                           tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", latency_ms=0.0)
        server = boot_server(qlog=qlog)
        lo, hi = value_band
        with connect(server) as client:
            client.batch("terrain", [(lo, hi)] * 50)
        (entry,) = qlog.read_entries()
        assert entry["args"]["queries"] == "<50 items>"

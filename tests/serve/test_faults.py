"""Storage faults through the serving layer: one tenant's corrupt field
must cost exactly one typed error — never the connection, never another
tenant's field, never the server."""

import pytest

from repro.core import EngineFacade, IHilbertIndex
from repro.field import DEMField
from repro.serve import ServerError
from repro.synth import fractal_dem_heights

from .conftest import connect


@pytest.fixture
def fault_server(boot_server):
    """A server with a healthy field and a bit-flipped one."""
    facade = EngineFacade(default_workers=2)
    good = DEMField(fractal_dem_heights(32, 0.9, seed=7))
    bad = DEMField(fractal_dem_heights(32, 0.9, seed=11))
    facade.open_field("good", IHilbertIndex(good))
    bad_index = IHilbertIndex(bad)
    facade.open_field("bad", bad_index)
    pid = bad_index.store.page_ids[1]
    bad_index.data_disk._flip_bit(pid, byte_index=3, bit=2)
    bad_index.clear_caches()
    server = boot_server(facade=facade)
    vr_good, vr_bad = good.value_range, bad.value_range
    return server, (vr_good.lo, vr_good.hi), (vr_bad.lo, vr_bad.hi), pid


def test_corrupt_page_is_a_typed_error_not_a_reset(fault_server):
    server, _, bad_band, _ = fault_server
    with connect(server, tenant="alice") as c:
        with pytest.raises(ServerError) as excinfo:
            c.query("bad", *bad_band)
        assert excinfo.value.code == "storage-fault"
        assert "CorruptPageError" in excinfo.value.message
        # Same connection, same tenant: still fully served.
        assert c.ping()
        assert c.query("good", *fault_server[1])["candidates"] > 0


def test_other_tenants_on_the_same_server_are_unaffected(fault_server):
    server, good_band, bad_band, _ = fault_server
    srv, _, _ = server
    with connect(server, tenant="alice") as alice, \
            connect(server, tenant="bob") as bob:
        for _ in range(3):
            with pytest.raises(ServerError):
                alice.query("bad", *bad_band)
            answer = bob.query("good", *good_band)
            assert answer["candidates"] > 0
            assert answer["degraded"] is False
    # The outcome ledger shows both streams, no internal errors.
    assert srv.counts["storage-fault"] == 3
    assert srv.counts["ok"] >= 3
    assert "internal" not in srv.counts


def test_on_fault_skip_degrades_instead_of_failing(fault_server):
    server, _, bad_band, pid = fault_server
    with connect(server, tenant="alice") as c:
        answer = c.query("bad", *bad_band, on_fault="skip")
        assert answer["degraded"] is True
        faults = answer["faults"]
        assert faults and faults[0]["kind"] == "CorruptPageError"
        assert any(f["page_id"] == pid for f in faults)
        # Degraded-mode stats land per tenant like any other query.
        stats = c.stats("bad")
        alice = stats["tenants"]["alice"]
        assert alice["hits"] + alice["misses"] > 0


def test_batch_on_corrupt_field_is_typed_too(fault_server):
    server, _, bad_band, _ = fault_server
    lo, hi = bad_band
    with connect(server, tenant="alice") as c:
        with pytest.raises(ServerError) as excinfo:
            c.batch("bad", [(lo, hi), (lo, (lo + hi) / 2)])
        assert excinfo.value.code == "storage-fault"
        assert c.ping()

"""The plain-HTTP ``GET /metrics`` side listener and the ``metrics`` verb.

The side listener exists so a stock Prometheus scraper can pull the
registry without speaking the NDJSON protocol; these tests drive it
with :mod:`http.client` — a real HTTP/1.1 conversation over TCP.
"""

from __future__ import annotations

import http.client

import pytest

from repro.obs.metrics import REGISTRY

from .conftest import connect


@pytest.fixture
def metrics_server(boot_server):
    """A server with the metrics listener bound on an ephemeral port."""
    server = boot_server(metrics_port=0)
    srv, _, _ = server
    assert srv.metrics_address is not None
    yield server
    REGISTRY.reset()


def _http_get(address, path: str):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestMetricsEndpoint:
    def test_scrape_returns_prometheus_text(self, metrics_server,
                                            value_band):
        srv, _, _ = metrics_server
        with connect(metrics_server) as client:
            for _ in range(4):
                client.query("terrain", *value_band)
        status, headers, body = _http_get(srv.metrics_address, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4")
        assert int(headers["Content-Length"]) == len(body)
        text = body.decode("utf-8")
        assert "# TYPE repro_slo_qps gauge" in text
        assert ('repro_slo_latency_ms{op="query",quantile="p95",'
                'tenant="t1"}') in text
        assert 'repro_slo_qps{op="query",tenant="t1"}' in text

    def test_root_path_scrapes_too(self, metrics_server, value_band):
        srv, _, _ = metrics_server
        with connect(metrics_server) as client:
            client.query("terrain", *value_band)
        status, _, body = _http_get(srv.metrics_address, "/")
        assert status == 200
        assert b"repro_slo_qps" in body

    def test_other_paths_404(self, metrics_server):
        srv, _, _ = metrics_server
        status, _, body = _http_get(srv.metrics_address, "/favicon.ico")
        assert status == 404
        assert body == b"only GET /metrics here\n"

    def test_listener_absent_by_default(self, server):
        srv, _, _ = server
        assert srv.metrics_address is None

    def test_listener_survives_repeat_scrapes(self, metrics_server):
        srv, _, _ = metrics_server
        for _ in range(3):
            status, _, _ = _http_get(srv.metrics_address, "/metrics")
            assert status == 200


class TestMetricsVerb:
    def test_prometheus_format(self, server, value_band):
        with connect(server) as client:
            client.query("terrain", *value_band)
            reply = client.metrics(format="prometheus")
        text = reply["text"]
        assert "# TYPE repro_slo_latency_ms gauge" in text
        assert 'tenant="t1"' in text
        REGISTRY.reset()

    def test_json_format_carries_the_slo_snapshot(self, server,
                                                  value_band):
        with connect(server) as client:
            client.query("terrain", *value_band)
            reply = client.metrics(format="json")
        slo = reply["slo"]
        assert slo["window_s"] > 0
        (row,) = [r for r in slo["series"]
                  if r["tenant"] == "t1" and r["op"] == "query"]
        assert row["count"] >= 1
        assert row["latency_ms"]["p50"] >= 0
        assert row["error_rate"] == 0.0

    def test_rolling_observes_error_outcomes(self, server):
        from repro.serve import ServerError
        with connect(server) as client:
            with pytest.raises(ServerError):
                client.query("nope", 0.0, 1.0)
            reply = client.metrics(format="json")
        (row,) = reply["slo"]["series"]
        assert row["errors"] == 1
        assert row["error_rate"] == 1.0

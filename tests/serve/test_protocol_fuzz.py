"""Property/fuzz suite for the protocol codec.

The contract under test: :func:`decode_request` raises
:class:`ProtocolError` — and *only* :class:`ProtocolError` — on every
malformed input, and round-trips every well-formed frame exactly.  The
last test drives the same garbage through a real server connection and
checks the connection survives each frame with a typed error response.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    Request,
    decode_request,
    encode_error,
    encode_response,
)

from .conftest import connect

SETTINGS = settings(max_examples=200, deadline=None)

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2**31, max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=20),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=10), children,
                                        max_size=4)),
    max_leaves=10)


@SETTINGS
@given(st.binary(max_size=512))
def test_arbitrary_bytes_never_raise_anything_but_protocol_error(data):
    try:
        request = decode_request(data)
    except ProtocolError as exc:
        assert exc.code in ERROR_CODES
    else:
        assert isinstance(request, Request)
        assert request.op in OPS


@SETTINGS
@given(json_values)
def test_arbitrary_json_documents_decode_or_fail_typed(doc):
    frame = json.dumps(doc)
    try:
        request = decode_request(frame)
    except ProtocolError as exc:
        assert exc.code in ERROR_CODES
    else:
        assert isinstance(doc, dict) and request.op == doc["op"]


@SETTINGS
@given(
    op=st.sampled_from(sorted(OPS)),
    request_id=st.none() | st.integers() | st.text(max_size=30),
    tenant=st.text(min_size=1, max_size=128),
    params=st.dictionaries(
        st.text(min_size=1, max_size=15).filter(
            lambda k: k not in ("op", "id", "tenant", "trace_id",
                                "parent_span")),
        json_values, max_size=5))
def test_wellformed_requests_roundtrip_exactly(op, request_id, tenant,
                                               params):
    obj = {"op": op, "id": request_id, "tenant": tenant, **params}
    request = decode_request(json.dumps(obj))
    assert request.op == op
    assert request.id == request_id
    assert request.tenant == tenant
    assert request.params == params


@SETTINGS
@given(request_id=st.none() | st.integers() | st.text(max_size=20),
       payload=st.dictionaries(
           st.text(min_size=1, max_size=10).filter(
               lambda k: k not in ("id", "ok")),
           json_values, max_size=5))
def test_encode_response_emits_one_parseable_frame(request_id, payload):
    frame = encode_response(request_id, payload)
    assert frame.endswith(b"\n") and frame.count(b"\n") == 1
    obj = json.loads(frame)
    assert obj["ok"] is True and obj["id"] == request_id
    for key, value in payload.items():
        assert obj[key] == value


@SETTINGS
@given(request_id=st.none() | st.integers(),
       code=st.sampled_from(sorted(ERROR_CODES)),
       message=st.text(max_size=100))
def test_encode_error_emits_one_parseable_frame(request_id, code, message):
    obj = json.loads(encode_error(request_id, code, message))
    assert obj["ok"] is False
    assert obj["error"] == {"code": code, "message": message}


GARBAGE_FRAMES = [
    b"\n",
    b"   \n",
    b"}{ not json\n",
    b'"just a string"\n',
    b"[1,2,3]\n",
    b"{}\n",
    b'{"op": 42}\n',
    b'{"op": "launch-missiles"}\n',
    b'{"op": "query"}\n',                       # missing params
    b'{"op": "query", "field": "terrain"}\n',   # missing lo/hi
    b'{"op": "ping", "id": {"j": 1}}\n',
    b'{"op": "ping", "tenant": ""}\n',
    b"\xc3\x28 invalid utf8\n",
]


def test_server_connection_survives_every_garbage_frame(server):
    """Socket-level: each junk frame gets a typed error and the same
    connection keeps serving afterwards."""
    with connect(server) as c:
        for frame in GARBAGE_FRAMES:
            response = json.loads(c.send_raw(frame))
            assert response["ok"] is False, frame
            assert response["error"]["code"] in ERROR_CODES, frame
        # Not wedged and no state leaked: a proper request still works.
        assert c.ping()

"""Codec unit tests: every malformed frame folds into a typed error."""

import json

import pytest

from repro.serve import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    ProtocolError,
    decode_request,
    encode_error,
    encode_response,
)
from repro.serve.protocol import need, need_number, optional_choice


def code_of(excinfo) -> str:
    return excinfo.value.code


# -- decoding ----------------------------------------------------------------

def test_decode_full_frame():
    req = decode_request(
        b'{"id": 7, "op": "query", "tenant": "alice",'
        b' "field": "terrain", "lo": 1.0, "hi": 2.0}\n')
    assert req.op == "query"
    assert req.id == 7
    assert req.tenant == "alice"
    assert req.params == {"field": "terrain", "lo": 1.0, "hi": 2.0}


def test_decode_minimal_frame_defaults():
    req = decode_request('{"op": "ping"}')
    assert req.op == "ping"
    assert req.id is None
    assert req.tenant == "default"
    assert req.params == {}


def test_decode_accepts_str_and_bytes_alike():
    for frame in ('{"op": "ping", "id": "a"}',
                  b'{"op": "ping", "id": "a"}',
                  bytearray(b'{"op": "ping", "id": "a"}'),
                  memoryview(b'{"op": "ping", "id": "a"}')):
        assert decode_request(frame).id == "a"


@pytest.mark.parametrize("frame,code", [
    (b"", "bad-frame"),
    (b"   \n", "bad-frame"),
    (b"\xff\xfe garbage", "bad-frame"),             # not UTF-8
    (b"not json at all\n", "bad-frame"),
    (b'{"op": "ping"', "bad-frame"),                # truncated
    (b'[1, 2, 3]', "bad-frame"),                    # not an object
    (b'"ping"', "bad-frame"),
    (b'42', "bad-frame"),
    (b'{}', "bad-request"),                         # missing op
    (b'{"op": 3}', "bad-request"),                  # non-string op
    (b'{"op": "nope"}', "unknown-op"),
    (b'{"op": "ping", "id": 1.5}', "bad-request"),  # float id
    (b'{"op": "ping", "id": [1]}', "bad-request"),
    (b'{"op": "ping", "tenant": ""}', "bad-request"),
    (b'{"op": "ping", "tenant": 9}', "bad-request"),
])
def test_decode_malformed_frames_raise_typed_errors(frame, code):
    with pytest.raises(ProtocolError) as excinfo:
        decode_request(frame)
    assert code_of(excinfo) == code
    assert code in ERROR_CODES


def test_decode_rejects_overlong_tenant():
    frame = json.dumps({"op": "ping", "tenant": "t" * 129})
    with pytest.raises(ProtocolError) as excinfo:
        decode_request(frame)
    assert code_of(excinfo) == "bad-request"


def test_decode_rejects_oversized_frames():
    frame = b'{"op": "ping", "pad": "' + b"x" * MAX_FRAME_BYTES + b'"}'
    with pytest.raises(ProtocolError) as excinfo:
        decode_request(frame)
    assert code_of(excinfo) == "bad-frame"
    with pytest.raises(ProtocolError):
        decode_request("y" * (MAX_FRAME_BYTES + 1))


def test_every_op_decodes():
    for op in OPS:
        assert decode_request(json.dumps({"op": op})).op == op


# -- encoding ----------------------------------------------------------------

def test_encode_response_roundtrip():
    frame = encode_response(11, {"pong": True, "n": 3})
    assert frame.endswith(b"\n")
    obj = json.loads(frame)
    assert obj == {"id": 11, "ok": True, "pong": True, "n": 3}


def test_encode_error_roundtrip():
    frame = encode_error("abc", "quota", "slow down")
    obj = json.loads(frame)
    assert obj == {"id": "abc", "ok": False,
                   "error": {"code": "quota", "message": "slow down"}}


def test_encode_error_rejects_unknown_codes():
    with pytest.raises(ValueError):
        encode_error(1, "not-a-code", "boom")
    with pytest.raises(ValueError):
        ProtocolError("not-a-code", "boom")


def test_encode_response_rejects_nan():
    with pytest.raises(ValueError):
        encode_response(1, {"area": float("nan")})


# -- parameter helpers -------------------------------------------------------

def test_need_missing_and_mistyped():
    with pytest.raises(ProtocolError) as excinfo:
        need({}, "field", str, "a string")
    assert code_of(excinfo) == "bad-request"
    with pytest.raises(ProtocolError):
        need({"field": 3}, "field", str, "a string")
    assert need({"field": "t"}, "field", str, "a string") == "t"


def test_need_rejects_bool_masquerading_as_number():
    with pytest.raises(ProtocolError):
        need({"lo": True}, "lo", (int, float), "a number")


@pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                   float("-inf"), "3", None, True])
def test_need_number_rejects_non_finite_and_non_numbers(value):
    with pytest.raises(ProtocolError) as excinfo:
        need_number({"lo": value}, "lo")
    assert code_of(excinfo) == "bad-request"


def test_need_number_coerces_ints():
    assert need_number({"lo": 3}, "lo") == 3.0


def test_optional_choice():
    choices = {"none", "area"}
    assert optional_choice({}, "estimate", choices, "area") == "area"
    assert optional_choice({"estimate": "none"}, "estimate",
                           choices, "area") == "none"
    with pytest.raises(ProtocolError) as excinfo:
        optional_choice({"estimate": "huge"}, "estimate", choices, "area")
    assert code_of(excinfo) == "bad-request"

"""Admission control: quotas, backpressure, deadlines — unit level and
over the wire.  Each rejection must be *typed* so a client can tell
"slow down" from "you broke the protocol", and a timeout must cancel
work without leaking tasks."""

import asyncio
import threading
import time

import pytest

from repro.serve import (
    AdmissionController,
    ProtocolError,
    ServerError,
    TenantQuota,
    TokenBucket,
)

from .conftest import connect
from .test_server import make_slow, wait_until


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def run(coro):
    return asyncio.run(coro)


# -- token bucket ------------------------------------------------------------

def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] \
        == [True, True, True, False]
    assert bucket.delay_until() == pytest.approx(0.5)
    clock.advance(0.5)                       # one token refilled
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(100.0)                     # refill caps at burst
    assert [bucket.try_acquire() for _ in range(4)] \
        == [True, True, True, False]


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0, burst=1)
    with pytest.raises(ValueError):
        TokenBucket(rate=1, burst=0)


@pytest.mark.parametrize("kwargs", [
    dict(rate=0), dict(rate=-1), dict(burst=0), dict(max_pending=0),
    dict(on_limit="panic"), dict(max_wait_s=-1), dict(timeout_s=0),
])
def test_tenant_quota_validation(kwargs):
    with pytest.raises(ValueError):
        TenantQuota(**kwargs)


# -- controller (event-loop level) -------------------------------------------

def test_reject_policy_answers_immediately():
    clock = FakeClock()
    controller = AdmissionController(
        default=TenantQuota(rate=1.0, burst=1, on_limit="reject"),
        clock=clock)

    async def scenario():
        await controller.acquire("t")
        with pytest.raises(ProtocolError) as excinfo:
            await controller.acquire("t")
        assert excinfo.value.code == "quota"
        controller.release("t")

    run(scenario())
    snap = controller.snapshot()["t"]
    assert snap["admitted"] == 1
    assert snap["rejected_quota"] == 1
    assert snap["pending"] == 0


def test_wait_policy_parks_until_a_token_refills():
    controller = AdmissionController(
        default=TenantQuota(rate=50.0, burst=1, on_limit="wait",
                            max_wait_s=2.0))

    async def scenario():
        t0 = time.monotonic()
        await controller.acquire("t")
        await controller.acquire("t")        # must wait ~20ms, not fail
        return time.monotonic() - t0

    waited = run(scenario())
    assert waited >= 0.01
    snap = controller.snapshot()["t"]
    assert snap["admitted"] == 2
    assert snap["rejected_quota"] == 0


def test_wait_policy_gives_up_past_max_wait():
    controller = AdmissionController(
        default=TenantQuota(rate=0.5, burst=1, on_limit="wait",
                            max_wait_s=0.05))

    async def scenario():
        await controller.acquire("t")
        with pytest.raises(ProtocolError) as excinfo:
            await controller.acquire("t")    # next token is 2s away
        assert excinfo.value.code == "quota"

    run(scenario())
    assert controller.snapshot()["t"]["rejected_quota"] == 1


def test_pending_bound_is_backpressure_not_quota():
    controller = AdmissionController(default=TenantQuota(max_pending=2))

    async def scenario():
        await controller.acquire("t")
        await controller.acquire("t")
        with pytest.raises(ProtocolError) as excinfo:
            await controller.acquire("t")
        assert excinfo.value.code == "backpressure"
        # Tenants are isolated: another tenant still gets in.
        await controller.acquire("other")
        controller.release("t")
        await controller.acquire("t")        # slot freed -> admitted

    run(scenario())
    snap = controller.snapshot()
    assert snap["t"]["rejected_backpressure"] == 1
    assert snap["t"]["admitted"] == 3
    assert snap["other"]["admitted"] == 1


def test_per_tenant_quotas_override_the_default():
    controller = AdmissionController(
        default=TenantQuota(),
        quotas={"throttled": TenantQuota(rate=0.001, burst=1,
                                         on_limit="reject")})

    async def scenario():
        for _ in range(5):
            await controller.acquire("free")
        await controller.acquire("throttled")
        with pytest.raises(ProtocolError):
            await controller.acquire("throttled")

    run(scenario())
    assert controller.snapshot()["free"]["rejected_quota"] == 0
    assert controller.snapshot()["throttled"]["rejected_quota"] == 1


# -- over the wire -----------------------------------------------------------

def test_quota_exhaustion_is_a_typed_rejection(boot_server, value_band):
    server = boot_server(
        default_quota=TenantQuota(rate=0.001, burst=1,
                                  on_limit="reject"))
    lo, hi = value_band
    with connect(server, tenant="greedy") as c:
        assert c.query("terrain", lo, hi)["candidates"] >= 0
        assert c.ping()                      # ping is not rate-gated
        with pytest.raises(ServerError) as excinfo:
            c.query("terrain", lo, hi)
        assert excinfo.value.code == "quota"
        stats = c.stats()                    # rejected, not wedged
        assert stats["admission"]["greedy"]["rejected_quota"] >= 1


def test_backpressure_rejects_while_queue_is_full(boot_server, value_band):
    server = boot_server(default_quota=TenantQuota(max_pending=1))
    srv, _, _ = server
    unpatch = make_slow(srv.facade.handle("terrain").index, 0.6)
    lo, hi = value_band
    slow_answer, failures = [], []

    def occupy():
        try:
            with connect(server, tenant="t") as c:
                slow_answer.append(c.query("terrain", lo, hi))
        except BaseException as exc:   # pragma: no cover - failure path
            failures.append(exc)

    thread = threading.Thread(target=occupy)
    thread.start()
    try:
        assert wait_until(lambda: srv.active_requests == 1)
        with connect(server, tenant="t") as c:
            with pytest.raises(ServerError) as excinfo:
                c.query("terrain", lo, hi)
            assert excinfo.value.code == "backpressure"
        thread.join(10.0)
        assert not failures
        assert len(slow_answer) == 1         # the occupant finished fine
    finally:
        unpatch()
        thread.join(1.0)
    snap = srv.admission.snapshot()["t"]
    assert snap["rejected_backpressure"] == 1
    assert snap["admitted"] == 1
    assert snap["pending"] == 0


def test_timeout_cancels_without_leaking_tasks(boot_server, value_band):
    server = boot_server(
        default_quota=TenantQuota(timeout_s=0.15))
    srv, _, _ = server
    unpatch = make_slow(srv.facade.handle("terrain").index, 0.8)
    lo, hi = value_band
    try:
        with connect(server, tenant="t") as c:
            t0 = time.monotonic()
            with pytest.raises(ServerError) as excinfo:
                c.query("terrain", lo, hi)
            assert excinfo.value.code == "timeout"
            # Answered at the deadline, not after the engine finished.
            assert time.monotonic() - t0 < 0.6
    finally:
        unpatch()
    # The straggler drains; no task leaks past the engine call.
    assert wait_until(lambda: not srv._stragglers and
                      srv.active_requests == 0)
    snap = srv.admission.snapshot()["t"]
    assert snap["timeouts"] == 1
    assert snap["pending"] == 0
    # The server is healthy afterwards: same tenant, instant answer.
    with connect(server, tenant="t") as c:
        assert c.query("terrain", lo, hi)["candidates"] >= 0


def test_per_request_deadline_override(boot_server, value_band):
    server = boot_server()                   # no quota-level deadline
    srv, _, _ = server
    unpatch = make_slow(srv.facade.handle("terrain").index, 0.8)
    lo, hi = value_band
    try:
        with connect(server) as c:
            with pytest.raises(ServerError) as excinfo:
                c.query("terrain", lo, hi, timeout_s=0.1)
            assert excinfo.value.code == "timeout"
            with pytest.raises(ServerError) as excinfo:
                c.query("terrain", lo, hi, timeout_s=-1)
            assert excinfo.value.code == "bad-request"
    finally:
        unpatch()
    assert wait_until(lambda: not srv._stragglers)


def test_queued_work_killed_by_deadline_never_starts(boot_server,
                                                     value_band):
    """A request whose deadline fired while still queued behind the
    field lock reports timeout and its engine call never runs."""
    server = boot_server(
        default_quota=TenantQuota(timeout_s=0.2), executor_workers=1)
    srv, _, _ = server
    index = srv.facade.handle("terrain").index
    calls = []
    original = index.query

    def counting(*args, **kwargs):
        calls.append(1)
        time.sleep(0.5)
        return original(*args, **kwargs)

    index.query = counting
    lo, hi = value_band
    failures = []

    def one_query():
        try:
            with connect(server, tenant="t") as c:
                c.query("terrain", lo, hi)
        except ServerError as exc:
            failures.append(exc.code)

    threads = [threading.Thread(target=one_query) for _ in range(3)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
    finally:
        index.query = original
    assert failures and all(code == "timeout" for code in failures)
    assert wait_until(lambda: not srv._stragglers)
    # With one executor worker only the head request (and possibly its
    # successor) ever reached the engine; the queued rest were killed
    # before starting.
    assert len(calls) < 3

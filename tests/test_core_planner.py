"""Unit tests for dynamic updates and the access-path planner."""

import numpy as np
import pytest

from repro.core import (
    IHilbertIndex,
    LinearScanIndex,
    PlannedIndex,
    ValueQuery,
)


# ---------------------------------------------------------------- updates

def test_update_cell_grows_subfield_interval(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    # Records store float32: the spike must be representable exactly.
    spike = float(np.float32(vr.hi + 50.0))

    record = np.array(smooth_dem.cell_records()[10])
    record["corners"][:] = spike
    record["vmin"] = spike
    record["vmax"] = spike
    index.update_cell(10, record)

    result = index.query(ValueQuery.exact(spike))
    assert result.candidate_count == 1
    got = index._candidates(spike, spike)
    assert int(got["cell_id"][0]) == 10
    index.tree.check_invariants()


def test_update_cell_shrinks_subfield_interval(mono_dem):
    index = IHilbertIndex(mono_dem)
    # Find the unique cell holding the global maximum.
    records = mono_dem.cell_records()
    top_cell = int(records["cell_id"][np.argmax(records["vmax"])])
    old_hi = float(records["vmax"].max())

    flat = np.array(records[top_cell])
    flat["corners"][:] = 0.0
    flat["vmin"] = 0.0
    flat["vmax"] = 0.0
    index.update_cell(top_cell, flat)

    # Queries at the old maximum no longer hit that cell.
    got = {int(c) for c in
           index._candidates(old_hi, old_hi)["cell_id"]}
    assert top_cell not in got
    index.tree.check_invariants()


def test_update_cell_consistent_with_fresh_scan(smooth_dem, rng):
    index = IHilbertIndex(smooth_dem)
    records = np.array(smooth_dem.cell_records())
    for cell_id in (3, 99, 512):
        record = np.array(records[cell_id])
        new_vals = rng.random(4).astype(np.float32) * 10.0 + 500.0
        record["corners"] = new_vals
        record["vmin"] = new_vals.min()
        record["vmax"] = new_vals.max()
        index.update_cell(cell_id, record)
        records[cell_id] = record

    for _ in range(10):
        lo = 495.0 + rng.random() * 20.0
        hi = lo + rng.random() * 5.0
        expected = set(records["cell_id"][
            (records["vmin"].astype(np.float64) <= hi)
            & (records["vmax"].astype(np.float64) >= lo)].tolist())
        got = {int(c) for c in index._candidates(lo, hi)["cell_id"]}
        assert got == expected


def test_update_cell_validates_id(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    with pytest.raises(IndexError):
        index.update_cell(10 ** 9, smooth_dem.cell_records()[0])


# ---------------------------------------------------------------- planner

def test_planner_picks_scan_for_full_range(smooth_dem):
    index = PlannedIndex(smooth_dem)
    vr = smooth_dem.value_range
    index.query(ValueQuery(vr.lo, vr.hi))
    assert index.last_plan is not None
    assert index.last_plan.path == "scan"


@pytest.fixture(scope="module")
def planner_index():
    """A field big enough that the filtered path can pay for its seeks."""
    from repro.field import DEMField
    from repro.synth import fractal_dem_heights
    field = DEMField(fractal_dem_heights(256, 0.9, seed=3))
    return PlannedIndex(field)


def test_planner_picks_filtered_for_narrow_query(planner_index):
    vr = planner_index.field.value_range
    planner_index.query(ValueQuery.exact(vr.lo + 0.1 * vr.length))
    assert planner_index.last_plan.path == "filtered"


def test_planner_results_match_reference(planner_index, rng):
    reference = LinearScanIndex(planner_index.field)
    vr = planner_index.field.value_range
    queries = [
        ValueQuery.exact(vr.lo + 0.05 * vr.length),   # sparse tail
        ValueQuery(vr.lo, vr.hi),                     # everything
    ]
    for _ in range(4):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * 0.1 * vr.length)
        queries.append(ValueQuery(lo, hi))
    paths = set()
    for q in queries:
        a = planner_index.query(q)
        b = reference.query(q)
        paths.add(planner_index.last_plan.path)
        assert a.candidate_count == b.candidate_count
        assert a.area == pytest.approx(b.area)
    assert paths == {"filtered", "scan"}


def test_plan_estimates_are_metadata_only(smooth_dem):
    index = PlannedIndex(smooth_dem)
    index.clear_caches()
    before = index.stats.snapshot()
    vr = smooth_dem.value_range
    plan = index.plan(vr.lo, vr.lo + 1.0)
    assert index.stats.diff(before).page_reads == 0
    assert plan.filtered_cost > 0
    assert plan.scan_cost > 0


def test_plan_costs_monotone_in_query_width(smooth_dem):
    index = PlannedIndex(smooth_dem)
    vr = smooth_dem.value_range
    narrow = index.plan(vr.lo, vr.lo + 0.01 * vr.length)
    wide = index.plan(vr.lo, vr.hi)
    assert narrow.est_pages <= wide.est_pages
    assert narrow.filtered_cost <= wide.filtered_cost
    assert narrow.scan_cost == wide.scan_cost

"""Unit and property tests for disjunctive (multi-band) queries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    IHilbertIndex,
    LinearScanIndex,
    ValueQuery,
    complement_bands,
    intersect_bands,
    normalize_bands,
    union_query,
)

band = st.tuples(st.floats(0, 100, allow_nan=False),
                 st.floats(0, 20, allow_nan=False)).map(
    lambda t: (t[0], t[0] + t[1]))


# ------------------------------------------------------------- interval algebra

def test_normalize_merges_overlaps():
    assert normalize_bands([(0.0, 5.0), (3.0, 8.0)]) == [(0.0, 8.0)]


def test_normalize_merges_touching():
    assert normalize_bands([(0.0, 5.0), (5.0, 8.0)]) == [(0.0, 8.0)]


def test_normalize_keeps_disjoint_sorted():
    assert normalize_bands([(7.0, 9.0), (0.0, 2.0)]) == \
        [(0.0, 2.0), (7.0, 9.0)]


def test_normalize_rejects_empty_band():
    with pytest.raises(ValueError):
        normalize_bands([(5.0, 4.0)])


def test_normalize_empty_input():
    assert normalize_bands([]) == []


def test_complement_of_middle_band():
    assert complement_bands([(2.0, 5.0)], 0.0, 10.0) == \
        [(0.0, 2.0), (5.0, 10.0)]


def test_complement_of_nothing_is_everything():
    assert complement_bands([], 0.0, 1.0) == [(0.0, 1.0)]


def test_complement_of_everything_is_nothing():
    assert complement_bands([(0.0, 1.0)], 0.0, 1.0) == []


def test_complement_clips_to_range():
    assert complement_bands([(-5.0, 2.0), (8.0, 20.0)], 0.0, 10.0) == \
        [(2.0, 8.0)]


def test_intersect_bands():
    a = [(0.0, 5.0), (8.0, 12.0)]
    b = [(3.0, 9.0)]
    assert intersect_bands(a, b) == [(3.0, 5.0), (8.0, 9.0)]
    assert intersect_bands(a, [(20.0, 30.0)]) == []


@given(st.lists(band, max_size=10))
def test_property_normalized_bands_are_canonical(bands):
    normalized = normalize_bands(bands)
    for (lo1, hi1), (lo2, hi2) in zip(normalized, normalized[1:]):
        assert hi1 < lo2                  # disjoint, non-touching
    # Total covered length never shrinks below any single band.
    covered = sum(hi - lo for lo, hi in normalized)
    for lo, hi in bands:
        assert covered >= hi - lo - 1e-9


@given(st.lists(band, max_size=6), st.lists(band, max_size=6))
def test_property_de_morgan(a, b):
    """comp(A ∪ B) == comp(A) ∩ comp(B) within a fixed range.

    Bands are closed intervals, so the identity holds up to degenerate
    single-point bands at touching boundaries; those are filtered out.
    """
    def positive(bands):
        return [(x, y) for x, y in normalize_bands(bands) if x < y]

    lo, hi = -10.0, 140.0
    left = complement_bands(normalize_bands(a + b), lo, hi)
    right = intersect_bands(complement_bands(a, lo, hi),
                            complement_bands(b, lo, hi))
    assert positive(left) == positive(right)


# ------------------------------------------------------------- union queries

def test_union_query_counts_cells_once(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    mid = (vr.lo + vr.hi) / 2.0
    overlapping = union_query(index, [(vr.lo, mid), (mid - 1.0, vr.hi)])
    assert overlapping.bands == [(vr.lo, vr.hi)]
    assert overlapping.candidate_count == smooth_dem.num_cells


def test_union_query_area_matches_single_band(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    single = index.query(ValueQuery(vr.lo, vr.hi))
    union = union_query(index, [(vr.lo, vr.hi)])
    assert union.area == pytest.approx(single.area)


def test_union_query_disjoint_bands_additive(smooth_dem):
    index = LinearScanIndex(smooth_dem)
    vr = smooth_dem.value_range
    q = vr.length / 4.0
    b1 = (vr.lo, vr.lo + q)
    b2 = (vr.hi - q, vr.hi)
    union = union_query(index, [b1, b2])
    a1 = index.query(ValueQuery(*b1)).area
    a2 = index.query(ValueQuery(*b2)).area
    assert union.area == pytest.approx(a1 + a2)
    assert len(union.per_band_candidates) == 2
    assert union.io.page_reads > 0


def test_union_query_estimate_none(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    result = union_query(index, [(vr.lo, vr.lo + 1.0)], estimate="none")
    assert result.area is None
    with pytest.raises(ValueError):
        union_query(index, [(vr.lo, vr.hi)], estimate="regions")


def test_union_query_empty_bands(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    result = union_query(index, [])
    assert result.candidate_count == 0
    assert result.area == 0.0

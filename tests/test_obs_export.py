"""Exporters: Prometheus text exposition and Chrome-trace worker lanes."""

from __future__ import annotations

import json

from repro.core import ParallelQueryEngine, ValueQuery
from repro.core.ihilbert import IHilbertIndex
from repro.obs.export import render_prometheus, spans_to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


# -- Prometheus text exposition ---------------------------------------------

class TestRenderPrometheus:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("app_requests_total", "Requests served.").inc(
            3, tenant="t1")
        registry.gauge("app_depth").set(2.5, queue="main")
        text = render_prometheus(registry)
        assert "# HELP app_requests_total Requests served." in text
        assert "# TYPE app_requests_total counter" in text
        assert 'app_requests_total{tenant="t1"} 3' in text
        assert "# TYPE app_depth gauge" in text
        assert 'app_depth{queue="main"} 2.5' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("app_evil_total")
        counter.inc(1, tenant='say "hi"\\there\nnow')
        text = render_prometheus(registry)
        assert ('app_evil_total{tenant='
                '"say \\"hi\\"\\\\there\\nnow"} 1') in text

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("app_x_total", "line one\nline \\ two").inc(1)
        text = render_prometheus(registry)
        assert "# HELP app_x_total line one\\nline \\\\ two" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("app_ms", "Latency.",
                                  buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.7, 3.0, 50.0):
            hist.observe(value, op="query")
        text = render_prometheus(registry)
        # Cumulative per-le counts, +Inf capping at the total.
        assert 'app_ms_bucket{le="1",op="query"} 2' in text
        assert 'app_ms_bucket{le="5",op="query"} 3' in text
        assert 'app_ms_bucket{le="10",op="query"} 3' in text
        assert 'app_ms_bucket{le="+Inf",op="query"} 4' in text
        assert 'app_ms_sum{op="query"} 54.2' in text
        assert 'app_ms_count{op="query"} 4' in text

    def test_unlabeled_series_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("app_plain_total").inc(7)
        assert "app_plain_total 7\n" in render_prometheus(registry)

    def test_empty_families_are_skipped(self):
        registry = MetricsRegistry()
        registry.counter("app_silent_total", "Never incremented.")
        assert render_prometheus(registry) == ""

    def test_numbers_render_prometheus_style(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("app_vals")
        gauge.set(3.0, k="int")          # integral floats lose the .0
        gauge.set(0.125, k="frac")
        text = render_prometheus(registry)
        assert 'app_vals{k="int"} 3\n' in text
        assert 'app_vals{k="frac"} 0.125\n' in text


# -- Chrome-trace worker lanes ----------------------------------------------

def _span(tracer, name, attrs=None):
    return tracer.span(name, attrs)


class TestChromeTraceLanes:
    def test_tid_attrs_fan_out_into_lanes(self):
        tracer = Tracer()
        with _span(tracer, "parallel"):
            with _span(tracer, "worker[0]", {"worker": 0, "tid": 101}):
                with _span(tracer, "group[0]"):
                    pass
            with _span(tracer, "worker[1]", {"worker": 1, "tid": 102}):
                pass
        doc = spans_to_chrome_trace(tracer.roots)
        events = {e["name"]: e for e in doc["traceEvents"]
                  if e["ph"] == "X"}
        assert events["parallel"]["tid"] == 1          # default lane
        assert events["worker[0]"]["tid"] == 101
        assert events["worker[1]"]["tid"] == 102
        # Children inherit the nearest ancestor's lane.
        assert events["group[0]"]["tid"] == 101

    def test_lanes_get_thread_name_metadata(self):
        tracer = Tracer()
        with _span(tracer, "parallel"):
            with _span(tracer, "worker[3]", {"worker": 3, "tid": 777}):
                pass
        doc = spans_to_chrome_trace(tracer.roots)
        names = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        by_tid = {e["tid"]: e["args"]["name"] for e in names}
        assert by_tid[777] == "worker[3]"

    def test_serial_traces_stay_on_one_lane(self):
        tracer = Tracer()
        with _span(tracer, "query"):
            with _span(tracer, "fetch"):
                pass
        doc = spans_to_chrome_trace(tracer.roots)
        lanes = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert lanes == {1}

    def test_real_parallel_engine_records_native_tids(self, smooth_dem):
        engine = ParallelQueryEngine(IHilbertIndex(smooth_dem), workers=2)
        tracer = Tracer().attach(engine.index)
        vr = smooth_dem.value_range
        span = vr.hi - vr.lo
        queries = [ValueQuery(vr.lo + f * span, vr.lo + (f + 0.1) * span)
                   for f in (0.1, 0.3, 0.5, 0.7)]
        engine.run(queries)
        doc = spans_to_chrome_trace(tracer.roots)
        json.dumps(doc)
        workers = [e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["name"].startswith("worker[")]
        assert workers
        for event in workers:
            assert event["tid"] == event["args"]["tid"] > 0
        # Worker sub-spans ride their worker's lane, not lane 1.
        worker_tids = {e["tid"] for e in workers}
        groups = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["name"].startswith("group[")]
        assert groups
        assert {e["tid"] for e in groups} <= worker_tids

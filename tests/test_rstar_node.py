"""Unit tests for R*-tree node serialization."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.rstar import Node, entry_dtype, node_capacity


def test_entry_dtype_sizes():
    assert entry_dtype(1).itemsize == 24
    assert entry_dtype(2).itemsize == 40


def test_node_capacity_from_page_size():
    # 4096-byte page, 8-byte header: (4096-8)//24 = 170 entries in 1-D.
    assert node_capacity(4096, 1) == 170
    assert node_capacity(4096, 2) == 102


def test_node_capacity_too_small_page():
    with pytest.raises(ValueError):
        node_capacity(64, 2)


def test_serialization_roundtrip_leaf():
    node = Node(7, is_leaf=True)
    node.entries = [(Rect((0.0, 1.0), (2.0, 3.0)), 42),
                    (Rect((-1.0, -2.0), (0.0, 0.0)), 7)]
    data = node.to_bytes(4096, 2)
    assert len(data) <= 4096
    back = Node.from_bytes(7, data, 2)
    assert back.page_id == 7
    assert back.is_leaf is True
    assert back.entries == node.entries


def test_serialization_roundtrip_internal():
    node = Node(0, is_leaf=False)
    node.entries = [(Rect.from_interval(1.5, 2.5), 3)]
    back = Node.from_bytes(0, node.to_bytes(4096, 1), 1)
    assert back.is_leaf is False
    assert back.entries == node.entries


def test_empty_node_roundtrip():
    node = Node(1, is_leaf=True)
    back = Node.from_bytes(1, node.to_bytes(4096, 1), 1)
    assert back.entries == []


def test_overflowing_node_rejected():
    node = Node(0, is_leaf=True)
    node.entries = [(Rect.from_interval(0.0, 1.0), i) for i in range(171)]
    with pytest.raises(ValueError):
        node.to_bytes(4096, 1)


def test_read_arrays_fast_path():
    node = Node(0, is_leaf=True)
    node.entries = [(Rect.from_interval(float(i), float(i + 1)), i)
                    for i in range(5)]
    is_leaf, records = Node.read_arrays(node.to_bytes(4096, 1), 1)
    assert is_leaf is True
    assert len(records) == 5
    assert list(records["id"]) == list(range(5))
    assert np.allclose(records["lows"][:, 0], np.arange(5.0))


def test_mbr_covers_entries():
    node = Node(0, is_leaf=True)
    node.entries = [(Rect((0.0,), (1.0,)), 0), (Rect((5.0,), (9.0,)), 1)]
    assert node.mbr() == Rect((0.0,), (9.0,))


def test_mbr_of_empty_node_rejected():
    with pytest.raises(ValueError):
        Node(0, is_leaf=True).mbr()

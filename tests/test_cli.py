"""Tests for the python -m repro command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.synth import roseburg_like_heights


@pytest.fixture
def heights_file(tmp_path):
    path = tmp_path / "terrain.npy"
    np.save(path, roseburg_like_heights(cells_per_side=32))
    return path


@pytest.fixture
def tin_file(tmp_path):
    rng = np.random.default_rng(1)
    points = rng.uniform(0, 50, size=(60, 2))
    values = points[:, 0] + points[:, 1]
    path = tmp_path / "field.npz"
    np.savez(path, points=points, values=values)
    return path


def test_build_query_info_roundtrip(heights_file, tmp_path, capsys):
    index_dir = tmp_path / "idx"
    assert main(["build", str(heights_file), str(index_dir)]) == 0
    out = capsys.readouterr().out
    assert "indexed 1024 cells" in out

    assert main(["query", str(index_dir), "250", "300"]) == 0
    out = capsys.readouterr().out
    assert "candidates:" in out and "answer area:" in out

    assert main(["info", str(index_dir)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cells"] == 1024
    assert payload["field_type"] == "DEMField"
    assert payload["subfields"] >= 1


def test_query_with_regions(heights_file, tmp_path, capsys):
    index_dir = tmp_path / "idx"
    main(["build", str(heights_file), str(index_dir)])
    capsys.readouterr()
    assert main(["query", str(index_dir), "300", "301",
                 "--regions", "--max-regions", "3"]) == 0
    out = capsys.readouterr().out
    assert "regions:" in out
    assert "cell " in out


def test_build_tin(tin_file, tmp_path, capsys):
    index_dir = tmp_path / "tin-idx"
    assert main(["build", str(tin_file), str(index_dir)]) == 0
    capsys.readouterr()
    assert main(["query", str(index_dir), "40", "60"]) == 0
    assert "candidates:" in capsys.readouterr().out


def test_point_query(heights_file, capsys):
    assert main(["point", str(heights_file), "5.5", "7.25"]) == 0
    out = capsys.readouterr().out
    assert "F(5.5, 7.25) =" in out


def test_point_outside_domain(heights_file, capsys):
    assert main(["point", str(heights_file), "-10", "0"]) == 1
    assert "outside" in capsys.readouterr().out


def test_unsupported_field_file(tmp_path):
    bogus = tmp_path / "field.txt"
    bogus.write_text("nope")
    with pytest.raises(SystemExit):
        main(["build", str(bogus), str(tmp_path / "idx")])


def test_tin_archive_missing_arrays(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(path, points=np.zeros((3, 2)))
    with pytest.raises(SystemExit):
        main(["build", str(path), str(tmp_path / "idx")])


def test_curve_option(heights_file, tmp_path, capsys):
    index_dir = tmp_path / "z-idx"
    assert main(["build", str(heights_file), str(index_dir),
                 "--curve", "zorder"]) == 0
    assert "subfields" in capsys.readouterr().out


def test_batch_command(heights_file, tmp_path, capsys):
    index_dir = tmp_path / "idx"
    main(["build", str(heights_file), str(index_dir)])
    queries_file = tmp_path / "queries.txt"
    queries_file.write_text(
        "# mixed workload\n"
        "250 300\n"
        "280, 320\n"      # overlaps the first -> merged
        "400\n"           # exact query
        "\n"
        "150 180\n")
    capsys.readouterr()
    assert main(["batch", str(index_dir), str(queries_file),
                 "--compare"]) == 0
    out = capsys.readouterr().out
    assert "[3]" in out                       # one line per query
    assert "4 queries in 3 merged groups" in out
    assert "sequential (cold):" in out
    assert "batch saves" in out


def test_batch_command_quiet(heights_file, tmp_path, capsys):
    index_dir = tmp_path / "idx"
    main(["build", str(heights_file), str(index_dir)])
    queries_file = tmp_path / "queries.txt"
    queries_file.write_text("250 300\n")
    capsys.readouterr()
    assert main(["batch", str(index_dir), str(queries_file),
                 "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "[0]" not in out
    assert "1 queries in 1 merged groups" in out


def test_batch_command_bad_queries(heights_file, tmp_path):
    index_dir = tmp_path / "idx"
    main(["build", str(heights_file), str(index_dir)])
    bad = tmp_path / "bad.txt"
    bad.write_text("1 2 3\n")
    with pytest.raises(SystemExit):
        main(["batch", str(index_dir), str(bad)])
    empty = tmp_path / "empty.txt"
    empty.write_text("# nothing\n")
    with pytest.raises(SystemExit):
        main(["batch", str(index_dir), str(empty)])
    with pytest.raises(SystemExit):
        main(["batch", str(index_dir), str(tmp_path / "missing.txt")])

"""Unit tests for vector fields (paper §5 future work)."""

import numpy as np
import pytest

from repro.field import VectorField, triangle_min_magnitude
from repro.field.vector import segment_min_distance


def make_wind(side=12, seed=4):
    rng = np.random.default_rng(seed)
    u = rng.uniform(-8.0, 8.0, (side + 1, side + 1))
    v = rng.uniform(-8.0, 8.0, (side + 1, side + 1))
    return VectorField(u, v)


def test_component_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        VectorField(np.zeros((3, 3)), np.zeros((4, 4)))


def test_components_and_magnitude_at_vertices():
    u = np.array([[3.0, 0.0], [0.0, 0.0]])
    v = np.array([[4.0, 0.0], [0.0, 0.0]])
    field = VectorField(u, v)
    cu, cv = field.components_at(0.0, 0.0)
    assert (cu, cv) == pytest.approx((3.0, 4.0))
    assert field.magnitude_at(0.0, 0.0) == pytest.approx(5.0)
    assert field.direction_at(0.0, 0.0) == \
        pytest.approx(np.arctan2(4.0, 3.0))


def test_segment_min_distance():
    # Segment from (1, -1) to (1, 1): nearest point to origin is (1, 0).
    d = segment_min_distance(np.array([1.0]), np.array([-1.0]),
                             np.array([1.0]), np.array([1.0]))
    assert d[0] == pytest.approx(1.0)
    # Segment pointing away: nearest is the endpoint.
    d = segment_min_distance(np.array([3.0]), np.array([4.0]),
                             np.array([6.0]), np.array([8.0]))
    assert d[0] == pytest.approx(5.0)
    # Degenerate segment (a point).
    d = segment_min_distance(np.array([0.0]), np.array([2.0]),
                             np.array([0.0]), np.array([2.0]))
    assert d[0] == pytest.approx(2.0)


def test_triangle_min_magnitude_origin_inside():
    us = np.array([[-1.0, 2.0, -1.0]])
    vs = np.array([[-1.0, 0.0, 2.0]])
    assert triangle_min_magnitude(us, vs)[0] == 0.0


def test_triangle_min_magnitude_origin_outside():
    # Triangle far in the +u half plane: min is distance to nearest edge.
    us = np.array([[2.0, 3.0, 2.0]])
    vs = np.array([[-1.0, 0.0, 1.0]])
    assert triangle_min_magnitude(us, vs)[0] == pytest.approx(2.0)


def test_magnitude_intervals_bound_dense_samples():
    field = make_wind(side=8)
    intervals = field.magnitude_intervals()
    for cid in range(0, field.num_cells, 5):
        i, j = field.u.cell_position(cid)
        xs = np.linspace(i, i + 1, 9)
        ys = np.linspace(j, j + 1, 9)
        mags = [field.magnitude_at(float(x), float(y))
                for x in xs for y in ys]
        assert min(mags) >= intervals[cid, 0] - 1e-9
        assert max(mags) <= intervals[cid, 1] + 1e-9


def test_magnitude_interval_max_is_a_vertex():
    field = make_wind(side=6)
    intervals = field.magnitude_intervals()
    u_rec = field.u.cell_records()
    v_rec = field.v.cell_records()
    mags = np.hypot(u_rec["corners"].astype(float),
                    v_rec["corners"].astype(float))
    assert np.allclose(intervals[:, 1], mags.max(axis=1))


def test_magnitude_candidates_cover_band():
    field = make_wind(side=8)
    candidates = set(field.magnitude_candidates(3.0, 6.0))
    # Dense-sample ground truth: any cell with a sampled magnitude in
    # band must be a candidate (no false negatives).
    for cid in range(field.num_cells):
        i, j = field.u.cell_position(cid)
        for x in np.linspace(i, i + 1, 5):
            for y in np.linspace(j, j + 1, 5):
                m = field.magnitude_at(float(x), float(y))
                if 3.0 <= m <= 6.0:
                    assert cid in candidates
                    break
            else:
                continue
            break


def test_magnitude_area_converges():
    field = make_wind(side=6)
    vr = field.magnitude_range()
    lo = vr.lo + 0.3 * (vr.hi - vr.lo)
    hi = vr.lo + 0.6 * (vr.hi - vr.lo)
    coarse = field.magnitude_area(lo, hi, depth=3)
    fine = field.magnitude_area(lo, hi, depth=6)
    # Monte Carlo reference.
    rng = np.random.default_rng(0)
    pts = rng.uniform(0.0, 6.0, size=(40000, 2))
    mags = np.array([field.magnitude_at(x, y) for x, y in pts])
    mc = float(((mags >= lo) & (mags <= hi)).mean()) * 36.0
    assert fine == pytest.approx(mc, rel=0.05)
    assert abs(fine - mc) <= abs(coarse - mc) + 0.5


def test_magnitude_area_full_band_is_total():
    field = make_wind(side=5)
    vr = field.magnitude_range()
    area = field.magnitude_area(vr.lo, vr.hi, depth=2)
    assert area == pytest.approx(field.num_cells)


def test_magnitude_area_empty_band():
    field = make_wind(side=5)
    vr = field.magnitude_range()
    assert field.magnitude_area(vr.hi + 1.0, vr.hi + 2.0) == 0.0
    with pytest.raises(ValueError):
        field.magnitude_area(5.0, 4.0)

"""Live updates: vertex ingest, method equivalence, staleness, faults.

The paper never updates a field; DESIGN.md §9 defines our semantics —
``apply_updates`` replaces vertex values with absolute heights and every
access method must afterwards answer exactly like an index built from
scratch over the updated field.  This suite pins that contract (random
update streams, list and mmap backends), the three satellite fixes
(buffer-pool blast radius, maintenance I/O attribution, planner
statistics freshness), the §3.1.2 cost-drift staleness metric with
``compact()``, and fault injection on updated pages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    PlannedIndex,
    ValueQuery,
)
from repro.core.planner import estimate_plan
from repro.field import DEMField, TINField
from repro.obs.metrics import REGISTRY
from repro.storage import (
    CorruptPageError,
    DiskManager,
    FaultInjector,
    RecordStore,
    RetryPolicy,
)
from repro.synth import fractal_dem_heights

METHODS = {
    "LinearScan": LinearScanIndex,
    "I-All": IAllIndex,
    "I-Hilbert": IHilbertIndex,
    "IH+planner": PlannedIndex,
}
BACKENDS = ["list", "mmap"]


def small_dem(seed=11, size=16):
    return DEMField(fractal_dem_heights(size, 0.5, seed=seed))


def probe_queries(field, count=6, seed=0):
    rng = np.random.default_rng(seed)
    vr = field.value_range
    span = vr.hi - vr.lo
    queries = [ValueQuery(vr.lo, vr.hi)]
    for _ in range(count):
        lo = vr.lo + rng.random() * span * 0.8
        queries.append(ValueQuery(lo, lo + rng.random() * span * 0.4))
    return queries


def answers(index, queries):
    out = []
    for q in queries:
        index.clear_caches()
        r = index.query(q)
        out.append((r.candidate_count, round(r.area, 9)))
    return out


# -- field-level ingest ------------------------------------------------------

def test_dem_interior_vertex_dirties_four_cells():
    field = small_dem()
    cols = field.heights.shape[1] - 1
    vid = 5 * (cols + 1) + 5                      # vertex (5, 5), interior
    dirty = field.apply_updates([vid], [999.0])
    expected = {4 * cols + 4, 4 * cols + 5, 5 * cols + 4, 5 * cols + 5}
    assert set(dirty.tolist()) == expected
    records = field.cell_records()
    assert all(records["vmax"][c] == 999.0 for c in expected)


def test_dem_corner_and_edge_vertices_dirty_fewer_cells():
    field = small_dem()
    cols = field.heights.shape[1] - 1
    assert len(field.apply_updates([0], [1.0])) == 1          # corner
    assert len(field.apply_updates([3], [1.0])) == 2          # top edge
    assert len(field.apply_updates([3 * (cols + 1)], [1.0])) == 2  # left edge


def test_dem_update_refreshes_cached_records_in_place():
    field = small_dem()
    before = field.cell_records().copy()
    dirty = field.apply_updates([0], [before["vmax"].max() + 50.0])
    after = field.cell_records()
    assert after["vmax"][dirty[0]] == before["vmax"].max() + np.float32(50.0)
    untouched = np.setdiff1d(np.arange(field.num_cells), dirty)
    assert np.array_equal(after[untouched], before[untouched])


def test_dem_apply_updates_validates():
    field = small_dem()
    with pytest.raises(ValueError):
        field.apply_updates([0, 1], [1.0])                 # length mismatch
    with pytest.raises(IndexError):
        field.apply_updates([field.num_vertices], [1.0])   # out of range
    with pytest.raises(IndexError):
        field.apply_updates([-1], [1.0])


def tin_field():
    rng = np.random.default_rng(4)
    points = rng.random((30, 2)) * 10
    values = rng.random(30).astype(np.float32) * 100
    return TINField(points, values)


def test_tin_update_dirties_exactly_incident_triangles():
    field = tin_field()
    vid = 7
    dirty = field.apply_updates([vid], [500.0])
    incident = np.nonzero((field.triangles == vid).any(axis=1))[0]
    assert np.array_equal(np.sort(dirty), np.sort(incident))
    records = field.cell_records()
    assert all(records["vmax"][t] == 500.0 for t in dirty)


def test_update_is_idempotent():
    field_a, field_b = small_dem(), small_dem()
    ids, vals = [3, 40, 77], [5.0, 6.0, 7.0]
    field_a.apply_updates(ids, vals)
    field_b.apply_updates(ids, vals)
    field_b.apply_updates(ids, vals)        # absolute values: re-apply
    assert np.array_equal(field_a.heights, field_b.heights)
    assert np.array_equal(field_a.cell_records(), field_b.cell_records())


# -- the tentpole contract: equivalence with a fresh rebuild -----------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", sorted(METHODS))
def test_update_stream_equals_fresh_rebuild(method, backend):
    """After any update stream, answers equal a from-scratch rebuild."""
    rng = np.random.default_rng(101)
    field = small_dem(seed=7)
    index = METHODS[method](field, disk_backend=backend)
    vr = field.value_range

    for _ in range(4):                       # four batches of updates
        count = int(rng.integers(5, 30))
        ids = rng.choice(field.num_vertices, size=count, replace=False)
        vals = rng.uniform(vr.lo - 10, vr.hi + 10,
                           size=count).astype(np.float32)
        dirty = index.apply_updates(ids, vals)
        assert len(dirty) > 0

    fresh = METHODS[method](DEMField(field.heights.copy()),
                            disk_backend=backend)
    queries = probe_queries(field, seed=5)
    assert answers(index, queries) == answers(fresh, queries)


def test_methods_agree_with_each_other_after_updates():
    rng = np.random.default_rng(55)
    field = small_dem(seed=9)
    indexes = [cls(DEMField(field.heights.copy()))
               for cls in METHODS.values()]
    ids = rng.choice(field.num_vertices, size=60, replace=False)
    vr = field.value_range
    vals = rng.uniform(vr.lo, vr.hi, size=60).astype(np.float32)
    dirty_sets = [ix.apply_updates(ids, vals) for ix in indexes]
    for d in dirty_sets[1:]:
        assert np.array_equal(d, dirty_sets[0])
    queries = probe_queries(indexes[0].field, seed=3)
    reference = answers(indexes[0], queries)
    for ix in indexes[1:]:
        assert answers(ix, queries) == reference


def test_update_cells_validates_ids_before_journaling():
    index = IHilbertIndex(small_dem())
    with pytest.raises(IndexError):
        index.update_cells(
            np.asarray([10**9], dtype=np.int64),
            index.field.cell_records()[:1])
    with pytest.raises(ValueError):
        index.update_cells(np.asarray([0, 1], dtype=np.int64),
                           index.field.cell_records()[:1])


def test_apply_updates_requires_a_field():
    index = IHilbertIndex(small_dem())
    index.field = None
    with pytest.raises(ValueError, match="field"):
        index.apply_updates([0], [1.0])


# -- satellite 1: buffer-pool blast radius -----------------------------------

def test_record_store_update_invalidates_only_the_written_page():
    dtype = np.dtype([("key", np.int64), ("value", np.float64)])
    disk = DiskManager(page_size=80)            # 4 records per page
    store = RecordStore(disk, dtype, cache_pages=8)
    for i in range(16):                         # 4 pages
        store.append((i, float(i)))
    store.get(0)                                # cache page 0
    store.get(5)                                # cache page 1

    store.update(5, (5, 99.0))                  # rewrites page 1 only

    misses_before = store.pool.misses
    store.get(0)                                # page 0 must still be hot
    assert store.pool.misses == misses_before   # no re-read: cache hit
    assert store.get(5)["value"] == 99.0        # page 1 re-read, fresh
    assert store.pool.misses == misses_before + 1   # page 1 was evicted
    assert store.get(1)["key"] == 1             # page 0 content intact


# -- satellite 2: maintenance I/O attribution --------------------------------

def test_maintenance_io_not_charged_to_query_stats():
    index = IHilbertIndex(small_dem())
    index.stats.reset()
    snapshot = index.stats.snapshot()
    record = index.field.cell_records()[3].copy()
    record["vmin"] -= 100.0
    index.update_cell(3, record)
    assert index.stats.snapshot() == snapshot   # query counters pinned
    assert index.maint_stats.page_reads > 0
    assert index.maint_stats.page_writes > 0


def test_maintenance_metrics_keys():
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        index = IHilbertIndex(small_dem())
        index.apply_updates([0], [999.0])
        names = {m["name"] for m in REGISTRY.collect()["metrics"]}
        assert "repro_cell_updates_total" in names
        assert "repro_maintenance_page_reads_total" in names
        assert "repro_maintenance_page_writes_total" in names
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


# -- satellite 3: planner / statistics freshness -----------------------------

def test_statistics_reflect_updates():
    index = IHilbertIndex(small_dem())
    vr = index.field.value_range
    outside = vr.hi + 500.0
    assert index.statistics().estimate_candidates(outside - 1,
                                                  outside + 1) == 0
    index.apply_updates([0], [outside])
    est = index.statistics().estimate_candidates(outside - 1, outside + 1)
    assert est > 0


def test_estimate_plan_reflects_updated_intervals():
    index = IHilbertIndex(small_dem())
    vr = index.field.value_range
    outside_lo, outside_hi = vr.hi + 100.0, vr.hi + 200.0
    before = estimate_plan(index, outside_lo, outside_hi)
    assert before.est_pages == 0                # nothing up there yet
    index.apply_updates([0], [outside_lo + 50.0])
    after = estimate_plan(index, outside_lo, outside_hi)
    assert after.est_pages > 0                  # widened subfield seen


# -- staleness and compaction ------------------------------------------------

def test_staleness_grows_and_compact_restores():
    rng = np.random.default_rng(77)
    field = small_dem(seed=13, size=32)
    index = IHilbertIndex(field)
    assert index.staleness()["max_drift"] == 0.0

    vr = field.value_range
    ids = rng.choice(field.num_vertices, size=200, replace=False)
    vals = rng.uniform(vr.lo, vr.hi, size=200).astype(np.float32)
    index.apply_updates(ids, vals)
    degraded = index.staleness()
    assert degraded["max_drift"] > 0.0
    assert degraded["stale_subfields"] > 0

    queries = probe_queries(field, seed=2)
    before = answers(index, queries)
    report = index.compact()
    assert report["reclustered_cells"] > 0
    restored = index.staleness()
    assert restored["stale_subfields"] == 0
    assert restored["max_drift"] == pytest.approx(0.0, abs=1e-12)
    assert answers(index, queries) == before    # answers preserved


def test_compact_below_threshold_is_a_noop():
    index = IHilbertIndex(small_dem())
    report = index.compact(stale_threshold=1e9)
    assert report["reclustered_cells"] == 0
    assert report["subfields_before"] == report["subfields_after"]


def test_compact_charges_maintenance_not_query_stats():
    rng = np.random.default_rng(78)
    field = small_dem(seed=14, size=32)
    index = IHilbertIndex(field)
    vr = field.value_range
    ids = rng.choice(field.num_vertices, size=100, replace=False)
    vals = rng.uniform(vr.lo, vr.hi, size=100).astype(np.float32)
    index.apply_updates(ids, vals)
    index.stats.reset()
    maint_before = index.maint_stats.page_reads
    index.compact()
    assert index.stats.page_reads == 0
    assert index.maint_stats.page_reads > maint_before


# -- faults on updated pages -------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_bit_flip_on_updated_page_is_detected(backend):
    index = IHilbertIndex(small_dem(), disk_backend=backend)
    index.apply_updates([0], [999.0])
    # Damage the page holding the updated record.
    rid = 0 if index.name == "LinearScan" else None
    page_no = 0
    page_id = index.store.page_ids[page_no]
    index.data_disk._flip_bit(page_id, byte_index=3, bit=2)
    index.clear_caches()
    vr = index.field.value_range
    with pytest.raises(CorruptPageError):
        index.query(ValueQuery(vr.lo, 999.0))
    assert rid is None or rid == 0              # silence unused warning


@pytest.mark.parametrize("backend", BACKENDS)
def test_skip_mode_degrades_gracefully_after_updates(backend):
    index = IHilbertIndex(small_dem(), disk_backend=backend)
    index.apply_updates([5], [999.0])
    page_id = index.store.page_ids[0]
    index.data_disk._flip_bit(page_id, byte_index=3, bit=2)
    index.clear_caches()
    vr = index.field.value_range
    result = index.query(ValueQuery(vr.lo, 999.0), on_fault="skip")
    assert result.degraded
    assert len(result.faults) == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_retry_policy_cures_transient_faults_during_update(backend):
    index = IHilbertIndex(
        small_dem(), disk_backend=backend,
        retry_policy=RetryPolicy(max_attempts=4))
    injector = index.inject_faults(FaultInjector(seed=3))
    injector.add("read_error", probability=0.2, max_faults=3)
    dirty = index.apply_updates([0, 17], [999.0, -999.0])
    assert len(dirty) > 0
    fresh = IHilbertIndex(DEMField(index.field.heights.copy()))
    queries = probe_queries(index.field, seed=8)
    assert answers(index, queries) == answers(fresh, queries)

"""Unit tests for ValueQuery / QueryResult / Subfield."""

import pytest

from repro.core import QueryResult, Subfield, ValueQuery
from repro.geometry import Interval


def test_value_query_basics():
    q = ValueQuery(2.0, 5.0)
    assert q.length == 3.0


def test_value_query_inverted_rejected():
    with pytest.raises(ValueError):
        ValueQuery(5.0, 2.0)


def test_exact_query():
    q = ValueQuery.exact(30.0)
    assert q.lo == q.hi == 30.0
    assert q.length == 0.0


def test_one_sided_queries():
    # "noise level higher than 80 dB" over a field topping out at 120.
    q = ValueQuery.at_least(80.0, 120.0)
    assert (q.lo, q.hi) == (80.0, 120.0)
    q = ValueQuery.at_most(80.0, 30.0)
    assert (q.lo, q.hi) == (30.0, 80.0)


def test_query_result_validation():
    with pytest.raises(ValueError):
        QueryResult(query=ValueQuery(0.0, 1.0), candidate_count=-1)


def test_subfield_fields():
    sf = Subfield(3, 10.0, 20.0, 100, 149)
    assert sf.num_cells == 50
    assert sf.interval == Interval(10.0, 20.0)
    assert sf.intersects(15.0, 30.0)
    assert sf.intersects(20.0, 25.0)     # closed boundary
    assert not sf.intersects(20.1, 25.0)


def test_subfield_validation():
    with pytest.raises(ValueError):
        Subfield(0, 5.0, 4.0, 0, 1)
    with pytest.raises(ValueError):
        Subfield(0, 0.0, 1.0, 5, 4)


def test_subfield_single_cell():
    sf = Subfield(0, 1.0, 1.0, 7, 7)
    assert sf.num_cells == 1

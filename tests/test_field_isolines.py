"""Unit tests for isoline extraction."""

import numpy as np
import pytest

from repro.core import IHilbertIndex
from repro.field import (
    DEMField,
    TINField,
    extract_isolines,
    total_length,
    triangle_level_segment,
)
from repro.synth import monotonic_heights

TRI = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]


def test_triangle_level_segment_crossing():
    # value = x over the triangle; level 0.5 crosses two edges.
    piece = triangle_level_segment(TRI, [0.0, 1.0, 0.0], 0.5)
    assert piece is not None
    (x0, _y0), (x1, _y1) = piece
    assert x0 == pytest.approx(0.5)
    assert x1 == pytest.approx(0.5)


def test_triangle_level_segment_outside():
    assert triangle_level_segment(TRI, [0.0, 1.0, 2.0], 3.0) is None
    assert triangle_level_segment(TRI, [0.0, 1.0, 2.0], -1.0) is None


def test_triangle_level_segment_flat_triangle():
    # Flat triangle at the level: an area feature, not a line.
    assert triangle_level_segment(TRI, [1.0, 1.0, 1.0], 1.0) is None


def test_triangle_level_segment_through_vertex():
    # Level passes exactly through one vertex and the opposite edge.
    piece = triangle_level_segment(TRI, [0.0, 2.0, -2.0], 0.0)
    assert piece is not None
    length = np.hypot(piece[0][0] - piece[1][0],
                      piece[0][1] - piece[1][1])
    assert length > 0.0


def test_triangle_level_segment_along_edge():
    # Level equals a constant edge: the edge itself is reported.
    piece = triangle_level_segment(TRI, [1.0, 1.0, 0.0], 1.0)
    assert piece is not None
    assert set(piece) == {(0.0, 0.0), (1.0, 0.0)}


def test_monotonic_isoline_is_antidiagonal():
    field = DEMField(monotonic_heights(16))
    records = field.cell_records()
    level = 16.0
    mask = (records["vmin"] <= level) & (records["vmax"] >= level)
    segments = extract_isolines(DEMField, records[mask], level)
    # x + y = 16 across a 16x16 grid: total length 16·sqrt(2).
    assert total_length(segments) == pytest.approx(16.0 * np.sqrt(2.0))
    for segment in segments:
        for x, y in (segment.start, segment.end):
            assert x + y == pytest.approx(level)


def test_isolines_via_value_index(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    level = (vr.lo + vr.hi) / 2.0
    candidates = index._candidates(level, level)
    segments = extract_isolines(DEMField, candidates, level)
    assert segments
    # Every segment endpoint sits on the level set of the interpolant.
    for segment in segments[:25]:
        for x, y in (segment.start, segment.end):
            value = smooth_dem.value_at(
                min(max(x, 0.0), smooth_dem.cols),
                min(max(y, 0.0), smooth_dem.rows))
            assert value == pytest.approx(level, abs=1e-2)


def test_isolines_on_tin(small_tin):
    records = small_tin.cell_records()
    vr = small_tin.value_range
    level = (vr.lo + vr.hi) / 2.0
    mask = (records["vmin"] <= level) & (records["vmax"] >= level)
    segments = extract_isolines(TINField, records[mask], level)
    assert segments
    assert total_length(segments) > 0.0


def test_segment_length():
    from repro.field import IsolineSegment
    segment = IsolineSegment(0, (0.0, 0.0), (3.0, 4.0))
    assert segment.length == pytest.approx(5.0)

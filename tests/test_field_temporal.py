"""Unit tests for spatio-temporal fields."""

import numpy as np
import pytest

from repro.core import IHilbertIndex, LinearScanIndex, ValueQuery
from repro.field import TemporalField
from repro.geometry import Interval


@pytest.fixture
def warming():
    """A 8x8 field warming linearly over 5 snapshots."""
    base = np.fromfunction(lambda j, i: i + j, (9, 9))
    snaps = np.stack([base + 2.0 * t for t in range(5)])
    return TemporalField(snaps, t0=100.0, dt=10.0)


def test_validation():
    with pytest.raises(ValueError):
        TemporalField(np.zeros((1, 4, 4)))
    with pytest.raises(ValueError):
        TemporalField(np.zeros((4, 4)))
    with pytest.raises(ValueError):
        TemporalField(np.zeros((2, 4, 4)), dt=0.0)


def test_structure(warming):
    assert warming.num_steps == 5
    assert warming.num_cells == 8 * 8 * 4     # space cells x time steps
    assert warming.time_range == Interval(100.0, 140.0)


def test_value_at_time_snapshots(warming):
    # At stored snapshot times the space-time value equals the snapshot.
    assert warming.value_at_time(3.0, 2.0, 100.0) == pytest.approx(5.0)
    assert warming.value_at_time(3.0, 2.0, 140.0) == pytest.approx(13.0)


def test_value_at_time_interpolates(warming):
    # Halfway between snapshots 0 and 1 at a grid vertex.
    assert warming.value_at_time(3.0, 2.0, 105.0) == pytest.approx(6.0)


def test_time_out_of_range(warming):
    with pytest.raises(ValueError):
        warming.value_at_time(0.0, 0.0, 99.0)
    with pytest.raises(ValueError):
        warming.snapshot_at(141.0)


def test_snapshot_blending(warming):
    field = warming.snapshot_at(105.0)
    assert field.value_at(3.0, 2.0) == pytest.approx(6.0)
    step = warming.step_field(2)
    assert step.value_at(0.0, 0.0) == pytest.approx(4.0)
    with pytest.raises(IndexError):
        warming.step_field(5)


def test_spacetime_value_query(warming):
    """Space-time volume where the value is in a band, vs LinearScan."""
    ih = IHilbertIndex(warming)
    ls = LinearScanIndex(warming)
    vr = warming.value_range
    q = ValueQuery(vr.lo + 3.0, vr.lo + 6.0)
    a, b = ih.query(q), ls.query(q)
    assert a.candidate_count == b.candidate_count
    assert a.area == pytest.approx(b.area)
    assert a.area > 0.0


def test_spacetime_volume_of_full_range(warming):
    ls = LinearScanIndex(warming)
    vr = warming.value_range
    result = ls.query(ValueQuery(vr.lo, vr.hi))
    assert result.area == pytest.approx(warming.num_cells)


def test_duration_in_band(warming):
    # At vertex (3, 2): value goes 5 -> 13 over 40 time units; the band
    # [7, 9] is occupied for (9-7)/(13-5) x 40 = 10 time units.
    assert warming.duration_in_band(3.0, 2.0, 7.0, 9.0) == \
        pytest.approx(10.0)


def test_duration_constant_value():
    snaps = np.stack([np.full((5, 5), 4.0)] * 3)
    field = TemporalField(snaps, dt=5.0)
    assert field.duration_in_band(1.0, 1.0, 3.0, 5.0) == \
        pytest.approx(10.0)
    assert field.duration_in_band(1.0, 1.0, 5.0, 6.0) == 0.0


def test_duration_never_exceeds_span(warming):
    span = warming.time_range.length
    vr = warming.value_range
    assert warming.duration_in_band(4.0, 4.0, vr.lo, vr.hi) == \
        pytest.approx(span)

"""Tests for the metrics registry and the instrumented publish sites."""

import pytest

from repro.core import IHilbertIndex, LinearScanIndex, ValueQuery
from repro.obs.metrics import MetricsRegistry, REGISTRY


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def live_registry():
    """The process-wide registry, enabled and restored afterwards."""
    REGISTRY.reset()
    REGISTRY.enable()
    yield REGISTRY
    REGISTRY.disable()
    REGISTRY.reset()


# -- metric primitives -------------------------------------------------------

def test_counter_accumulates_per_label_set(registry):
    c = registry.counter("reads", "total reads")
    c.inc(1, disk="data")
    c.inc(2, disk="data")
    c.inc(5, disk="tree")
    assert c.value(disk="data") == 3
    assert c.value(disk="tree") == 5
    assert c.value(disk="absent") == 0.0


def test_counter_rejects_negative(registry):
    c = registry.counter("c")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_inc(registry):
    g = registry.gauge("frames")
    g.set(10, pool="data")
    g.inc(-3, pool="data")
    assert g.value(pool="data") == 7


def test_histogram_buckets_and_moments(registry):
    h = registry.histogram("pages", buckets=(1, 10, 100))
    for v in (0.5, 5, 5, 50, 500):
        h.observe(v)
    assert h.value() == 5
    assert h.sum() == 560.5
    assert h.mean() == pytest.approx(112.1)
    dump = h.collect()["series"][0]
    # Cumulative per-bucket counts: <=1, <=10, <=100, +inf.
    assert dump["bucket_counts"] == [1, 2, 1, 1]
    assert dump["count"] == 5


def test_histogram_needs_buckets(registry):
    with pytest.raises(ValueError):
        registry.histogram("bad", buckets=())


def test_registration_is_idempotent_but_typed(registry):
    c1 = registry.counter("x")
    c2 = registry.counter("x")
    assert c1 is c2
    with pytest.raises(ValueError):
        registry.gauge("x")
    assert "x" in registry
    assert registry.get("x") is c1


def test_reset_keeps_registrations(registry):
    c = registry.counter("x")
    c.inc(4)
    registry.reset()
    assert c.value() == 0.0
    assert registry.get("x") is c


# -- export ------------------------------------------------------------------

def test_collect_skips_empty_families(registry):
    registry.counter("silent")
    touched = registry.counter("touched")
    touched.inc(1, kind="a")
    names = [m["name"] for m in registry.collect()["metrics"]]
    assert names == ["touched"]


def test_render_text_exposition(registry):
    c = registry.counter("reads", "Total reads.")
    c.inc(3, disk="data")
    h = registry.histogram("sizes", buckets=(1, 2))
    h.observe(1.5)
    text = registry.render_text()
    assert "# HELP reads Total reads." in text
    assert "# TYPE reads counter" in text
    assert 'reads{disk="data"} 3' in text
    assert 'sizes_bucket{le="2"} 1' in text
    assert 'sizes_bucket{le="+Inf"} 1' in text
    assert "sizes_count 1" in text


def test_render_text_empty(registry):
    assert registry.render_text() == ""


# -- instrumented sites ------------------------------------------------------

def test_disabled_registry_records_nothing(smooth_dem):
    REGISTRY.reset()
    assert not REGISTRY.enabled
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    index.query(ValueQuery(vr.lo, vr.hi))
    assert REGISTRY.collect()["metrics"] == []


def test_query_publishes_per_method(smooth_dem, live_registry):
    vr = smooth_dem.value_range
    q = ValueQuery(vr.lo, vr.lo + 0.3 * (vr.hi - vr.lo))
    ih = IHilbertIndex(smooth_dem)
    scan = LinearScanIndex(smooth_dem)
    ih.query(q)
    ih.query(q)
    scan.query(q)

    queries = live_registry.get("repro_queries_total")
    assert queries.value(method="I-Hilbert") == 2
    assert queries.value(method="LinearScan") == 1

    pages = live_registry.get("repro_query_page_reads")
    assert pages.value(method="I-Hilbert") == 2
    assert pages.sum(method="LinearScan") > 0


def test_disk_reads_split_by_kind(smooth_dem, live_registry):
    index = LinearScanIndex(smooth_dem)
    index.clear_caches()
    vr = smooth_dem.value_range
    result = index.query(ValueQuery(vr.lo, vr.hi))

    reads = live_registry.get("repro_disk_page_reads_total")
    sequential = reads.value(disk="data", kind="sequential")
    random = reads.value(disk="data", kind="random")
    assert sequential + random == result.io.page_reads
    assert random == result.io.random_reads

"""Unit tests for the estimation step (polygonal answer regions)."""

import numpy as np
import pytest

from repro.field import (
    AnswerRegion,
    DEMField,
    TINField,
    extract_regions,
    total_area,
)


def test_regions_match_closed_form_on_dem(paper_dem):
    records = paper_dem.cell_records()
    for lo, hi in [(40.0, 60.0), (55.0, 59.0), (80.0, 120.0), (47.0, 47.5)]:
        regions = extract_regions(DEMField, records, lo, hi)
        closed = DEMField.estimate_area(records, lo, hi)
        assert total_area(regions) == pytest.approx(closed, abs=1e-5)


def test_regions_match_closed_form_on_tin(small_tin):
    records = small_tin.cell_records()
    vr = small_tin.value_range
    mid = (vr.lo + vr.hi) / 2.0
    for lo, hi in [(vr.lo, mid), (mid, vr.hi),
                   (mid - 1.0, mid + 1.0)]:
        regions = extract_regions(TINField, records, lo, hi)
        closed = TINField.estimate_area(records, lo, hi)
        assert total_area(regions) == pytest.approx(closed, rel=1e-5,
                                                    abs=1e-6)


def test_regions_carry_cell_ids(paper_dem):
    records = paper_dem.cell_records()
    regions = extract_regions(DEMField, records, 55.0, 59.0)
    # §2.2.2: the [55, 59] query involves cells c1..c4 (ids 0..3).
    assert {r.cell_id for r in regions} <= {0, 1, 2, 3}
    assert regions
    for region in regions:
        assert len(region.polygon) >= 3
        assert region.area > 0.0


def test_no_regions_outside_value_range(paper_dem):
    records = paper_dem.cell_records()
    assert extract_regions(DEMField, records, 500.0, 600.0) == []


def test_flat_cell_inside_band_reported():
    heights = np.full((3, 3), 7.0)
    field = DEMField(heights)
    regions = extract_regions(DEMField, field.cell_records(), 6.0, 8.0)
    # Every sub-triangle of every flat cell is fully inside the band.
    assert total_area(regions) == pytest.approx(4.0)


def test_flat_cell_outside_band_skipped():
    heights = np.full((2, 2), 7.0)
    field = DEMField(heights)
    assert extract_regions(DEMField, field.cell_records(), 8.0, 9.0) == []


def test_total_area_empty():
    assert total_area([]) == 0.0


def test_answer_region_is_frozen():
    region = AnswerRegion(0, ((0.0, 0.0), (1.0, 0.0), (0.0, 1.0)), 0.5)
    with pytest.raises(AttributeError):
        region.area = 1.0

"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro import (
    DEMField,
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    PointIndex,
    TINField,
    ValueQuery,
    conjunctive_query,
    load_index,
    save_index,
)
from repro.bench import run_experiment, standard_methods
from repro.field import extract_isolines, total_area
from repro.synth import (
    fractal_dem_heights,
    lyon_like,
    value_query_workload,
)


def test_dem_and_equivalent_tin_agree_exactly():
    """A DEM and the TIN of its own triangulation are the same field.

    Splitting every DEM square along its main diagonal and feeding the
    triangles to TINField must reproduce identical candidates and
    answer areas — a strong cross-check of both models and both
    estimation kernels.
    """
    heights = fractal_dem_heights(16, 0.6, seed=21)
    dem = DEMField(heights)
    rows, cols = dem.rows, dem.cols
    points = np.array([(i, j) for j in range(rows + 1)
                       for i in range(cols + 1)], dtype=float)
    values = np.array([heights[j, i] for j in range(rows + 1)
                       for i in range(cols + 1)])

    def vid(i, j):
        return j * (cols + 1) + i

    triangles = []
    for j in range(rows):
        for i in range(cols):
            triangles.append([vid(i, j), vid(i + 1, j), vid(i + 1, j + 1)])
            triangles.append([vid(i, j), vid(i + 1, j + 1), vid(i, j + 1)])
    tin = TINField(points, values, np.array(triangles))

    dem_index = LinearScanIndex(dem)
    tin_index = LinearScanIndex(tin)
    vr = dem.value_range
    rng = np.random.default_rng(2)
    for _ in range(20):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * vr.length * 0.2)
        q = ValueQuery(lo, hi)
        a = dem_index.query(q)
        b = tin_index.query(q)
        assert a.area == pytest.approx(b.area, rel=1e-5, abs=1e-6)


def test_full_pipeline_on_tin():
    """Build → index → query → regions → isolines → persist → reload."""
    tin = lyon_like(num_sites=400, seed=5)
    index = IHilbertIndex(tin)
    vr = tin.value_range
    level = vr.lo + 0.6 * vr.length

    result = index.query(ValueQuery(level, level + 2.0),
                         estimate="regions")
    assert result.regions
    assert result.area == pytest.approx(total_area(result.regions))

    candidates = index._candidates(level, level)
    segments = extract_isolines(TINField, candidates, level)
    assert segments

    for segment in segments[:10]:
        mx = (segment.start[0] + segment.end[0]) / 2.0
        my = (segment.start[1] + segment.end[1]) / 2.0
        cell = tin.locate_cell(mx, my)
        if cell >= 0:
            assert tin.value_at(mx, my) == pytest.approx(level, abs=1e-2)


def test_persisted_index_serves_isolines(tmp_path, smooth_dem):
    index = IHilbertIndex(smooth_dem)
    save_index(index, tmp_path / "i")
    back = load_index(tmp_path / "i")
    vr = smooth_dem.value_range
    level = (vr.lo + vr.hi) / 2.0
    a = extract_isolines(DEMField, index._candidates(level, level), level)
    b = extract_isolines(DEMField, back._candidates(level, level), level)
    assert len(a) == len(b)


def test_q1_and_q2_compose(smooth_dem):
    """Find a band, then verify its region centroids through Q1."""
    value_index = IHilbertIndex(smooth_dem)
    point_index = PointIndex(smooth_dem)
    vr = smooth_dem.value_range
    lo = vr.lo + 0.4 * vr.length
    hi = vr.lo + 0.5 * vr.length
    regions = value_index.query(ValueQuery(lo, hi),
                                estimate="regions").regions
    assert regions
    checked = 0
    for region in regions:
        xs = [p[0] for p in region.polygon]
        ys = [p[1] for p in region.polygon]
        cx, cy = sum(xs) / len(xs), sum(ys) / len(ys)
        value = point_index.value_at(cx, cy)
        if value is None:
            continue
        # Region polygons are convex pieces of the band: the centroid
        # must satisfy the predicate (up to float32 record rounding).
        assert lo - 1e-2 <= value <= hi + 1e-2
        checked += 1
        if checked >= 20:
            break
    assert checked > 0


def test_harness_runs_tin_experiment():
    tin = lyon_like(num_sites=300, seed=8)
    result = run_experiment("tin-exp", tin, standard_methods(),
                            qintervals=[0.0, 0.05], queries=4)
    assert len(result.series) == 3
    counts = {s.method: [p.mean_candidates for p in s.points]
              for s in result.series}
    assert counts["LinearScan"] == pytest.approx(counts["I-Hilbert"])


def test_workload_replay_is_exactly_reproducible(smooth_dem):
    index = IAllIndex(smooth_dem)
    queries = value_query_workload(smooth_dem.value_range, 0.02,
                                   count=10, seed=3)
    first = [index.query(q).candidate_count for q in queries]
    second = [index.query(q).candidate_count for q in queries]
    assert first == second


def test_multifield_over_three_methods(smooth_dem, rough_dem):
    """Conjunctions accept heterogeneous index types per field."""
    a = IHilbertIndex(smooth_dem)
    b = LinearScanIndex(rough_dem)
    t_mid = sum(smooth_dem.value_range.as_tuple()) / 2.0
    r_mid = sum(rough_dem.value_range.as_tuple()) / 2.0
    result = conjunctive_query(
        [a, b],
        [(smooth_dem.value_range.lo, t_mid),
         (rough_dem.value_range.lo, r_mid)])
    assert result.common_cells >= 0
    assert result.area >= 0.0


def test_region_areas_never_exceed_candidate_cells(small_tin, rng):
    index = IHilbertIndex(small_tin)
    records = small_tin.cell_records()
    vr = small_tin.value_range
    for _ in range(10):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * 3.0)
        result = index.query(ValueQuery(lo, hi), estimate="regions")
        regions = result.regions
        cand_ids = {int(c) for c in
                    index._candidates(lo, hi)["cell_id"]}
        assert {r.cell_id for r in regions} <= cand_ids
        # Total answer area cannot exceed the candidates' total area.
        if cand_ids:
            mask = np.isin(records["cell_id"], list(cand_ids))
            xs = records["xs"][mask].astype(float)
            ys = records["ys"][mask].astype(float)
            cell_area = 0.5 * np.abs(
                (xs[:, 1] - xs[:, 0]) * (ys[:, 2] - ys[:, 0])
                - (xs[:, 2] - xs[:, 0]) * (ys[:, 1] - ys[:, 0])).sum()
            assert result.area <= cell_area + 1e-6

"""Engine facade: the one API the CLI, bench and serve layer share."""

import numpy as np
import pytest

from repro.core import (
    EngineFacade,
    FacadeError,
    FieldExistsError,
    IHilbertIndex,
    UnknownFieldError,
    ValueQuery,
    load_index,
)
from repro.field import DEMField


@pytest.fixture
def facade(smooth_dem):
    f = EngineFacade()
    f.open_field("terrain", IHilbertIndex(smooth_dem))
    return f


def test_open_from_index_object_and_describe(facade):
    info = facade.describe("terrain")
    assert info["field"] == "terrain"
    assert info["method"] == "I-Hilbert"
    assert info["source"] == "index-object"
    assert facade.field_names() == ["terrain"]


def test_open_from_field_object(smooth_dem):
    facade = EngineFacade()
    info = facade.open_field("f", smooth_dem)
    assert info["source"] == "field-object"
    assert facade.handle("f").index.field is smooth_dem


def test_open_from_npy_and_index_dir(tmp_path, smooth_dem):
    npy = tmp_path / "heights.npy"
    np.save(npy, smooth_dem.heights)
    facade = EngineFacade()
    facade.open_field("from-npy", npy)
    facade.snapshot("from-npy", tmp_path / "idx")
    facade.open_field("from-dir", tmp_path / "idx")
    a = facade.query("from-npy", 300.0, 320.0)
    b = facade.query("from-dir", 300.0, 320.0)
    assert a.candidate_count == b.candidate_count
    assert a.area == b.area


def test_open_duplicate_name_raises(facade, smooth_dem):
    with pytest.raises(FieldExistsError):
        facade.open_field("terrain", smooth_dem)


def test_open_unsupported_source_raises(tmp_path):
    bogus = tmp_path / "field.csv"
    bogus.write_text("1,2,3\n")
    with pytest.raises(FacadeError):
        EngineFacade().open_field("x", bogus)


def test_unknown_field_everywhere(facade):
    for call in (lambda: facade.query("nope", 0.0, 1.0),
                 lambda: facade.batch("nope", [(0.0, 1.0)]),
                 lambda: facade.update("nope", [0], [1.0]),
                 lambda: facade.describe("nope"),
                 lambda: facade.close_field("nope")):
        with pytest.raises(UnknownFieldError):
            call()


def test_query_matches_direct_index_call(facade, smooth_dem):
    direct = IHilbertIndex(smooth_dem).query(ValueQuery(300.0, 320.0))
    via = facade.query("terrain", 300.0, 320.0)
    assert via.candidate_count == direct.candidate_count
    assert via.area == direct.area


def test_batch_serial_and_parallel_agree(facade):
    queries = [(280.0, 300.0), (300.0, 320.0), (250.0, 260.0)]
    serial = facade.batch("terrain", queries, workers=1)
    parallel = facade.batch("terrain", queries, workers=3)
    for a, b in zip(serial.results, parallel.results):
        assert a.candidate_count == b.candidate_count
        assert a.area == b.area
    assert facade.handle("terrain").queries == 2 * len(queries)


def test_batch_accepts_value_query_objects(facade):
    batch = facade.batch("terrain", [ValueQuery(300.0, 320.0)])
    assert len(batch.results) == 1


def test_update_rewrites_cells_and_changes_answers(smooth_dem):
    facade = EngineFacade()
    facade.open_field("terrain", IHilbertIndex(smooth_dem))
    lo, hi = 10_000.0, 10_001.0
    before = facade.query("terrain", lo, hi)
    assert before.candidate_count == 0
    rewritten = facade.update("terrain", [0, 1, 4], [10_000.5] * 3)
    assert rewritten > 0
    assert facade.query("terrain", lo, hi).candidate_count > 0
    assert facade.handle("terrain").updates == rewritten


def test_update_without_field_data_raises(tmp_path, smooth_dem):
    facade = EngineFacade()
    facade.open_field("terrain", IHilbertIndex(smooth_dem))
    facade.snapshot("terrain", tmp_path / "idx")
    facade.open_field("reloaded", tmp_path / "idx")
    assert facade.handle("reloaded").index.field is None
    with pytest.raises(FacadeError):
        facade.update("reloaded", [0], [1.0])


def test_snapshot_roundtrip(tmp_path, facade):
    path = facade.snapshot("terrain", tmp_path / "snap")
    index = load_index(path)
    assert len(index.store) == len(facade.handle("terrain").index.store)


def test_tenant_attribution_through_query(facade, smooth_dem):
    vr = smooth_dem.value_range
    lo, hi = vr.lo, vr.hi
    facade.query("terrain", lo, hi, tenant="alice")
    facade.query("terrain", lo, hi, tenant="bob")
    facade.query("terrain", lo, hi)                # unattributed
    stats = facade.stats("terrain")
    tenants = stats["tenants"]
    assert set(tenants) == {"alice", "bob"}
    for entry in tenants.values():
        assert entry["hits"] + entry["misses"] > 0
    # The tenant bracket restores the pool attribute afterwards.
    assert facade.handle("terrain").index.store.pool.set_tenant(None) \
        is None


def test_stats_shape(facade):
    facade.query("terrain", 300.0, 320.0, tenant="alice")
    stats = facade.stats("terrain")
    assert stats["field"] == "terrain"
    assert stats["queries"] == 1
    assert set(stats["io"]) == {"page_reads", "random_reads",
                                "sequential_reads", "cache_hits",
                                "page_writes"}
    assert {"hits", "misses", "evictions", "capacity",
            "resident_pages"} <= set(stats["pool"])
    assert "residency" in stats
    everything = facade.stats()
    assert set(everything["fields"]) == {"terrain"}


def test_close_field_forgets(facade):
    facade.close_field("terrain")
    assert facade.field_names() == []
    with pytest.raises(UnknownFieldError):
        facade.query("terrain", 0.0, 1.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        EngineFacade(default_workers=0)
    with pytest.raises(ValueError):
        EngineFacade(default_cache_pages=-1)
    facade = EngineFacade()
    with pytest.raises(ValueError):
        facade.open_field("x", DEMField(np.zeros((3, 3))), workers=0)

"""Unit tests for the interval-tree baseline and field statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FieldStatistics,
    ITreeIndex,
    LinearScanIndex,
    ValueQuery,
)
from repro.core.intervaltree import (
    build_interval_tree,
    query_interval_tree,
    tree_height,
    tree_size,
)


# ------------------------------------------------------------ interval tree

def brute(lows, highs, lo, hi):
    return sorted(i for i, (a, b) in enumerate(zip(lows, highs))
                  if a <= hi and b >= lo)


def test_empty_tree():
    assert build_interval_tree(np.array([]), np.array([]),
                               np.array([], dtype=np.int64)) is None
    assert query_interval_tree(None, 0.0, 1.0) == []
    assert tree_height(None) == 0
    assert tree_size(None) == 0


def test_single_interval():
    root = build_interval_tree(np.array([1.0]), np.array([3.0]),
                               np.array([7]))
    assert query_interval_tree(root, 2.0, 2.5) == [7]
    assert query_interval_tree(root, 3.0, 4.0) == [7]   # closed boundary
    assert query_interval_tree(root, 3.1, 4.0) == []
    assert tree_size(root) == 1


def test_random_intervals_match_brute_force():
    rng = np.random.default_rng(0)
    lows = rng.uniform(0, 100, 500)
    highs = lows + rng.uniform(0, 10, 500)
    root = build_interval_tree(lows, highs,
                               np.arange(500, dtype=np.int64))
    assert tree_size(root) == 500
    for _ in range(50):
        lo = rng.uniform(-5, 105)
        hi = lo + rng.uniform(0, 15)
        got = sorted(query_interval_tree(root, lo, hi))
        assert got == brute(lows, highs, lo, hi)


def test_tree_is_balanced():
    n = 4096
    lows = np.arange(n, dtype=float)
    highs = lows + 0.5
    root = build_interval_tree(lows, highs, np.arange(n, dtype=np.int64))
    # A median-split tree over n disjoint intervals stays O(log n).
    assert tree_height(root) <= 2 * int(np.ceil(np.log2(n))) + 2


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 50, allow_nan=False),
                          st.floats(0, 5, allow_nan=False)),
                min_size=1, max_size=60),
       st.floats(0, 55, allow_nan=False),
       st.floats(0, 10, allow_nan=False))
def test_property_itree_matches_brute(intervals, qlo, qwidth):
    lows = np.array([a for a, _w in intervals])
    highs = np.array([a + w for a, w in intervals])
    root = build_interval_tree(lows, highs,
                               np.arange(len(intervals), dtype=np.int64))
    got = sorted(query_interval_tree(root, qlo, qlo + qwidth))
    assert got == brute(lows, highs, qlo, qlo + qwidth)


def test_itree_index_matches_linear_scan(smooth_dem, rng):
    itree = ITreeIndex(smooth_dem)
    scan = LinearScanIndex(smooth_dem)
    vr = smooth_dem.value_range
    for _ in range(15):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * vr.length * 0.1)
        q = ValueQuery(lo, hi)
        a, b = itree.query(q), scan.query(q)
        assert a.candidate_count == b.candidate_count
        assert a.area == pytest.approx(b.area)


def test_itree_index_pays_no_index_io(smooth_dem):
    itree = ITreeIndex(smooth_dem)
    vr = smooth_dem.value_range
    itree.clear_caches()
    result = itree.query(ValueQuery.exact((vr.lo + vr.hi) / 2))
    # All reads hit the data file (there is no index file at all).
    assert result.io.page_reads <= itree.data_pages
    assert itree.index_pages == 0
    info = itree.describe()
    assert info["memory_resident"] is True
    assert info["tree_height"] >= 1


# ------------------------------------------------------------ statistics

def test_statistics_exact_bounds(smooth_dem):
    stats = FieldStatistics.from_field(smooth_dem)
    vr = smooth_dem.value_range
    assert stats.num_cells == smooth_dem.num_cells
    assert stats.value_lo == pytest.approx(vr.lo, abs=1e-5)
    assert stats.value_hi == pytest.approx(vr.hi, abs=1e-5)
    # Full-range query: every cell intersects.
    assert stats.estimate_candidates(vr.lo, vr.hi) == \
        pytest.approx(smooth_dem.num_cells)
    # Out-of-range queries: nothing.
    assert stats.estimate_candidates(vr.hi + 1, vr.hi + 2) == 0.0


def test_statistics_accuracy_against_exact_counts(smooth_dem, rng):
    stats = FieldStatistics.from_field(smooth_dem, bins=128)
    scan = LinearScanIndex(smooth_dem)
    vr = smooth_dem.value_range
    for _ in range(20):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * vr.length * 0.2)
        actual = scan.query(ValueQuery(lo, hi)).candidate_count
        estimated = stats.estimate_candidates(lo, hi)
        # Histogram estimate within 10% of the cell count.
        assert abs(estimated - actual) <= 0.1 * smooth_dem.num_cells


def test_statistics_selectivity_monotone(smooth_dem):
    stats = FieldStatistics.from_field(smooth_dem)
    vr = smooth_dem.value_range
    mid = (vr.lo + vr.hi) / 2
    narrow = stats.estimate_selectivity(mid, mid)
    wide = stats.estimate_selectivity(vr.lo, vr.hi)
    assert 0.0 <= narrow <= wide <= 1.0


def test_statistics_validation():
    with pytest.raises(ValueError):
        FieldStatistics.from_intervals(np.array([]), np.array([]))
    with pytest.raises(ValueError):
        FieldStatistics.from_intervals(np.array([0.0]), np.array([]))
    with pytest.raises(ValueError):
        FieldStatistics.from_intervals(np.array([0.0]), np.array([1.0]),
                                       bins=0)
    stats = FieldStatistics.from_intervals(np.array([0.0]),
                                           np.array([1.0]))
    with pytest.raises(ValueError):
        stats.estimate_candidates(2.0, 1.0)


def test_statistics_describe(smooth_dem):
    info = FieldStatistics.from_field(smooth_dem, bins=32).describe()
    assert info["cells"] == smooth_dem.num_cells
    assert info["bins"] == 32
    assert 0.0 < info["relative_interval_extent"] < 1.0

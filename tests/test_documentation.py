"""Meta-tests: every public item in the library carries documentation."""

import importlib
import inspect
import pkgutil

import repro

SKIP_MEMBERS = {"__init__"}   # class docstrings document construction


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue   # entry-point modules run their CLI on import
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in ALL_MODULES if not (m.__doc__ or
                                                       "").strip()]
    assert not missing, f"undocumented modules: {missing}"


def test_every_public_class_documented():
    missing = []
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if (name.startswith("_") or not inspect.isclass(obj)
                    or obj.__module__ != module.__name__):
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented classes: {missing}"


def test_every_public_function_documented():
    missing = []
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if (name.startswith("_")
                    or not inspect.isfunction(obj)
                    or obj.__module__ != module.__name__):
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented functions: {missing}"


def test_public_methods_documented():
    """Every public method is documented, directly or by inheritance.

    ``inspect.getdoc`` walks the MRO, so an override of a documented
    base-class method (e.g. ``Field.value_at`` implementations) counts
    as documented — the contract lives on the base.
    """
    missing = []
    for module in ALL_MODULES:
        for cls_name, cls in vars(module).items():
            if (cls_name.startswith("_") or not inspect.isclass(cls)
                    or cls.__module__ != module.__name__):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") or name in SKIP_MEMBERS:
                    continue
                if not callable(member) and not isinstance(
                        member, (classmethod, staticmethod, property)):
                    continue
                if not (inspect.getdoc(getattr(cls, name, None))
                        or "").strip():
                    missing.append(
                        f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented methods: {missing}"

"""Crash-recovery and scrub tests for the persistence layer.

The invariant under test is *old-or-new*: a process killed at any point
during `save_disk`/`save_index` leaves the on-disk state loadable as
either the complete previous version or the complete new version —
never a torn mixture.  Crashes are simulated with the ``crash_point``
parameter, which stops the writer dead at a named step.  The second
half covers ``python -m repro scrub``: detecting deliberately corrupted
pages (reporting their page ids), repairing manifest drift, and
refusing to repair what carries no redundancy.
"""

import json

import pytest

from repro.cli import main
from repro.core import (
    IHilbertIndex,
    PersistError,
    ValueQuery,
    load_index,
    save_index,
)
from repro.core.persist import SAVE_INDEX_CRASH_POINTS
from repro.storage import (
    DiskManager,
    PAGE_HEADER_SIZE,
    SAVE_DISK_CRASH_POINTS,
    SimulatedCrash,
    load_disk,
    save_disk,
    scrub_index,
    repair_index,
    verify_snapshot,
)
from repro.storage.snapshot import read_snapshot_header

#: Byte offset of the snapshot file header (magic, version, page size,
#: page count) — page frames start right after it.
_SNAPSHOT_HEADER_SIZE = 24


def _make_disk(tag: int) -> DiskManager:
    disk = DiskManager(page_size=80)
    for i in range(4):
        disk.write(disk.allocate(), bytes([tag]) * (i + 1))
    return disk


def _disk_payloads(disk: DiskManager) -> list[bytes]:
    return [disk.read(pid) for pid in range(disk.num_pages)]


def _corrupt_page(path, page_id: int) -> None:
    """Flip one payload byte of one page frame inside a snapshot file."""
    page_size, _num_pages = read_snapshot_header(path)
    raw = bytearray(path.read_bytes())
    offset = (_SNAPSHOT_HEADER_SIZE + page_id * page_size
              + PAGE_HEADER_SIZE + 1)
    raw[offset] ^= 0x40
    path.write_bytes(bytes(raw))


# -- save_disk crash matrix --------------------------------------------------


@pytest.mark.parametrize("point", SAVE_DISK_CRASH_POINTS)
def test_save_disk_crash_leaves_old_or_new(tmp_path, point):
    path = tmp_path / "disk.pages"
    old = _make_disk(tag=1)
    save_disk(old, path)
    new = _make_disk(tag=2)
    with pytest.raises(SimulatedCrash):
        save_disk(new, path, crash_point=point)
    # Whatever survived must be one complete version, checksums intact.
    back = _disk_payloads(load_disk(path))
    if point == "post-rename":
        assert back == _disk_payloads(new)
    else:
        assert back == _disk_payloads(old)


def test_save_disk_crash_with_no_previous_version(tmp_path):
    # Crashing before the rename of a first-ever save leaves no
    # destination file at all — "old" state here is "nothing".
    path = tmp_path / "disk.pages"
    with pytest.raises(SimulatedCrash):
        save_disk(_make_disk(tag=1), path, crash_point="pre-rename")
    assert not path.exists()


def test_save_disk_rejects_unknown_crash_point(tmp_path):
    with pytest.raises(ValueError):
        save_disk(_make_disk(tag=1), tmp_path / "d.pages",
                  crash_point="mid-air")


# -- save_index crash matrix -------------------------------------------------


def _query_signature(index, field) -> list[int]:
    vr = field.value_range
    counts = []
    for q in (ValueQuery(vr.lo, vr.hi),
              ValueQuery(vr.lo + 0.25 * vr.length,
                         vr.lo + 0.5 * vr.length)):
        index.clear_caches()
        counts.append(index.query(q).candidate_count)
    return counts


@pytest.mark.parametrize("point", SAVE_INDEX_CRASH_POINTS)
def test_save_index_crash_leaves_old_or_new(tmp_path, smooth_dem,
                                            rough_dem, point):
    # Generation 0: an index over one field.  Generation 1: an index
    # over a *different* field into the same slot — so old and new give
    # different query answers and the reload is unambiguous.
    directory = tmp_path / "idx"
    old_index = IHilbertIndex(smooth_dem)
    new_index = IHilbertIndex(rough_dem)
    old_sig = _query_signature(old_index, smooth_dem)
    new_sig = _query_signature(new_index, rough_dem)
    assert old_sig != new_sig

    save_index(old_index, directory)
    with pytest.raises(SimulatedCrash):
        save_index(new_index, directory, crash_point=point)

    # The reload must verify cleanly (manifest hashes + page checksums)
    # and answer exactly as one complete generation.
    back = load_index(directory)
    field = rough_dem if point == "post-commit" else smooth_dem
    expected = new_sig if point == "post-commit" else old_sig
    assert _query_signature(back, field) == expected
    report = scrub_index(directory)
    assert report.ok
    assert report.generation == (1 if point == "post-commit" else 0)


def test_save_index_crash_then_resave_collects_orphans(tmp_path,
                                                       smooth_dem,
                                                       rough_dem):
    directory = tmp_path / "idx"
    save_index(IHilbertIndex(smooth_dem), directory)
    new_index = IHilbertIndex(rough_dem)
    with pytest.raises(SimulatedCrash):
        save_index(new_index, directory, crash_point="pre-commit")
    # The aborted generation left orphan files behind the commit point.
    assert (directory / "data-1.pages").exists()
    # A later save completes, commits, and sweeps every orphan.
    save_index(new_index, directory)
    assert sorted(p.name for p in directory.iterdir()) == [
        "data-1.pages", "meta.json", "order-1.npy", "tree-1.pages"]
    back = load_index(directory)
    assert (_query_signature(back, rough_dem)
            == _query_signature(new_index, rough_dem))


def test_save_index_rejects_unknown_crash_point(tmp_path, smooth_dem):
    with pytest.raises(ValueError):
        save_index(IHilbertIndex(smooth_dem), tmp_path / "idx",
                   crash_point="mid-air")


# -- scrub -------------------------------------------------------------------


def test_scrub_clean_index(tmp_path, smooth_dem):
    directory = tmp_path / "idx"
    save_index(IHilbertIndex(smooth_dem), directory)
    report = scrub_index(directory)
    assert report.ok
    assert report.bad_page_count == 0
    assert {f.role for f in report.files} == {"data", "tree", "order"}
    assert report.render().endswith("status: CLEAN")


def test_scrub_detects_corrupted_page_and_reports_its_id(tmp_path,
                                                         smooth_dem):
    directory = tmp_path / "idx"
    index = IHilbertIndex(smooth_dem, page_size=256)
    save_index(index, directory)
    _corrupt_page(directory / "data-0.pages", page_id=2)

    report = scrub_index(directory)
    assert not report.ok
    assert report.bad_page_count == 1
    data_status = next(f for f in report.files if f.role == "data")
    assert [pid for pid, _why in data_status.bad_pages] == [2]
    rendered = report.render()
    assert "page 2" in rendered
    assert rendered.endswith("status: CORRUPT")
    # Loading refuses the damaged directory outright.
    with pytest.raises(PersistError):
        load_index(directory)


def test_scrub_requires_a_manifest(tmp_path):
    with pytest.raises(FileNotFoundError):
        scrub_index(tmp_path)


def test_repair_fixes_manifest_drift(tmp_path, smooth_dem):
    directory = tmp_path / "idx"
    save_index(IHilbertIndex(smooth_dem), directory)
    meta = json.loads((directory / "meta.json").read_text())
    meta["files"]["order"]["sha256"] = "0" * 64
    (directory / "meta.json").write_text(json.dumps(meta))

    assert not scrub_index(directory).ok
    report, actions = repair_index(directory)
    assert report.ok
    assert actions == ["recomputed manifest entry for order-0.npy"]
    load_index(directory)   # verifies cleanly again


def test_repair_never_touches_corrupt_pages(tmp_path, smooth_dem):
    directory = tmp_path / "idx"
    save_index(IHilbertIndex(smooth_dem, page_size=256), directory)
    _corrupt_page(directory / "data-0.pages", page_id=1)
    report, actions = repair_index(directory)
    # Page payloads carry no redundancy: the damage is reported, the
    # file is left exactly as found, and nothing claims to have fixed it.
    assert not report.ok
    assert actions == []
    assert scrub_index(directory).bad_page_count == 1


def test_verify_snapshot_reports_every_bad_page(tmp_path):
    disk = DiskManager(page_size=80)
    for i in range(6):
        disk.write(disk.allocate(), bytes([i + 1]) * 20)
    path = tmp_path / "disk.pages"
    save_disk(disk, path)
    _corrupt_page(path, page_id=1)
    _corrupt_page(path, page_id=4)
    bad = verify_snapshot(path)
    assert [pid for pid, _why in bad] == [1, 4]


def test_load_rejects_size_mismatch(tmp_path, smooth_dem):
    directory = tmp_path / "idx"
    save_index(IHilbertIndex(smooth_dem), directory)
    with open(directory / "data-0.pages", "ab") as fh:
        fh.write(b"trailing garbage")
    with pytest.raises(PersistError):
        load_index(directory)


# -- the scrub CLI -----------------------------------------------------------


def _build_cli_index(tmp_path, smooth_dem):
    directory = tmp_path / "idx"
    save_index(IHilbertIndex(smooth_dem, page_size=256), directory)
    return directory


def test_cli_scrub_clean(tmp_path, smooth_dem, capsys):
    directory = _build_cli_index(tmp_path, smooth_dem)
    assert main(["scrub", str(directory)]) == 0
    assert "status: CLEAN" in capsys.readouterr().out


def test_cli_scrub_reports_corruption_and_exits_nonzero(tmp_path,
                                                        smooth_dem,
                                                        capsys):
    directory = _build_cli_index(tmp_path, smooth_dem)
    _corrupt_page(directory / "data-0.pages", page_id=3)
    assert main(["scrub", str(directory)]) == 1
    out = capsys.readouterr().out
    assert "page 3" in out
    assert "status: CORRUPT" in out


def test_cli_scrub_json(tmp_path, smooth_dem, capsys):
    directory = _build_cli_index(tmp_path, smooth_dem)
    _corrupt_page(directory / "data-0.pages", page_id=0)
    assert main(["scrub", str(directory), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    data_file = next(f for f in payload["files"] if f["role"] == "data")
    assert data_file["bad_pages"][0]["page_id"] == 0


def test_cli_scrub_repair(tmp_path, smooth_dem, capsys):
    directory = _build_cli_index(tmp_path, smooth_dem)
    meta = json.loads((directory / "meta.json").read_text())
    meta["files"]["tree"]["sha256"] = "f" * 64
    (directory / "meta.json").write_text(json.dumps(meta))
    assert main(["scrub", str(directory), "--repair"]) == 0
    out = capsys.readouterr().out
    assert "recomputed manifest entry" in out
    assert "status: CLEAN" in out


def test_cli_scrub_rejects_non_index_dir(tmp_path):
    with pytest.raises(SystemExit):
        main(["scrub", str(tmp_path)])

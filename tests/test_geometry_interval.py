"""Unit and property tests for the Interval primitive."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Interval

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def ivl(a, b):
    return Interval(min(a, b), max(a, b))


def test_construction_and_accessors():
    i = Interval(2.0, 5.0)
    assert i.lo == 2.0 and i.hi == 5.0
    assert i.length == 3.0
    assert i.as_tuple() == (2.0, 5.0)


def test_inverted_interval_rejected():
    with pytest.raises(ValueError):
        Interval(5.0, 2.0)


def test_of_covers_all_values():
    assert Interval.of(3.0, -1.0, 2.0) == Interval(-1.0, 3.0)
    assert Interval.of(7.0) == Interval(7.0, 7.0)


def test_of_empty_rejected():
    with pytest.raises(ValueError):
        Interval.of()


def test_size_uses_paper_convention():
    # Paper §3.1.2: interval size = max - min + 1; a constant cell has
    # size 1.
    assert Interval(20.0, 30.0).size() == 11.0
    assert Interval(5.0, 5.0).size() == 1.0
    assert Interval(5.0, 5.0).size(unit=0.5) == 0.5


def test_contains_closed_bounds():
    i = Interval(1.0, 2.0)
    assert i.contains(1.0)
    assert i.contains(2.0)
    assert i.contains(1.5)
    assert not i.contains(0.999)
    assert not i.contains(2.001)


def test_intersects_touching_counts():
    assert Interval(0.0, 1.0).intersects(Interval(1.0, 2.0))
    assert not Interval(0.0, 1.0).intersects(Interval(1.1, 2.0))


def test_intersection_and_disjoint():
    assert Interval(0.0, 5.0).intersection(Interval(3.0, 8.0)) == \
        Interval(3.0, 5.0)
    assert Interval(0.0, 1.0).intersection(Interval(2.0, 3.0)) is None


def test_union():
    assert Interval(0.0, 1.0).union(Interval(5.0, 6.0)) == Interval(0.0, 6.0)


def test_expanded():
    i = Interval(1.0, 2.0)
    assert i.expanded(0.0) == Interval(0.0, 2.0)
    assert i.expanded(3.0) == Interval(1.0, 3.0)
    assert i.expanded(1.5) is i


@given(finite, finite, finite, finite)
def test_property_union_contains_both(a, b, c, d):
    x, y = ivl(a, b), ivl(c, d)
    u = x.union(y)
    assert u.lo <= x.lo and u.hi >= x.hi
    assert u.lo <= y.lo and u.hi >= y.hi
    assert x.union(y) == y.union(x)


@given(finite, finite, finite, finite)
def test_property_intersection_consistent_with_intersects(a, b, c, d):
    x, y = ivl(a, b), ivl(c, d)
    inter = x.intersection(y)
    assert (inter is not None) == x.intersects(y)
    if inter is not None:
        assert x.contains(inter.lo) and y.contains(inter.lo)
        assert x.contains(inter.hi) and y.contains(inter.hi)


@given(finite, finite, finite)
def test_property_expanded_contains_value(a, b, v):
    x = ivl(a, b)
    assert x.expanded(v).contains(v)

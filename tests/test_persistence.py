"""Unit tests for disk snapshots and index save/load."""

import pytest

from repro.core import (
    IHilbertIndex,
    IntervalQuadtreeIndex,
    LinearScanIndex,
    PersistError,
    ValueQuery,
    load_index,
    save_index,
)
from repro.storage import (
    DiskManager,
    SnapshotError,
    load_disk,
    save_disk,
)


def test_disk_snapshot_roundtrip(tmp_path):
    disk = DiskManager()
    for i in range(5):
        pid = disk.allocate()
        disk.write(pid, bytes([i]) * 100)
    path = tmp_path / "disk.pages"
    written = save_disk(disk, path)
    assert written == path.stat().st_size
    back = load_disk(path)
    assert back.num_pages == 5
    assert back.page_size == disk.page_size
    for i in range(5):
        assert back.read(i)[:100] == bytes([i]) * 100


def test_disk_snapshot_empty(tmp_path):
    disk = DiskManager()
    path = tmp_path / "empty.pages"
    save_disk(disk, path)
    assert load_disk(path).num_pages == 0


def test_disk_snapshot_rejects_garbage(tmp_path):
    path = tmp_path / "bogus.pages"
    path.write_bytes(b"not a snapshot at all")
    with pytest.raises(SnapshotError):
        load_disk(path)


def test_disk_snapshot_rejects_truncation(tmp_path):
    disk = DiskManager()
    disk.allocate()
    path = tmp_path / "trunc.pages"
    save_disk(disk, path)
    path.write_bytes(path.read_bytes()[:-100])
    with pytest.raises(SnapshotError):
        load_disk(path)


def test_index_roundtrip_dem(tmp_path, smooth_dem, rng):
    index = IHilbertIndex(smooth_dem)
    save_index(index, tmp_path / "idx")
    back = load_index(tmp_path / "idx")
    assert back.name == "I-Hilbert"
    assert back.num_subfields == index.num_subfields
    vr = smooth_dem.value_range
    for _ in range(12):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * vr.length * 0.1)
        q = ValueQuery(lo, hi)
        index.clear_caches()
        back.clear_caches()
        a = index.query(q)
        b = back.query(q)
        assert a.candidate_count == b.candidate_count
        assert a.area == pytest.approx(b.area)
        assert a.io.page_reads == b.io.page_reads


def test_index_roundtrip_tin(tmp_path, small_tin):
    index = IntervalQuadtreeIndex(small_tin)
    save_index(index, tmp_path / "idx")
    back = load_index(tmp_path / "idx")
    vr = small_tin.value_range
    q = ValueQuery((vr.lo + vr.hi) / 2, (vr.lo + vr.hi) / 2 + 1.0)
    assert back.query(q).candidate_count == index.query(q).candidate_count


def test_index_roundtrip_regions_mode(tmp_path, smooth_dem):
    index = IHilbertIndex(smooth_dem)
    save_index(index, tmp_path / "idx")
    back = load_index(tmp_path / "idx")
    vr = smooth_dem.value_range
    q = ValueQuery.exact((vr.lo + vr.hi) / 2)
    a = index.query(q, estimate="regions")
    b = back.query(q, estimate="regions")
    assert len(a.regions) == len(b.regions)


def test_load_rejects_non_index_dir(tmp_path):
    with pytest.raises(PersistError):
        load_index(tmp_path)


def test_load_rejects_bad_format(tmp_path, smooth_dem):
    index = IHilbertIndex(smooth_dem)
    save_index(index, tmp_path / "idx")
    meta = (tmp_path / "idx" / "meta.json")
    meta.write_text(meta.read_text().replace('"format": 2',
                                             '"format": 99'))
    with pytest.raises(PersistError):
        load_index(tmp_path / "idx")


def test_save_rejects_non_grouped_semantics(tmp_path, smooth_dem):
    # LinearScanIndex is not a grouped index; save_index is typed for
    # grouped indexes and must not accept it silently.
    index = LinearScanIndex(smooth_dem)
    with pytest.raises(AttributeError):
        save_index(index, tmp_path / "idx")


def test_loaded_index_has_no_field(tmp_path, smooth_dem):
    index = IHilbertIndex(smooth_dem)
    save_index(index, tmp_path / "idx")
    back = load_index(tmp_path / "idx")
    assert back.field is None
    assert back.field_type.__name__ == "DEMField"

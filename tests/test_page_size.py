"""Tests for page-size parameterization across the stack."""

import pytest

from repro.core import (
    IAllIndex,
    IHilbertIndex,
    IntervalQuadtreeIndex,
    LinearScanIndex,
    ValueQuery,
)


@pytest.mark.parametrize("index_cls", [LinearScanIndex, IAllIndex,
                                       IHilbertIndex,
                                       IntervalQuadtreeIndex])
def test_results_independent_of_page_size(index_cls, smooth_dem, rng):
    small = index_cls(smooth_dem, page_size=1024)
    large = index_cls(smooth_dem, page_size=16384)
    vr = smooth_dem.value_range
    for _ in range(8):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * vr.length * 0.1)
        q = ValueQuery(lo, hi)
        a, b = small.query(q), large.query(q)
        assert a.candidate_count == b.candidate_count
        assert a.area == pytest.approx(b.area)


def test_smaller_pages_mean_more_pages(smooth_dem):
    small = LinearScanIndex(smooth_dem, page_size=1024)
    large = LinearScanIndex(smooth_dem, page_size=16384)
    assert small.data_pages > large.data_pages
    assert small.page_size == 1024


def test_tree_fanout_follows_page_size(smooth_dem):
    small = IAllIndex(smooth_dem, page_size=1024)
    large = IAllIndex(smooth_dem, page_size=16384)
    assert small.tree.capacity < large.tree.capacity
    assert small.index_pages > large.index_pages


def test_scan_io_scales_with_page_size(smooth_dem):
    small = LinearScanIndex(smooth_dem, page_size=1024)
    large = LinearScanIndex(smooth_dem, page_size=16384)
    vr = smooth_dem.value_range
    q = ValueQuery(vr.lo, vr.hi)
    small.clear_caches()
    large.clear_caches()
    assert small.query(q).io.page_reads > large.query(q).io.page_reads

"""Unit and property tests for 3-D volume fields."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IHilbertIndex, LinearScanIndex, ValueQuery
from repro.field import (
    VolumeField,
    tetrahedron_band_fraction,
    tetrahedron_fraction_below,
)
from repro.field.volume import KUHN_TETRAHEDRA
from repro.geometry import Interval


@pytest.fixture
def small_volume():
    rng = np.random.default_rng(3)
    return VolumeField(rng.random((6, 6, 6)) * 100.0)


def test_kuhn_decomposition_is_six_distinct_tets():
    assert len(KUHN_TETRAHEDRA) == 6
    assert len({tuple(sorted(t)) for t in KUHN_TETRAHEDRA}) == 6
    for tet in KUHN_TETRAHEDRA:
        assert tet[0] == 0 and tet[3] == 7


def test_shape_validation():
    with pytest.raises(ValueError):
        VolumeField(np.zeros((4, 4)))
    with pytest.raises(ValueError):
        VolumeField(np.zeros((1, 4, 4)))


def test_structure(small_volume):
    assert small_volume.num_cells == 125
    assert small_volume.bounds == (0.0, 0.0, 0.0, 5.0, 5.0, 5.0)
    vr = small_volume.value_range
    assert isinstance(vr, Interval)


def test_cell_id_roundtrip(small_volume):
    for cid in range(0, 125, 7):
        i, j, k = small_volume.cell_position(cid)
        assert small_volume.cell_id(i, j, k) == cid
    with pytest.raises(IndexError):
        small_volume.cell_id(5, 0, 0)
    with pytest.raises(IndexError):
        small_volume.cell_position(125)


def test_records_corner_order(small_volume):
    rec = small_volume.cell_records()[0]
    s = small_volume.samples
    expected = [s[(b >> 2) & 1, (b >> 1) & 1, b & 1] for b in range(8)]
    assert np.allclose(rec["corners"], expected)
    assert rec["vmin"] == min(expected)
    assert rec["vmax"] == max(expected)


def test_value_at_vertices(small_volume):
    s = small_volume.samples
    for k in range(6):
        for j in range(0, 6, 2):
            for i in range(0, 6, 3):
                assert small_volume.value_at(float(i), float(j),
                                             float(k)) == \
                    pytest.approx(float(s[k, j, i]), abs=1e-4)


def test_value_at_edge_midpoints(small_volume):
    s = small_volume.samples
    assert small_volume.value_at(0.5, 0.0, 0.0) == \
        pytest.approx((s[0, 0, 0] + s[0, 0, 1]) / 2.0, abs=1e-4)
    assert small_volume.value_at(0.0, 0.5, 0.0) == \
        pytest.approx((s[0, 0, 0] + s[0, 1, 0]) / 2.0, abs=1e-4)
    assert small_volume.value_at(0.0, 0.0, 0.5) == \
        pytest.approx((s[0, 0, 0] + s[1, 0, 0]) / 2.0, abs=1e-4)


def test_value_at_outside_raises(small_volume):
    with pytest.raises(ValueError):
        small_volume.value_at(-1.0, 0.0, 0.0)
    assert small_volume.locate_cell(9.0, 0.0, 0.0) == -1


def test_estimate_volume_full_range(small_volume):
    records = small_volume.cell_records()
    vr = small_volume.value_range
    assert VolumeField.estimate_area(records, vr.lo, vr.hi) == \
        pytest.approx(125.0)


def test_estimate_volume_complement(small_volume):
    records = small_volume.cell_records()
    vr = small_volume.value_range
    mid = (vr.lo + vr.hi) / 2.0
    low = VolumeField.estimate_area(records, vr.lo, mid)
    high = VolumeField.estimate_area(records, mid, vr.hi)
    assert low + high == pytest.approx(125.0)


def test_record_triangles_unsupported(small_volume):
    with pytest.raises(NotImplementedError):
        VolumeField.record_triangles(small_volume.cell_records()[0])


def test_record_mbrs(small_volume):
    mbrs = VolumeField.record_mbrs(small_volume.cell_records())
    assert mbrs.shape == (125, 6)
    assert tuple(mbrs[0]) == (0.0, 0.0, 0.0, 1.0, 1.0, 1.0)


def test_tetra_fraction_known_values():
    # Values 0,1,2,3: fraction below 0.5 = 0.5^3/(1*2*3).
    vals = np.array([[0.0, 1.0, 2.0, 3.0]])
    assert tetrahedron_fraction_below(vals, 0.5)[0] == \
        pytest.approx(0.125 / 6.0, rel=1e-4)
    assert tetrahedron_fraction_below(vals, -1.0)[0] == 0.0
    assert tetrahedron_fraction_below(vals, 3.0)[0] == 1.0
    # Symmetry: at the midpoint of a symmetric tetra, exactly half.
    assert tetrahedron_fraction_below(vals, 1.5)[0] == pytest.approx(0.5)


def test_tetra_fraction_flat():
    vals = np.array([[5.0, 5.0, 5.0, 5.0]])
    assert tetrahedron_fraction_below(vals, 4.9)[0] == 0.0
    assert tetrahedron_fraction_below(vals, 5.0)[0] == 1.0
    assert tetrahedron_band_fraction(vals, 5.0, 6.0)[0] == 1.0
    assert tetrahedron_band_fraction(vals, 6.0, 7.0)[0] == 0.0


def test_tetra_fraction_monte_carlo():
    rng = np.random.default_rng(1)
    for _ in range(5):
        vals = rng.uniform(-10.0, 10.0, 4)
        t = rng.uniform(vals.min(), vals.max())
        e = rng.exponential(size=(120000, 4))
        bary = e / e.sum(axis=1, keepdims=True)
        mc = float((bary @ vals <= t).mean())
        cf = float(tetrahedron_fraction_below(vals[None, :], t)[0])
        assert cf == pytest.approx(mc, abs=0.01)


@settings(max_examples=50, deadline=None)
@given(st.tuples(*[st.floats(-50, 50, allow_nan=False)] * 4),
       st.floats(-60, 60, allow_nan=False))
def test_property_tetra_fraction_bounded_monotone(vals, t):
    arr = np.array([vals], dtype=float)
    lower = tetrahedron_fraction_below(arr, t)[0]
    higher = tetrahedron_fraction_below(arr, t + 1.0)[0]
    assert 0.0 <= lower <= 1.0
    assert lower <= higher + 1e-9


def test_ihilbert_3d_matches_linear_scan(small_volume):
    rng = np.random.default_rng(9)
    ih = IHilbertIndex(small_volume)
    ls = LinearScanIndex(small_volume)
    assert ih.curve.dim == 3
    vr = small_volume.value_range
    for _ in range(15):
        lo = vr.lo + rng.random() * vr.length
        hi = min(vr.hi, lo + rng.random() * 10.0)
        q = ValueQuery(lo, hi)
        a, b = ih.query(q), ls.query(q)
        assert a.candidate_count == b.candidate_count
        assert a.area == pytest.approx(b.area)

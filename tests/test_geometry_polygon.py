"""Unit and property tests for the polygon kernel (estimation substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    clip_halfplane,
    clip_to_value_band,
    polygon_area,
    polygon_centroid,
)

UNIT_SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
TRIANGLE = [(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)]


def test_area_known_shapes():
    assert polygon_area(UNIT_SQUARE) == 1.0
    assert polygon_area(TRIANGLE) == 2.0


def test_area_orientation_independent():
    assert polygon_area(list(reversed(UNIT_SQUARE))) == 1.0


def test_area_degenerate():
    assert polygon_area([]) == 0.0
    assert polygon_area([(0.0, 0.0)]) == 0.0
    assert polygon_area([(0.0, 0.0), (1.0, 1.0)]) == 0.0


def test_centroid_square():
    assert polygon_centroid(UNIT_SQUARE) == pytest.approx((0.5, 0.5))


def test_centroid_degenerate_falls_back_to_vertex_mean():
    assert polygon_centroid([(0.0, 0.0), (2.0, 2.0)]) == (1.0, 1.0)


def test_centroid_empty_rejected():
    with pytest.raises(ValueError):
        polygon_centroid([])


def test_clip_halfplane_keeps_half_square():
    # Keep x <= 0.5, i.e. inside(p) = 0.5 - x >= 0.
    clipped = clip_halfplane(UNIT_SQUARE, lambda p: 0.5 - p[0])
    assert polygon_area(clipped) == pytest.approx(0.5)


def test_clip_halfplane_all_inside():
    clipped = clip_halfplane(UNIT_SQUARE, lambda p: 10.0)
    assert polygon_area(clipped) == pytest.approx(1.0)


def test_clip_halfplane_all_outside():
    assert clip_halfplane(UNIT_SQUARE, lambda p: -1.0) == []


def test_clip_halfplane_empty_input():
    assert clip_halfplane([], lambda p: 1.0) == []


def test_clip_to_value_band_on_linear_field():
    # value(x, y) = x over the unit square; band [0.25, 0.75] keeps the
    # middle vertical strip.
    clipped = clip_to_value_band(UNIT_SQUARE, lambda p: p[0], 0.25, 0.75)
    assert polygon_area(clipped) == pytest.approx(0.5)


def test_clip_to_value_band_degenerate_band():
    # Zero-width band slices a line: zero area.
    clipped = clip_to_value_band(UNIT_SQUARE, lambda p: p[0], 0.5, 0.5)
    assert polygon_area(clipped) == pytest.approx(0.0)


def test_clip_to_value_band_disjoint_band():
    assert clip_to_value_band(UNIT_SQUARE, lambda p: p[0], 2.0, 3.0) == []


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_property_band_partition_covers_square(a, b):
    """Band + its complement halves partition the unit square's area."""
    lo, hi = min(a, b), max(a, b)
    value = lambda p: p[0]     # noqa: E731 - tiny test helper
    below = clip_halfplane(UNIT_SQUARE, lambda p: lo - value(p))
    band = clip_to_value_band(UNIT_SQUARE, value, lo, hi)
    above = clip_halfplane(UNIT_SQUARE, lambda p: value(p) - hi)
    total = polygon_area(below) + polygon_area(band) + polygon_area(above)
    assert total == pytest.approx(1.0, abs=1e-9)


@given(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0), st.floats(-3.0, 3.0))
def test_property_clip_never_grows_area(a, b, c):
    inside = lambda p: a * p[0] + b * p[1] + c   # noqa: E731
    clipped = clip_halfplane(TRIANGLE, inside)
    assert polygon_area(clipped) <= polygon_area(TRIANGLE) + 1e-9

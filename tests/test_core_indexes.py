"""Cross-method equivalence: the heart of the reproduction.

All four access methods must return identical candidate sets and answer
areas for every query — they differ only in I/O pattern.  LinearScan is
the trivially correct reference.
"""

import numpy as np
import pytest

from repro.core import (
    CostBasedGrouping,
    IAllIndex,
    IHilbertIndex,
    IntervalQuadtreeIndex,
    LinearScanIndex,
    ThresholdGrouping,
    ValueQuery,
)
from repro.core.grouped import GroupedIntervalIndex


def brute_candidates(field, lo, hi):
    records = field.cell_records()
    mask = ((records["vmin"].astype(np.float64) <= hi)
            & (records["vmax"].astype(np.float64) >= lo))
    return set(records["cell_id"][mask].tolist())


def random_queries(field, rng, count=25):
    vr = field.value_range
    span = vr.hi - vr.lo
    out = []
    for _ in range(count):
        lo = vr.lo + rng.random() * span
        hi = min(vr.hi, lo + rng.random() * span * 0.2)
        out.append(ValueQuery(lo, hi))
    # Edge queries.
    out.append(ValueQuery(vr.lo, vr.hi))
    out.append(ValueQuery.exact(vr.lo))
    out.append(ValueQuery.exact(vr.hi))
    out.append(ValueQuery((vr.lo + vr.hi) / 2, (vr.lo + vr.hi) / 2))
    return out


def all_methods(field):
    return [
        LinearScanIndex(field),
        IAllIndex(field),
        IHilbertIndex(field),
        IntervalQuadtreeIndex(field),
    ]


@pytest.mark.parametrize("fixture_name",
                         ["smooth_dem", "rough_dem", "mono_dem",
                          "small_tin"])
def test_methods_agree_on_candidates_and_area(fixture_name, request, rng):
    field = request.getfixturevalue(fixture_name)
    methods = all_methods(field)
    for query in random_queries(field, rng):
        expected = brute_candidates(field, query.lo, query.hi)
        areas = set()
        for method in methods:
            result = method.query(query)
            got = set(int(c) for c in
                      method._candidates(query.lo, query.hi)["cell_id"])
            assert got == expected, (method.name, query)
            assert result.candidate_count == len(expected)
            areas.add(round(result.area, 6))
        assert len(areas) == 1, f"area mismatch at {query}: {areas}"


def test_estimate_modes_are_consistent(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    query = ValueQuery(vr.lo + 0.2 * vr.length, vr.lo + 0.4 * vr.length)
    none = index.query(query, estimate="none")
    area = index.query(query, estimate="area")
    regions = index.query(query, estimate="regions")
    assert none.area is None and none.regions is None
    assert area.regions is None
    assert regions.area == pytest.approx(area.area, rel=1e-4, abs=1e-6)
    assert none.candidate_count == area.candidate_count \
        == regions.candidate_count
    assert regions.regions


def test_unknown_estimate_mode_rejected(mono_dem):
    index = LinearScanIndex(mono_dem)
    with pytest.raises(ValueError):
        index.query(ValueQuery(0.0, 1.0), estimate="bogus")


def test_empty_query_result(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    result = index.query(ValueQuery(vr.hi + 10.0, vr.hi + 20.0))
    assert result.candidate_count == 0
    assert result.area == 0.0


def test_full_range_query_selects_everything(mono_dem):
    for method in all_methods(mono_dem):
        vr = mono_dem.value_range
        result = method.query(ValueQuery(vr.lo, vr.hi))
        assert result.candidate_count == mono_dem.num_cells


def test_linearscan_reads_whole_file_every_time(mono_dem):
    index = LinearScanIndex(mono_dem)
    vr = mono_dem.value_range
    for query in (ValueQuery.exact(vr.lo), ValueQuery(vr.lo, vr.hi)):
        index.clear_caches()
        result = index.query(query)
        assert result.io.page_reads == index.data_pages
        assert result.io.random_reads == 1   # one seek, then streaming


def test_ihilbert_reads_fewer_pages_than_scan():
    # Needs enough pages for filtering to pay off; 64x64 smooth terrain.
    from repro.synth import fractal_dem_heights
    from repro.field import DEMField
    field = DEMField(fractal_dem_heights(64, 0.9, seed=3))
    scan = LinearScanIndex(field)
    ih = IHilbertIndex(field)
    vr = field.value_range
    query = ValueQuery.exact((vr.lo + vr.hi) / 2.0)
    scan.clear_caches()
    ih.clear_caches()
    assert ih.query(query).io.page_reads < scan.query(query).io.page_reads


def test_iall_dynamic_insert_matches_bulk(mono_dem, rng):
    bulk = IAllIndex(mono_dem, bulk=True)
    dyn = IAllIndex(mono_dem, bulk=False)
    for query in random_queries(mono_dem, rng, count=8):
        a = set(int(c) for c in
                bulk._candidates(query.lo, query.hi)["cell_id"])
        b = set(int(c) for c in
                dyn._candidates(query.lo, query.hi)["cell_id"])
        assert a == b


def test_ihilbert_curve_variants_agree(smooth_dem, rng):
    reference = LinearScanIndex(smooth_dem)
    variants = [IHilbertIndex(smooth_dem, curve=c)
                for c in ("hilbert", "zorder", "gray")]
    for query in random_queries(smooth_dem, rng, count=6):
        expected = set(int(c) for c in
                       reference._candidates(query.lo, query.hi)["cell_id"])
        for v in variants:
            got = set(int(c) for c in
                      v._candidates(query.lo, query.hi)["cell_id"])
            assert got == expected, v.curve.name


def test_ihilbert_unknown_curve_rejected(mono_dem):
    with pytest.raises(ValueError):
        IHilbertIndex(mono_dem, curve="peano")


def test_ihilbert_custom_grouping(mono_dem):
    tight = IHilbertIndex(
        mono_dem, grouping=CostBasedGrouping(unit=1.0, avg_query=0.0))
    loose = IHilbertIndex(
        mono_dem, grouping=ThresholdGrouping(threshold=1e9))
    assert tight.num_subfields > loose.num_subfields
    assert loose.num_subfields == 1


def test_subfields_tile_the_store(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    expected = 0
    for sf in index.subfields:
        assert sf.ptr_start == expected
        expected = sf.ptr_end + 1
    assert expected == smooth_dem.num_cells


def test_subfield_intervals_cover_member_cells(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    records = smooth_dem.cell_records()
    stored = records[index.order]
    for sf in index.subfields[:50]:
        block = stored[sf.ptr_start:sf.ptr_end + 1]
        assert float(block["vmin"].min()) == pytest.approx(sf.lo)
        assert float(block["vmax"].max()) == pytest.approx(sf.hi)


def test_describe_reports_structure(smooth_dem):
    info = IHilbertIndex(smooth_dem).describe()
    assert info["method"] == "I-Hilbert"
    assert info["cells"] == smooth_dem.num_cells
    assert info["subfields"] >= 1
    assert info["curve"] == "hilbert"
    assert info["grouping"] == "CostBasedGrouping"
    scan_info = LinearScanIndex(smooth_dem).describe()
    assert scan_info["index_pages"] == 0


def test_iquadtree_threshold_validation(mono_dem):
    with pytest.raises(ValueError):
        IntervalQuadtreeIndex(mono_dem, threshold=-1.0)


def test_iquadtree_tighter_threshold_more_subfields(smooth_dem):
    span = smooth_dem.value_range.length
    loose = IntervalQuadtreeIndex(smooth_dem, threshold=0.5 * span)
    tight = IntervalQuadtreeIndex(smooth_dem, threshold=0.05 * span)
    assert tight.num_subfields > loose.num_subfields


def test_grouped_index_validates_groups(mono_dem):
    n = mono_dem.num_cells
    order = np.arange(n)
    with pytest.raises(ValueError):
        GroupedIntervalIndex(mono_dem, order[:-1], [(0, n - 2)])
    with pytest.raises(ValueError):
        GroupedIntervalIndex(mono_dem, order, [(0, n - 2)])
    with pytest.raises(ValueError):
        GroupedIntervalIndex(mono_dem, order, [(1, n - 1)])
    with pytest.raises(ValueError):
        GroupedIntervalIndex(mono_dem, order, [(0, n - 1), (n, n)])


def test_io_accounting_is_per_query(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    vr = smooth_dem.value_range
    r1 = index.query(ValueQuery.exact((vr.lo + vr.hi) / 2))
    r2 = index.query(ValueQuery.exact((vr.lo + vr.hi) / 2))
    # Same query, cold both times: identical I/O deltas.
    index.clear_caches()
    r3 = index.query(ValueQuery.exact((vr.lo + vr.hi) / 2))
    assert r1.io.page_reads == r3.io.page_reads
    assert r2.io.page_reads == r1.io.page_reads

"""Tests for EXPLAIN (ANALYZE): report contents, planner estimation
error bounds, and the CLI subcommand."""

import json

import numpy as np
import pytest

from repro.core import (
    IHilbertIndex,
    PlannedIndex,
    load_index,
    save_index,
)
from repro.obs.explain import explain, explain_to_dict, render_explain


def _interval(field, frac_lo, frac_w):
    vr = field.value_range
    span = vr.hi - vr.lo
    lo = vr.lo + frac_lo * span
    return lo, lo + frac_w * span


QUERY_SHAPES = [(0.1, 0.2), (0.3, 0.3), (0.5, 0.1), (0.2, 0.5),
                (0.05, 0.8)]


# -- report contents ---------------------------------------------------------

def test_explain_without_analyze_runs_no_query(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    lo, hi = _interval(smooth_dem, 0.3, 0.3)
    report = explain(index, lo, hi)
    assert not report.analyzed
    assert report.actual_io is None
    assert report.trace_roots == []
    assert report.method == "I-Hilbert"
    assert report.executed_path == "filtered"
    assert report.est_page_reads >= 1
    assert 0.0 < report.est_selectivity < 1.0
    assert report.page_error is None and report.candidate_error is None


def test_explain_charges_no_accounted_io(smooth_dem):
    """The metadata scan behind FieldStatistics must not leak into the
    index's shared I/O counters."""
    index = IHilbertIndex(smooth_dem)
    index.stats.reset()
    lo, hi = _interval(smooth_dem, 0.3, 0.3)
    explain(index, lo, hi)
    assert index.stats.page_reads == 0
    assert index.stats.cache_hits == 0


def test_analyze_reports_actuals_and_trace(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    lo, hi = _interval(smooth_dem, 0.3, 0.3)
    report = explain(index, lo, hi, analyze=True)
    assert report.analyzed
    assert report.actual_io.page_reads > 0
    assert report.actual_candidates > 0
    assert report.actual_seconds > 0
    assert report.trace_roots and report.trace_roots[0].name == "query"
    # The tracer explain installs is temporary.
    from repro.obs.trace import NULL_TRACER
    assert index.tracer is NULL_TRACER


def test_explain_on_reloaded_index(smooth_dem, tmp_path):
    """A persisted index has no in-memory field; statistics come from a
    rolled-back metadata scan and the report still analyzes cleanly."""
    save_index(IHilbertIndex(smooth_dem), tmp_path / "idx")
    index = load_index(tmp_path / "idx")
    assert index.field is None
    lo, hi = _interval_from_store(index, 0.3, 0.3)
    report = explain(index, lo, hi, analyze=True)
    assert report.analyzed
    assert report.actual_candidates > 0
    assert report.candidate_error == pytest.approx(0.0, abs=0.15)


def _interval_from_store(index, frac_lo, frac_w):
    vmins = np.concatenate([p["vmin"].astype(np.float64)
                            for p in index.store.scan()])
    index.stats.reset()
    index.clear_caches()
    lo_all, hi_all = vmins.min(), vmins.max()
    span = hi_all - lo_all
    lo = lo_all + frac_lo * span
    return lo, lo + frac_w * span


def test_planned_index_executed_path_matches_plan(smooth_dem):
    index = PlannedIndex(smooth_dem)
    vr = smooth_dem.value_range
    # Near-total interval: the planner picks the sequential sweep.
    report = explain(index, vr.lo, vr.hi, analyze=True)
    assert report.plan.path == "scan"
    assert report.executed_path == "scan"
    assert report.actual_io.sequential_reads >= report.actual_io.random_reads


# -- estimation error (the planner-trust satellite) --------------------------

@pytest.mark.parametrize("shape", QUERY_SHAPES)
def test_candidate_estimate_bounded_fractal(smooth_dem, rough_dem, shape):
    """FieldStatistics selectivity stays within 10% of the exact
    candidate count on fractal fields, smooth and rough."""
    for field in (smooth_dem, rough_dem):
        index = IHilbertIndex(field)
        lo, hi = _interval(field, *shape)
        report = explain(index, lo, hi, analyze=True)
        assert report.actual_candidates > 0
        assert abs(report.candidate_error) <= 0.10


@pytest.mark.parametrize("shape", QUERY_SHAPES)
def test_candidate_estimate_bounded_monotonic(mono_dem, shape):
    """On the 256-cell monotonic ramp each histogram bin holds few
    cells, so the bound is looser but still must hold."""
    index = IHilbertIndex(mono_dem)
    lo, hi = _interval(mono_dem, *shape)
    report = explain(index, lo, hi, analyze=True)
    assert report.actual_candidates > 0
    assert abs(report.candidate_error) <= 0.25


@pytest.mark.parametrize("shape", QUERY_SHAPES)
def test_page_estimate_exact_for_grouped_index(smooth_dem, shape):
    """The plan's page estimate comes from the real subfield metadata,
    so for the executed filtered path it is exact."""
    index = IHilbertIndex(smooth_dem)
    lo, hi = _interval(smooth_dem, *shape)
    report = explain(index, lo, hi, analyze=True)
    assert report.page_error == 0.0


# -- rendering and JSON ------------------------------------------------------

def test_render_explain_text(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    lo, hi = _interval(smooth_dem, 0.3, 0.3)
    text = render_explain(explain(index, lo, hi, analyze=True))
    assert text.startswith("EXPLAIN ANALYZE value query")
    assert "filtered: cost=" in text
    assert "scan:     cost=" in text
    assert "chosen path:" in text
    assert "estimation error:" in text
    assert "trace:" in text


def test_explain_to_dict_json_safe(smooth_dem):
    index = IHilbertIndex(smooth_dem)
    lo, hi = _interval(smooth_dem, 0.3, 0.3)
    payload = explain_to_dict(explain(index, lo, hi, analyze=True))
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["analyzed"] is True
    assert round_tripped["plan"]["path"] in ("filtered", "scan")
    assert round_tripped["actual"]["page_reads"] > 0
    assert round_tripped["error"]["pages"] is not None


# -- CLI ---------------------------------------------------------------------

@pytest.fixture
def cli_index(tmp_path):
    from repro.cli import main
    from repro.synth import roseburg_like_heights

    heights = tmp_path / "terrain.npy"
    np.save(heights, roseburg_like_heights(cells_per_side=32))
    index_dir = tmp_path / "idx"
    assert main(["build", str(heights), str(index_dir)]) == 0
    return index_dir


def test_cli_explain(cli_index, capsys):
    from repro.cli import main

    capsys.readouterr()
    assert main(["explain", str(cli_index), "250", "300"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("EXPLAIN value query [250, 300]")
    assert "chosen path:" in out
    assert "actual:" not in out


def test_cli_explain_analyze(cli_index, capsys):
    from repro.cli import main

    capsys.readouterr()
    assert main(["explain", str(cli_index), "250", "300",
                 "--analyze"]) == 0
    out = capsys.readouterr().out
    assert "EXPLAIN ANALYZE" in out
    assert "page reads:" in out
    assert "estimation error:" in out
    assert "pages:      estimated" in out


def test_cli_explain_json_and_trace(cli_index, tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "explain-trace.json"
    capsys.readouterr()
    assert main(["explain", str(cli_index), "250", "300", "--analyze",
                 "--json", "--trace", str(trace_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["analyzed"] is True
    assert payload["actual"]["candidates"] > 0

    doc = json.loads(trace_path.read_text())
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert (sum(e["args"]["page_reads_self"] for e in events)
            == payload["actual"]["page_reads"])

"""Unit and property tests for the Bowyer–Watson triangulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import ConvexHull, Delaunay as ScipyDelaunay

from repro.field import triangulate
from repro.field.delaunay import _in_circumcircle


def hull_area(points):
    return ConvexHull(points).volume


def triangulation_area(points, triangles):
    total = 0.0
    for a, b, c in triangles:
        (x0, y0), (x1, y1), (x2, y2) = points[a], points[b], points[c]
        total += abs((x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)) / 2.0
    return total


def assert_delaunay(points, triangles):
    """No input point lies strictly inside any triangle's circumcircle."""
    pts = [tuple(p) for p in points]
    for tri in triangles:
        for k, p in enumerate(pts):
            if k in tri:
                continue
            assert not _in_circumcircle(pts, tuple(tri), p[0], p[1]), \
                f"point {k} inside circumcircle of {tri}"


def test_single_triangle():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    triangles = triangulate(points)
    assert len(triangles) == 1
    assert set(triangles[0]) == {0, 1, 2}


def test_square_two_triangles():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    triangles = triangulate(points)
    assert len(triangles) == 2
    assert triangulation_area(points, triangles) == pytest.approx(1.0)


def test_ccw_orientation():
    rng = np.random.default_rng(0)
    points = rng.random((30, 2))
    for a, b, c in triangulate(points):
        (x0, y0), (x1, y1), (x2, y2) = points[a], points[b], points[c]
        cross = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
        assert cross > 0.0


def test_input_validation():
    with pytest.raises(ValueError):
        triangulate(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        triangulate(np.zeros((5, 3)))
    with pytest.raises(ValueError):
        triangulate(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]))


def test_random_sets_are_delaunay_and_cover_hull():
    rng = np.random.default_rng(1)
    for trial in range(3):
        points = rng.random((60, 2)) * 100.0
        triangles = triangulate(points)
        assert_delaunay(points, triangles)
        assert triangulation_area(points, triangles) == \
            pytest.approx(hull_area(points), rel=1e-9)


def test_triangle_count_matches_scipy():
    """Euler's formula fixes the triangle count for points in general
    position, so our count must equal scipy's."""
    rng = np.random.default_rng(2)
    points = rng.random((200, 2)) * 10.0
    ours = triangulate(points)
    scipy_tris = ScipyDelaunay(points).simplices
    assert len(ours) == len(scipy_tris)


def test_grid_points_cover_area():
    # Cocircular degeneracies: the triangulation is still valid.
    xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
    points = np.column_stack([xs.ravel(), ys.ravel()])
    triangles = triangulate(points)
    assert triangulation_area(points, triangles) == pytest.approx(16.0)
    assert len(triangles) == 32


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(10, 60))
def test_property_delaunay_empty_circumcircles(seed, n):
    rng = np.random.default_rng(seed)
    points = rng.random((n, 2)) * 50.0
    triangles = triangulate(points)
    assert_delaunay(points, triangles)
    assert triangulation_area(points, triangles) == \
        pytest.approx(hull_area(points), rel=1e-7)

"""Cross-shard equivalence matrix: sharding must never change an answer.

The contract, pinned over the Fig. 8a workload for shards 1/2/4/8 ×
{LinearScan, I-Hilbert, I-All} × {list, mmap}:

* **answers byte-identical** — the gathered candidate array (records
  and order) and the estimated area are bit-equal to the unsharded
  access method's, query by query;
* **data-page reads identical** — for LinearScan and I-Hilbert the
  per-query data-page read count equals the unsharded engine's (the
  sharded I-Hilbert inherits the *global* §3.1.2 grouping, clipped at
  page-aligned cuts, so it touches exactly the unsharded page set);
  for I-All — whose unsharded store is cell-ordered while shards are
  Hilbert-clustered — the read count is invariant across shard counts
  (every N-shard layout slices the same 1-shard clustered file at page
  boundaries);
* **fault schedules equivalent** — corrupting the page that holds a
  given run of the global Hilbert order produces the same degraded
  answer (same surviving candidates, same skipped cells) sharded or
  not, and a skip-mode fault in one shard never poisons the gather.

Per-shard index (R*-tree) page reads are *not* pinned: N small trees
are physically different structures from one big tree; the filtering
step's data I/O is the quantity the paper's cost model predicts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (BatchQueryEngine, IAllIndex, IHilbertIndex,
                        LinearScanIndex, ParallelQueryEngine, ValueQuery)
from repro.core.batch import run_sequential
from repro.shard import ShardedEngine
from repro.storage import CorruptPageError, PAGE_HEADER_SIZE
from repro.synth import roseburg_like
from repro.synth.queries import value_query_workload

METHODS = {
    "LinearScan": LinearScanIndex,
    "I-All": IAllIndex,
    "I-Hilbert": IHilbertIndex,
}
BACKENDS = ["list", "mmap"]
SHARD_COUNTS = [1, 2, 4, 8]
#: Fig. 8a query-interval fractions (subset keeps the matrix fast).
QINTERVALS = [0.0, 0.04, 0.10]


@pytest.fixture(scope="module")
def field():
    return roseburg_like(cells_per_side=24)


@pytest.fixture(scope="module")
def workload(field):
    queries = []
    for q in QINTERVALS:
        queries.extend(
            value_query_workload(field.value_range, q, 3, seed=8))
    return queries


def run_queries(index, workload):
    """(candidate bytes, area, data-page reads) per query, caches cold.

    Data-page reads are the store pool's miss delta: with
    ``cache_pages=0`` every data-page access is a miss, and tree reads
    go through a different pool.
    """
    pools = ([rt.index.store.pool for rt in index.shards]
             if isinstance(index, ShardedEngine) else [index.store.pool])
    out = []
    for query in workload:
        before = sum(p.counters().misses for p in pools)
        result = index.query(query)
        reads = sum(p.counters().misses for p in pools) - before
        candidates = index._candidates(query.lo, query.hi)
        out.append((np.asarray(candidates).tobytes(), result.area, reads))
        index.clear_caches()
    return out


@pytest.fixture(scope="module")
def baselines(field, workload):
    """Unsharded runs, and the 1-shard I-All run (its clustered
    baseline), per (method, backend)."""
    runs = {}
    for method, cls in METHODS.items():
        for backend in BACKENDS:
            index = cls(field, cache_pages=0, disk_backend=backend)
            runs[method, backend] = run_queries(index, workload)
            if method == "I-All":
                one = ShardedEngine(field, n_shards=1, method=method,
                                    cache_pages=0, disk_backend=backend)
                runs["I-All-1shard", backend] = run_queries(one, workload)
    return runs


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", sorted(METHODS))
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_matrix_answers_and_page_reads(field, workload, baselines,
                                       n_shards, method, backend):
    engine = ShardedEngine(field, n_shards=n_shards, method=method,
                           cache_pages=0, disk_backend=backend)
    got = run_queries(engine, workload)
    ref = baselines[method, backend]
    for i, ((rb, ra, rr), (gb, ga, gr)) in enumerate(zip(ref, got)):
        assert gb == rb, f"query {i}: candidate bytes differ"
        assert ga == ra, f"query {i}: area {ga} != {ra}"
        if method in ("LinearScan", "I-Hilbert"):
            assert gr == rr, f"query {i}: data reads {gr} != {rr}"
    if method == "I-All":
        # Invariant across shard counts: every layout slices the same
        # clustered file at page boundaries.
        one = baselines["I-All-1shard", backend]
        assert [g[2] for g in got] == [o[2] for o in one]


def test_requested_shards_may_collapse_never_exceed(field):
    for n in SHARD_COUNTS:
        engine = ShardedEngine(field, n_shards=n, method="LinearScan")
        assert 1 <= engine.shard_map.num_shards <= n


# -- fault-schedule equivalence ----------------------------------------------

def _flip_global_position(index, position, quantum):
    """Corrupt the stored page holding global Hilbert position ``position``
    (unsharded grouped index or sharded engine alike)."""
    if isinstance(index, ShardedEngine):
        for rt in index.shards:
            if rt.spec.start <= position < rt.spec.stop:
                page = (position - rt.spec.start) // quantum
                rt.index.data_disk._flip_bit(page, PAGE_HEADER_SIZE + 1, 3)
                return page
        raise AssertionError("position not owned by any shard")
    index.data_disk._flip_bit(position // quantum, PAGE_HEADER_SIZE + 1, 3)
    return position // quantum


@pytest.mark.parametrize("n_shards", [2, 4])
def test_fault_schedule_equivalence(field, n_shards):
    """Corrupting the same global run of cells degrades the sharded and
    unsharded engines identically: same surviving candidates, same
    skipped cells, one reported fault."""
    base = IHilbertIndex(field, cache_pages=0)
    engine = ShardedEngine(field, n_shards=n_shards, method="I-Hilbert",
                           cache_pages=0)
    quantum = engine.shard_map.page_quantum
    position = engine.shard_map.shards[-1].start  # first cell of last shard
    _flip_global_position(base, position, quantum)
    _flip_global_position(engine, position, quantum)

    vr = field.value_range
    query = ValueQuery(vr.lo, vr.hi)   # full range: touches every page
    with pytest.raises(CorruptPageError):
        base.query(query)
    with pytest.raises(CorruptPageError):
        engine.query(query)

    rb = base.query(query, on_fault="skip")
    rs = engine.query(query, on_fault="skip")
    assert rb.degraded and rs.degraded
    assert len(rb.faults) == len(rs.faults) == 1
    assert rb.candidate_count == rs.candidate_count
    assert rb.area == rs.area
    base._fault_mode = engine._fault_mode = "skip"
    try:
        cb = base._candidates(query.lo, query.hi)
        cs = engine._candidates(query.lo, query.hi)
    finally:
        base._fault_mode = engine._fault_mode = "raise"
    assert sorted(cb["cell_id"]) == sorted(cs["cell_id"])


def test_skip_mode_degrades_one_shard_without_poisoning_gather(field):
    engine = ShardedEngine(field, n_shards=4, method="I-Hilbert",
                           cache_pages=0)
    victim = engine.shards[1]
    victim.index.data_disk._flip_bit(0, PAGE_HEADER_SIZE + 1, 3)
    vr = field.value_range
    result = engine.query(ValueQuery(vr.lo, vr.hi), on_fault="skip")
    assert result.degraded
    assert len(result.faults) == 1
    # Every cell of every healthy shard is still in the answer.
    engine._fault_mode = "skip"
    try:
        survivors = set(
            engine._candidates(vr.lo, vr.hi)["cell_id"].tolist())
    finally:
        engine._fault_mode = "raise"
    for rt in engine.shards:
        if rt is victim:
            continue
        assert set(rt.index.store.read_range(
            0, len(rt.index.store) - 1)["cell_id"].tolist()) <= survivors
    # The skipped cells are exactly the victim's corrupted page.
    missing = set(range(field.num_cells)) - survivors
    assert len(missing) == min(engine.shard_map.page_quantum,
                               victim.spec.num_cells)


# -- execution engines over the coordinator ----------------------------------

def test_batch_and_parallel_engines_match_sequential(field, workload):
    base = IHilbertIndex(field, cache_pages=0)
    ref = [(r.candidate_count, r.area)
           for r in run_sequential(base, workload).results]
    engine = ShardedEngine(field, n_shards=3, method="I-Hilbert",
                           cache_pages=0)
    for cls in (BatchQueryEngine, ParallelQueryEngine):
        res = cls(engine, cache_pages=8).run(workload)
        assert [(r.candidate_count, r.area) for r in res.results] == ref


def test_multiprocessing_workers_match_in_process(field, workload):
    engine = ShardedEngine(field, n_shards=4, method="I-Hilbert",
                           cache_pages=0)
    expected = [engine.query(q) for q in workload]
    with engine.workers():
        got = [engine.query(q) for q in workload]
        with pytest.raises(Exception):
            engine.update_cells([0], field.cell_records()[:1])
    for e, g in zip(expected, got):
        assert g.candidate_count == e.candidate_count
        assert g.area == e.area
        assert g.io.page_reads == e.io.page_reads
    # Per-shard deltas stream back and sum to the coordinator total.
    assert len(engine.last_shard_io) == len(engine.shards)
    assert sum(d.page_reads for d in engine.last_shard_io) == \
        got[-1].io.page_reads


# -- updates -----------------------------------------------------------------

def test_updates_preserve_equivalence(field, workload, rng):
    base = IHilbertIndex(field, cache_pages=0)
    engine = ShardedEngine(field, n_shards=4, method="I-Hilbert",
                           cache_pages=0)
    ids = rng.choice(field.num_cells, size=60, replace=False)
    records = field.cell_records()[ids].copy()
    records["vmin"] -= 2.0
    records["vmax"] += 3.0
    base.update_cells(ids, records)
    engine.update_cells(ids, records)
    for query in workload:
        rb, rs = base.query(query), engine.query(query)
        assert rs.candidate_count == rb.candidate_count
        assert rs.area == rb.area
    cb = base._candidates(workload[0].lo, workload[0].hi)
    cs = engine._candidates(workload[0].lo, workload[0].hi)
    assert np.array_equal(np.sort(cb, order="cell_id"),
                          np.sort(cs, order="cell_id"))


def test_updates_are_walled_per_shard(field, tmp_path, rng):
    engine = ShardedEngine(field, n_shards=3, method="I-Hilbert",
                           cache_pages=0)
    wals = engine.attach_wal(tmp_path)
    assert len(wals) == 3
    ids = rng.choice(field.num_cells, size=30, replace=False)
    records = field.cell_records()[ids].copy()
    records["vmax"] += 1.0
    engine.update_cells(ids, records)
    # Each owning shard logged its sub-batch; files exist on disk.
    assert sorted(p.name for p in tmp_path.iterdir()) == \
        [f"{rt.name}.wal" for rt in engine.shards]
    logged = sum(len(batch.cell_ids) for rt in engine.shards
                 for batch in (rt.index.wal.pending or []))
    assert logged == len(ids)


# -- rebalance + persistence keep answers ------------------------------------

def test_rebalance_and_reload_preserve_answers(field, workload, tmp_path):
    engine = ShardedEngine(field, n_shards=2, method="I-Hilbert",
                           cache_pages=0, map_dir=tmp_path / "map")
    ref = [(engine.query(q).candidate_count, engine.query(q).area)
           for q in workload]
    summary = engine.rebalance(max_cells=len(field.cell_records()) // 3)
    assert summary["splits"] >= 1
    assert [(engine.query(q).candidate_count, engine.query(q).area)
            for q in workload] == ref
    engine.save(tmp_path / "saved")
    loaded = ShardedEngine.load(tmp_path / "saved", field=field)
    assert [(loaded.query(q).candidate_count, loaded.query(q).area)
            for q in workload] == ref

"""Property tests for the shard map (Hypothesis).

Invariants pinned here:

* every Hilbert key in the key space is assigned to **exactly one**
  shard, and the assignment agrees with the per-shard key bounds;
* the cuts are contiguous: shard key ranges are non-empty, half-open,
  ascending, and cover ``[0, key_space)`` with no gaps or overlaps —
  likewise the position slices tile ``[0, n_cells)``;
* cuts are page-aligned and never fall inside a run of equal keys, so
  a key's cells can never straddle two shards;
* ``split`` / ``merge`` round-trips preserve all of the above and
  ``merge(split(m)) == m``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.shard import (ShardMap, ShardMapError, aligned_cut,
                         build_shard_map)

KEY_SPACE = 256


@st.composite
def sorted_keys(draw, max_cells=120):
    """An ascending multiset of Hilbert keys (ties allowed)."""
    n = draw(st.integers(min_value=1, max_value=max_cells))
    keys = draw(st.lists(st.integers(min_value=0, max_value=KEY_SPACE - 1),
                         min_size=n, max_size=n))
    return np.sort(np.asarray(keys, dtype=np.int64))


@st.composite
def built_map(draw):
    keys = draw(sorted_keys())
    n_shards = draw(st.integers(min_value=1, max_value=8))
    quantum = draw(st.sampled_from([1, 2, 3, 5, 8]))
    smap = build_shard_map(keys, n_shards, KEY_SPACE,
                           curve_name="hilbert", curve_order=4, dim=2,
                           page_quantum=quantum)
    return keys, n_shards, smap


def assert_invariants(smap: ShardMap, keys: np.ndarray) -> None:
    shards = smap.shards
    # Dense ids, contiguous keyspace cover, contiguous position tiling.
    assert [s.shard_id for s in shards] == list(range(len(shards)))
    assert shards[0].key_lo == 0
    assert shards[-1].key_hi == smap.key_space
    assert shards[0].start == 0
    assert shards[-1].stop == smap.n_cells
    for left, right in zip(shards, shards[1:]):
        assert left.key_hi == right.key_lo
        assert left.stop == right.start
    for s in shards:
        assert s.key_lo < s.key_hi
        assert s.start < s.stop
        # Owned keys lie inside the shard's key bounds.
        owned = keys[s.start:s.stop]
        assert owned.min() >= s.key_lo
        assert owned.max() < s.key_hi
    # Interior cuts are page-aligned and never split a key run.
    for s in shards[:-1]:
        assert s.stop % smap.page_quantum == 0
        assert keys[s.stop - 1] < keys[s.stop]


@given(built_map())
@settings(max_examples=200, deadline=None)
def test_build_invariants(data):
    keys, n_shards, smap = data
    assert 1 <= smap.num_shards <= n_shards
    assert smap.n_cells == len(keys)
    assert_invariants(smap, keys)


@given(built_map())
@settings(max_examples=200, deadline=None)
def test_every_key_in_exactly_one_shard(data):
    keys, _, smap = data
    domain = np.arange(KEY_SPACE, dtype=np.int64)
    owners = smap.assign(domain)
    # Exactly one shard per key, and it is the bounds-owning shard.
    assert owners.min() >= 0 and owners.max() < smap.num_shards
    for s in smap.shards:
        mask = owners == s.shard_id
        assert np.array_equal(np.flatnonzero(mask),
                              np.arange(s.key_lo, s.key_hi))
    # Position assignment agrees with key assignment for owned cells.
    positions = np.arange(smap.n_cells, dtype=np.int64)
    assert np.array_equal(smap.assign_positions(positions),
                          smap.assign(keys))


@given(built_map(), st.data())
@settings(max_examples=150, deadline=None)
def test_split_merge_roundtrip(data, draw):
    keys, _, smap = data
    # Pick a shard with an interior aligned cut, if any exists.
    candidates = []
    for s in smap.shards:
        local = keys[s.start:s.stop]
        cut = aligned_cut(local, len(local) // 2, smap.page_quantum)
        if cut is not None:
            candidates.append((s, cut))
    if not candidates:
        return
    shard, cut = draw.draw(st.sampled_from(candidates))
    position = shard.start + cut
    split = smap.split(shard.shard_id, position, int(keys[position]))
    assert split.num_shards == smap.num_shards + 1
    assert_invariants(split, keys)
    merged = split.merge(shard.shard_id)
    assert merged.to_dict() == smap.to_dict()


@given(sorted_keys(), st.integers(min_value=0, max_value=130),
       st.sampled_from([1, 2, 3, 5]))
@settings(max_examples=200, deadline=None)
def test_aligned_cut_contract(keys, position, quantum):
    cut = aligned_cut(keys, position, quantum)
    if cut is None:
        return
    assert 0 < cut < len(keys)
    assert cut % quantum == 0
    assert cut >= min(position, len(keys))
    assert keys[cut - 1] < keys[cut]


def test_validate_rejects_gap():
    smap = build_shard_map(np.array([0, 1, 2, 3], dtype=np.int64), 2, 8,
                           curve_name="hilbert", curve_order=2, dim=2)
    if smap.num_shards < 2:
        pytest.skip("keys collapsed to one shard")
    broken = smap.to_dict()
    broken["shards"][0]["key_hi"] -= 1    # gap between shard 0 and 1
    with pytest.raises(ShardMapError):
        ShardMap.from_dict(broken)


def test_roundtrip_serialization():
    smap = build_shard_map(np.arange(16, dtype=np.int64), 4, 16,
                           curve_name="hilbert", curve_order=2, dim=2,
                           page_quantum=2)
    assert ShardMap.from_dict(smap.to_dict()).to_dict() == smap.to_dict()

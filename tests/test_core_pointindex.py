"""Unit tests for conventional (Q1) point queries via the spatial index."""

import numpy as np
import pytest

from repro.core import PointIndex


def test_matches_field_interpolation_on_dem(smooth_dem, rng):
    index = PointIndex(smooth_dem)
    xmin, ymin, xmax, ymax = smooth_dem.bounds
    for _ in range(40):
        x = xmin + rng.random() * (xmax - xmin)
        y = ymin + rng.random() * (ymax - ymin)
        got = index.value_at(x, y)
        assert got is not None
        assert got == pytest.approx(smooth_dem.value_at(x, y), abs=1e-4)


def test_matches_field_interpolation_on_tin(small_tin, rng):
    index = PointIndex(small_tin)
    for _ in range(30):
        # Sample near triangle centroids to stay inside the hull.
        cell = int(rng.integers(0, small_tin.num_cells))
        cx, cy = small_tin.cell_centroids()[cell]
        got = index.value_at(float(cx), float(cy))
        assert got is not None
        assert got == pytest.approx(small_tin.value_at(float(cx),
                                                       float(cy)),
                                    abs=1e-3)


def test_outside_domain_returns_none(smooth_dem):
    index = PointIndex(smooth_dem)
    assert index.value_at(-5.0, -5.0) is None
    assert index.value_at(1e6, 1e6) is None


def test_vertex_values_reproduced(paper_dem):
    index = PointIndex(paper_dem)
    assert index.value_at(0.0, 0.0) == pytest.approx(40.0, abs=1e-4)
    assert index.value_at(3.0, 3.0) == pytest.approx(88.0, abs=1e-4)


def test_query_charges_io(paper_dem):
    index = PointIndex(paper_dem)
    before = index.stats.snapshot()
    index.value_at(1.5, 1.5)
    delta = index.stats.diff(before)
    assert delta.page_reads >= 2    # at least tree root + cell page


def test_clear_caches(paper_dem):
    index = PointIndex(paper_dem)
    index.value_at(1.5, 1.5)
    index.clear_caches()
    before = index.stats.snapshot()
    index.value_at(1.5, 1.5)
    assert index.stats.diff(before).page_reads >= 2


def test_dem_with_cell_size(rng):
    from repro.field import DEMField
    heights = np.arange(16, dtype=float).reshape(4, 4)
    field = DEMField(heights, cell_size=100.0)
    index = PointIndex(field)
    assert index.value_at(150.0, 150.0) == \
        pytest.approx(field.value_at(150.0, 150.0), abs=1e-4)

"""Tests for the experiment harness, reporting and CLI."""

import pytest

from repro.bench import format_result, run_experiment, standard_methods
from repro.bench.experiments import EXPERIMENTS, fig7, fig10
from repro.bench.__main__ import main as bench_main
from repro.field import DEMField
from repro.synth import fractal_dem_heights


@pytest.fixture(scope="module")
def tiny_result():
    field = DEMField(fractal_dem_heights(16, 0.8, seed=5))
    return run_experiment("tiny", field, standard_methods(),
                          qintervals=[0.0, 0.05], queries=5)


def test_result_structure(tiny_result):
    assert tiny_result.name == "tiny"
    assert tiny_result.field_info["cells"] == 256
    assert [s.method for s in tiny_result.series] == \
        ["LinearScan", "I-All", "I-Hilbert"]
    for series in tiny_result.series:
        assert series.build_seconds >= 0.0
        assert len(series.points) == 2
        for point in series.points:
            assert point.queries == 5
            assert point.mean_ms >= point.mean_disk_ms
            assert point.mean_pages > 0
            assert point.mean_candidates >= 0


def test_workload_identical_across_methods(tiny_result):
    """Same seeded queries => identical candidate counts per method."""
    counts = {s.method: [p.mean_candidates for p in s.points]
              for s in tiny_result.series}
    reference = counts.pop("LinearScan")
    for method, values in counts.items():
        assert values == pytest.approx(reference), method


def test_areas_identical_across_methods(tiny_result):
    areas = [[p.mean_area for p in s.points] for s in tiny_result.series]
    for other in areas[1:]:
        assert other == pytest.approx(areas[0])


def test_series_accessors(tiny_result):
    series = tiny_result.series_for("I-Hilbert")
    assert series.method == "I-Hilbert"
    point = series.point(0.05)
    assert point.qinterval == 0.05
    with pytest.raises(KeyError):
        tiny_result.series_for("nope")
    with pytest.raises(KeyError):
        series.point(0.33)


def test_speedup_rows(tiny_result):
    speedups = tiny_result.speedup("I-Hilbert")
    assert len(speedups) == 2
    assert all(s > 0 for s in speedups)


def test_linearscan_disk_time_flat(tiny_result):
    points = tiny_result.series_for("LinearScan").points
    assert points[0].mean_disk_ms == pytest.approx(points[1].mean_disk_ms)


def test_format_result_contains_tables(tiny_result):
    text = format_result(tiny_result)
    assert "== tiny ==" in text
    assert "LinearScan" in text and "I-Hilbert" in text
    assert "speedup vs LinearScan" in text
    assert "mean page reads" in text


def test_warm_regime_hits_cache():
    field = DEMField(fractal_dem_heights(16, 0.8, seed=5))
    result = run_experiment(
        "warm", field,
        {"LinearScan": lambda f: standard_methods(cache_pages=4096)[
            "LinearScan"](f)},
        qintervals=[0.0], queries=4, cold=False)
    point = result.series[0].points[0]
    assert point.mean_disk_ms == 0.0          # fully cached
    assert point.mean_cache_hits > 0


def test_estimate_none_mode():
    field = DEMField(fractal_dem_heights(16, 0.8, seed=5))
    result = run_experiment("noest", field, standard_methods(),
                            qintervals=[0.0], queries=3, estimate="none")
    for series in result.series:
        assert series.points[0].mean_area == 0.0


def test_registry_contains_every_paper_figure():
    assert {"fig8a", "fig8b", "fig11", "fig12", "fig7", "fig10",
            "ablation-cost", "ablation-curve"} <= set(EXPERIMENTS)


def test_fig7_output():
    text = fig7(full=False, seed=0)
    assert "subfields" in text
    assert "compression vs I-All" in text


def test_fig10_output():
    text = fig10(seed=0)
    assert "H=0.2" in text and "H=0.8" in text


def test_cli_runs_fig10(capsys):
    assert bench_main(["fig10"]) == 0
    out = capsys.readouterr().out
    assert "fractal roughness" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        bench_main(["nonsense"])


def test_cli_rejects_full_and_small():
    with pytest.raises(SystemExit):
        bench_main(["fig10", "--full", "--small"])

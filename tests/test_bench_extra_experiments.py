"""Tests for the additional experiments (page size, scale, extra methods)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_pagesize,
    methods_extra,
    scale_sweep,
)


def test_registry_contains_extras():
    assert {"ablation-pagesize", "scale", "methods-extra"} <= \
        set(EXPERIMENTS)


def test_pagesize_sweep_structure():
    results = ablation_pagesize(queries=3)
    assert len(results) == 3
    # More pages at smaller page sizes, same candidates everywhere.
    scan_pages = [r.series_for("LinearScan").points[0].mean_pages
                  for r in results]
    assert scan_pages[0] > scan_pages[1] > scan_pages[2]
    candidates = [r.series_for("LinearScan").points[0].mean_candidates
                  for r in results]
    assert candidates[0] == pytest.approx(candidates[1])
    assert candidates[1] == pytest.approx(candidates[2])


def test_scale_sweep_structure():
    results = scale_sweep(queries=2)
    assert len(results) == 4
    cells = [r.field_info["cells"] for r in results]
    assert cells == sorted(cells)
    # LinearScan cost grows with the field.
    scan_ms = [r.series_for("LinearScan").points[0].mean_disk_ms
               for r in results]
    assert scan_ms == sorted(scan_ms)


def test_methods_extra_runs_all_six():
    result = methods_extra(queries=2)
    methods = {s.method for s in result.series}
    assert methods == {"LinearScan", "I-All", "I-Hilbert", "I-Quadtree",
                       "I-Tree", "IH+planner"}
    # Identical workloads: every method sees the same candidates.
    counts = {s.method: [p.mean_candidates for p in s.points]
              for s in result.series}
    reference = counts.pop("LinearScan")
    for method, values in counts.items():
        assert values == pytest.approx(reference), method

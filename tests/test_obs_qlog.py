"""Slow-query log: threshold gating, rotation, concurrent writers."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.qlog import QueryLog


@pytest.fixture
def qlog(tmp_path) -> QueryLog:
    return QueryLog(tmp_path / "qlog.jsonl", latency_ms=100.0)


class TestThresholds:
    def test_latency_threshold(self, qlog):
        assert qlog.should_log(100.0)
        assert qlog.should_log(5000.0)
        assert not qlog.should_log(99.9)

    def test_pages_threshold_is_independent(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", latency_ms=100.0, pages=64)
        assert qlog.should_log(1.0, page_reads=64)       # pages trip it
        assert qlog.should_log(100.0, page_reads=0)      # latency trips it
        assert not qlog.should_log(1.0, page_reads=63)
        assert not qlog.should_log(1.0, page_reads=None)

    def test_disabled_thresholds_log_nothing(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", latency_ms=None, pages=None)
        assert not qlog.should_log(1e9, page_reads=10**9)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "q.jsonl", latency_ms=-1.0)
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "q.jsonl", pages=-1)
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "q.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "q.jsonl", max_files=-1)


class TestRecording:
    def test_entries_are_jsonl_with_timestamps(self, qlog):
        qlog.record({"tenant": "t1", "op": "query", "latency_ms": 120.0})
        qlog.record({"tenant": "t2", "op": "batch", "latency_ms": 130.0})
        assert qlog.entries == 2
        lines = qlog.path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["tenant"] == "t1"
        assert first["ts"] > 0

    def test_injected_clock_stamps_ts(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", clock=lambda: 1234.5)
        qlog.record({"op": "query"})
        assert qlog.read_entries()[0]["ts"] == 1234.5

    def test_explicit_ts_is_kept(self, qlog):
        qlog.record({"ts": 7.0, "op": "query"})
        assert qlog.read_entries()[0]["ts"] == 7.0

    def test_read_entries_round_trips(self, qlog):
        entry = {"tenant": "t1", "op": "query", "latency_ms": 250.0,
                 "io": {"page_reads": 12}}
        qlog.record(entry)
        (read,) = qlog.read_entries()
        for key, value in entry.items():
            assert read[key] == value

    def test_missing_file_reads_empty(self, qlog):
        assert qlog.read_entries() == []
        assert qlog.files() == []

    def test_parents_are_created(self, tmp_path):
        qlog = QueryLog(tmp_path / "deep" / "down" / "q.jsonl")
        qlog.record({"op": "query"})
        assert qlog.path.exists()


class TestRotation:
    def _fill(self, qlog, n, payload_bytes=64):
        for i in range(n):
            qlog.record({"i": i, "pad": "x" * payload_bytes})

    def test_generations_shift(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", max_bytes=256, max_files=2)
        self._fill(qlog, 20)
        assert qlog.rotations > 0
        files = qlog.files()
        assert files[0] == qlog.path
        names = [f.name for f in files]
        assert "q.jsonl.1" in names
        # Never more than live + max_files generations on disk.
        assert len(files) <= 3
        # Every surviving file parses, and the newest entry is last.
        entries = qlog.read_entries()
        assert entries[-1]["i"] == 19

    def test_oldest_generation_is_dropped(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", max_bytes=128, max_files=1)
        self._fill(qlog, 30)
        leftovers = sorted(p.name for p in tmp_path.iterdir())
        assert leftovers == ["q.jsonl", "q.jsonl.1"]

    def test_max_files_zero_truncates(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", max_bytes=128, max_files=0)
        self._fill(qlog, 30)
        assert qlog.rotations > 0
        assert sorted(p.name for p in tmp_path.iterdir()) == ["q.jsonl"]
        assert qlog.path.stat().st_size <= 128 + 128   # one entry slack

    def test_disk_footprint_is_bounded(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", max_bytes=512, max_files=3)
        self._fill(qlog, 200)
        total = sum(p.stat().st_size for p in tmp_path.iterdir())
        # ~ max_bytes * (max_files + 1), plus one oversized entry of slack.
        assert total <= 512 * 4 + 256


class TestConcurrency:
    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        qlog = QueryLog(tmp_path / "q.jsonl", max_bytes=1 << 20)
        n, per = 8, 100

        def pump(i):
            for j in range(per):
                qlog.record({"writer": i, "j": j})

        threads = [threading.Thread(target=pump, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        entries = qlog.read_entries()     # every line parses
        assert len(entries) == n * per
        assert qlog.entries == n * per

"""Cross-method equivalence: all four access paths return the same answer.

The paper compares LinearScan, I-All and I-Hilbert on *performance*; this
suite pins down that they (plus the cost-based planner) are functionally
interchangeable — identical candidate-cell sets and identical answer
areas for the same value query — on randomized fractal fields and on the
adversarial monotonic field, across exact, one-sided and interval query
variants.  The batch engine is checked against single-query execution in
``test_core_batch.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IAllIndex,
    IHilbertIndex,
    LinearScanIndex,
    PlannedIndex,
    ValueQuery,
)
from repro.field import DEMField
from repro.synth import fractal_dem_heights, monotonic_field

METHODS = [LinearScanIndex, IAllIndex, IHilbertIndex, PlannedIndex]

FIELDS = {
    "fractal-rough": lambda: DEMField(fractal_dem_heights(32, 0.2, seed=3)),
    "fractal-smooth": lambda: DEMField(fractal_dem_heights(32, 0.9, seed=5)),
    "fractal-cropped": lambda: DEMField(fractal_dem_heights(24, 0.5, seed=9)),
    "monotonic": lambda: monotonic_field(16),
}


@pytest.fixture(scope="module", params=sorted(FIELDS), name="indexes")
def _indexes(request):
    """One field, indexed by every access method."""
    field = FIELDS[request.param]()
    return [cls(field) for cls in METHODS]


def queries_for(field) -> list[ValueQuery]:
    """Exact, one-sided and interval queries spread over the value range."""
    rng = np.random.default_rng(hash(field.num_cells) % 2**32)
    vr = field.value_range
    span = vr.hi - vr.lo
    queries = []
    # Exact-match queries, including ones guaranteed to hit a stored value.
    records = field.cell_records()
    queries.append(ValueQuery.exact(float(records["vmin"][0])))
    queries.append(ValueQuery.exact(float(records["vmax"][-1])))
    for _ in range(4):
        queries.append(ValueQuery.exact(vr.lo + rng.random() * span))
    # One-sided queries clamped to the field range.
    for frac in (0.25, 0.5, 0.75):
        queries.append(ValueQuery.at_least(vr.lo + frac * span, vr.hi))
        queries.append(ValueQuery.at_most(vr.lo + frac * span, vr.lo))
    # Random interval queries of varying extent.
    for _ in range(6):
        lo = vr.lo + rng.random() * span
        queries.append(ValueQuery(lo, lo + rng.random() * (vr.hi - lo)))
    # Whole range and an empty (out-of-range) interval.
    queries.append(ValueQuery(vr.lo, vr.hi))
    queries.append(ValueQuery(vr.hi + 1.0, vr.hi + 2.0))
    return queries


def candidate_cells(index, query) -> set[int]:
    records = index._candidates(query.lo, query.hi)
    cells = set(int(c) for c in records["cell_id"])
    assert len(cells) == len(records), "duplicate candidates returned"
    return cells


def test_candidate_sets_identical(indexes):
    baseline = indexes[0]
    for query in queries_for(baseline.field):
        expected = candidate_cells(baseline, query)
        for index in indexes[1:]:
            assert candidate_cells(index, query) == expected, \
                f"{index.name} disagrees with {baseline.name} on {query}"


def test_areas_identical(indexes):
    baseline = indexes[0]
    for query in queries_for(baseline.field):
        expected = baseline.query(query, estimate="area").area
        for index in indexes[1:]:
            area = index.query(query, estimate="area").area
            # Same candidate records, possibly summed in a different
            # order: allow only float round-off.
            assert area == pytest.approx(expected, rel=1e-9, abs=1e-9), \
                f"{index.name} area differs from {baseline.name} on {query}"


def test_region_extraction_identical(indexes):
    baseline = indexes[0]
    vr = baseline.field.value_range
    span = vr.hi - vr.lo
    query = ValueQuery(vr.lo + 0.3 * span, vr.lo + 0.45 * span)
    expected = baseline.query(query, estimate="regions")
    expected_cells = sorted(r.cell_id for r in expected.regions)
    for index in indexes[1:]:
        result = index.query(query, estimate="regions")
        assert sorted(r.cell_id for r in result.regions) == expected_cells
        assert result.area == pytest.approx(expected.area, rel=1e-9)

"""Unit and property tests for the space-filling curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    GrayCodeCurve,
    HilbertCurve2D,
    HilbertCurveND,
    SpaceFillingCurve,
    ZOrderCurve,
    average_clusters,
    count_runs,
    gray_decode,
    gray_encode,
    region_runs,
)

ALL_2D = [HilbertCurve2D(3), HilbertCurveND(3, 2), ZOrderCurve(3, 2),
          GrayCodeCurve(3, 2)]


@pytest.mark.parametrize("curve", ALL_2D, ids=lambda c: type(c).__name__)
def test_bijective_on_full_grid(curve):
    seen = set()
    for x in range(curve.side):
        for y in range(curve.side):
            d = curve.index((x, y))
            assert curve.coords(d) == (x, y)
            seen.add(d)
    assert seen == set(range(curve.size))


@pytest.mark.parametrize("curve", [HilbertCurve2D(4), HilbertCurveND(4, 2)],
                         ids=["fast2d", "skilling"])
def test_hilbert_consecutive_cells_are_adjacent(curve):
    prev = curve.coords(0)
    for d in range(1, curve.size):
        cur = curve.coords(d)
        manhattan = sum(abs(a - b) for a, b in zip(cur, prev))
        assert manhattan == 1, f"jump at index {d}"
        prev = cur


def test_fast_2d_matches_skilling():
    fast = HilbertCurve2D(4)
    general = HilbertCurveND(4, 2)
    for x in range(16):
        for y in range(16):
            assert fast.index((x, y)) == general.index((x, y))


def test_hilbert_3d_bijective_and_adjacent():
    curve = HilbertCurveND(2, 3)
    seen = set()
    prev = None
    for d in range(curve.size):
        c = curve.coords(d)
        assert curve.index(c) == d
        seen.add(c)
        if prev is not None:
            assert sum(abs(a - b) for a, b in zip(c, prev)) == 1
        prev = c
    assert len(seen) == 64


@pytest.mark.parametrize("curve", ALL_2D, ids=lambda c: type(c).__name__)
def test_vectorized_indices_match_scalar(curve):
    coords = np.array([(x, y) for x in range(curve.side)
                       for y in range(curve.side)])
    vector = curve.indices(coords)
    scalar = [curve.index((int(x), int(y))) for x, y in coords]
    assert list(vector) == scalar


def test_coordinate_validation():
    curve = HilbertCurve2D(3)
    with pytest.raises(ValueError):
        curve.index((8, 0))
    with pytest.raises(ValueError):
        curve.index((0, -1))
    with pytest.raises(ValueError):
        curve.index((0, 0, 0))
    with pytest.raises(ValueError):
        curve.coords(64)
    with pytest.raises(ValueError):
        curve.coords(-1)


def test_vectorized_out_of_range_rejected():
    curve = HilbertCurve2D(3)
    with pytest.raises(ValueError):
        curve.indices(np.array([[8, 0]]))


def test_order_validation():
    with pytest.raises(ValueError):
        HilbertCurve2D(0)
    with pytest.raises(ValueError):
        ZOrderCurve(2, 0)


def test_zorder_is_bit_interleaving():
    curve = ZOrderCurve(2, 2)
    # coords (x=1, y=1) -> bits interleaved: x0=1, y0=1 -> index 3.
    assert curve.index((1, 1)) == 3
    assert curve.index((0, 0)) == 0


def test_gray_encode_decode_roundtrip_small():
    for v in range(256):
        assert gray_decode(gray_encode(v)) == v


@given(st.integers(0, 2**40))
def test_property_gray_roundtrip(v):
    assert gray_decode(gray_encode(v)) == v
    assert gray_encode(gray_decode(v)) == v


@given(st.integers(1, 2**20))
def test_property_gray_neighbors_differ_one_bit(v):
    diff = gray_encode(v) ^ gray_encode(v - 1)
    assert diff != 0 and diff & (diff - 1) == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 6), st.data())
def test_property_hilbert_roundtrip_random(order, data):
    curve = HilbertCurve2D(order)
    x = data.draw(st.integers(0, curve.side - 1))
    y = data.draw(st.integers(0, curve.side - 1))
    assert curve.coords(curve.index((x, y))) == (x, y)


def test_count_runs():
    assert count_runs([]) == 0
    assert count_runs([5]) == 1
    assert count_runs([1, 2, 3]) == 1
    assert count_runs([1, 3, 4, 9]) == 3
    assert count_runs([3, 1, 2]) == 1   # order-insensitive
    assert count_runs([1, 1, 2]) == 1   # duplicates collapse


def test_region_runs_full_grid_is_one():
    curve = HilbertCurve2D(3)
    assert region_runs(curve, 0, 0, 8, 8) == 1


def test_region_runs_requires_2d():
    with pytest.raises(ValueError):
        region_runs(HilbertCurveND(2, 3), 0, 0, 2, 2)


def test_hilbert_clusters_best():
    """The comparison the paper cites when choosing Hilbert (§3.1.2)."""
    hilbert = average_clusters(HilbertCurve2D(5), 4, samples=40)
    zorder = average_clusters(ZOrderCurve(5, 2), 4, samples=40)
    gray = average_clusters(GrayCodeCurve(5, 2), 4, samples=40)
    assert hilbert < zorder
    assert hilbert < gray


def test_average_clusters_validates_square():
    with pytest.raises(ValueError):
        average_clusters(HilbertCurve2D(2), square_side=8)


def test_base_class_is_abstract():
    with pytest.raises(TypeError):
        SpaceFillingCurve(2, 2)

"""Benchmarks for the DESIGN.md ablations: curve choice and grouping.

Full sweeps: ``python -m repro.bench ablation-curve`` and
``python -m repro.bench ablation-cost``.
"""

import pytest

from repro.core import (
    CostBasedGrouping,
    IHilbertIndex,
    IntervalQuadtreeIndex,
    ThresholdGrouping,
)
from repro.synth import roseburg_like

from conftest import query_for, run_cold_query


@pytest.fixture(scope="module")
def terrain_field():
    return roseburg_like(cells_per_side=128)


@pytest.mark.parametrize("curve", ["hilbert", "zorder", "gray"])
def test_curve_ablation_query(benchmark, terrain_field, curve):
    index = IHilbertIndex(terrain_field, curve=curve)
    query = query_for(index, 0.02)
    benchmark.group = "ablation: linearization curve"
    result = benchmark(run_cold_query, index, query)
    assert result.candidate_count > 0


@pytest.mark.parametrize("grouping", ["paper-normalized", "fig5-literal",
                                      "threshold"])
def test_grouping_ablation_query(benchmark, terrain_field, grouping):
    span = terrain_field.value_range.length
    if grouping == "paper-normalized":
        index = IHilbertIndex(terrain_field)
    elif grouping == "fig5-literal":
        index = IHilbertIndex(
            terrain_field,
            grouping=CostBasedGrouping(unit=1.0, avg_query=0.0))
    else:
        index = IHilbertIndex(
            terrain_field, grouping=ThresholdGrouping(0.1 * span))
    query = query_for(index, 0.02)
    benchmark.group = "ablation: subfield grouping policy"
    result = benchmark(run_cold_query, index, query)
    assert result.candidate_count > 0


def test_interval_quadtree_query(benchmark, terrain_field):
    index = IntervalQuadtreeIndex(terrain_field)
    query = query_for(index, 0.02)
    benchmark.group = "ablation: subfield grouping policy"
    result = benchmark(run_cold_query, index, query)
    assert result.candidate_count > 0

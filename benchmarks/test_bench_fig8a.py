"""Benchmark: paper Fig. 8a — value queries on a terrain DEM.

Full sweep: ``python -m repro.bench fig8a``.
"""

import pytest

from conftest import METHODS, query_for, run_cold_query


@pytest.mark.parametrize("qinterval", [0.0, 0.04, 0.10])
@pytest.mark.parametrize("method", list(METHODS))
def test_fig8a_query(benchmark, terrain_indexes, method, qinterval):
    index = terrain_indexes[method]
    query = query_for(index, qinterval)
    benchmark.group = f"fig8a terrain Qinterval={qinterval}"
    result = benchmark(run_cold_query, index, query)
    assert result.candidate_count >= 0

"""Benchmark: paper Fig. 8b — value queries on the urban noise TIN.

Full sweep: ``python -m repro.bench fig8b``.
"""

import pytest

from conftest import METHODS, query_for, run_cold_query


@pytest.mark.parametrize("qinterval", [0.0, 0.04, 0.10])
@pytest.mark.parametrize("method", list(METHODS))
def test_fig8b_query(benchmark, noise_indexes, method, qinterval):
    index = noise_indexes[method]
    query = query_for(index, qinterval)
    benchmark.group = f"fig8b noise TIN Qinterval={qinterval}"
    result = benchmark(run_cold_query, index, query)
    assert result.candidate_count >= 0

"""Micro-benchmarks for the substrates underneath the access methods."""

import numpy as np
import pytest

from repro.curves import GrayCodeCurve, HilbertCurve2D, ZOrderCurve
from repro.field import DEMField, TINField, triangulate
from repro.geometry import Rect
from repro.rstar import RStarTree
from repro.storage import DiskManager, RecordStore
from repro.synth import fractal_dem_heights


@pytest.mark.parametrize("curve_cls", [HilbertCurve2D, ZOrderCurve,
                                       GrayCodeCurve],
                         ids=["hilbert", "zorder", "gray"])
def test_curve_vectorized_indices(benchmark, curve_cls):
    """Linearizing 65k cell centers (the I-Hilbert build hot loop)."""
    if curve_cls is HilbertCurve2D:
        curve = curve_cls(8)
    else:
        curve = curve_cls(8, 2)
    coords = np.stack(np.meshgrid(np.arange(256), np.arange(256)),
                      axis=-1).reshape(-1, 2)
    benchmark.group = "micro: curve linearization (65k points)"
    keys = benchmark(curve.indices, coords)
    assert len(keys) == 65536


def test_rstar_bulk_load(benchmark):
    rects = [Rect.from_interval(float(i), float(i + 3))
             for i in range(20000)]
    benchmark.group = "micro: R*-tree"

    def build():
        tree = RStarTree(dim=1)
        tree.bulk_load(rects, range(len(rects)))
        tree.flush()
        return tree

    tree = benchmark(build)
    assert len(tree) == 20000


def test_rstar_search(benchmark):
    tree = RStarTree(dim=1)
    rects = [Rect.from_interval(float(i), float(i + 3))
             for i in range(20000)]
    tree.bulk_load(rects, range(len(rects)))
    tree.flush()
    query = Rect.from_interval(10000.0, 10010.0)
    benchmark.group = "micro: R*-tree"
    hits = benchmark(tree.search, query)
    assert len(hits) == 14
    # Pin the traversal's node-visit count: a narrow interval query on a
    # bulk-loaded tree descends one root-to-leaf path plus the touched
    # leaves, so every visited node is one page read.  A regression in
    # the child-id expansion (``ids.tolist()``) that pushed wrong or
    # duplicate ids would change this count.
    tree.pool.clear()
    tree.disk.stats.reset()
    tree.search(query)
    visited = tree.disk.stats.page_reads
    assert tree.height == 2
    assert visited == 2      # root + the single overlapping leaf


def test_record_store_scan(benchmark):
    disk = DiskManager()
    dtype = np.dtype([("vmin", np.float32), ("vmax", np.float32),
                      ("pad", np.float32, (6,))])
    store = RecordStore(disk, dtype)
    records = np.zeros(65536, dtype=dtype)
    store.extend(records)
    benchmark.group = "micro: storage"

    def scan():
        return sum(len(page) for page in store.scan())

    assert benchmark(scan) == 65536


def test_dem_estimate_area(benchmark):
    field = DEMField(fractal_dem_heights(128, 0.5, seed=0))
    records = field.cell_records()
    vr = field.value_range
    mid = (vr.lo + vr.hi) / 2
    benchmark.group = "micro: estimation step"
    area = benchmark(DEMField.estimate_area, records, vr.lo, mid)
    assert 0.0 < area < field.num_cells


def test_delaunay_1000_sites(benchmark):
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 1000, size=(1000, 2))
    benchmark.group = "micro: Bowyer-Watson Delaunay"
    triangles = benchmark(triangulate, points)
    assert len(triangles) > 1900


def test_tin_estimate_area(benchmark):
    rng = np.random.default_rng(1)
    points = rng.uniform(0, 100, size=(2000, 2))
    values = points[:, 0] + points[:, 1]
    field = TINField(points, values)
    records = field.cell_records()
    benchmark.group = "micro: estimation step"
    area = benchmark(TINField.estimate_area, records, 50.0, 150.0)
    assert area > 0.0

"""Benchmark: index construction cost (paper §3.1, build side).

LinearScan only materializes the record file; I-All bulk-packs one
interval per cell; I-Hilbert linearizes, groups, and packs subfields.
"""

import pytest

from repro.core import IAllIndex, IHilbertIndex, LinearScanIndex
from repro.synth import roseburg_like

from conftest import METHODS


@pytest.fixture(scope="module")
def terrain_field():
    return roseburg_like(cells_per_side=128)


@pytest.mark.parametrize("method", list(METHODS))
def test_build(benchmark, terrain_field, method):
    benchmark.group = "index build (128x128 terrain)"
    index = benchmark(METHODS[method], terrain_field)
    assert len(index.store) == terrain_field.num_cells


def test_build_iall_dynamic(benchmark):
    """Dynamic R* insertion path (the non-bulk build)."""
    field = roseburg_like(cells_per_side=32)
    benchmark.group = "index build dynamic (32x32 terrain)"
    index = benchmark(lambda: IAllIndex(field, bulk=False))
    assert len(index.tree) == field.num_cells

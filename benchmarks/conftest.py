"""Shared fields and prebuilt indexes for the benchmark suite.

Benchmarks time single queries at representative Qinterval settings; the
full sweep harness that regenerates each paper figure end to end is
``python -m repro.bench <figure>``.  Fields are sized so the whole suite
runs in minutes while preserving the paper's relative ordering.
"""

from __future__ import annotations

import pytest

from repro.core import IAllIndex, IHilbertIndex, LinearScanIndex
from repro.field import DEMField
from repro.synth import (
    fractal_dem_heights,
    lyon_like,
    monotonic_field,
    roseburg_like,
)

METHODS = {
    "LinearScan": LinearScanIndex,
    "I-All": IAllIndex,
    "I-Hilbert": IHilbertIndex,
}


def build_indexes(field):
    return {name: cls(field) for name, cls in METHODS.items()}


@pytest.fixture(scope="session")
def terrain_indexes():
    """Fig. 8a workload (terrain DEM), 256² cells."""
    return build_indexes(roseburg_like(cells_per_side=256))


@pytest.fixture(scope="session")
def noise_indexes():
    """Fig. 8b workload (urban noise TIN), ~4600 triangles."""
    return build_indexes(lyon_like(num_sites=2300))


@pytest.fixture(scope="session")
def fractal_indexes():
    """Fig. 11 workload: fractal DEMs at rough/smooth H, 256² cells."""
    return {
        h: build_indexes(DEMField(fractal_dem_heights(
            256, h, seed=int(h * 10))))
        for h in (0.1, 0.9)
    }


@pytest.fixture(scope="session")
def monotonic_indexes():
    """Fig. 12 workload (w = x + y), 256² cells."""
    return build_indexes(monotonic_field(256))


def query_for(index, qinterval: float, position: float = 0.4):
    """Deterministic query of relative length ``qinterval``."""
    from repro.core import ValueQuery

    vr = index.field.value_range
    span = vr.hi - vr.lo
    lo = vr.lo + position * span * (1.0 - qinterval)
    return ValueQuery(lo, lo + qinterval * span)


def run_cold_query(index, query):
    """One cold query (the benchmarked operation)."""
    index.clear_caches()
    return index.query(query)

"""Benchmarks for the beyond-the-paper extensions."""

import numpy as np
import pytest

from repro.core import (
    IHilbertIndex,
    PlannedIndex,
    ValueQuery,
    load_index,
    save_index,
)
from repro.field import VectorField, VolumeField
from repro.synth import fractal_dem_heights, roseburg_like

from conftest import query_for, run_cold_query


@pytest.fixture(scope="module")
def volume_index():
    rng = np.random.default_rng(0)
    base = rng.random((33, 33, 33)) * 10.0
    from scipy.ndimage import gaussian_filter
    return IHilbertIndex(VolumeField(gaussian_filter(base, 3.0)))


def test_volume_query(benchmark, volume_index):
    query = query_for(volume_index, 0.02)
    benchmark.group = "extensions: 3-D volume field"
    result = benchmark(run_cold_query, volume_index, query)
    assert result.candidate_count > 0


def test_vector_magnitude_area(benchmark):
    rng = np.random.default_rng(1)
    u = rng.uniform(-8, 8, (65, 65))
    v = rng.uniform(-8, 8, (65, 65))
    field = VectorField(u, v)
    vr = field.magnitude_range()
    lo = vr.lo + 0.4 * (vr.hi - vr.lo)
    hi = vr.lo + 0.5 * (vr.hi - vr.lo)
    benchmark.group = "extensions: vector magnitude"
    area = benchmark(field.magnitude_area, lo, hi, 4)
    assert area > 0.0


def test_index_save(benchmark, tmp_path_factory):
    field = roseburg_like(cells_per_side=128)
    index = IHilbertIndex(field)
    base = tmp_path_factory.mktemp("persist")
    counter = iter(range(10 ** 9))
    benchmark.group = "extensions: persistence"
    benchmark(lambda: save_index(index, base / f"i{next(counter)}"))


def test_index_load(benchmark, tmp_path_factory):
    field = roseburg_like(cells_per_side=128)
    index = IHilbertIndex(field)
    path = tmp_path_factory.mktemp("persist") / "idx"
    save_index(index, path)
    benchmark.group = "extensions: persistence"
    back = benchmark(load_index, path)
    assert back.num_subfields == index.num_subfields


def test_planner_decision_overhead(benchmark):
    from repro.field import DEMField
    field = DEMField(fractal_dem_heights(256, 0.9, seed=3))
    index = PlannedIndex(field)
    vr = field.value_range
    benchmark.group = "extensions: planner"
    plan = benchmark(index.plan, vr.lo + 1.0, vr.lo + 2.0)
    assert plan.path in ("filtered", "scan")


def test_update_cell(benchmark):
    field = roseburg_like(cells_per_side=64)
    index = IHilbertIndex(field)
    records = field.cell_records()
    counter = iter(range(10 ** 9))

    def update():
        cell = next(counter) % field.num_cells
        record = np.array(records[cell])
        record["vmax"] = record["vmax"] + 1.0
        index.update_cell(cell, record)

    benchmark.group = "extensions: dynamic updates"
    benchmark(update)
    index.tree.check_invariants()

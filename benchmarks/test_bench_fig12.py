"""Benchmark: paper Fig. 12 — the monotonic field w = x + y.

Full sweep: ``python -m repro.bench fig12``.
"""

import pytest

from conftest import METHODS, query_for, run_cold_query


@pytest.mark.parametrize("qinterval", [0.0, 0.03, 0.06])
@pytest.mark.parametrize("method", list(METHODS))
def test_fig12_query(benchmark, monotonic_indexes, method, qinterval):
    index = monotonic_indexes[method]
    query = query_for(index, qinterval)
    benchmark.group = f"fig12 monotonic Qinterval={qinterval}"
    result = benchmark(run_cold_query, index, query)
    assert result.candidate_count >= 0

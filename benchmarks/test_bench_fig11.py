"""Benchmark: paper Fig. 11 — fractal DEMs across roughness H.

Full sweep: ``python -m repro.bench fig11``.
"""

import pytest

from conftest import METHODS, query_for, run_cold_query


@pytest.mark.parametrize("roughness", [0.1, 0.9])
@pytest.mark.parametrize("qinterval", [0.0, 0.05])
@pytest.mark.parametrize("method", list(METHODS))
def test_fig11_query(benchmark, fractal_indexes, method, roughness,
                     qinterval):
    index = fractal_indexes[roughness][method]
    query = query_for(index, qinterval)
    benchmark.group = f"fig11 H={roughness} Qinterval={qinterval}"
    result = benchmark(run_cold_query, index, query)
    assert result.candidate_count >= 0

"""Benchmark: batched vs. sequential execution of the Fig. 8 workload.

Replays the Fig. 8a query mix (random queries at every Qinterval
setting, identical draws per method) through the batch engine with
merged intervals and a shared buffer pool, and asserts that the batch
performs strictly fewer total page reads than the same queries run
sequentially with cold stats — while returning identical answers.

Full comparison table: ``python -m repro.bench batch``.
"""

import pytest

from repro.core import BatchQueryEngine, PlannedIndex, run_sequential
from repro.synth import value_query_workload

QINTERVALS = [0.0, 0.02, 0.04, 0.06, 0.08, 0.10]
QUERIES_PER_SETTING = 25


@pytest.fixture(scope="module")
def batch_indexes(terrain_indexes):
    """Fig. 8a indexes plus the cost-based planner."""
    indexes = dict(terrain_indexes)
    indexes["I-Hilbert+planner"] = PlannedIndex(
        indexes["I-Hilbert"].field)
    return indexes


@pytest.fixture(scope="module")
def fig8_workload(batch_indexes):
    field = batch_indexes["LinearScan"].field
    queries = []
    for q in QINTERVALS:
        queries += value_query_workload(field.value_range, q,
                                        count=QUERIES_PER_SETTING, seed=0)
    return queries


def run_batch(index, workload):
    index.clear_caches()
    return BatchQueryEngine(index).run(workload)


@pytest.mark.parametrize("method", ["LinearScan", "I-All", "I-Hilbert",
                                    "I-Hilbert+planner"])
def test_batch_fewer_page_reads_than_cold_sequential(
        benchmark, batch_indexes, fig8_workload, method):
    index = batch_indexes[method]
    sequential = run_sequential(index, fig8_workload, estimate="area",
                                cold=True)
    benchmark.group = "fig8a batch vs sequential"
    batch = benchmark(run_batch, index, fig8_workload)

    assert batch.io.page_reads < sequential.io.page_reads
    # Same answers, query for query.
    for one, many in zip(sequential.results, batch.results):
        assert one.candidate_count == many.candidate_count
        assert many.area == pytest.approx(one.area, rel=1e-9, abs=1e-9)
    benchmark.extra_info["sequential_page_reads"] = \
        sequential.io.page_reads
    benchmark.extra_info["batch_page_reads"] = batch.io.page_reads
    benchmark.extra_info["pool_hit_rate"] = round(batch.pool.hit_rate, 4)
    benchmark.extra_info["merged_groups"] = batch.groups


def test_merging_alone_already_saves_reads(batch_indexes, fig8_workload):
    """Even with the shared cache disabled, interval merging reduces
    reads on the overlapping Fig. 8 mix."""
    index = batch_indexes["I-Hilbert"]
    sequential = run_sequential(index, fig8_workload, cold=True)
    index.clear_caches()
    merged_only = BatchQueryEngine(index, cache_pages=0).run(fig8_workload)
    assert merged_only.io.page_reads < sequential.io.page_reads

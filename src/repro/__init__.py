"""repro — value-domain indexing for continuous field databases.

A complete reproduction of "Indexing Values in Continuous Field
Databases" (Kang, Faloutsos, Laurini, Servigne — EDBT 2002): the
I-Hilbert subfield index, the I-All and LinearScan baselines, the DEM/TIN
field model with exact estimation, and the paper's full experiment suite
over a simulated paged store.

Quickstart::

    from repro import DEMField, IHilbertIndex, ValueQuery
    from repro.synth import roseburg_like

    field = roseburg_like(cells_per_side=128)
    index = IHilbertIndex(field)
    result = index.query(ValueQuery(200.0, 250.0))
    print(result.candidate_count, result.area)
"""

from .core import (
    BatchQueryEngine,
    BatchResult,
    CostBasedGrouping,
    FieldStatistics,
    ITreeIndex,
    IAllIndex,
    IHilbertIndex,
    IntervalQuadtreeIndex,
    LinearScanIndex,
    METHODS,
    PlannedIndex,
    PointIndex,
    QueryResult,
    Subfield,
    ThresholdGrouping,
    ValueIndex,
    ValueQuery,
    conjunctive_query,
    load_index,
    union_query,
    save_index,
)
from .field import (
    AnswerRegion,
    DEMField,
    Field,
    TINField,
    TemporalField,
    VectorField,
    VolumeField,
    triangulate,
)
from .geometry import Interval, Rect
from .rstar import RStarTree
from .storage import IOStats

__version__ = "1.0.0"

__all__ = [
    "AnswerRegion",
    "BatchQueryEngine",
    "BatchResult",
    "CostBasedGrouping",
    "DEMField",
    "Field",
    "FieldStatistics",
    "IAllIndex",
    "ITreeIndex",
    "IHilbertIndex",
    "IOStats",
    "Interval",
    "IntervalQuadtreeIndex",
    "LinearScanIndex",
    "METHODS",
    "PlannedIndex",
    "PointIndex",
    "QueryResult",
    "RStarTree",
    "Rect",
    "Subfield",
    "TINField",
    "TemporalField",
    "ThresholdGrouping",
    "ValueIndex",
    "ValueQuery",
    "VectorField",
    "VolumeField",
    "conjunctive_query",
    "load_index",
    "union_query",
    "save_index",
    "triangulate",
]

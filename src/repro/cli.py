"""Command-line interface: ``python -m repro <command>``.

A small database-style front end over the library:

* ``build``   — index a field (``.npy`` height grid or TIN ``.npz``)
  with I-Hilbert and save the index directory;
* ``query``   — run a field value query against a saved index;
* ``batch``   — run a whole file of value queries through the batch
  engine (merged intervals + shared page cache);
* ``explain`` — print the cost-based plan for a query (``--analyze``
  also executes it and reports estimation error);
* ``info``    — describe a saved index;
* ``scrub``   — verify a saved index offline (manifest checksums and
  every page frame; ``--repair`` fixes manifest drift), exit 1 on
  corruption;
* ``update``  — apply vertex-value updates to a saved index through
  the write-ahead log (``--checkpoint`` folds the WAL into a fresh
  snapshot afterwards);
* ``compact`` — re-cluster stale subfields of a saved index and save
  the result;
* ``shard``   — partition a field into Hilbert-range shards (one
  I-Hilbert engine per shard, optional tiered remote storage) and
  save the shard map + per-shard indexes;
* ``rebalance`` — split oversized/drifted shards, merge undersized
  neighbours, and atomically re-commit the shard map;
* ``point``   — conventional (Q1) query on a ``.npy`` height grid;
* ``serve``   — serve fields to concurrent multi-tenant clients over
  the newline-delimited JSON protocol (DESIGN.md §10).

``query`` and ``batch`` accept ``--trace FILE`` (span tree as Chrome
trace-event JSON, or JSONL with a ``.jsonl`` suffix),
``--metrics-out FILE`` (metrics-registry dump), and ``--workers N``
(execute through the parallel query engine on N threads).

Examples::

    python -m repro build terrain.npy terrain-index/
    python -m repro query terrain-index/ 300 320 --regions
    python -m repro query terrain-index/ 300 320 --trace trace.json
    python -m repro batch terrain-index/ queries.txt --compare
    python -m repro explain terrain-index/ 300 320 --analyze
    python -m repro info terrain-index/
    python -m repro scrub terrain-index/
    python -m repro update terrain-index/ terrain.npy edits.txt
    python -m repro compact terrain-index/
    python -m repro shard terrain.npy terrain-shards/ --shards 4
    python -m repro rebalance terrain-shards/ --field terrain.npy \\
        --max-cells 4096
    python -m repro point terrain.npy 30.5 99.25
    python -m repro serve terrain=terrain-index/ --port 7433 --rate 50
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

import numpy as np

from .core import (
    AGGREGATE_KINDS,
    AGGREGATE_MODES,
    EngineFacade,
    FacadeError,
    IHilbertIndex,
    PointIndex,
    ValueQuery,
    load_index,
    run_sequential,
    save_index,
)
from .core.batch import DEFAULT_BATCH_CACHE_PAGES
from .field import DEMField, TINField
from .obs.explain import explain, explain_to_dict, render_explain
from .obs.export import write_trace
from .obs.metrics import REGISTRY
from .obs.trace import Tracer
from .storage.scrub import repair_index, scrub_index


def _load_field(path: Path):
    """Load a field from ``.npy`` (DEM heights) or ``.npz`` (TIN)."""
    if path.suffix == ".npy":
        return DEMField(np.load(path))
    if path.suffix == ".npz":
        data = np.load(path)
        for key in ("points", "values"):
            if key not in data:
                raise SystemExit(
                    f"{path}: TIN archives need 'points' and 'values' "
                    f"arrays (optional 'triangles')")
        triangles = data["triangles"] if "triangles" in data else None
        return TINField(data["points"], data["values"],
                        triangles=triangles)
    raise SystemExit(
        f"{path}: unsupported field file (use .npy heights or .npz TIN)")


def cmd_build(args) -> int:
    """Build an I-Hilbert index over a field file and save it."""
    field = _load_field(Path(args.field))
    if args.bulk:
        from .core import bulk_build
        index, report = bulk_build(field, curve=args.curve)
    else:
        index = IHilbertIndex(field, curve=args.curve)
        report = None
    save_index(index, args.index_dir)
    info = index.describe()
    print(f"indexed {info['cells']} cells into {info['subfields']} "
          f"subfields ({info['data_pages']} data pages, "
          f"{info['index_pages']} index pages)")
    if report is not None:
        print(f"bulk load: {report.cells} cells in "
              f"{report.build_seconds:.3f}s "
              f"({report.cells_per_second:,.0f} cells/s)")
    print(f"saved to {args.index_dir}")
    return 0


def _setup_observability(args, index) -> Tracer | None:
    """Honour ``--trace``/``--metrics-out``: install a tracer on the
    index and/or enable the process-wide metrics registry."""
    tracer = None
    if getattr(args, "trace", None):
        tracer = Tracer().attach(index)
    if getattr(args, "metrics_out", None):
        REGISTRY.enable()
    return tracer


def _write_observability(args, tracer: Tracer | None) -> None:
    """Write the artifacts requested by ``--trace``/``--metrics-out``."""
    if tracer is not None:
        count = write_trace(tracer.roots, args.trace)
        print(f"trace: {count} spans written to {args.trace}",
              file=sys.stderr)
    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w") as fh:
            json.dump(REGISTRY.collect(), fh, indent=1)
            fh.write("\n")
        REGISTRY.disable()
        print(f"metrics: written to {args.metrics_out}", file=sys.stderr)


def cmd_query(args) -> int:
    """Run a field value query against a saved index."""
    facade = EngineFacade()
    facade.open_field("cli", args.index_dir)
    index = facade.handle("cli").index
    tracer = _setup_observability(args, index)
    mode = "regions" if args.regions else "area"
    if args.workers > 1:
        result = facade.batch("cli", [ValueQuery(args.lo, args.hi)],
                              estimate=mode, workers=args.workers,
                              cache_pages=0).results[0]
    else:
        result = facade.query("cli", args.lo, args.hi, estimate=mode)
    print(f"candidates: {result.candidate_count}")
    print(f"answer area: {result.area:.4f}")
    print(f"I/O: {result.io.page_reads} pages "
          f"({result.io.random_reads} random, "
          f"{result.io.sequential_reads} sequential)")
    if args.regions and result.regions is not None:
        print(f"regions: {len(result.regions)}")
        for region in result.regions[:args.max_regions]:
            coords = ", ".join(f"({x:.3f},{y:.3f})"
                               for x, y in region.polygon)
            print(f"  cell {region.cell_id}: area={region.area:.4f} "
                  f"[{coords}]")
    _write_observability(args, tracer)
    return 0


def cmd_aggregate(args) -> int:
    """Run an approximate range-aggregate against a saved index."""
    facade = EngineFacade()
    facade.open_field("cli", args.index_dir)
    index = facade.handle("cli").index
    tracer = _setup_observability(args, index)
    result = facade.aggregate("cli", args.kind, args.lo, args.hi,
                              tolerance=args.tolerance, mode=args.mode)
    if args.json:
        print(json.dumps(result.to_dict(), indent=1))
    else:
        bound = ("exact" if result.bound == 0.0
                 else "unbounded" if not math.isfinite(result.bound)
                 else f"±{result.bound:.6g}")
        print(f"{result.kind}[{result.lo:g}, {result.hi:g}] = "
              f"{result.value:.6g} ({bound})")
        print(f"subfields: {result.covered_subfields} covered, "
              f"{result.model_subfields} model, "
              f"{result.exact_subfields} exact")
        print(f"I/O: {result.page_reads} pages")
    _write_observability(args, tracer)
    return 0


def _load_queries(path: Path) -> list[ValueQuery]:
    """Parse a query file: one ``lo hi`` pair (or a single exact value)
    per line; blank lines and ``#`` comments are skipped."""
    if not path.exists():
        raise SystemExit(f"{path}: no such query file")
    queries = []
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        try:
            if len(parts) == 1:
                lo = hi = float(parts[0])
            elif len(parts) == 2:
                lo, hi = float(parts[0]), float(parts[1])
            else:
                raise ValueError("expected 'lo hi' or one exact value")
            queries.append(ValueQuery(lo, hi))
        except ValueError as exc:
            raise SystemExit(f"{path}:{lineno}: {exc}")
    if not queries:
        raise SystemExit(f"{path}: no queries found")
    return queries


def cmd_batch(args) -> int:
    """Run a file of value queries through the batch engine."""
    facade = EngineFacade()
    facade.open_field("cli", args.index_dir)
    index = facade.handle("cli").index
    tracer = _setup_observability(args, index)
    queries = _load_queries(Path(args.queries))
    try:
        batch = facade.batch("cli", queries, estimate=args.estimate,
                             workers=args.workers,
                             cache_pages=args.cache_pages,
                             merge=not args.no_merge)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if not args.quiet:
        for i, result in enumerate(batch.results):
            q = result.query
            area = ("" if result.area is None
                    else f"  area={result.area:.4f}")
            print(f"[{i}] {q.lo:g}..{q.hi:g}: "
                  f"{result.candidate_count} candidates{area}  "
                  f"({result.io.page_reads} pages)")
    print(f"batch: {len(batch)} queries in {batch.groups} merged groups")
    print(f"I/O: {batch.io.page_reads} pages "
          f"({batch.io.random_reads} random, "
          f"{batch.io.sequential_reads} sequential), "
          f"{batch.pool.hits} pool hits / {batch.pool.misses} misses / "
          f"{batch.pool.evictions} evictions")
    if args.workers > 1:
        for w, io in enumerate(batch.worker_io):
            print(f"worker[{w}]: {io.page_reads} pages "
                  f"({io.random_reads} random, "
                  f"{io.sequential_reads} sequential)")
    if args.compare:
        index.clear_caches()
        seq = run_sequential(index, queries, estimate=args.estimate,
                             cold=True)
        saved = seq.io.page_reads - batch.io.page_reads
        pct = 100.0 * saved / seq.io.page_reads if seq.io.page_reads else 0.0
        print(f"sequential (cold): {seq.io.page_reads} pages — "
              f"batch saves {saved} pages ({pct:.1f}%)")
    _write_observability(args, tracer)
    return 0


def cmd_explain(args) -> int:
    """Explain the cost-based plan for a query; ``--analyze`` runs it."""
    index = load_index(args.index_dir)
    report = explain(index, args.lo, args.hi, analyze=args.analyze,
                     bins=args.bins)
    if args.json:
        print(json.dumps(explain_to_dict(report), indent=1))
    else:
        print(render_explain(report))
    if getattr(args, "trace", None) and report.trace_roots:
        count = write_trace(report.trace_roots, args.trace)
        print(f"trace: {count} spans written to {args.trace}",
              file=sys.stderr)
    return 0


def cmd_info(args) -> int:
    """Print a JSON description of a saved index."""
    index = load_index(args.index_dir)
    sizes = [sf.num_cells for sf in index.subfields]
    extents = [sf.hi - sf.lo for sf in index.subfields]
    payload = {
        "method": index.name,
        "field_type": index.field_type.__name__,
        "cells": len(index.store),
        "data_pages": index.store.num_pages,
        "index_pages": index.index_disk.num_pages,
        "subfields": len(index.subfields),
        "cells_per_subfield_mean": (sum(sizes) / len(sizes)
                                    if sizes else 0),
        "interval_extent_mean": (sum(extents) / len(extents)
                                 if extents else 0),
        "tree_height": index.tree.height,
    }
    print(json.dumps(payload, indent=1))
    return 0


def cmd_scrub(args) -> int:
    """Verify a saved index offline; exit 1 when corruption is found."""
    try:
        if args.repair:
            report, actions = repair_index(args.index_dir)
        else:
            report, actions = scrub_index(args.index_dir), []
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        payload = report.to_dict()
        if args.repair:
            payload["repairs"] = actions
        print(json.dumps(payload, indent=1))
    else:
        print(report.render())
        for action in actions:
            print(f"repair: {action}")
    return 0 if report.ok else 1


def _load_updates(path: Path) -> tuple[np.ndarray, np.ndarray]:
    """Parse an updates file: one ``vertex_id value`` pair per line;
    blank lines and ``#`` comments are skipped.  When a vertex appears
    more than once the last line wins."""
    if not path.exists():
        raise SystemExit(f"{path}: no such updates file")
    ids, values = [], []
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        try:
            if len(parts) != 2:
                raise ValueError("expected 'vertex_id value'")
            ids.append(int(parts[0]))
            values.append(float(parts[1]))
        except ValueError as exc:
            raise SystemExit(f"{path}:{lineno}: {exc}")
    if not ids:
        raise SystemExit(f"{path}: no updates found")
    id_arr = np.asarray(ids, dtype=np.int64)
    val_arr = np.asarray(values, dtype=np.float32)
    # keep-last dedup so repeated edits of one vertex are deterministic
    _, last = np.unique(id_arr[::-1], return_index=True)
    keep = np.sort(len(id_arr) - 1 - last)
    return id_arr[keep], val_arr[keep]


def cmd_update(args) -> int:
    """Apply vertex updates to a saved index through the WAL.

    The updates file is *cumulative* against the original field file:
    updates replace vertex values with absolute heights, so re-applying
    the whole file is idempotent and always converges to the state
    described by ``field + updates``.
    """
    index_dir = Path(args.index_dir)
    index = load_index(index_dir)
    field = _load_field(Path(args.field))
    if type(field) is not index.field_type:
        raise SystemExit(
            f"error: index was built over a {index.field_type.__name__}, "
            f"got a {type(field).__name__} field file")
    replayed = len(index.wal.pending) if index.wal is not None else 0
    index.field = field
    if index.wal is None:
        index.attach_wal(index_dir / "wal.log")
    ids, values = _load_updates(Path(args.updates))
    try:
        dirty = index.apply_updates(ids, values)
    except (ValueError, IndexError) as exc:
        raise SystemExit(f"error: {exc}")
    print(f"applied {len(ids)} vertex updates "
          f"({len(dirty)} cells rewritten)")
    if replayed:
        print(f"recovered {replayed} journaled batch(es) on open")
    print(f"maintenance I/O: {index.maint_stats.page_reads} page reads, "
          f"{index.maint_stats.page_writes} page writes")
    print(f"wal: {len(index.wal)} pending batch(es), "
          f"lsn {index.wal.last_lsn}")
    staleness = getattr(index, "staleness", None)
    if staleness is not None:
        st = staleness()
        print(f"staleness: {st['stale_subfields']}/{st['subfields']} "
              f"subfields drifted (max {st['max_drift']:+.1%}, "
              f"mean {st['mean_drift']:+.1%})")
    if args.checkpoint:
        save_index(index, index_dir)
        print(f"checkpointed to {index_dir} (wal truncated)")
    return 0


def cmd_compact(args) -> int:
    """Re-cluster stale subfields of a saved index and save it."""
    index_dir = Path(args.index_dir)
    index = load_index(index_dir)
    compact = getattr(index, "compact", None)
    if compact is None:
        raise SystemExit(
            f"error: {index.name} does not support compaction")
    report = compact(stale_threshold=args.threshold)
    print(f"compacted {report['stale_subfields']} stale subfields in "
          f"{report['stale_runs']} run(s): "
          f"{report['reclustered_cells']} cells re-clustered, "
          f"{report['subfields_before']} -> {report['subfields_after']} "
          f"subfields")
    print(f"maintenance I/O: {index.maint_stats.page_reads} page reads, "
          f"{index.maint_stats.page_writes} page writes")
    save_index(index, index_dir)
    print(f"saved to {index_dir}")
    return 0


def cmd_shard(args) -> int:
    """Partition a field into Hilbert-range shards and save the engine."""
    from .shard import ShardedEngine

    field = _load_field(Path(args.field))
    remote_store = None
    if args.tiered:
        from .storage import SimulatedObjectStore
        remote_store = SimulatedObjectStore()
    engine = ShardedEngine(field, n_shards=args.shards,
                           method="I-Hilbert", curve=args.curve,
                           remote_store=remote_store,
                           remote_cache_pages=args.remote_cache_pages)
    engine.save(args.index_dir)
    info = engine.describe()
    print(f"sharded {info['cells']} cells into {info['shards']} "
          f"Hilbert-range shards {info['shard_cells']} "
          f"({info['data_pages']} data pages, "
          f"{info['index_pages']} index pages"
          + (", tiered remote storage" if info["tiered"] else "")
          + ")")
    print(f"saved to {args.index_dir}")
    return 0


def cmd_rebalance(args) -> int:
    """Split/merge shards of a saved sharded engine and re-save it."""
    from .shard import ShardedEngine

    index_dir = Path(args.index_dir)
    field = _load_field(Path(args.field)) if args.field else None
    engine = ShardedEngine.load(index_dir, field=field)
    if field is None and args.max_cells is not None:
        print("note: size splits need the field file (--field) to "
              "recover Hilbert keys; only drift splits and merges "
              "will run", file=sys.stderr)
    summary = engine.rebalance(max_cells=args.max_cells,
                               min_cells=args.min_cells,
                               drift_threshold=args.drift_threshold)
    print(f"rebalanced: {summary['splits']} split(s), "
          f"{summary['merges']} merge(s), "
          f"{summary['shards_before']} -> {summary['shards_after']} "
          f"shards")
    engine.save(index_dir)
    print(f"saved to {index_dir}")
    return 0


def cmd_serve(args) -> int:
    """Serve fields over the newline-JSON protocol (``repro.serve``)."""
    import asyncio
    import signal

    from .serve import AdmissionController, FieldServer, TenantQuota

    catalog = {}
    for spec in args.fields:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(
                f"error: field spec {spec!r} must be NAME=PATH")
        catalog[name] = path
    facade = EngineFacade(default_workers=args.workers,
                          default_cache_pages=args.cache_pages)
    for name, path in catalog.items():
        try:
            info = facade.open_field(name, path)
        except (FacadeError, FileNotFoundError) as exc:
            raise SystemExit(f"error: {name}: {exc}")
        print(f"opened {name}: {info['cells']} cells "
              f"({info['method']}, {args.workers} worker(s))",
              file=sys.stderr)
    try:
        quota = TenantQuota(rate=args.rate, burst=args.burst,
                            max_pending=args.max_queue,
                            on_limit=args.on_limit,
                            max_wait_s=args.max_wait,
                            timeout_s=args.timeout)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    qlog = None
    if args.qlog:
        from .obs.qlog import QueryLog
        qlog = QueryLog(args.qlog, latency_ms=args.qlog_threshold_ms,
                        pages=args.qlog_pages)
    try:
        server = FieldServer(facade=facade, catalog=catalog,
                             admission=AdmissionController(default=quota),
                             host=args.host, port=args.port,
                             executor_workers=args.executor_workers,
                             enable_metrics=not args.no_metrics,
                             trace_sample_rate=args.trace_sample_rate,
                             qlog=qlog,
                             metrics_port=args.metrics_port,
                             max_requests=args.max_requests)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    async def _run() -> None:
        host, port = await server.start()
        print(f"serving {len(catalog)} field(s) on {host}:{port}",
              file=sys.stderr)
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(f"metrics on http://{mhost}:{mport}/metrics",
                  file=sys.stderr)
        if args.port_file:
            Path(args.port_file).write_text(f"{host} {port}\n")
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(server.stop()))
            except (NotImplementedError, RuntimeError):
                pass
        await server.wait_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    outcomes = ", ".join(f"{code}={count}" for code, count
                         in sorted(server.counts.items()))
    print(f"served {server.requests_served} request(s)"
          + (f" ({outcomes})" if outcomes else ""), file=sys.stderr)
    if qlog is not None and qlog.entries:
        print(f"slow-query log: {qlog.entries} entrie(s) in {qlog.path}",
              file=sys.stderr)
    return 0


def cmd_top(args) -> int:
    """Live serving console against a running server."""
    from .serve.client import ClientError
    from .serve.top import run_top

    host, sep, port = args.address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise SystemExit(
            f"error: address {args.address!r} must be HOST:PORT")
    try:
        run_top(host, int(port), tenant=args.tenant,
                interval_s=args.interval,
                iterations=1 if args.once else None,
                refresh=False if args.once else None)
    except (ClientError, OSError) as exc:
        raise SystemExit(f"error: {exc}")
    return 0


def cmd_point(args) -> int:
    """Answer a conventional (Q1) point query on a field file."""
    field = _load_field(Path(args.field))
    index = PointIndex(field)
    value = index.value_at(args.x, args.y)
    if value is None:
        print("point is outside the field domain")
        return 1
    print(f"F({args.x}, {args.y}) = {value:.6f}")
    return 0


def _add_obs_flags(parser) -> None:
    """Attach the shared ``--trace``/``--metrics-out`` options."""
    parser.add_argument("--trace", metavar="FILE",
                        help="record query-lifecycle spans and write "
                             "them to FILE (Chrome trace-event JSON, "
                             "or JSONL if FILE ends in .jsonl)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="enable the metrics registry and dump it "
                             "to FILE as JSON after the run")


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Field value indexing (EDBT 2002 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build and save an I-Hilbert "
                                         "index over a field file")
    build.add_argument("field", help=".npy heights or .npz TIN")
    build.add_argument("index_dir", help="output index directory")
    build.add_argument("--curve", default="hilbert",
                       choices=["hilbert", "zorder", "gray"])
    build.add_argument("--bulk", action="store_true",
                       help="bulk-load: sort cells by Hilbert key, pack "
                            "pages sequentially, build the R*-tree "
                            "bottom-up (no per-insert descent)")
    build.set_defaults(func=cmd_build)

    query = sub.add_parser("query", help="run a value query against a "
                                         "saved index")
    query.add_argument("index_dir")
    query.add_argument("lo", type=float)
    query.add_argument("hi", type=float)
    query.add_argument("--regions", action="store_true",
                       help="materialize exact answer polygons")
    query.add_argument("--max-regions", type=int, default=10,
                       help="polygons to print with --regions")
    query.add_argument("--workers", type=int, default=1,
                       help="run through the parallel engine with N "
                            "worker threads (default: 1, serial)")
    _add_obs_flags(query)
    query.set_defaults(func=cmd_query)

    agg = sub.add_parser("aggregate",
                         help="approximate COUNT/SUM/AVG/area over a "
                              "value interval from learned models")
    agg.add_argument("index_dir")
    agg.add_argument("kind", choices=list(AGGREGATE_KINDS))
    agg.add_argument("lo", type=float)
    agg.add_argument("hi", type=float)
    agg.add_argument("--tolerance", type=float, default=None,
                     help="max acceptable error bound; hybrid mode reads "
                          "exact subfields until the bound fits "
                          "(default: model answers only)")
    agg.add_argument("--mode", default="hybrid",
                     choices=list(AGGREGATE_MODES),
                     help="model: never read pages; hybrid: fall back "
                          "per subfield to fit --tolerance; exact: "
                          "vectorized exact path (default: hybrid)")
    agg.add_argument("--json", action="store_true",
                     help="emit the result as JSON")
    _add_obs_flags(agg)
    agg.set_defaults(func=cmd_aggregate)

    batch = sub.add_parser("batch", help="run a file of value queries "
                                         "through the batch engine")
    batch.add_argument("index_dir")
    batch.add_argument("queries", help="text file: one 'lo hi' pair (or "
                                       "one exact value) per line")
    batch.add_argument("--estimate", default="area",
                       choices=["none", "area"],
                       help="estimation-step mode (default: area)")
    batch.add_argument("--cache-pages", type=int,
                       default=DEFAULT_BATCH_CACHE_PAGES,
                       help="shared buffer-pool capacity for the batch")
    batch.add_argument("--no-merge", action="store_true",
                       help="keep one fetch per query (shared cache only)")
    batch.add_argument("--compare", action="store_true",
                       help="also run the queries sequentially cold and "
                            "report the page-read reduction")
    batch.add_argument("--quiet", action="store_true",
                       help="suppress per-query lines, print totals only")
    batch.add_argument("--workers", type=int, default=1,
                       help="execute merged groups on N worker threads "
                            "(default: 1, the serial batch engine)")
    _add_obs_flags(batch)
    batch.set_defaults(func=cmd_batch)

    expl = sub.add_parser("explain", help="print the cost-based plan "
                                          "for a value query")
    expl.add_argument("index_dir")
    expl.add_argument("lo", type=float)
    expl.add_argument("hi", type=float)
    expl.add_argument("--analyze", action="store_true",
                      help="also execute the query and report actual "
                           "counters + estimation error")
    expl.add_argument("--json", action="store_true",
                      help="emit the report as JSON instead of text")
    expl.add_argument("--bins", type=int, default=64,
                      help="FieldStatistics histogram bins (default: 64)")
    expl.add_argument("--trace", metavar="FILE",
                      help="with --analyze: also write the recorded span "
                           "tree (Chrome trace JSON, or JSONL if FILE "
                           "ends in .jsonl)")
    expl.set_defaults(func=cmd_explain)

    info = sub.add_parser("info", help="describe a saved index")
    info.add_argument("index_dir")
    info.set_defaults(func=cmd_info)

    scrub = sub.add_parser("scrub", help="verify a saved index offline "
                                         "(checksums every file and "
                                         "page frame)")
    scrub.add_argument("index_dir")
    scrub.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    scrub.add_argument("--repair", action="store_true",
                       help="recompute stale manifest checksums over "
                            "files whose pages all verify (corrupt "
                            "pages are only reported; restore those "
                            "from a snapshot or rebuild)")
    scrub.set_defaults(func=cmd_scrub)

    update = sub.add_parser("update", help="apply vertex-value updates "
                                           "to a saved index through "
                                           "the write-ahead log")
    update.add_argument("index_dir")
    update.add_argument("field", help="the original field file the "
                                      "index was built from (.npy "
                                      "heights or .npz TIN)")
    update.add_argument("updates", help="text file: one 'vertex_id "
                                        "value' pair per line "
                                        "(cumulative, last line wins)")
    update.add_argument("--checkpoint", action="store_true",
                        help="save the updated index and truncate the "
                             "WAL afterwards")
    update.set_defaults(func=cmd_update)

    compact = sub.add_parser("compact", help="re-cluster stale "
                                             "subfields of a saved "
                                             "index")
    compact.add_argument("index_dir")
    compact.add_argument("--threshold", type=float, default=0.0,
                         help="minimum relative cost drift before a "
                              "subfield is re-clustered (default: 0, "
                              "any drift)")
    compact.set_defaults(func=cmd_compact)

    shard = sub.add_parser("shard", help="partition a field into "
                                         "Hilbert-range shards and "
                                         "save the sharded engine")
    shard.add_argument("field", help=".npy heights or .npz TIN")
    shard.add_argument("index_dir", help="output directory (shard map "
                                         "+ one index per shard)")
    shard.add_argument("--shards", type=int, default=4,
                       help="requested shard count (collapses when "
                            "the field is too small; default: 4)")
    shard.add_argument("--curve", default="hilbert",
                       choices=["hilbert", "zorder", "gray"])
    shard.add_argument("--tiered", action="store_true",
                       help="back every shard with the simulated "
                            "remote object store (cold pages fetched "
                            "on demand into a local cache)")
    shard.add_argument("--remote-cache-pages", type=int, default=64,
                       help="local cache frames per shard disk when "
                            "--tiered (default: 64)")
    shard.set_defaults(func=cmd_shard)

    rebalance = sub.add_parser("rebalance",
                               help="split oversized/drifted shards, "
                                    "merge undersized neighbours, and "
                                    "re-commit the shard map")
    rebalance.add_argument("index_dir")
    rebalance.add_argument("--field", default=None,
                           help="original field file; required for "
                                "size splits (recovers Hilbert keys)")
    rebalance.add_argument("--max-cells", type=int, default=None,
                           help="split any shard holding more cells "
                                "than this")
    rebalance.add_argument("--min-cells", type=int, default=None,
                           help="merge neighbours whose combined size "
                                "is at most this")
    rebalance.add_argument("--drift-threshold", type=float, default=None,
                           help="split a shard whose worst relative "
                                "cost drift (DESIGN.md §3.1.2) "
                                "exceeds this")
    rebalance.set_defaults(func=cmd_rebalance)

    serve = sub.add_parser("serve", help="serve fields over the "
                                         "newline-JSON protocol")
    serve.add_argument("fields", nargs="+", metavar="NAME=PATH",
                       help="field to serve: NAME bound to a saved "
                            "index directory, .npy heights or .npz TIN")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: 0, pick an ephemeral "
                            "port and print it)")
    serve.add_argument("--workers", type=int, default=2,
                       help="engine worker threads per batch request "
                            "(default: 2)")
    serve.add_argument("--cache-pages", type=int,
                       default=DEFAULT_BATCH_CACHE_PAGES,
                       help="shared buffer-pool capacity per batch")
    serve.add_argument("--executor-workers", type=int, default=4,
                       help="concurrent engine calls across all "
                            "tenants (default: 4)")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-tenant sustained requests/second "
                            "(default: unlimited)")
    serve.add_argument("--burst", type=int, default=8,
                       help="per-tenant burst capacity (default: 8)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="per-tenant pending-request bound before "
                            "backpressure rejection (default: 64)")
    serve.add_argument("--on-limit", default="wait",
                       choices=["wait", "reject"],
                       help="empty-token-bucket policy (default: wait)")
    serve.add_argument("--max-wait", type=float, default=1.0,
                       help="longest a rate-limited request may wait "
                            "for a token, seconds (default: 1.0)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-request execution deadline, seconds "
                            "(default: none)")
    serve.add_argument("--port-file", metavar="FILE",
                       help="write 'host port' to FILE once listening "
                            "(for scripted clients)")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="stop after N requests (demos and tests)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="leave the metrics registry disabled")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also answer plain-HTTP GET /metrics "
                            "(Prometheus text) on PORT (0 = ephemeral)")
    serve.add_argument("--trace-sample-rate", type=float, default=0.0,
                       metavar="P",
                       help="sample this fraction of requests into "
                            "span trees (client trace_ids always "
                            "sample; default: 0)")
    serve.add_argument("--qlog", metavar="FILE", default=None,
                       help="append slow requests to FILE as JSONL")
    serve.add_argument("--qlog-threshold-ms", type=float, default=100.0,
                       metavar="MS",
                       help="log requests at least this slow "
                            "(default: 100)")
    serve.add_argument("--qlog-pages", type=int, default=None,
                       metavar="N",
                       help="also log requests reading >= N pages")
    serve.set_defaults(func=cmd_serve)

    top = sub.add_parser("top", help="live serving console against a "
                                     "running server")
    top.add_argument("address", metavar="HOST:PORT",
                     help="server to watch, e.g. 127.0.0.1:4321")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (no ANSI refresh)")
    top.add_argument("--tenant", default="default",
                     help="tenant identity of the console's own "
                          "requests (default: 'default')")
    top.set_defaults(func=cmd_top)

    point = sub.add_parser("point", help="conventional (Q1) point query")
    point.add_argument("field", help=".npy heights or .npz TIN")
    point.add_argument("x", type=float)
    point.add_argument("y", type=float)
    point.set_defaults(func=cmd_point)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

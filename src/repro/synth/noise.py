"""Surrogate for the paper's Lyon urban-noise TIN (§4.1, Fig. 8b).

The original experiment used a proprietary noise survey of a Lyon
district represented as a TIN of about 9,000 triangles.  The substitution
superposes synthetic road (line) and point noise sources over a
background level, samples the model at random survey sites, and
Delaunay-triangulates the sites with the built-in Bowyer–Watson
implementation — preserving the two properties the experiment exercises:
an irregular triangulation and a smooth value field with localized
hotspots (noise levels in dB).
"""

from __future__ import annotations

import numpy as np

from ..field.tin import TINField

#: Spatial extent (meters) of the simulated district.
DISTRICT_SIZE = 2000.0
#: Ambient noise level far from every source, in dB.
BACKGROUND_DB = 35.0


def _segment_distance(px, py, x0, y0, x1, y1):
    """Vectorized distance from points to one line segment."""
    dx = x1 - x0
    dy = y1 - y0
    length2 = dx * dx + dy * dy
    t = np.clip(((px - x0) * dx + (py - y0) * dy) / length2, 0.0, 1.0)
    cx = x0 + t * dx
    cy = y0 + t * dy
    return np.hypot(px - cx, py - cy)


def noise_level(px: np.ndarray, py: np.ndarray,
                seed: int = 69003) -> np.ndarray:
    """Noise level in dB at the given positions.

    Roads emit with per-road source levels decaying ~ log distance (line
    sources); point sources (industry, venues) decay twice as fast.
    Contributions combine by energetic summation, as real noise maps do.
    """
    rng = np.random.default_rng(seed)
    energy = 10.0 ** (BACKGROUND_DB / 10.0) * np.ones_like(px, dtype=float)
    # Roads: fixed layout drawn from the seeded RNG.
    for _ in range(6):
        x0, y0, x1, y1 = rng.uniform(0, DISTRICT_SIZE, size=4)
        source_db = rng.uniform(75.0, 90.0)
        dist = _segment_distance(px, py, x0, y0, x1, y1)
        level = source_db - 10.0 * np.log10(np.maximum(dist, 1.0))
        energy += 10.0 ** (level / 10.0)
    # Point sources.
    for _ in range(10):
        sx, sy = rng.uniform(0, DISTRICT_SIZE, size=2)
        source_db = rng.uniform(80.0, 95.0)
        dist = np.hypot(px - sx, py - sy)
        level = source_db - 20.0 * np.log10(np.maximum(dist, 1.0))
        energy += 10.0 ** (level / 10.0)
    return 10.0 * np.log10(energy)


def lyon_like(num_sites: int = 4600, seed: int = 69003) -> TINField:
    """Synthetic urban-noise TIN with ~2 × ``num_sites`` triangles.

    The default 4,600 survey sites triangulate to roughly 9,100
    triangles, matching the paper's "about 9,000 triangles".
    """
    if num_sites < 3:
        raise ValueError(f"need at least 3 sites, got {num_sites}")
    rng = np.random.default_rng(seed)
    sites = rng.uniform(0, DISTRICT_SIZE, size=(num_sites, 2))
    values = noise_level(sites[:, 0], sites[:, 1], seed=seed)
    return TINField(sites, values)

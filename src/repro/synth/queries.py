"""Random interval query workloads (paper §4 protocol).

Queries are parameterized by ``Qinterval``: the query-interval length as a
fraction of the field's value range normalized to ``[0, 1]``.  Qinterval 0
is an exact value query.  The paper draws 200 random queries per setting
and reports the mean execution time; :func:`value_query_workload`
reproduces that draw deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from ..core.query import ValueQuery
from ..geometry import Interval


def value_query_workload(value_range: Interval, qinterval: float,
                         count: int = 200,
                         seed: int | None = 0) -> list[ValueQuery]:
    """Draw ``count`` random value queries of relative length ``qinterval``.

    The query's low endpoint is uniform over the feasible range so the
    whole query always lies inside the field's value range.
    """
    if not 0.0 <= qinterval <= 1.0:
        raise ValueError(f"qinterval must be in [0, 1], got {qinterval}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    span = value_range.hi - value_range.lo
    length = qinterval * span
    los = value_range.lo + rng.random(count) * (span - length)
    return [ValueQuery(float(lo), float(lo + length)) for lo in los]

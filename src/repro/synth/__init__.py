"""Synthetic data and workload generators for the paper's experiments."""

from .fractal import diamond_square, fractal_dem_heights
from .monotonic import monotonic_field, monotonic_heights
from .noise import lyon_like, noise_level
from .queries import value_query_workload
from .terrain import roseburg_like, roseburg_like_heights

__all__ = [
    "diamond_square",
    "fractal_dem_heights",
    "lyon_like",
    "monotonic_field",
    "monotonic_heights",
    "noise_level",
    "roseburg_like",
    "roseburg_like_heights",
    "value_query_workload",
]

"""Synthetic monotonic field ``w(x, y) = x + y`` (paper §4.3, Fig. 12)."""

from __future__ import annotations

import numpy as np

from ..field.dem import DEMField


def monotonic_heights(cells_per_side: int) -> np.ndarray:
    """Vertex grid of the plane ``w = x + y``."""
    if cells_per_side < 1:
        raise ValueError(
            f"cells_per_side must be >= 1, got {cells_per_side}")
    coords = np.arange(cells_per_side + 1, dtype=np.float64)
    return coords[None, :] + coords[:, None]


def monotonic_field(cells_per_side: int = 512) -> DEMField:
    """The paper's 512×512 monotonic DEM (size configurable)."""
    return DEMField(monotonic_heights(cells_per_side))

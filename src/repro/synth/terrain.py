"""Surrogate for the paper's real USGS terrain data (§4.1, Fig. 8a).

The original experiment used the USGS DEM of Roseburg, USA (512×512,
262,144 cells) fetched from edcwww.cr.usgs.gov — unavailable offline.
The substitution is a mid-roughness diamond-square fractal, lightly
smoothed and rescaled to a plausible elevation range: what the experiment
exercises is only the value-field autocorrelation typical of real
terrain, which fractal terrain at H≈0.7 is the standard stand-in for
(the paper itself uses the same generator in §4.2).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from ..field.dem import DEMField
from .fractal import fractal_dem_heights

#: Elevation range (meters) the surrogate is scaled to; Roseburg's DEM
#: spans roughly 100–600 m.
ELEVATION_RANGE = (100.0, 600.0)


def roseburg_like_heights(cells_per_side: int = 512,
                          roughness: float = 0.7,
                          smoothing: float = 1.0,
                          seed: int = 20020314) -> np.ndarray:
    """Fractal elevation grid with terrain-like statistics."""
    grid = fractal_dem_heights(cells_per_side, roughness, seed=seed)
    if smoothing > 0:
        grid = gaussian_filter(grid, smoothing)
    lo, hi = ELEVATION_RANGE
    gmin, gmax = grid.min(), grid.max()
    span = gmax - gmin if gmax > gmin else 1.0
    return (grid - gmin) / span * (hi - lo) + lo


def roseburg_like(cells_per_side: int = 512, roughness: float = 0.7,
                  smoothing: float = 1.0, seed: int = 20020314) -> DEMField:
    """The Fig. 8a terrain field (512×512 cells by default)."""
    return DEMField(
        roseburg_like_heights(cells_per_side, roughness, smoothing, seed))

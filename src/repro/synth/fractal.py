"""Random fractal terrain via the diamond-square algorithm (paper §4.2).

Midpoint-displacement terrain with roughness parameter ``H``: the random
offset range starts at the full value range and shrinks by ``2^(−H)``
every subdivision pass, so ``H → 1`` yields smooth hills and ``H → 0``
jagged noise — exactly the generator (and the parameterization) the
paper uses for its synthetic experiments (Figs. 9–11).
"""

from __future__ import annotations

import numpy as np


def diamond_square(order: int, roughness: float,
                   seed: int | None = None) -> np.ndarray:
    """Generate a ``(2^order + 1)²`` fractal height grid in ``[-1, 1]``.

    Parameters
    ----------
    order:
        Number of subdivision passes; the grid has ``2^order + 1`` vertices
        per side.
    roughness:
        The paper's ``H`` in [0, 1]; the random range is scaled by
        ``2^(−H)`` after every pass.
    seed:
        RNG seed for reproducibility.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if not 0.0 <= roughness <= 1.0:
        raise ValueError(f"roughness must be in [0, 1], got {roughness}")
    rng = np.random.default_rng(seed)
    side = (1 << order) + 1
    grid = np.zeros((side, side), dtype=np.float64)
    # Initial random heights at the four corners (paper: in [-1, 1]).
    grid[0, 0], grid[0, -1], grid[-1, 0], grid[-1, -1] = rng.uniform(
        -1.0, 1.0, size=4)

    scale = 1.0
    step = side - 1
    shrink = 2.0 ** (-roughness)
    while step > 1:
        half = step // 2
        # Diamond step: center of every square gets the corner average
        # plus a random offset.
        tl = grid[:-1:step, :-1:step]
        tr = grid[:-1:step, step::step]
        bl = grid[step::step, :-1:step]
        br = grid[step::step, step::step]
        centers = (tl + tr + bl + br) / 4.0
        offsets = rng.uniform(-scale, scale, size=centers.shape)
        grid[half::step, half::step] = centers + offsets

        # Square step: remaining edge midpoints get the average of their
        # (up to four) diamond neighbors plus a random offset.
        for row_start, col_start in ((0, half), (half, 0)):
            rows = np.arange(row_start, side, step)
            cols = np.arange(col_start, side, step)
            rr, cc = np.meshgrid(rows, cols, indexing="ij")
            total = np.zeros(rr.shape, dtype=np.float64)
            count = np.zeros(rr.shape, dtype=np.float64)
            for dr, dc in ((-half, 0), (half, 0), (0, -half), (0, half)):
                nr = rr + dr
                nc = cc + dc
                valid = ((nr >= 0) & (nr < side)
                         & (nc >= 0) & (nc < side))
                total[valid] += grid[nr[valid], nc[valid]]
                count[valid] += 1.0
            offsets = rng.uniform(-scale, scale, size=rr.shape)
            grid[rr, cc] = total / count + offsets

        scale *= shrink
        step = half
    return grid


def fractal_dem_heights(cells_per_side: int, roughness: float,
                        seed: int | None = None) -> np.ndarray:
    """Fractal vertex grid sized for ``cells_per_side`` square cells.

    The returned array has ``cells_per_side + 1`` vertices per side.
    Diamond-square itself needs a power-of-two cell count, so other sizes
    are generated at the next power of two and cropped; power-of-two
    sizes take the direct path and are byte-identical to before.
    """
    if cells_per_side < 1:
        raise ValueError(
            f"cells_per_side must be >= 1, got {cells_per_side}")
    order = max(1, int(cells_per_side - 1).bit_length())
    grid = diamond_square(order, roughness, seed=seed)
    return grid[:cells_per_side + 1, :cells_per_side + 1]

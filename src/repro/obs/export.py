"""Exporters: span trees (text/JSONL/Chrome trace) and Prometheus text.

The Chrome trace format (``{"traceEvents": [...]}`` with complete
``"ph": "X"`` events, microsecond timestamps) loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; each event
carries the span's I/O deltas in ``args``, with ``page_reads_self``
holding the *exclusive* delta, so summing it over every event
reconstructs the run's total page reads exactly.  Spans carrying a
``tid`` attribute (the parallel engine's ``worker[w]`` spans, which
record their OS thread id) land on their own lane, with a
``thread_name`` metadata event naming it — so Perfetto shows one lane
per worker instead of one flat lane.

:func:`render_prometheus` is the serving layer's ``GET /metrics``
exposition: the full Prometheus text format over a
:class:`~repro.obs.metrics.MetricsRegistry`, with correct label-value
and help-text escaping (the registry's own ``render_text`` is a debug
dump and escapes nothing).
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import Histogram, REGISTRY
from .trace import Span, Tracer


def _as_spans(spans) -> list[Span]:
    """Accept a Tracer, one Span, or an iterable of root spans."""
    if isinstance(spans, Tracer):
        return list(spans.roots)
    if isinstance(spans, Span):
        return [spans]
    return list(spans)


def _io_args(span: Span) -> dict:
    """Counter payload of one span, for JSON exporters."""
    args = dict(span.attrs)
    io, self_io = span.io, span.self_io
    if io is not None:
        args.update(
            page_reads=io.page_reads,
            page_reads_self=self_io.page_reads,
            random_reads=io.random_reads,
            sequential_reads=io.sequential_reads,
            skipped_pages=io.skipped_pages,
            cache_hits=io.cache_hits,
            page_writes=io.page_writes,
        )
        # Fault-path counters only appear when something actually went
        # wrong, keeping the common-case payload unchanged.
        if io.read_retries:
            args["read_retries"] = io.read_retries
        if io.checksum_failures:
            args["checksum_failures"] = io.checksum_failures
    pool, self_pool = span.pool, span.self_pool
    if pool is not None:
        args.update(
            pool_hits=pool.hits,
            pool_misses=pool.misses,
            pool_evictions=pool.evictions,
            pool_hits_self=self_pool.hits,
        )
    return args


# -- text ------------------------------------------------------------------

def render_span_tree(spans) -> str:
    """Readable tree: wall time + page-read split per span.

    ``spans`` may be a :class:`Tracer`, one root :class:`Span`, or a
    list of roots.
    """
    roots = _as_spans(spans)
    lines: list[str] = []
    for root in roots:
        _render_one(root, lines, prefix="", is_last=True, is_root=True)
    return "\n".join(lines)


def _span_label(span: Span) -> str:
    parts = [f"{span.name}", f"{span.duration_ms:8.3f} ms"]
    io = span.io
    if io is not None:
        parts.append(f"pages={io.page_reads}"
                     f" ({io.random_reads} rnd + {io.sequential_reads} seq)")
        if io.cache_hits:
            parts.append(f"hits={io.cache_hits}")
    if span.attrs:
        attrs = " ".join(f"{k}={_fmt(v)}" for k, v in span.attrs.items())
        parts.append(f"[{attrs}]")
    return "  ".join(parts)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _render_one(span: Span, lines: list[str], prefix: str,
                is_last: bool, is_root: bool = False) -> None:
    if is_root:
        lines.append(_span_label(span))
        child_prefix = ""
    else:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + _span_label(span))
        child_prefix = prefix + ("    " if is_last else "|   ")
    for i, child in enumerate(span.children):
        _render_one(child, lines, child_prefix,
                    is_last=(i == len(span.children) - 1))


# -- JSONL -----------------------------------------------------------------

def span_to_dict(span: Span, depth: int = 0) -> dict:
    """Flat JSON-safe record of one span (no children)."""
    record = {
        "name": span.name,
        "depth": depth,
        "start_ns": span.t0_ns,
        "duration_ms": span.duration_ms,
        "children": len(span.children),
    }
    record.update(_io_args(span))
    return record


def spans_to_jsonl(spans) -> str:
    """One JSON object per span, pre-order, ``depth`` giving nesting."""
    lines = []
    for root in _as_spans(spans):
        for span, depth in root.walk():
            lines.append(json.dumps(span_to_dict(span, depth),
                                    sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


# -- nested dict (qlog, JSON payloads) --------------------------------------

def span_to_tree(span: Span) -> dict:
    """Recursive JSON-safe record of one span including its children.

    The shape the slow-query log embeds: ``name``/``duration_ms``/
    counter args at each node, children nested under ``children`` (the
    key is omitted for leaves, keeping common entries compact).
    """
    record = {"name": span.name, "duration_ms": round(span.duration_ms, 4)}
    record.update(_io_args(span))
    if span.children:
        record["children"] = [span_to_tree(c) for c in span.children]
    return record


# -- Chrome trace-event JSON (Perfetto) ------------------------------------

def spans_to_chrome_trace(spans, process_name: str = "repro") -> dict:
    """Chrome trace-event document for a span forest.

    Events are complete (``"ph": "X"``) with microsecond ``ts``/``dur``
    relative to the earliest span.  Every span inherits its lane
    (``tid``) from the nearest ancestor carrying a ``tid`` attribute —
    the parallel engine's ``worker[w]`` spans record their OS thread id
    there — and falls back to lane 1, so serial traces render exactly
    as before while parallel traces fan out into one lane per worker.
    Each distinct lane gets a ``thread_name`` metadata event (the
    naming span's name), and per-span counter deltas ride in ``args``.
    """
    roots = _as_spans(spans)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    lane_names: dict[int, str] = {}
    if roots:
        base_ns = min(root.t0_ns for root in roots)
        for root in roots:
            # walk() is pre-order, so a stack of (span, inherited tid)
            # keeps each span on its nearest ancestor's lane.
            todo = [(root, 1)]
            while todo:
                span, tid = todo.pop()
                own = span.attrs.get("tid")
                if isinstance(own, int) and not isinstance(own, bool):
                    tid = own
                    lane_names.setdefault(tid, span.name)
                events.append({
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": (span.t0_ns - base_ns) / 1e3,
                    "dur": (span.t1_ns - span.t0_ns) / 1e3,
                    "args": _io_args(span),
                })
                for child in reversed(span.children):
                    todo.append((child, tid))
    for tid, name in sorted(lane_names.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- Prometheus text exposition ---------------------------------------------

def _prom_label_value(value) -> str:
    """Escape one label value per the exposition-format spec."""
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _prom_help(text: str) -> str:
    """Escape help text (backslash and newline only; quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: dict, **extra) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_prom_label_value(v)}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _prom_number(value) -> str:
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) \
        and not float(value).is_integer() else str(int(value))


def render_prometheus(registry=None) -> str:
    """Render a metrics registry in the Prometheus text format (0.0.4).

    Unlike the registry's debug ``render_text``, this escapes label
    values and help text, renders histograms with per-``le`` cumulative
    buckets (``+Inf`` included) plus ``_sum``/``_count``, and emits
    ``# HELP``/``# TYPE`` headers for every family with data.  The
    output is what the server's ``GET /metrics`` listener and the
    ``metrics`` verb's ``format="prometheus"`` mode serve.
    """
    if registry is None:
        registry = REGISTRY
    lines: list[str] = []
    for name, metric in sorted(registry._metrics.items()):
        series = metric.collect()["series"]
        if not series:
            continue
        if metric.help:
            lines.append(f"# HELP {name} {_prom_help(metric.help)}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            for row in series:
                labels = row["labels"]
                cumulative = 0
                for bound, count in zip(metric.buckets,
                                        row["bucket_counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(labels, le=_prom_number(bound))}"
                        f" {cumulative}")
                cumulative += row["bucket_counts"][len(metric.buckets)]
                lines.append(f"{name}_bucket"
                             f"{_prom_labels(labels, le='+Inf')}"
                             f" {cumulative}")
                lines.append(f"{name}_sum{_prom_labels(labels)} "
                             f"{_prom_number(row['sum'])}")
                lines.append(f"{name}_count{_prom_labels(labels)} "
                             f"{row['count']}")
        else:
            for row in series:
                lines.append(f"{name}{_prom_labels(row['labels'])} "
                             f"{_prom_number(row['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(spans, path: str | Path,
                process_name: str = "repro") -> int:
    """Write a span forest to ``path``; returns the span count.

    A ``.jsonl`` suffix selects the flat JSONL format; anything else
    gets Chrome trace-event JSON (Perfetto-loadable).
    """
    path = Path(path)
    roots = _as_spans(spans)
    count = sum(1 for root in roots for _ in root.walk())
    if path.suffix == ".jsonl":
        path.write_text(spans_to_jsonl(roots))
    else:
        path.write_text(json.dumps(spans_to_chrome_trace(
            roots, process_name=process_name), indent=1))
    return count

"""Span-tree exporters: pretty text, JSONL, and Chrome trace-event JSON.

The Chrome trace format (``{"traceEvents": [...]}`` with complete
``"ph": "X"`` events, microsecond timestamps) loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; each event
carries the span's I/O deltas in ``args``, with ``page_reads_self``
holding the *exclusive* delta, so summing it over every event
reconstructs the run's total page reads exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import Span, Tracer


def _as_spans(spans) -> list[Span]:
    """Accept a Tracer, one Span, or an iterable of root spans."""
    if isinstance(spans, Tracer):
        return list(spans.roots)
    if isinstance(spans, Span):
        return [spans]
    return list(spans)


def _io_args(span: Span) -> dict:
    """Counter payload of one span, for JSON exporters."""
    args = dict(span.attrs)
    io, self_io = span.io, span.self_io
    if io is not None:
        args.update(
            page_reads=io.page_reads,
            page_reads_self=self_io.page_reads,
            random_reads=io.random_reads,
            sequential_reads=io.sequential_reads,
            skipped_pages=io.skipped_pages,
            cache_hits=io.cache_hits,
            page_writes=io.page_writes,
        )
        # Fault-path counters only appear when something actually went
        # wrong, keeping the common-case payload unchanged.
        if io.read_retries:
            args["read_retries"] = io.read_retries
        if io.checksum_failures:
            args["checksum_failures"] = io.checksum_failures
    pool, self_pool = span.pool, span.self_pool
    if pool is not None:
        args.update(
            pool_hits=pool.hits,
            pool_misses=pool.misses,
            pool_evictions=pool.evictions,
            pool_hits_self=self_pool.hits,
        )
    return args


# -- text ------------------------------------------------------------------

def render_span_tree(spans) -> str:
    """Readable tree: wall time + page-read split per span.

    ``spans`` may be a :class:`Tracer`, one root :class:`Span`, or a
    list of roots.
    """
    roots = _as_spans(spans)
    lines: list[str] = []
    for root in roots:
        _render_one(root, lines, prefix="", is_last=True, is_root=True)
    return "\n".join(lines)


def _span_label(span: Span) -> str:
    parts = [f"{span.name}", f"{span.duration_ms:8.3f} ms"]
    io = span.io
    if io is not None:
        parts.append(f"pages={io.page_reads}"
                     f" ({io.random_reads} rnd + {io.sequential_reads} seq)")
        if io.cache_hits:
            parts.append(f"hits={io.cache_hits}")
    if span.attrs:
        attrs = " ".join(f"{k}={_fmt(v)}" for k, v in span.attrs.items())
        parts.append(f"[{attrs}]")
    return "  ".join(parts)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _render_one(span: Span, lines: list[str], prefix: str,
                is_last: bool, is_root: bool = False) -> None:
    if is_root:
        lines.append(_span_label(span))
        child_prefix = ""
    else:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + _span_label(span))
        child_prefix = prefix + ("    " if is_last else "|   ")
    for i, child in enumerate(span.children):
        _render_one(child, lines, child_prefix,
                    is_last=(i == len(span.children) - 1))


# -- JSONL -----------------------------------------------------------------

def span_to_dict(span: Span, depth: int = 0) -> dict:
    """Flat JSON-safe record of one span (no children)."""
    record = {
        "name": span.name,
        "depth": depth,
        "start_ns": span.t0_ns,
        "duration_ms": span.duration_ms,
        "children": len(span.children),
    }
    record.update(_io_args(span))
    return record


def spans_to_jsonl(spans) -> str:
    """One JSON object per span, pre-order, ``depth`` giving nesting."""
    lines = []
    for root in _as_spans(spans):
        for span, depth in root.walk():
            lines.append(json.dumps(span_to_dict(span, depth),
                                    sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


# -- Chrome trace-event JSON (Perfetto) ------------------------------------

def spans_to_chrome_trace(spans, process_name: str = "repro") -> dict:
    """Chrome trace-event document for a span forest.

    Events are complete (``"ph": "X"``) with microsecond ``ts``/``dur``
    relative to the earliest span, all on one pid/tid so the nesting
    renders as a flame graph.  Per-span counter deltas ride in ``args``.
    """
    roots = _as_spans(spans)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    if roots:
        base_ns = min(root.t0_ns for root in roots)
        for root in roots:
            for span, _depth in root.walk():
                events.append({
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "pid": 1,
                    "tid": 1,
                    "ts": (span.t0_ns - base_ns) / 1e3,
                    "dur": (span.t1_ns - span.t0_ns) / 1e3,
                    "args": _io_args(span),
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(spans, path: str | Path,
                process_name: str = "repro") -> int:
    """Write a span forest to ``path``; returns the span count.

    A ``.jsonl`` suffix selects the flat JSONL format; anything else
    gets Chrome trace-event JSON (Perfetto-loadable).
    """
    path = Path(path)
    roots = _as_spans(spans)
    count = sum(1 for root in roots for _ in root.walk())
    if path.suffix == ".jsonl":
        path.write_text(spans_to_jsonl(roots))
    else:
        path.write_text(json.dumps(spans_to_chrome_trace(
            roots, process_name=process_name), indent=1))
    return count

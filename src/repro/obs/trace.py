"""Hierarchical query-lifecycle tracing.

The paper's argument is about *where* a query spends its page reads
(clustered sequential bursts vs. scattered random probes), but end-of-
query ``IOStats`` totals cannot show that.  A :class:`Tracer` captures a
tree of context-manager *spans* (``query → plan → filter → fetch →
estimate``, and ``batch → merge → group[i]`` in the batch engine), each
recording wall time plus the :class:`~repro.storage.stats.IOStats` and
buffer-pool counter deltas that accumulated while it was open.

Tracing is strictly opt-in.  Every index carries
:data:`NULL_TRACER` by default, whose :meth:`~NullTracer.span` returns a
shared no-op context manager — no allocations, no counter reads, no
side effects — so the disabled hot path is indistinguishable from an
uninstrumented build (``tests/test_obs_trace.py`` pins this).

Usage::

    tracer = Tracer().attach(index)     # installs as index.tracer
    index.query(ValueQuery(0.4, 0.6))
    print(render_span_tree(tracer.roots))
"""

from __future__ import annotations

import time

from ..storage.buffer import PoolCounters
from ..storage.stats import IOStats


class Span:
    """One traced section: wall time + I/O and pool counter deltas.

    Spans are context managers handed out by :meth:`Tracer.span`; they
    nest through the tracer's stack, so the span opened innermost
    becomes a child of the one surrounding it.

    ``io``/``pool`` hold *inclusive* deltas (everything that happened
    while the span was open, children included); :attr:`self_io` and
    :attr:`self_pool` subtract the children, so self deltas over a span
    tree partition the root's totals exactly.
    """

    __slots__ = ("name", "attrs", "children", "t0_ns", "t1_ns", "io",
                 "pool", "_tracer", "_io0", "_pool0")

    #: Real spans record; the shared null span reports ``False``.
    enabled = True

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.t0_ns = 0
        self.t1_ns = 0
        self.io: IOStats | None = None
        self.pool: PoolCounters | None = None
        self._tracer = tracer
        self._io0: IOStats | None = None
        self._pool0: PoolCounters | None = None

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stats = tracer.stats
        if stats is not None:
            self._io0 = stats.snapshot()
        if tracer.pools:
            self._pool0 = tracer._pool_totals()
        tracer._stack.append(self)
        self.t0_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1_ns = time.perf_counter_ns()
        tracer = self._tracer
        stats = tracer.stats
        if stats is not None and self._io0 is not None:
            self.io = stats.diff(self._io0)
        if self._pool0 is not None:
            self.pool = tracer._pool_totals().diff(self._pool0)
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(self)
        else:
            tracer.roots.append(self)
        return False

    # -- derived views -------------------------------------------------------

    @property
    def duration_ms(self) -> float:
        """Wall time the span was open, in milliseconds."""
        return (self.t1_ns - self.t0_ns) / 1e6

    @property
    def self_io(self) -> IOStats | None:
        """I/O of this span minus its children (exclusive delta)."""
        io = self.io
        if io is None:
            return None
        for child in self.children:
            if child.io is not None:
                io = io.diff(child.io)
        return io

    @property
    def self_pool(self) -> PoolCounters | None:
        """Pool traffic of this span minus its children."""
        pool = self.pool
        if pool is None:
            return None
        for child in self.children:
            if child.pool is not None:
                pool = pool.diff(child.pool)
        return pool

    def walk(self):
        """Yield ``(span, depth)`` over the subtree, pre-order."""
        todo = [(self, 0)]
        while todo:
            span, depth = todo.pop()
            yield span, depth
            for child in reversed(span.children):
                todo.append((child, depth + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
                f"children={len(self.children)})")


class Tracer:
    """Collects a forest of :class:`Span` trees for one traced run.

    Parameters
    ----------
    stats:
        The :class:`IOStats` object spans snapshot on entry/exit.  Use
        :meth:`attach` to bind to an index's shared counter.
    pools:
        Buffer pools whose hit/miss/eviction counters spans also delta.
    """

    enabled = True

    def __init__(self, stats: IOStats | None = None, pools=()) -> None:
        self.stats = stats
        self.pools = tuple(pools)
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, attrs: dict | None = None) -> Span:
        """Open a new span (use as a context manager)."""
        return Span(self, name, attrs)

    def attach(self, index) -> "Tracer":
        """Bind to a :class:`~repro.core.base.ValueIndex` and install.

        Points the tracer at the index's shared ``IOStats`` and its
        buffer pools (data file plus, when present, the R*-tree file),
        and sets ``index.tracer = self`` so every query through the
        index records spans.  Returns ``self`` for chaining.
        """
        self.stats = index.stats
        pools = [index.store.pool]
        tree = getattr(index, "tree", None)
        if tree is not None:
            pools.append(tree.pool)
        self.pools = tuple(pools)
        index.tracer = self
        return self

    @staticmethod
    def detach(index) -> None:
        """Restore the index's no-op tracer."""
        index.tracer = NULL_TRACER

    def clear(self) -> None:
        """Drop every recorded span (open spans are abandoned too)."""
        self.roots = []
        self._stack = []

    def _pool_totals(self) -> PoolCounters:
        h = m = e = 0
        for pool in self.pools:
            h += pool.hits
            m += pool.misses
            e += pool.evictions
        return PoolCounters(hits=h, misses=m, evictions=e)


class _NullSpan:
    """Shared do-nothing span: the disabled tracer's context manager."""

    __slots__ = ()

    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead stand-in used when tracing is off.

    :meth:`span` hands back one shared singleton, so the instrumented
    hot paths allocate nothing and touch no counters when disabled.
    """

    __slots__ = ()

    enabled = False
    roots: tuple = ()

    def span(self, name: str, attrs: dict | None = None) -> _NullSpan:
        """Return the shared no-op span (ignores its arguments)."""
        return _NULL_SPAN

    def clear(self) -> None:
        """No-op: a disabled tracer records nothing to drop."""
        pass


#: Process-wide disabled tracer every index starts with.
NULL_TRACER = NullTracer()

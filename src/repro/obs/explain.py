"""EXPLAIN / EXPLAIN ANALYZE reports for field value queries.

``explain`` runs a query through the cost-based planning step
(:func:`~repro.core.planner.estimate_plan`) without executing it and
reports the chosen access path, both candidate plan costs, and the
:class:`~repro.core.statistics.FieldStatistics` selectivity estimate.
With ``analyze=True`` it additionally executes the query under a
:class:`~repro.obs.trace.Tracer` and reports the actual counters next
to the estimates, including the estimation error — the number a
PolyFit-style approximate planner must watch to stay trustworthy.

Surfaced as ``python -m repro explain <index-dir> <lo> <hi>
[--analyze]``; importable for tests and notebooks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..storage.stats import IOStats
from .trace import NULL_TRACER, Span, Tracer
from .export import render_span_tree


@dataclass
class ExplainReport:
    """Everything the EXPLAIN (ANALYZE) pipeline produced for one query."""

    method: str
    lo: float
    hi: float
    cells: int
    data_pages: int
    index_pages: int
    tree_height: int
    #: The planner's decision plus both candidate costs.
    plan: object
    #: Path the index will actually execute ("filtered" unless the
    #: index is self-planning and the plan chose "scan").
    executed_path: str
    #: Estimated page reads of the executed path (tree reads included).
    est_page_reads: int
    #: Estimated page reads of each candidate path.
    est_pages_filtered: int
    est_pages_scan: int
    #: FieldStatistics selectivity estimate.
    est_candidates: float
    est_selectivity: float
    stats_bins: int
    # -- filled by analyze ---------------------------------------------------
    analyzed: bool = False
    actual_io: IOStats | None = None
    actual_candidates: int | None = None
    actual_seconds: float | None = None
    answer_area: float | None = None
    trace_roots: list[Span] = dc_field(default_factory=list)

    @property
    def page_error(self) -> float | None:
        """Relative error of the executed path's page estimate."""
        if self.actual_io is None or not self.actual_io.page_reads:
            return None
        return ((self.est_page_reads - self.actual_io.page_reads)
                / self.actual_io.page_reads)

    @property
    def candidate_error(self) -> float | None:
        """Relative error of the selectivity estimate."""
        if self.actual_candidates is None or not self.actual_candidates:
            return None
        return ((self.est_candidates - self.actual_candidates)
                / self.actual_candidates)


def _interval_statistics(index, bins: int):
    """FieldStatistics for an index, without charging accounted I/O.

    Delegates to :meth:`~repro.core.base.ValueIndex.statistics`, which
    stays fresh under live updates (it recomputes from the record
    store once the index has been written to) and caches per bin
    count.  The metadata-scan fallback covers index-like objects that
    predate that method.
    """
    statistics = getattr(index, "statistics", None)
    if statistics is not None:
        return statistics(bins=bins)

    from ..core.statistics import FieldStatistics

    if getattr(index, "field", None) is not None:
        return FieldStatistics.from_field(index.field, bins=bins)
    before = index.stats.snapshot()
    vmins, vmaxs = [], []
    for page in index.store.scan():
        vmins.append(page["vmin"].astype(np.float64))
        vmaxs.append(page["vmax"].astype(np.float64))
    index.stats.restore(before)
    index.clear_caches()
    return FieldStatistics.from_intervals(
        np.concatenate(vmins), np.concatenate(vmaxs), bins=bins)


def explain(index, lo: float, hi: float, *, analyze: bool = False,
            estimate: str = "area", bins: int = 64,
            costs=None) -> ExplainReport:
    """Build an EXPLAIN (ANALYZE) report for ``[lo, hi]`` on ``index``.

    ``index`` is any grouped (subfield) index — built fresh or reloaded
    with :func:`~repro.core.persist.load_index`.  ``analyze=True``
    executes the query cold under a tracer; estimates are computed
    first, so they can never peek at the execution.
    """
    from ..core.planner import PlannedIndex, estimate_plan

    if costs is None:
        costs = getattr(index, "costs", None)
    plan = estimate_plan(index, lo, hi, costs)
    stats = _interval_statistics(index, bins)
    est_candidates = stats.estimate_candidates(lo, hi)
    est_pages_filtered = plan.est_pages + index.tree.height
    est_pages_scan = index.store.num_pages
    executed_path = (plan.path if isinstance(index, PlannedIndex)
                     else "filtered")
    report = ExplainReport(
        method=index.name,
        lo=lo, hi=hi,
        cells=len(index.store),
        data_pages=index.store.num_pages,
        index_pages=index.index_pages,
        tree_height=index.tree.height,
        plan=plan,
        executed_path=executed_path,
        est_page_reads=(est_pages_filtered
                        if executed_path == "filtered"
                        else est_pages_scan),
        est_pages_filtered=est_pages_filtered,
        est_pages_scan=est_pages_scan,
        est_candidates=est_candidates,
        est_selectivity=stats.estimate_selectivity(lo, hi),
        stats_bins=bins,
    )
    if not analyze:
        return report

    from ..core.query import ValueQuery

    previous_tracer = getattr(index, "tracer", NULL_TRACER)
    tracer = Tracer().attach(index)
    try:
        index.clear_caches()
        t0 = time.perf_counter()
        result = index.query(ValueQuery(lo, hi), estimate=estimate)
        report.actual_seconds = time.perf_counter() - t0
    finally:
        index.tracer = previous_tracer
    report.analyzed = True
    report.actual_io = result.io
    report.actual_candidates = result.candidate_count
    report.answer_area = result.area
    report.trace_roots = list(tracer.roots)
    return report


# -- rendering -------------------------------------------------------------

def _pct(value: float | None) -> str:
    return "n/a" if value is None else f"{value:+.1%}"


def render_explain(report: ExplainReport) -> str:
    """Human-readable EXPLAIN (ANALYZE) block."""
    plan = report.plan
    mark = {True: "->", False: "  "}
    lines = [
        f"EXPLAIN{' ANALYZE' if report.analyzed else ''} "
        f"value query [{report.lo:g}, {report.hi:g}] "
        f"on {report.method}",
        f"  store: {report.cells} cells, {report.data_pages} data pages, "
        f"{report.index_pages} index pages "
        f"(tree height {report.tree_height})",
        f"  statistics ({report.stats_bins}-bin histogram): "
        f"{report.est_candidates:.0f} candidate cells estimated "
        f"({report.est_selectivity:.2%} selectivity)",
        "  plan:",
        f"  {mark[plan.path == 'filtered']} filtered: "
        f"cost={plan.filtered_cost:.1f}  "
        f"~{report.est_pages_filtered} page reads "
        f"({plan.est_runs} runs + {report.tree_height} tree reads)",
        f"  {mark[plan.path == 'scan']} scan:     "
        f"cost={plan.scan_cost:.1f}  "
        f"~{report.est_pages_scan} page reads (sequential sweep)",
        f"  chosen path: {plan.path}"
        + ("" if report.executed_path == plan.path
           else f" (executed: {report.executed_path} — "
                f"method has no planner)"),
    ]
    if report.analyzed:
        io = report.actual_io
        lines += [
            "  actual:",
            f"    page reads: {io.page_reads} "
            f"({io.random_reads} random, {io.sequential_reads} "
            f"sequential, {io.cache_hits} cache hits)",
            f"    candidates: {report.actual_candidates}"
            + ("" if report.answer_area is None
               else f", answer area {report.answer_area:.4f}"),
            f"    cpu time: {report.actual_seconds * 1e3:.2f} ms",
            "  estimation error:",
            f"    pages:      estimated {report.est_page_reads} vs actual "
            f"{io.page_reads}  ({_pct(report.page_error)})",
            f"    candidates: estimated {report.est_candidates:.0f} vs "
            f"actual {report.actual_candidates}  "
            f"({_pct(report.candidate_error)})",
        ]
        if report.trace_roots:
            lines.append("  trace:")
            tree = render_span_tree(report.trace_roots)
            lines += ["    " + line for line in tree.splitlines()]
    return "\n".join(lines)


def explain_to_dict(report: ExplainReport) -> dict:
    """JSON-safe dump of a report (for ``--json`` and tooling)."""
    plan = report.plan
    payload = {
        "method": report.method,
        "query": {"lo": report.lo, "hi": report.hi},
        "store": {"cells": report.cells,
                  "data_pages": report.data_pages,
                  "index_pages": report.index_pages,
                  "tree_height": report.tree_height},
        "plan": {"path": plan.path,
                 "filtered_cost": plan.filtered_cost,
                 "scan_cost": plan.scan_cost,
                 "est_pages": plan.est_pages,
                 "est_runs": plan.est_runs},
        "executed_path": report.executed_path,
        "estimates": {"page_reads": report.est_page_reads,
                      "pages_filtered": report.est_pages_filtered,
                      "pages_scan": report.est_pages_scan,
                      "candidates": report.est_candidates,
                      "selectivity": report.est_selectivity,
                      "bins": report.stats_bins},
        "analyzed": report.analyzed,
    }
    if report.analyzed:
        io = report.actual_io
        payload["actual"] = {
            "page_reads": io.page_reads,
            "random_reads": io.random_reads,
            "sequential_reads": io.sequential_reads,
            "cache_hits": io.cache_hits,
            "candidates": report.actual_candidates,
            "seconds": report.actual_seconds,
            "answer_area": report.answer_area,
        }
        payload["error"] = {"pages": report.page_error,
                            "candidates": report.candidate_error}
    return payload

"""Rolling SLO metrics: windowed latency histograms and rates.

The process metrics registry (:mod:`repro.obs.metrics`) keeps
*cumulative* counters — exactly right for Prometheus scrapes, useless
for answering "what is this tenant's p95 **right now**?".  This module
adds the missing piece: a :class:`RollingStats` keeps, per ``tenant ×
operation``, a ring of fixed-width time slots (default 6 × 10 s), each
holding a latency histogram plus request/error/timeout/backpressure
counts.  Readers merge the live slots, so every rate and percentile
reflects only the trailing window and old traffic ages out slot by
slot.

Slots are recycled lazily: writers and readers stamp each slot with its
epoch (``int(now / slot_s)``) and zero any slot whose stamp has fallen
out of the window — no background thread, no timers.  One lock guards
the whole structure; an :meth:`RollingStats.observe` is a few integer
updates, cheap enough to run on every request unconditionally.

Percentiles are estimated from the histogram buckets by linear
interpolation within the bucket that crosses the rank —
:func:`percentile_from_buckets` is exported on its own because the
serve bench reuses it over registry histograms (admission-wait
percentiles in ``BENCH_serve.json``).

:meth:`RollingStats.snapshot` returns the JSON-safe view the ``top``
console renders; :meth:`RollingStats.publish` pushes the same numbers
into a :class:`~repro.obs.metrics.MetricsRegistry` as gauges
(``repro_slo_*``) so the Prometheus exporter serves them too.
"""

from __future__ import annotations

import threading
import time

#: Default latency bucket upper bounds, in milliseconds (+Inf implicit).
LATENCY_BUCKETS_MS = (0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
                      10000.0)

#: Outcome codes that count against the error rate (everything that is
#: not a success and not one of the dedicated rejection kinds).
_REJECTIONS = {"timeout": "timeouts", "quota": "rejections",
               "backpressure": "rejections"}


def percentile_from_buckets(bounds, counts, q: float) -> float:
    """Estimate the ``q``-quantile (0..1) from cumulative-style buckets.

    ``bounds`` are the finite upper bounds; ``counts`` has one entry per
    bound plus a final +Inf overflow count.  Linear interpolation inside
    the crossing bucket; the overflow bucket clamps to the last finite
    bound (there is nothing better to report).  Returns 0.0 when empty.
    """
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0
    previous = 0.0
    for bound, count in zip(bounds, counts):
        if count:
            if cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return previous + fraction * (bound - previous)
            cumulative += count
        previous = bound
    return float(bounds[-1])


class _Slot:
    """One time slot of one (tenant, op) ring."""

    __slots__ = ("epoch", "count", "errors", "timeouts", "rejections",
                 "sum_ms", "buckets")

    def __init__(self, n_buckets: int) -> None:
        self.epoch = -1
        self.buckets = [0] * (n_buckets + 1)
        self._zero()

    def _zero(self) -> None:
        self.count = 0
        self.errors = 0
        self.timeouts = 0
        self.rejections = 0
        self.sum_ms = 0.0
        for i in range(len(self.buckets)):
            self.buckets[i] = 0


class _Ring:
    """The slot ring of one (tenant, op) series."""

    __slots__ = ("slots",)

    def __init__(self, n_slots: int, n_buckets: int) -> None:
        self.slots = [_Slot(n_buckets) for _ in range(n_slots)]

    def slot_for(self, epoch: int) -> _Slot:
        slot = self.slots[epoch % len(self.slots)]
        if slot.epoch != epoch:
            slot._zero()
            slot.epoch = epoch
        return slot

    def live(self, epoch: int) -> list[_Slot]:
        """Slots still inside the window ending at ``epoch``."""
        floor = epoch - len(self.slots) + 1
        return [s for s in self.slots if floor <= s.epoch <= epoch]


class RollingStats:
    """Windowed per-``tenant × op`` latency/error statistics.

    Parameters
    ----------
    slot_s:
        Width of one ring slot in seconds.
    slots:
        Number of slots; the full window covers ``slots * slot_s``.
    buckets:
        Latency histogram upper bounds, milliseconds.
    clock:
        Monotonic-seconds source (injectable for deterministic tests).
    """

    def __init__(self, slot_s: float = 10.0, slots: int = 6,
                 buckets=LATENCY_BUCKETS_MS,
                 clock=time.monotonic) -> None:
        if slot_s <= 0:
            raise ValueError(f"slot_s must be > 0, got {slot_s}")
        if slots < 2:
            raise ValueError(f"slots must be >= 2, got {slots}")
        self.slot_s = float(slot_s)
        self.slots = int(slots)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("need at least one latency bucket")
        self.clock = clock
        self._t0 = clock()
        self._rings: dict[tuple[str, str], _Ring] = {}
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------------

    def observe(self, tenant: str, op: str, latency_ms: float,
                outcome: str = "ok") -> None:
        """Record one finished request into the current slot."""
        now = self.clock()
        epoch = int(now / self.slot_s)
        key = (tenant, op)
        with self._lock:
            ring = self._rings.get(key)
            if ring is None:
                ring = self._rings[key] = _Ring(self.slots,
                                                len(self.buckets))
            slot = ring.slot_for(epoch)
            slot.count += 1
            slot.sum_ms += latency_ms
            for i, bound in enumerate(self.buckets):
                if latency_ms <= bound:
                    slot.buckets[i] += 1
                    break
            else:
                slot.buckets[-1] += 1
            if outcome != "ok":
                kind = _REJECTIONS.get(outcome)
                if kind is None:
                    slot.errors += 1
                elif kind == "timeouts":
                    slot.timeouts += 1
                else:
                    slot.rejections += 1

    # -- reading -------------------------------------------------------------

    def window_s(self, now: float | None = None) -> float:
        """Seconds of traffic the window currently covers."""
        if now is None:
            now = self.clock()
        return min(max(now - self._t0, self.slot_s),
                   self.slots * self.slot_s)

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-safe per-series view over the trailing window.

        Keys are ``"tenant\\x1fop"``-free: a list of records, each with
        ``tenant``, ``op``, ``qps``, ``p50/p95/p99/mean/max-bound``
        latency estimates (ms), and ``error/timeout/rejection`` rates.
        """
        if now is None:
            now = self.clock()
        epoch = int(now / self.slot_s)
        covered = self.window_s(now)
        records = []
        with self._lock:
            for (tenant, op), ring in sorted(self._rings.items()):
                live = ring.live(epoch)
                count = sum(s.count for s in live)
                if not count:
                    continue
                merged = [0] * (len(self.buckets) + 1)
                for slot in live:
                    for i, c in enumerate(slot.buckets):
                        merged[i] += c
                errors = sum(s.errors for s in live)
                timeouts = sum(s.timeouts for s in live)
                rejections = sum(s.rejections for s in live)
                sum_ms = sum(s.sum_ms for s in live)
                records.append({
                    "tenant": tenant,
                    "op": op,
                    "window_s": round(covered, 3),
                    "count": count,
                    "qps": round(count / covered, 3),
                    "latency_ms": {
                        "p50": round(percentile_from_buckets(
                            self.buckets, merged, 0.50), 3),
                        "p95": round(percentile_from_buckets(
                            self.buckets, merged, 0.95), 3),
                        "p99": round(percentile_from_buckets(
                            self.buckets, merged, 0.99), 3),
                        "mean": round(sum_ms / count, 3),
                    },
                    "errors": errors,
                    "timeouts": timeouts,
                    "rejections": rejections,
                    "error_rate": round(errors / count, 4),
                    "timeout_rate": round(timeouts / count, 4),
                    "rejection_rate": round(rejections / count, 4),
                })
        return {"window_s": round(covered, 3), "series": records}

    def publish(self, registry) -> None:
        """Push the current window into ``registry`` as gauges.

        Gauges (all labeled ``tenant``/``op``): ``repro_slo_qps``,
        ``repro_slo_latency_ms{quantile=...}``, ``repro_slo_error_rate``,
        ``repro_slo_timeout_rate``, ``repro_slo_rejection_rate``.
        Series whose window went quiet are reset to zero rather than
        left frozen at their last busy value.
        """
        qps = registry.gauge(
            "repro_slo_qps",
            "Requests/second over the rolling window, per tenant/op.")
        latency = registry.gauge(
            "repro_slo_latency_ms",
            "Rolling latency quantile estimate (ms), per "
            "tenant/op/quantile.")
        for name, help_text in (
                ("repro_slo_error_rate",
                 "Error fraction over the rolling window."),
                ("repro_slo_timeout_rate",
                 "Deadline-timeout fraction over the rolling window."),
                ("repro_slo_rejection_rate",
                 "Quota/backpressure rejection fraction over the "
                 "rolling window.")):
            registry.gauge(name, help_text)
        snap = self.snapshot()
        seen = set()
        for row in snap["series"]:
            tenant, op = row["tenant"], row["op"]
            seen.add((tenant, op))
            qps.set(row["qps"], tenant=tenant, op=op)
            for quantile in ("p50", "p95", "p99"):
                latency.set(row["latency_ms"][quantile], tenant=tenant,
                            op=op, quantile=quantile)
            registry.gauge("repro_slo_error_rate").set(
                row["error_rate"], tenant=tenant, op=op)
            registry.gauge("repro_slo_timeout_rate").set(
                row["timeout_rate"], tenant=tenant, op=op)
            registry.gauge("repro_slo_rejection_rate").set(
                row["rejection_rate"], tenant=tenant, op=op)
        with self._lock:
            known = set(self._rings)
        for tenant, op in known - seen:
            qps.set(0.0, tenant=tenant, op=op)
            for quantile in ("p50", "p95", "p99"):
                latency.set(0.0, tenant=tenant, op=op, quantile=quantile)
            for name in ("repro_slo_error_rate", "repro_slo_timeout_rate",
                         "repro_slo_rejection_rate"):
                registry.gauge(name).set(0.0, tenant=tenant, op=op)

    def reset(self) -> None:
        """Forget every series (tests and restarts)."""
        with self._lock:
            self._rings.clear()
            self._t0 = self.clock()

"""Structured slow-query log: JSONL with size-based rotation.

Production triage starts with "show me the slow ones": a
:class:`QueryLog` appends one JSON object per offending request to a
log file, capturing what an operator needs to reproduce and explain it
— tenant, op, the request arguments, outcome, latency, admission wait
and queue depth at entry, the page-read/cache-hit I/O the engine
accounted, and (when the request was sampled) the full span tree.

A request is logged when it crosses *either* threshold: wall latency
``>= latency_ms`` or engine ``page_reads >= pages``.  Set a threshold
to ``None`` to disable that criterion; a :class:`QueryLog` with both
disabled logs nothing and costs one comparison per request.

Rotation is size-based: when the live file would exceed ``max_bytes``
the files shift (``qlog.jsonl`` → ``qlog.jsonl.1`` → ... →
``.{max_files}``, oldest dropped), so the log is bounded at roughly
``max_bytes * (max_files + 1)`` on disk.  Writes take one lock —
entries from concurrent requests never interleave mid-line.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path


class QueryLog:
    """Threshold-gated JSONL slow-query log with rotation.

    Parameters
    ----------
    path:
        The live log file (created on first entry; parents too).
    latency_ms:
        Log requests at least this slow (``None`` disables).
    pages:
        Log requests reading at least this many pages (``None``
        disables).
    max_bytes:
        Rotate when the live file would exceed this size.
    max_files:
        Rotated generations kept beside the live file.
    clock:
        Wall-clock source for the ``ts`` field (injectable for tests).
    """

    def __init__(self, path: str | Path, latency_ms: float | None = 100.0,
                 pages: int | None = None, max_bytes: int = 4 << 20,
                 max_files: int = 3, clock=time.time) -> None:
        if latency_ms is not None and latency_ms < 0:
            raise ValueError(f"latency_ms must be >= 0, got {latency_ms}")
        if pages is not None and pages < 0:
            raise ValueError(f"pages must be >= 0, got {pages}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_files < 0:
            raise ValueError(f"max_files must be >= 0, got {max_files}")
        self.path = Path(path)
        self.latency_ms = latency_ms
        self.pages = pages
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.clock = clock
        self.entries = 0
        self.rotations = 0
        self._lock = threading.Lock()

    # -- gating --------------------------------------------------------------

    def should_log(self, latency_ms: float,
                   page_reads: int | None = None) -> bool:
        """Does a request with these numbers cross a threshold?"""
        if self.latency_ms is not None and latency_ms >= self.latency_ms:
            return True
        return (self.pages is not None and page_reads is not None
                and page_reads >= self.pages)

    # -- writing -------------------------------------------------------------

    def record(self, entry: dict) -> None:
        """Append one entry (a JSON-safe dict); stamps ``ts`` if absent."""
        if "ts" not in entry:
            entry = {"ts": round(self.clock(), 6), **entry}
        line = json.dumps(entry, separators=(",", ":"),
                          sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                size = self.path.stat().st_size
            except FileNotFoundError:
                size = 0
            if size and size + len(data) > self.max_bytes:
                self._rotate()
            with open(self.path, "ab") as fh:
                fh.write(data)
            self.entries += 1

    def _rotate(self) -> None:
        """Shift generations: live → .1 → .2 → ... (oldest dropped)."""
        if self.max_files == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(
                f"{self.path.name}.{self.max_files}")
            oldest.unlink(missing_ok=True)
            for i in range(self.max_files - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    src.rename(
                        self.path.with_name(f"{self.path.name}.{i + 1}"))
            if self.path.exists():
                self.path.rename(
                    self.path.with_name(f"{self.path.name}.1"))
        self.rotations += 1

    # -- reading (tests, console) -------------------------------------------

    def read_entries(self) -> list[dict]:
        """Parse every entry of the live file, oldest first."""
        if not self.path.exists():
            return []
        return [json.loads(line)
                for line in self.path.read_text().splitlines() if line]

    def files(self) -> list[Path]:
        """The live file plus rotated generations, newest first."""
        found = [self.path] if self.path.exists() else []
        for i in range(1, self.max_files + 1):
            generation = self.path.with_name(f"{self.path.name}.{i}")
            if generation.exists():
                found.append(generation)
        return found

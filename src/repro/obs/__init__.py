"""Observability: query-lifecycle tracing, metrics, EXPLAIN reports.

Four pieces, all opt-in with zero cost when unused:

* :mod:`repro.obs.trace` — hierarchical context-manager spans capturing
  wall time plus I/O- and pool-counter deltas (``NULL_TRACER`` is the
  free disabled default);
* :mod:`repro.obs.metrics` — a process-wide registry of labeled
  counters/gauges/histograms the storage and query layers publish into;
* :mod:`repro.obs.export` — pretty span trees, JSONL, Chrome
  trace-event JSON loadable in Perfetto, and the Prometheus text
  exposition of a metrics registry;
* :mod:`repro.obs.rolling` — windowed SLO statistics (q/s, latency
  quantiles, error/timeout/rejection rates per tenant × op) over a
  ring of short slots, the data behind ``GET /metrics`` and
  ``repro top``;
* :mod:`repro.obs.qlog` — the threshold-gated JSONL slow-query log
  with size-based rotation;
* :mod:`repro.obs.explain` — EXPLAIN / EXPLAIN ANALYZE reports over the
  planner, the statistics, and (with ``analyze``) a traced execution.

The EXPLAIN machinery lives one import deeper
(``from repro.obs.explain import explain``) because it builds on
:mod:`repro.core`; importing it from this package root would cycle with
the indexes importing the tracer.  A module ``__getattr__`` resolves
``ExplainReport``/``render_explain``/``explain_to_dict`` lazily for
interactive use (the ``explain`` *function* shares its name with the
submodule, so import it explicitly).
"""

from .trace import NULL_TRACER, NullTracer, Span, Tracer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from .export import (
    render_prometheus,
    render_span_tree,
    span_to_tree,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_trace,
)
from .qlog import QueryLog
from .rolling import (
    LATENCY_BUCKETS_MS,
    RollingStats,
    percentile_from_buckets,
)

_LAZY = ("ExplainReport", "explain_to_dict", "render_explain")

__all__ = [
    "Counter",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryLog",
    "REGISTRY",
    "RollingStats",
    "Span",
    "Tracer",
    "explain_to_dict",
    "percentile_from_buckets",
    "render_explain",
    "render_prometheus",
    "render_span_tree",
    "span_to_tree",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "write_trace",
]


def __getattr__(name: str):
    if name in _LAZY:
        from . import explain as _explain_module
        return getattr(_explain_module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Process-wide metrics registry (counters, gauges, histograms).

Storage and query layers publish labeled series into one shared
:data:`REGISTRY` — disk reads split by file and sequentiality, buffer
pool hits/misses/evictions, per-method query counters, batch group
sizes, planner decisions.  Publication is disabled by default; every
instrumented site guards with ``if REGISTRY.enabled:``, so the cost on
the hot path is a single attribute check until someone opts in
(``repro.obs.metrics.REGISTRY.enable()``, or the CLI's
``--metrics-out`` flag).

The model is intentionally tiny and prometheus-shaped: a metric has a
name, help text, and a family of label-keyed series; histograms keep
cumulative bucket counts plus sum/count.  :meth:`MetricsRegistry.collect`
returns a JSON-safe dump, :meth:`MetricsRegistry.render_text` a
human-readable exposition.
"""

from __future__ import annotations

import threading


def _key(labels: dict) -> tuple:
    """Canonical, hashable form of a label set."""
    return tuple(sorted(labels.items()))


class Metric:
    """Common shape of one named family of labeled series.

    Every mutation and every snapshot-style reader takes the metric's
    own lock: the read-modify-write in :meth:`Counter.inc` (and the
    row mutation in :meth:`Histogram.observe`) would otherwise lose
    updates under concurrent publishers such as the parallel query
    engine's workers.
    """

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def series(self) -> dict[tuple, float]:
        """Label-tuple → value mapping (live view)."""
        return self._series

    def value(self, **labels) -> float:
        """Current value of one labeled series (0.0 when never touched)."""
        with self._lock:
            return self._series.get(_key(labels), 0.0)

    def reset(self) -> None:
        """Drop every series."""
        with self._lock:
            self._series.clear()

    def collect(self) -> dict:
        """JSON-safe dump of the family."""
        with self._lock:
            return {
                "name": self.name,
                "kind": self.kind,
                "help": self.help,
                "series": [{"labels": dict(key), "value": value}
                           for key, value in sorted(self._series.items())],
            }


class Counter(Metric):
    """Monotonically increasing labeled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = _key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(Metric):
    """Labeled value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        with self._lock:
            self._series[_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        key = _key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


#: Default histogram buckets, sized for page counts and candidate
#: counts (exponential, upper bounds; +inf is implicit).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
                   16384, 65536)


class Histogram(Metric):
    """Labeled histogram with cumulative bucket counts + sum/count."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets=DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histograms need at least one bucket bound")
        # label key -> [bucket counts..., +inf count, sum, count]
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labeled series."""
        key = _key(labels)
        with self._lock:
            row = self._series.get(key)
            if row is None:
                row = [0] * (len(self.buckets) + 1) + [0.0, 0]
                self._series[key] = row
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    row[i] += 1
                    break
            else:
                row[len(self.buckets)] += 1
            row[-2] += value
            row[-1] += 1

    def value(self, **labels) -> float:
        """Observation count of one labeled series."""
        with self._lock:
            row = self._series.get(_key(labels))
            return float(row[-1]) if row is not None else 0.0

    def sum(self, **labels) -> float:
        """Sum of observed values of one labeled series."""
        with self._lock:
            row = self._series.get(_key(labels))
            return float(row[-2]) if row is not None else 0.0

    def mean(self, **labels) -> float:
        """Mean observed value (0.0 when empty)."""
        with self._lock:
            row = self._series.get(_key(labels))
            if row is None or not row[-1]:
                return 0.0
            return row[-2] / row[-1]

    def collect(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "kind": self.kind,
                "help": self.help,
                "buckets": list(self.buckets),
                "series": [
                    {"labels": dict(key),
                     "bucket_counts": list(row[:len(self.buckets) + 1]),
                     "sum": row[-2], "count": row[-1]}
                    for key, row in sorted(self._series.items())
                ],
            }


class MetricsRegistry:
    """Names → metric families; the process-wide instance is
    :data:`REGISTRY`."""

    def __init__(self) -> None:
        self.enabled = False
        self._metrics: dict[str, Metric] = {}

    # -- registration (idempotent) ------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` named ``name``."""
        return self._register(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the :class:`Gauge` named ``name``."""
        return self._register(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get or create the :class:`Histogram` named ``name``."""
        return self._register(name, Histogram, help=help, buckets=buckets)

    def _register(self, name: str, cls, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        """Start recording at every instrumented site."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (already-collected series are kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every series of every family (registrations stay)."""
        for metric in self._metrics.values():
            metric.reset()

    def get(self, name: str) -> Metric:
        """Look up a registered family by name (KeyError when absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- export -------------------------------------------------------------

    def collect(self) -> dict:
        """JSON-safe dump of every family with at least one series."""
        return {
            "metrics": [m.collect() for _, m in sorted(self._metrics.items())
                        if m.series()],
        }

    def render_text(self) -> str:
        """Prometheus-exposition-flavoured text dump."""
        lines = []
        for name, metric in sorted(self._metrics.items()):
            if not metric.series():
                continue
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, row in sorted(metric.series().items()):
                    label_str = _labels_text(dict(key))
                    cumulative = 0
                    for bound, count in zip(metric.buckets, row):
                        cumulative += count
                        lines.append(
                            f"{name}_bucket{_labels_text(dict(key), le=bound)}"
                            f" {cumulative}")
                    cumulative += row[len(metric.buckets)]
                    lines.append(
                        f"{name}_bucket{_labels_text(dict(key), le='+Inf')}"
                        f" {cumulative}")
                    lines.append(f"{name}_sum{label_str} {row[-2]:g}")
                    lines.append(f"{name}_count{label_str} {row[-1]}")
            else:
                for key, value in sorted(metric.series().items()):
                    lines.append(f"{name}{_labels_text(dict(key))} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def _labels_text(labels: dict, **extra) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


#: The process-wide registry every instrumented layer publishes into.
REGISTRY = MetricsRegistry()

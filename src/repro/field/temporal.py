"""Spatio-temporal fields (paper §2.1's ``R4``/``R3`` domain with time).

The paper's formal model allows a temporal coordinate ("R4 for 3-D
spatial and 1-D temporal domain").  A :class:`TemporalField` stacks DEM
snapshots taken at regular time steps and interpolates linearly in time
as well as space, which makes the space-time block ``cell × time-step``
exactly a 3-D linear cell — so the whole machinery of
:class:`~repro.field.volume.VolumeField` (Kuhn tetrahedra, closed-form
measures, 3-D Hilbert linearization) applies with the third axis being
time.  Value queries then return *space-time volume*: "how much
area-time was hotter than 30°?"; time slices recover plain 2-D fields.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Interval
from .dem import DEMField
from .volume import VolumeField


class TemporalField(VolumeField):
    """A time series of co-registered DEM snapshots.

    Parameters
    ----------
    snapshots:
        ``(steps, rows+1, cols+1)`` vertex values; ``snapshots[t]`` is
        the field sampled at time ``t0 + t·dt``.  At least two snapshots
        are required (time interpolation needs an interval).
    t0, dt:
        Timestamp of the first snapshot and the step between snapshots.
    """

    def __init__(self, snapshots: np.ndarray, t0: float = 0.0,
                 dt: float = 1.0) -> None:
        snapshots = np.asarray(snapshots, dtype=np.float32)
        if snapshots.ndim != 3 or snapshots.shape[0] < 2:
            raise ValueError(
                f"snapshots must be (steps>=2, rows+1, cols+1), got "
                f"shape {snapshots.shape}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        # VolumeField's z axis is time: samples[k, j, i] = snapshot k.
        super().__init__(snapshots)
        self.t0 = float(t0)
        self.dt = float(dt)

    # -- time handling -----------------------------------------------------

    @property
    def num_steps(self) -> int:
        """Number of snapshots."""
        return self.nz + 1

    @property
    def time_range(self) -> Interval:
        """Covered time span ``[t0, t0 + (steps-1)·dt]``."""
        return Interval(self.t0, self.t0 + self.nz * self.dt)

    def _to_grid_time(self, t: float) -> float:
        grid_t = (t - self.t0) / self.dt
        if not 0.0 <= grid_t <= self.nz:
            raise ValueError(
                f"time {t} outside the covered range "
                f"{self.time_range.as_tuple()}")
        return grid_t

    def value_at_time(self, x: float, y: float, t: float) -> float:
        """Interpolated value at a space-time point."""
        return self.value_at(x, y, self._to_grid_time(t))

    def snapshot_at(self, t: float) -> DEMField:
        """2-D field at time ``t`` (linear blend of the two snapshots)."""
        grid_t = self._to_grid_time(t)
        k = min(int(grid_t), self.nz - 1)
        frac = grid_t - k
        blended = ((1.0 - frac) * self.samples[k]
                   + frac * self.samples[k + 1])
        return DEMField(blended)

    def step_field(self, step: int) -> DEMField:
        """2-D field of one stored snapshot."""
        if not 0 <= step < self.num_steps:
            raise IndexError(
                f"step {step} out of range [0, {self.num_steps})")
        return DEMField(self.samples[step])

    # -- temporal analytics ---------------------------------------------------

    def duration_in_band(self, x: float, y: float, lo: float,
                         hi: float) -> float:
        """Total time the value at ``(x, y)`` spends inside ``[lo, hi]``.

        Uses the snapshot-blend model (spatial interpolation first, then
        linear in time): the value at a fixed point is piecewise linear
        in time, so the in-band duration is exact per time step.  Note
        the volume queries use the Kuhn tetrahedral interpolant instead;
        the two linear schemes share all sample values and cell
        intervals but can differ slightly at generic interior points.
        """
        total = 0.0
        for k in range(self.nz):
            v0 = self._value_in_snapshot(x, y, k)
            v1 = self._value_in_snapshot(x, y, k + 1)
            total += _segment_time_in_band(v0, v1, lo, hi) * self.dt
        return total

    def _value_in_snapshot(self, x: float, y: float, k: int) -> float:
        return self.step_field(k).value_at(x, y)


def _segment_time_in_band(v0: float, v1: float, lo: float,
                          hi: float) -> float:
    """Fraction of a unit time step a linear value spends in [lo, hi]."""
    if v0 == v1:
        return 1.0 if lo <= v0 <= hi else 0.0
    # Times at which the line v(t) = v0 + t (v1 - v0) crosses the band.
    t_at_lo = (lo - v0) / (v1 - v0)
    t_at_hi = (hi - v0) / (v1 - v0)
    t_enter = min(t_at_lo, t_at_hi)
    t_exit = max(t_at_lo, t_at_hi)
    return max(0.0, min(1.0, t_exit) - max(0.0, t_enter))

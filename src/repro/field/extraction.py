"""The estimation step: exact answer regions inside candidate cells.

Implements algorithm ``Estimate`` from paper §3.2.  After the filtering
step hands back candidate cell records, each cell's linear sub-triangles
are clipped against the value band ``[lo, hi]``; the resulting polygons
(and their total area) are the regions where the field satisfies the
query.  Clipping is exact because linear interpolation makes the value an
affine function over each sub-triangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import clip_to_value_band, polygon_area
from .base import Field
from .interpolation import plane_coefficients


@dataclass(frozen=True)
class AnswerRegion:
    """One polygonal piece of the answer to a field value query."""

    cell_id: int
    polygon: tuple[tuple[float, float], ...]
    area: float


def extract_regions(field_type: type[Field], records: np.ndarray,
                    lo: float, hi: float) -> list[AnswerRegion]:
    """Exact polygonal answer regions for the given candidate records.

    ``field_type`` supplies the record-to-triangles decomposition
    (``DEMField`` or ``TINField``).  Degenerate (zero-area) pieces are
    dropped unless the whole cell is flat and inside the band, in which
    case the full triangle is reported.
    """
    regions: list[AnswerRegion] = []
    for record in records:
        cell_id = int(record["cell_id"])
        for points, values in field_type.record_triangles(record):
            vmin = min(values)
            vmax = max(values)
            if vmax < lo or vmin > hi:
                continue
            if vmin == vmax:
                # Flat triangle fully inside the band.
                poly = tuple(points)
                regions.append(
                    AnswerRegion(cell_id, poly, polygon_area(points)))
                continue
            a, b, c = plane_coefficients(points, values)
            clipped = clip_to_value_band(
                points, lambda p: a * p[0] + b * p[1] + c, lo, hi)
            area = polygon_area(clipped)
            if len(clipped) >= 3 and area > 0.0:
                regions.append(
                    AnswerRegion(cell_id, tuple(clipped), area))
    return regions


def total_area(regions: list[AnswerRegion]) -> float:
    """Sum of region areas."""
    return sum(region.area for region in regions)

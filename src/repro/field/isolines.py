"""Isoline extraction through the value index (paper §2.3's use case).

The related work the paper builds on (van Kreveld's TIN isolines, interval
trees for isosurfaces) extracts the level set ``F(x) = w`` by finding the
cells whose interval contains ``w`` — exactly an exact-match field value
query.  This module turns candidate cell records into line segments: on
each linear sub-triangle the level set is the segment where the
interpolation plane crosses ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Field

Point2 = tuple[float, float]


@dataclass(frozen=True)
class IsolineSegment:
    """One straight piece of an isoline, inside one cell."""

    cell_id: int
    start: Point2
    end: Point2

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return float(np.hypot(self.end[0] - self.start[0],
                              self.end[1] - self.start[1]))


def triangle_level_segment(points, values, level: float
                           ) -> tuple[Point2, Point2] | None:
    """Level-set segment of a linear triangle, or None.

    Returns the two crossing points where the plane equals ``level``;
    degenerate cases (level outside the triangle's range, or a flat
    triangle exactly at the level) return None — flat regions are area
    features, not lines.
    """
    vmin = min(values)
    vmax = max(values)
    if level < vmin or level > vmax or vmin == vmax:
        return None
    crossings: list[Point2] = []
    for a in range(3):
        b = (a + 1) % 3
        va, vb = values[a], values[b]
        if va == vb:
            if va == level:
                # An entire edge lies on the level: report it directly.
                return (tuple(points[a]), tuple(points[b]))
            continue
        t = (level - va) / (vb - va)
        if 0.0 <= t <= 1.0:
            pa, pb = points[a], points[b]
            crossings.append((pa[0] + t * (pb[0] - pa[0]),
                              pa[1] + t * (pb[1] - pa[1])))
    # Deduplicate crossings that coincide at a shared vertex.
    unique: list[Point2] = []
    for p in crossings:
        if all(abs(p[0] - q[0]) > 1e-12 or abs(p[1] - q[1]) > 1e-12
               for q in unique):
            unique.append(p)
    if len(unique) < 2:
        return None
    return (unique[0], unique[1])


def extract_isolines(field_type: type[Field], records: np.ndarray,
                     level: float) -> list[IsolineSegment]:
    """Isoline segments at ``level`` from candidate cell records.

    ``records`` should come from an exact-match value query
    (``ValueQuery.exact(level)``) so only contributing cells are
    processed — the access-method acceleration the paper's related work
    section describes.
    """
    segments: list[IsolineSegment] = []
    for record in records:
        cell_id = int(record["cell_id"])
        for points, values in field_type.record_triangles(record):
            piece = triangle_level_segment(points, values, level)
            if piece is not None:
                segments.append(IsolineSegment(cell_id, *piece))
    return segments


def total_length(segments: list[IsolineSegment]) -> float:
    """Sum of segment lengths."""
    return sum(segment.length for segment in segments)

"""Triangulated irregular networks (paper §2.1).

A TIN carries sample points at triangle vertices; linear (barycentric)
interpolation inside each triangle makes the field continuous.  Cell value
intervals are simply the min/max of the three vertex samples.

Cell records are self-contained (vertex coordinates and values inline) so
the estimation step can run from disk pages alone, mirroring the paper's
leaf layout (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Interval
from .base import Field
from .delaunay import triangulate
from .interpolation import linear_triangle, triangle_band_fraction

#: Record layout of one TIN cell (triangle): 52 bytes → 78 per 4 KiB page.
TIN_RECORD_DTYPE = np.dtype([
    ("cell_id", np.uint32),
    ("vmin", np.float32),
    ("vmax", np.float32),
    ("xs", np.float32, (3,)),
    ("ys", np.float32, (3,)),
    ("vs", np.float32, (3,)),
])


class TINField(Field):
    """A continuous field over an irregular triangulation.

    Parameters
    ----------
    points:
        ``(n, 2)`` sample positions.
    values:
        ``(n,)`` sample values.
    triangles:
        Optional ``(m, 3)`` vertex-index triples.  When omitted the
        Delaunay triangulation is computed with the built-in
        Bowyer–Watson implementation.
    """

    record_dtype = TIN_RECORD_DTYPE

    def __init__(self, points: np.ndarray, values: np.ndarray,
                 triangles: np.ndarray | None = None) -> None:
        points = np.asarray(points, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(
                f"expected (n, 2) points, got shape {points.shape}")
        if len(points) != len(values):
            raise ValueError(
                f"{len(points)} points vs {len(values)} values")
        if triangles is None:
            triangles = triangulate(points)
        triangles = np.asarray(triangles, dtype=np.int64)
        if triangles.ndim != 2 or triangles.shape[1] != 3:
            raise ValueError(
                f"expected (m, 3) triangles, got shape {triangles.shape}")
        if len(triangles) == 0:
            raise ValueError("a TIN needs at least one triangle")
        if triangles.min() < 0 or triangles.max() >= len(points):
            raise ValueError("triangle indices out of range")
        self.points = points
        self.values = values
        self.triangles = triangles
        self._records: np.ndarray | None = None
        self._edge_neighbors: dict | None = None

    # -- structure ------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.triangles)

    @property
    def value_range(self) -> Interval:
        return Interval(float(self.values.min()), float(self.values.max()))

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        lo = self.points.min(axis=0)
        hi = self.points.max(axis=0)
        return (float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))

    def cell_records(self) -> np.ndarray:
        if self._records is None:
            tri = self.triangles
            records = np.empty(self.num_cells, dtype=self.record_dtype)
            records["cell_id"] = np.arange(self.num_cells, dtype=np.uint32)
            vs = self.values[tri].astype(np.float32)
            records["vs"] = vs
            records["vmin"] = vs.min(axis=1)
            records["vmax"] = vs.max(axis=1)
            records["xs"] = self.points[tri, 0].astype(np.float32)
            records["ys"] = self.points[tri, 1].astype(np.float32)
            self._records = records
        return self._records

    def cell_centroids(self) -> np.ndarray:
        return self.points[self.triangles].mean(axis=1)

    def cell_interval(self, cell_id: int) -> Interval:
        rec = self.cell_records()[cell_id]
        return Interval(float(rec["vmin"]), float(rec["vmax"]))

    # -- live ingest ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Sample points of the triangulation."""
        return len(self.points)

    def apply_updates(self, vertex_ids: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
        """Replace vertex samples; return the incident triangle ids.

        Positions are immutable (the triangulation does not change) —
        only values move, so the dirty set is exactly the triangles
        incident to the updated vertices.  Cached records are patched
        in place.
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64).ravel()
        new_values = np.asarray(values, dtype=np.float64).ravel()
        if len(vertex_ids) != len(new_values):
            raise ValueError(
                f"{len(vertex_ids)} vertex ids vs {len(new_values)} values")
        if len(vertex_ids) == 0:
            return np.empty(0, dtype=np.int64)
        if vertex_ids.min() < 0 or vertex_ids.max() >= self.num_vertices:
            raise IndexError(
                f"vertex ids must lie in [0, {self.num_vertices}); got "
                f"[{vertex_ids.min()}, {vertex_ids.max()}]")
        self.values[vertex_ids] = new_values
        touched = np.isin(self.triangles, vertex_ids).any(axis=1)
        dirty = np.nonzero(touched)[0].astype(np.int64)
        if self._records is not None and len(dirty):
            vs = self.values[self.triangles[dirty]].astype(np.float32)
            self._records["vs"][dirty] = vs
            self._records["vmin"][dirty] = vs.min(axis=1)
            self._records["vmax"][dirty] = vs.max(axis=1)
        return dirty

    # -- conventional (Q1) queries ---------------------------------------

    def locate_cell(self, x: float, y: float) -> int:
        for cell_id in range(self.num_cells):
            if self._contains(cell_id, x, y):
                return cell_id
        return -1

    def value_at(self, x: float, y: float) -> float:
        cell = self.locate_cell(x, y)
        if cell < 0:
            raise ValueError(f"point ({x}, {y}) outside the field domain")
        tri = self.triangles[cell]
        pts = [tuple(p) for p in self.points[tri]]
        vals = [float(v) for v in self.values[tri]]
        return linear_triangle((x, y), pts, vals)

    # -- estimation step -------------------------------------------------

    @classmethod
    def record_triangles(cls, record: np.void) -> list[
            tuple[list[tuple[float, float]], list[float]]]:
        points = [(float(record["xs"][k]), float(record["ys"][k]))
                  for k in range(3)]
        values = [float(record["vs"][k]) for k in range(3)]
        return [(points, values)]

    @classmethod
    def record_mbrs(cls, records: np.ndarray) -> np.ndarray:
        xs = records["xs"].astype(np.float64)
        ys = records["ys"].astype(np.float64)
        return np.column_stack([xs.min(axis=1), ys.min(axis=1),
                                xs.max(axis=1), ys.max(axis=1)])

    @classmethod
    def estimate_area(cls, records: np.ndarray, lo: float,
                      hi: float) -> float:
        """Vectorized answer-region area over candidate TIN records."""
        if len(records) == 0:
            return 0.0
        vs = records["vs"].astype(np.float64)
        frac = triangle_band_fraction(vs[:, 0], vs[:, 1], vs[:, 2], lo, hi)
        xs = records["xs"].astype(np.float64)
        ys = records["ys"].astype(np.float64)
        area = 0.5 * np.abs(
            (xs[:, 1] - xs[:, 0]) * (ys[:, 2] - ys[:, 0])
            - (xs[:, 2] - xs[:, 0]) * (ys[:, 1] - ys[:, 0]))
        return float((frac * area).sum())

    # -- helpers ----------------------------------------------------------

    def _contains(self, cell_id: int, x: float, y: float,
                  eps: float = 1e-9) -> bool:
        a, b, c = self.triangles[cell_id]
        ax, ay = self.points[a]
        bx, by = self.points[b]
        cx, cy = self.points[c]
        d1 = (bx - ax) * (y - ay) - (x - ax) * (by - ay)
        d2 = (cx - bx) * (y - by) - (x - bx) * (cy - by)
        d3 = (ax - cx) * (y - cy) - (x - cx) * (ay - cy)
        has_neg = (d1 < -eps) or (d2 < -eps) or (d3 < -eps)
        has_pos = (d1 > eps) or (d2 > eps) or (d3 > eps)
        return not (has_neg and has_pos)

"""Vector fields — the paper's future work (§5: "extend our method to
process value queries in vector field databases such as wind").

A :class:`VectorField` holds two co-registered scalar components (u, v)
on one DEM grid, each linearly interpolated.  Two query families are
supported:

* **component queries** — conjunctions of per-component bands, answered
  exactly through :func:`repro.core.multifield.conjunctive_query`;
* **magnitude queries** — "where is the wind speed between 10 and 15
  m/s?".  The magnitude of a linearly interpolated vector is *not*
  linear, but over each sub-triangle it is a convex function of
  position, so:

  - its maximum is attained at a vertex, and
  - its minimum is the distance from the origin to the triangle spanned
    by the three vertex vectors in (u, v) *value* space —

  which yields **exact** per-cell magnitude intervals.  The estimation
  step refines candidate sub-triangles by recursive subdivision with
  interval-based accept/reject, converging to the exact answer area.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Interval
from .dem import DEMField

#: Default subdivision depth of the magnitude-area refinement.
DEFAULT_REFINE_DEPTH = 6


def segment_min_distance(px, py, qx, qy) -> np.ndarray:
    """Vectorized distance from the origin to segments ``p–q``."""
    dx = qx - px
    dy = qy - py
    length2 = dx * dx + dy * dy
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.where(length2 > 0.0,
                     -(px * dx + py * dy) / np.where(length2 > 0.0,
                                                     length2, 1.0),
                     0.0)
    t = np.clip(t, 0.0, 1.0)
    cx = px + t * dx
    cy = py + t * dy
    return np.hypot(cx, cy)


def triangle_min_magnitude(us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Minimum of ``|w|`` over triangles in (u, v) value space.

    ``us``/``vs`` are ``(n, 3)`` vertex components.  The minimum is 0
    when the origin lies inside the value-space triangle, otherwise the
    distance to the nearest edge.
    """
    us = np.asarray(us, dtype=np.float64)
    vs = np.asarray(vs, dtype=np.float64)
    d01 = segment_min_distance(us[:, 0], vs[:, 0], us[:, 1], vs[:, 1])
    d12 = segment_min_distance(us[:, 1], vs[:, 1], us[:, 2], vs[:, 2])
    d20 = segment_min_distance(us[:, 2], vs[:, 2], us[:, 0], vs[:, 0])
    edge_min = np.minimum(np.minimum(d01, d12), d20)
    # Origin inside the triangle -> the minimum magnitude is zero.
    c1 = _cross(us[:, 0], vs[:, 0], us[:, 1], vs[:, 1])
    c2 = _cross(us[:, 1], vs[:, 1], us[:, 2], vs[:, 2])
    c3 = _cross(us[:, 2], vs[:, 2], us[:, 0], vs[:, 0])
    inside = ((c1 >= 0) & (c2 >= 0) & (c3 >= 0)) | \
             ((c1 <= 0) & (c2 <= 0) & (c3 <= 0))
    return np.where(inside, 0.0, edge_min)


def _cross(ax, ay, bx, by):
    return ax * by - bx * ay


class VectorField:
    """A 2-component vector field on a regular grid (e.g. wind).

    Parameters
    ----------
    u_samples, v_samples:
        ``(rows+1, cols+1)`` vertex grids of the two components.
    cell_size:
        Spatial edge length of one square cell.
    """

    def __init__(self, u_samples: np.ndarray, v_samples: np.ndarray,
                 cell_size: float = 1.0) -> None:
        u_samples = np.asarray(u_samples, dtype=np.float64)
        v_samples = np.asarray(v_samples, dtype=np.float64)
        if u_samples.shape != v_samples.shape:
            raise ValueError(
                f"component shape mismatch: {u_samples.shape} vs "
                f"{v_samples.shape}")
        self.u = DEMField(u_samples, cell_size=cell_size)
        self.v = DEMField(v_samples, cell_size=cell_size)

    @property
    def num_cells(self) -> int:
        """Number of cells (shared by both components)."""
        return self.u.num_cells

    def components_at(self, x: float, y: float) -> tuple[float, float]:
        """Interpolated ``(u, v)`` at a point."""
        return (self.u.value_at(x, y), self.v.value_at(x, y))

    def magnitude_at(self, x: float, y: float) -> float:
        """Interpolated vector magnitude at a point."""
        u, v = self.components_at(x, y)
        return float(np.hypot(u, v))

    def direction_at(self, x: float, y: float) -> float:
        """Vector direction (radians, CCW from +x) at a point."""
        u, v = self.components_at(x, y)
        return float(np.arctan2(v, u))

    def magnitude_intervals(self) -> np.ndarray:
        """Exact per-cell ``[min |w|, max |w|]``, shape ``(n, 2)``.

        Per sub-triangle: max at a vertex (convexity), min by distance
        from the origin to the value-space triangle; the cell interval is
        the union over its two sub-triangles.
        """
        u_rec = self.u.cell_records()
        v_rec = self.v.cell_records()
        uc = u_rec["corners"].astype(np.float64)
        vc = v_rec["corners"].astype(np.float64)
        mags = np.hypot(uc, vc)
        vmax = mags.max(axis=1)
        lower = triangle_min_magnitude(uc[:, [0, 1, 2]], vc[:, [0, 1, 2]])
        upper = triangle_min_magnitude(uc[:, [0, 2, 3]], vc[:, [0, 2, 3]])
        vmin = np.minimum(lower, upper)
        return np.column_stack([vmin, vmax])

    def magnitude_range(self) -> Interval:
        """Interval covering every magnitude in the field."""
        intervals = self.magnitude_intervals()
        return Interval(float(intervals[:, 0].min()),
                        float(intervals[:, 1].max()))

    def magnitude_candidates(self, lo: float, hi: float) -> np.ndarray:
        """Cell ids whose magnitude interval intersects ``[lo, hi]``."""
        intervals = self.magnitude_intervals()
        mask = (intervals[:, 0] <= hi) & (intervals[:, 1] >= lo)
        return np.nonzero(mask)[0]

    def magnitude_area(self, lo: float, hi: float,
                       depth: int = DEFAULT_REFINE_DEPTH) -> float:
        """Area (cell units) where ``lo <= |w| <= hi``.

        Candidate sub-triangles are refined by recursive bisection: a
        triangle whose magnitude interval lies inside the band is
        accepted whole, a disjoint one rejected, others split into four;
        at the depth limit the midpoint decides.  Error is bounded by
        the total area of still-ambiguous leaves, which shrinks
        geometrically with ``depth``.
        """
        if lo > hi:
            raise ValueError(f"empty band: lo={lo} > hi={hi}")
        u_rec = self.u.cell_records()
        v_rec = self.v.cell_records()
        candidates = self.magnitude_candidates(lo, hi)
        total = 0.0
        for cid in candidates:
            uc = u_rec["corners"][cid].astype(np.float64)
            vc = v_rec["corners"][cid].astype(np.float64)
            for idx in ((0, 1, 2), (0, 2, 3)):
                total += 0.5 * _refine_triangle(
                    uc[list(idx)], vc[list(idx)], lo, hi, depth)
        return total


def _refine_triangle(us: np.ndarray, vs: np.ndarray, lo: float,
                     hi: float, depth: int) -> float:
    """Fraction of a (value-space linear) triangle inside the band."""
    mags = np.hypot(us, vs)
    tmax = mags.max()
    tmin = float(triangle_min_magnitude(us[None, :], vs[None, :])[0])
    if tmin > hi or tmax < lo:
        return 0.0
    if tmin >= lo and tmax <= hi:
        return 1.0
    if depth == 0:
        center = (np.hypot(us.mean(), vs.mean()))
        return 1.0 if lo <= center <= hi else 0.0
    m01u, m01v = (us[0] + us[1]) / 2, (vs[0] + vs[1]) / 2
    m12u, m12v = (us[1] + us[2]) / 2, (vs[1] + vs[2]) / 2
    m20u, m20v = (us[2] + us[0]) / 2, (vs[2] + vs[0]) / 2
    children = (
        (np.array([us[0], m01u, m20u]), np.array([vs[0], m01v, m20v])),
        (np.array([m01u, us[1], m12u]), np.array([m01v, vs[1], m12v])),
        (np.array([m20u, m12u, us[2]]), np.array([m20v, m12v, vs[2]])),
        (np.array([m01u, m12u, m20u]), np.array([m01v, m12v, m20v])),
    )
    return sum(_refine_triangle(cu, cv, lo, hi, depth - 1)
               for cu, cv in children) / 4.0

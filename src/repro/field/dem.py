"""Regular-grid DEM fields (paper §2.1, Fig. 1).

A continuous DEM samples the phenomenon at grid *vertices* and interpolates
inside each square cell.  Following the paper's experiments we use linear
interpolation, realized by splitting each square along its main diagonal
into two triangles (the within-cell value extremes then sit at vertices, so
cell intervals come straight from the four corner samples).

Cell records are self-contained: id, value interval, grid position and the
four corner values — everything the estimation step needs.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Interval
from .base import Field
from .interpolation import (linear_triangle, triangle_band_fraction,
                            triangle_fraction_below)

#: Record layout of one DEM cell (32 bytes → 128 records per 4 KiB page).
DEM_RECORD_DTYPE = np.dtype([
    ("cell_id", np.uint32),
    ("vmin", np.float32),
    ("vmax", np.float32),
    ("i", np.uint16),          # column (x) index of the cell
    ("j", np.uint16),          # row (y) index of the cell
    ("corners", np.float32, (4,)),   # v00, v10, v11, v01
])


class DEMField(Field):
    """A continuous field over a regular grid of sample points.

    Parameters
    ----------
    heights:
        ``(rows+1, cols+1)`` array of vertex sample values; entry
        ``heights[j, i]`` is the sample at grid position ``(x=i, y=j)``.
    cell_size:
        Spatial edge length of one square cell.
    """

    record_dtype = DEM_RECORD_DTYPE

    def __init__(self, heights: np.ndarray, cell_size: float = 1.0) -> None:
        heights = np.asarray(heights, dtype=np.float32)
        if heights.ndim != 2 or heights.shape[0] < 2 or heights.shape[1] < 2:
            raise ValueError(
                f"heights must be a (rows+1, cols+1) grid with at least "
                f"one cell, got shape {heights.shape}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.heights = heights
        self.cell_size = float(cell_size)
        self.rows = heights.shape[0] - 1
        self.cols = heights.shape[1] - 1
        self._records: np.ndarray | None = None

    # -- structure ------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    @property
    def value_range(self) -> Interval:
        return Interval(float(self.heights.min()),
                        float(self.heights.max()))

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        return (0.0, 0.0, self.cols * self.cell_size,
                self.rows * self.cell_size)

    def cell_id(self, i: int, j: int) -> int:
        """Dense id of the cell at column ``i``, row ``j``."""
        if not (0 <= i < self.cols and 0 <= j < self.rows):
            raise IndexError(f"cell ({i}, {j}) outside grid")
        return j * self.cols + i

    def cell_position(self, cell_id: int) -> tuple[int, int]:
        """Inverse of :meth:`cell_id`: ``(i, j)`` of a dense cell id."""
        if not 0 <= cell_id < self.num_cells:
            raise IndexError(f"cell id {cell_id} out of range")
        return (cell_id % self.cols, cell_id // self.cols)

    def cell_records(self) -> np.ndarray:
        if self._records is None:
            h = self.heights
            v00 = h[:-1, :-1]
            v10 = h[:-1, 1:]
            v11 = h[1:, 1:]
            v01 = h[1:, :-1]
            corners = np.stack([v00, v10, v11, v01], axis=-1)
            corners = corners.reshape(self.num_cells, 4)
            records = np.empty(self.num_cells, dtype=self.record_dtype)
            records["cell_id"] = np.arange(self.num_cells, dtype=np.uint32)
            records["vmin"] = corners.min(axis=1)
            records["vmax"] = corners.max(axis=1)
            ii, jj = np.meshgrid(np.arange(self.cols),
                                 np.arange(self.rows), indexing="xy")
            records["i"] = ii.ravel().astype(np.uint16)
            records["j"] = jj.ravel().astype(np.uint16)
            records["corners"] = corners
            self._records = records
        return self._records

    def cell_centroids(self) -> np.ndarray:
        ii, jj = np.meshgrid(np.arange(self.cols), np.arange(self.rows),
                             indexing="xy")
        xs = (ii.ravel() + 0.5) * self.cell_size
        ys = (jj.ravel() + 0.5) * self.cell_size
        return np.column_stack([xs, ys])

    def cell_interval(self, cell_id: int) -> Interval:
        rec = self.cell_records()[cell_id]
        return Interval(float(rec["vmin"]), float(rec["vmax"]))

    # -- live ingest ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Grid sample points; vertex ``v`` sits at ``(x=v % (cols+1),
        y=v // (cols+1))``."""
        return (self.rows + 1) * (self.cols + 1)

    def apply_updates(self, vertex_ids: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
        """Replace grid samples; return the ids of the cells they touch.

        An interior vertex is a corner of four cells, an edge vertex of
        two, a domain corner of one — the dirty set is exactly those
        neighbours, with the cached records (corners, interval) patched
        in place so ``cell_records()`` stays coherent without a rebuild.
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float32).ravel()
        if len(vertex_ids) != len(values):
            raise ValueError(
                f"{len(vertex_ids)} vertex ids vs {len(values)} values")
        if len(vertex_ids) == 0:
            return np.empty(0, dtype=np.int64)
        if vertex_ids.min() < 0 or vertex_ids.max() >= self.num_vertices:
            raise IndexError(
                f"vertex ids must lie in [0, {self.num_vertices}); got "
                f"[{vertex_ids.min()}, {vertex_ids.max()}]")
        vi = vertex_ids % (self.cols + 1)
        vj = vertex_ids // (self.cols + 1)
        self.heights[vj, vi] = values
        # Neighbouring cells (i-1..i, j-1..j), clipped to the grid.
        ci = np.stack([vi - 1, vi, vi - 1, vi])
        cj = np.stack([vj - 1, vj - 1, vj, vj])
        valid = ((ci >= 0) & (ci < self.cols)
                 & (cj >= 0) & (cj < self.rows))
        dirty = np.unique(cj[valid] * self.cols + ci[valid])
        if self._records is not None:
            h = self.heights
            i = dirty % self.cols
            j = dirty // self.cols
            corners = np.stack([h[j, i], h[j, i + 1],
                                h[j + 1, i + 1], h[j + 1, i]], axis=-1)
            self._records["corners"][dirty] = corners
            self._records["vmin"][dirty] = corners.min(axis=1)
            self._records["vmax"][dirty] = corners.max(axis=1)
        return dirty

    # -- conventional (Q1) queries ---------------------------------------

    def locate_cell(self, x: float, y: float) -> int:
        xmin, ymin, xmax, ymax = self.bounds
        if not (xmin <= x <= xmax and ymin <= y <= ymax):
            return -1
        i = min(int(x / self.cell_size), self.cols - 1)
        j = min(int(y / self.cell_size), self.rows - 1)
        return self.cell_id(i, j)

    def value_at(self, x: float, y: float) -> float:
        cell = self.locate_cell(x, y)
        if cell < 0:
            raise ValueError(f"point ({x}, {y}) outside the field domain")
        rec = self.cell_records()[cell]
        # Record triangles live in grid units; convert the query point.
        g = (x / self.cell_size, y / self.cell_size)
        for points, values in self.record_triangles(rec):
            if _triangle_contains(points, g):
                return linear_triangle(g, points, values)
        # Numerical edge: fall back to the nearest triangle's plane.
        points, values = self.record_triangles(rec)[0]
        return linear_triangle(g, points, values)

    # -- estimation step -------------------------------------------------

    @classmethod
    def record_triangles(cls, record: np.void) -> list[
            tuple[list[tuple[float, float]], list[float]]]:
        i = float(record["i"])
        j = float(record["j"])
        v00, v10, v11, v01 = (float(v) for v in record["corners"])
        p00, p10, p11, p01 = ((i, j), (i + 1, j), (i + 1, j + 1),
                              (i, j + 1))
        return [
            ([p00, p10, p11], [v00, v10, v11]),   # lower-right triangle
            ([p00, p11, p01], [v00, v11, v01]),   # upper-left triangle
        ]

    @classmethod
    def record_mbrs(cls, records: np.ndarray) -> np.ndarray:
        i = records["i"].astype(np.float64)
        j = records["j"].astype(np.float64)
        return np.column_stack([i, j, i + 1.0, j + 1.0])

    def to_record_space(self, x: float, y: float) -> tuple[float, float]:
        return (x / self.cell_size, y / self.cell_size)

    @classmethod
    def estimate_area(cls, records: np.ndarray, lo: float,
                      hi: float) -> float:
        """Vectorized answer-region area over candidate DEM records.

        The unit of area is one grid cell; multiply by ``cell_size²`` for
        spatial units.
        """
        if len(records) == 0:
            return 0.0
        c = records["corners"].astype(np.float64)
        lower = triangle_band_fraction(c[:, 0], c[:, 1], c[:, 2], lo, hi)
        upper = triangle_band_fraction(c[:, 0], c[:, 2], c[:, 3], lo, hi)
        return float((lower + upper).sum() * 0.5)

    @classmethod
    def band_area_curves(cls, records: np.ndarray,
                         thresholds: np.ndarray) -> tuple[
                             np.ndarray, np.ndarray, float]:
        """Broadcast ``(cells × thresholds)`` evaluation of both curves.

        One fused pass over the two sub-triangles of every cell replaces
        the generic per-threshold ``estimate_area`` loop; the values are
        the same piecewise quadratics, so both implementations agree to
        float rounding.
        """
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if len(records) == 0:
            zero = np.zeros(len(thresholds))
            return zero, zero.copy(), 0.0
        c = records["corners"].astype(np.float64)
        t = thresholds[None, :]
        area_le = np.zeros(len(thresholds))
        area_lt = np.zeros(len(thresholds))
        for tri in ((0, 1, 2), (0, 2, 3)):
            v0 = c[:, tri[0]][:, None]
            v1 = c[:, tri[1]][:, None]
            v2 = c[:, tri[2]][:, None]
            below = triangle_fraction_below(v0, v1, v2, t)
            # `value < t` differs from `value <= t` only on flat
            # triangles sitting exactly at the threshold.
            flat = (np.maximum(np.maximum(v0, v1), v2)
                    - np.minimum(np.minimum(v0, v1), v2)) <= 0.0
            strict = np.where(flat & (v0 == t), 0.0, below)
            area_le += below.sum(axis=0)
            area_lt += strict.sum(axis=0)
        return area_le * 0.5, area_lt * 0.5, float(len(records))


def _triangle_contains(points, point, eps: float = 1e-9) -> bool:
    (x0, y0), (x1, y1), (x2, y2) = points
    px, py = point
    d1 = (x1 - x0) * (py - y0) - (px - x0) * (y1 - y0)
    d2 = (x2 - x1) * (py - y1) - (px - x1) * (y2 - y1)
    d3 = (x0 - x2) * (py - y2) - (px - x2) * (y0 - y2)
    has_neg = (d1 < -eps) or (d2 < -eps) or (d3 < -eps)
    has_pos = (d1 > eps) or (d2 > eps) or (d3 > eps)
    return not (has_neg and has_pos)

"""Interpolation functions over cells.

The paper assumes a *linear* interpolation in its examples and experiments
(§2.2, §4); we implement it exactly (barycentric over triangles), plus the
common alternatives (bilinear, nearest neighbor, inverse-distance) so the
model layer matches the paper's "arbitrary interpolation methods" framing.

Also provided is the closed-form *area fraction* of a linearly interpolated
triangle below a threshold — the vectorized kernel of the estimation step.
"""

from __future__ import annotations

import numpy as np

Point2 = tuple[float, float]


def plane_coefficients(points, values) -> tuple[float, float, float]:
    """Coefficients ``(a, b, c)`` with ``v(x, y) = a·x + b·y + c``.

    ``points`` is a 3×2 triangle; raises for degenerate triangles.
    """
    (x0, y0), (x1, y1), (x2, y2) = points
    v0, v1, v2 = values
    det = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
    if det == 0.0:
        raise ValueError("degenerate triangle has no interpolation plane")
    a = ((v1 - v0) * (y2 - y0) - (v2 - v0) * (y1 - y0)) / det
    b = ((v2 - v0) * (x1 - x0) - (v1 - v0) * (x2 - x0)) / det
    c = v0 - a * x0 - b * y0
    return (a, b, c)


def linear_triangle(point: Point2, points, values) -> float:
    """Barycentric (linear) interpolation inside a triangle."""
    a, b, c = plane_coefficients(points, values)
    return a * point[0] + b * point[1] + c


def barycentric_coordinates(point: Point2, points) -> tuple[float, float,
                                                            float]:
    """Barycentric coordinates of ``point`` w.r.t. a triangle."""
    (x0, y0), (x1, y1), (x2, y2) = points
    det = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
    if det == 0.0:
        raise ValueError("degenerate triangle")
    l1 = ((point[0] - x0) * (y2 - y0) - (x2 - x0) * (point[1] - y0)) / det
    l2 = ((x1 - x0) * (point[1] - y0) - (point[0] - x0) * (y1 - y0)) / det
    return (1.0 - l1 - l2, l1, l2)


def bilinear(point: Point2, origin: Point2, size: float,
             corner_values) -> float:
    """Bilinear interpolation on a square cell.

    ``corner_values`` are ``(v00, v10, v11, v01)`` at the corners
    (x0,y0), (x0+s,y0), (x0+s,y0+s), (x0,y0+s).
    """
    u = (point[0] - origin[0]) / size
    v = (point[1] - origin[1]) / size
    v00, v10, v11, v01 = corner_values
    return ((1 - u) * (1 - v) * v00 + u * (1 - v) * v10
            + u * v * v11 + (1 - u) * v * v01)


def nearest(point: Point2, points, values) -> float:
    """Value of the nearest sample point."""
    pts = np.asarray(points, dtype=float)
    vals = np.asarray(values, dtype=float)
    d2 = ((pts - np.asarray(point)) ** 2).sum(axis=1)
    return float(vals[np.argmin(d2)])


def inverse_distance(point: Point2, points, values,
                     power: float = 2.0) -> float:
    """Shepard inverse-distance-weighted interpolation."""
    pts = np.asarray(points, dtype=float)
    vals = np.asarray(values, dtype=float)
    d2 = ((pts - np.asarray(point)) ** 2).sum(axis=1)
    hit = d2 < 1e-24
    if hit.any():
        return float(vals[np.argmax(hit)])
    weights = d2 ** (-power / 2.0)
    return float((weights * vals).sum() / weights.sum())


def triangle_fraction_below(v0, v1, v2, threshold):
    """Area fraction of a linear triangle where ``value <= threshold``.

    All arguments may be numpy arrays (vectorized over triangles).  For a
    linear function with vertex values ``v0 <= v1 <= v2`` the sub-level
    area fraction is the classic piecewise quadratic:

    * 0 below ``v0``;
    * ``(t−v0)² / ((v1−v0)(v2−v0))`` between ``v0`` and ``v1``;
    * ``1 − (v2−t)² / ((v2−v1)(v2−v0))`` between ``v1`` and ``v2``;
    * 1 above ``v2``.
    """
    a = np.asarray(v0, dtype=float)
    b = np.asarray(v1, dtype=float)
    c = np.asarray(v2, dtype=float)
    # Exact 3-way selection (min / median / max) in five elementwise
    # passes: selection only moves values, so the result is bit-identical
    # to the np.sort it replaces at roughly half the kernel cost.
    lo = np.minimum(np.minimum(a, b), c)
    hi = np.maximum(np.maximum(a, b), c)
    mid = np.maximum(np.minimum(a, b),
                     np.minimum(np.maximum(a, b), c))
    t = np.asarray(threshold, dtype=float)
    span = hi - lo
    flat = span <= 0.0
    # Avoid divide-by-zero on flat triangles; they are handled separately.
    span = np.where(flat, 1.0, span)
    low_seg = mid - lo
    high_seg = hi - mid
    # Branches with empty segments are masked out below; silence the
    # overflow/invalid noise their dummy denominators can produce.
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        frac_low = np.where(
            low_seg > 0.0,
            (t - lo) ** 2 / np.where(low_seg > 0, low_seg, 1.0) / span,
            np.inf)
        frac_high = 1.0 - np.where(
            high_seg > 0.0,
            (hi - t) ** 2 / np.where(high_seg > 0, high_seg, 1.0) / span,
            np.inf)
    result = np.where(t <= mid, frac_low, frac_high)
    # Degenerate segments: when t is in an empty segment the other branch
    # applies; clamp handles the boundaries exactly.
    result = np.where(t <= mid,
                      np.where(low_seg > 0.0, result, 0.0),
                      np.where(high_seg > 0.0, result, 1.0))
    result = np.clip(result, 0.0, 1.0)
    result = np.where(t < lo, 0.0, result)
    result = np.where(t >= hi, 1.0, result)
    # A completely flat triangle is fully below iff its value <= t.
    result = np.where(flat, (t >= lo).astype(float), result)
    return result


def triangle_band_fraction(v0, v1, v2, lo, hi):
    """Area fraction of a linear triangle where ``lo <= value <= hi``."""
    below_hi = triangle_fraction_below(v0, v1, v2, hi)
    below_lo = triangle_fraction_below(v0, v1, v2, lo)
    frac = below_hi - below_lo
    # Flat triangles sitting exactly on the band boundary: fraction_below
    # uses a half-open convention (value <= t), so a flat triangle at
    # exactly ``lo`` would be counted in both terms and cancel; include it.
    a = np.asarray(v0, float)
    b = np.asarray(v1, float)
    c = np.asarray(v2, float)
    vmax = np.maximum(np.maximum(a, b), c)
    vmin = np.minimum(np.minimum(a, b), c)
    flat = (vmax - vmin) <= 0.0
    inside_flat = flat & (a >= lo) & (a <= hi)
    return np.where(inside_flat, 1.0, np.clip(frac, 0.0, 1.0))

"""Bowyer–Watson Delaunay triangulation, from scratch.

Builds the TIN substrate without external geometry libraries.  Points are
inserted incrementally: the triangle containing the new point is found by
*walking* across edge neighbors, the conflicting cavity is flooded via the
in-circumcircle test, and the cavity is retriangulated around the point.
Expected cost is near O(n·√n) on random inputs, fast enough for the
paper-scale TINs (~10⁴ points).

``triangulate(points)`` returns index triples with counter-clockwise
orientation; ties (cocircular quadruples) resolve arbitrarily but the
Delaunay property (no point strictly inside any circumcircle) always holds.
"""

from __future__ import annotations

import numpy as np

Edge = tuple[int, int]


def _orient(ax, ay, bx, by, cx, cy) -> float:
    """Twice the signed area of triangle abc (>0 = counter-clockwise)."""
    return (bx - ax) * (cy - ay) - (cx - ax) * (by - ay)


def _in_circumcircle(pts, tri: tuple[int, int, int], px: float,
                     py: float) -> bool:
    """True when (px, py) lies strictly inside tri's circumcircle."""
    ax, ay = pts[tri[0]]
    bx, by = pts[tri[1]]
    cx, cy = pts[tri[2]]
    adx, ady = ax - px, ay - py
    bdx, bdy = bx - px, by - py
    cdx, cdy = cx - px, cy - py
    det = ((adx * adx + ady * ady) * (bdx * cdy - cdx * bdy)
           - (bdx * bdx + bdy * bdy) * (adx * cdy - cdx * ady)
           + (cdx * cdx + cdy * cdy) * (adx * bdy - bdx * ady))
    return det > 0.0


class _Mesh:
    """Triangle soup with edge-adjacency, supporting cavity surgery."""

    def __init__(self, pts: list[tuple[float, float]]) -> None:
        self.pts = pts
        self.triangles: dict[int, tuple[int, int, int]] = {}
        self.edge_map: dict[Edge, list[int]] = {}
        self._next_id = 0

    @staticmethod
    def _edge(a: int, b: int) -> Edge:
        return (a, b) if a < b else (b, a)

    def add(self, tri: tuple[int, int, int]) -> int:
        a, b, c = tri
        ax, ay = self.pts[a]
        bx, by = self.pts[b]
        cx, cy = self.pts[c]
        if _orient(ax, ay, bx, by, cx, cy) < 0:
            tri = (a, c, b)
        tid = self._next_id
        self._next_id += 1
        self.triangles[tid] = tri
        for e in self._edges(tri):
            self.edge_map.setdefault(e, []).append(tid)
        return tid

    def remove(self, tid: int) -> None:
        tri = self.triangles.pop(tid)
        for e in self._edges(tri):
            owners = self.edge_map[e]
            owners.remove(tid)
            if not owners:
                del self.edge_map[e]

    def neighbors(self, tid: int) -> list[int]:
        result = []
        for e in self._edges(self.triangles[tid]):
            for other in self.edge_map[e]:
                if other != tid:
                    result.append(other)
        return result

    def _edges(self, tri: tuple[int, int, int]) -> list[Edge]:
        a, b, c = tri
        return [self._edge(a, b), self._edge(b, c), self._edge(c, a)]

    def contains(self, tid: int, px: float, py: float,
                 eps: float = 1e-12) -> bool:
        a, b, c = self.triangles[tid]
        ax, ay = self.pts[a]
        bx, by = self.pts[b]
        cx, cy = self.pts[c]
        return (_orient(ax, ay, bx, by, px, py) >= -eps
                and _orient(bx, by, cx, cy, px, py) >= -eps
                and _orient(cx, cy, ax, ay, px, py) >= -eps)

    def walk(self, start: int, px: float, py: float) -> int:
        """Locate the triangle containing (px, py) by edge walking."""
        tid = start
        visited = set()
        for _step in range(4 * len(self.triangles) + 16):
            if tid in visited:
                break
            visited.add(tid)
            tri = self.triangles[tid]
            a, b, c = tri
            moved = False
            for u, v in ((a, b), (b, c), (c, a)):
                ux, uy = self.pts[u]
                vx, vy = self.pts[v]
                if _orient(ux, uy, vx, vy, px, py) < -1e-12:
                    owners = self.edge_map[self._edge(u, v)]
                    nxt = [t for t in owners if t != tid]
                    if nxt:
                        tid = nxt[0]
                        moved = True
                        break
            if not moved:
                return tid
        # Degenerate walk (can happen on near-collinear input): fall back
        # to an exhaustive scan, which is always correct.
        for cand, _tri in self.triangles.items():
            if self.contains(cand, px, py):
                return cand
        raise ValueError(f"point ({px}, {py}) outside the triangulation")


def _conflicts(pts, tri: tuple[int, int, int], px: float, py: float,
               first_super: int) -> bool:
    """Does p invalidate this triangle (symbolic super-vertex handling)?

    Super-triangle vertices act as points at infinity: the circumcircle
    of a triangle with one infinite vertex degenerates to the half-plane
    left of its finite (CCW) edge.  This keeps hull slivers with enormous
    circumcircles exact, where a numeric incircle test against far-away
    super coordinates loses.
    """
    a, b, c = tri
    supers = (a >= first_super) + (b >= first_super) + (c >= first_super)
    if supers == 0:
        return _in_circumcircle(pts, tri, px, py)
    if supers == 1:
        if a >= first_super:
            u, v = b, c
        elif b >= first_super:
            u, v = c, a
        else:
            u, v = a, b
        return _orient(pts[u][0], pts[u][1], pts[v][0], pts[v][1],
                       px, py) > 0.0
    # Two infinite vertices: the region is an unbounded corner wedge of
    # the super triangle; no finite point invalidates it.
    return False


def triangulate(points: np.ndarray) -> np.ndarray:
    """Delaunay triangulation of ``(n, 2)`` points.

    Returns an ``(m, 3)`` int array of CCW vertex-index triples covering
    the convex hull.  Requires at least 3 non-collinear points.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {points.shape}")
    n = len(points)
    if n < 3:
        raise ValueError(f"need at least 3 points, got {n}")

    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = float(max(hi[0] - lo[0], hi[1] - lo[1], 1e-9))
    cx, cy = (lo + hi) / 2.0
    # Super-triangle comfortably containing every point.
    pts: list[tuple[float, float]] = [tuple(p) for p in points]
    s0 = len(pts)
    pts.append((cx - 20.0 * span, cy - 10.0 * span))
    pts.append((cx + 20.0 * span, cy - 10.0 * span))
    pts.append((cx, cy + 20.0 * span))

    mesh = _Mesh(pts)
    last = mesh.add((s0, s0 + 1, s0 + 2))

    order = np.argsort(
        points[:, 0] * 1e-3 + points[:, 1])  # mild spatial locality
    for idx in order:
        px, py = pts[idx]
        container = mesh.walk(last, px, py)
        # Flood the cavity of triangles whose circumcircle contains p.
        cavity = {container}
        frontier = [container]
        while frontier:
            tid = frontier.pop()
            for nb in mesh.neighbors(tid):
                if nb in cavity:
                    continue
                if _conflicts(pts, mesh.triangles[nb], px, py, s0):
                    cavity.add(nb)
                    frontier.append(nb)
        # Boundary edges appear in exactly one cavity triangle.
        edge_count: dict[Edge, int] = {}
        edge_orient: dict[Edge, tuple[int, int]] = {}
        for tid in cavity:
            a, b, c = mesh.triangles[tid]
            for u, v in ((a, b), (b, c), (c, a)):
                e = mesh._edge(u, v)
                edge_count[e] = edge_count.get(e, 0) + 1
                edge_orient[e] = (u, v)
        for tid in cavity:
            mesh.remove(tid)
        last = container  # will be replaced below
        for e, count in edge_count.items():
            if count != 1:
                continue
            u, v = edge_orient[e]
            last = mesh.add((u, v, int(idx)))

    result = [tri for tri in mesh.triangles.values()
              if all(v < s0 for v in tri)]
    if not result:
        raise ValueError("degenerate input: all points collinear")
    return np.array(result, dtype=np.int64)

"""Abstract continuous-field interface.

A field (paper §2.1) is a pair ``(C, F)``: a subdivision of the domain into
cells carrying sample points, plus interpolation functions.  Concrete
implementations are :class:`~repro.field.dem.DEMField` (regular grid) and
:class:`~repro.field.tin.TINField` (triangulated irregular network).

The database-facing contract is record-oriented: ``cell_records()`` returns
one self-contained record per cell — id, value interval ``[min, max]`` and
the cell's sample points — which is exactly what the access methods store
on pages and what the estimation step reads back (paper Fig. 6: cells are
fetched from disk addresses, then inverse-interpolated).
"""

from __future__ import annotations

import abc

import numpy as np

from ..geometry import Interval


class Field(abc.ABC):
    """A scalar field over a 2-D spatial domain."""

    #: Structured dtype of one stored cell record.
    record_dtype: np.dtype

    # -- structure ------------------------------------------------------

    @property
    @abc.abstractmethod
    def num_cells(self) -> int:
        """Number of cells covering the domain."""

    @abc.abstractmethod
    def cell_records(self) -> np.ndarray:
        """One self-contained record per cell (``record_dtype``)."""

    @abc.abstractmethod
    def cell_centroids(self) -> np.ndarray:
        """``(num_cells, 2)`` array of cell center positions."""

    @abc.abstractmethod
    def cell_interval(self, cell_id: int) -> Interval:
        """Value interval (explicit and interpolated values) of one cell."""

    @property
    @abc.abstractmethod
    def value_range(self) -> Interval:
        """Interval covering every value in the field."""

    @property
    @abc.abstractmethod
    def bounds(self) -> tuple[float, float, float, float]:
        """Spatial domain as ``(xmin, ymin, xmax, ymax)``."""

    # -- live ingest ------------------------------------------------------

    def apply_updates(self, vertex_ids: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
        """Apply new vertex measurements; return the dirty cell ids.

        ``values`` are *absolute* replacement samples for the named
        vertices (re-applying the same batch is a no-op), which is what
        makes write-ahead-log replay idempotent.  One vertex generally
        touches several cells — every cell whose record (interval,
        sample points) changed is returned, sorted and deduplicated, so
        the caller can push exactly those records into its indexes.

        Subclasses that support live ingest override this; the default
        field is read-only.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support live vertex updates")

    # -- conventional (Q1) queries ---------------------------------------

    @abc.abstractmethod
    def locate_cell(self, x: float, y: float) -> int:
        """Cell containing the point, or ``-1`` outside the domain."""

    @abc.abstractmethod
    def value_at(self, x: float, y: float) -> float:
        """Interpolated field value at a point (raises outside domain)."""

    # -- estimation step (record-based, used by all access methods) ------

    @classmethod
    @abc.abstractmethod
    def record_triangles(cls, record: np.void) -> list[
            tuple[list[tuple[float, float]], list[float]]]:
        """Linear sub-triangles of one cell record.

        Returns ``(points, values)`` pairs; linear interpolation over each
        triangle reproduces the cell's interpolation function, which is
        what makes half-plane clipping exact in the estimation step.
        """

    @classmethod
    @abc.abstractmethod
    def estimate_area(cls, records: np.ndarray, lo: float,
                      hi: float) -> float:
        """Total area where ``lo <= value <= hi`` across candidate records.

        Vectorized closed form (no polygon construction); the workhorse of
        the estimation step in large experiments.
        """

    @classmethod
    def band_area_curves(cls, records: np.ndarray,
                         thresholds: np.ndarray) -> tuple[
                             np.ndarray, np.ndarray, float]:
        """Cumulative band-area curves sampled at ``thresholds``.

        Returns ``(area_le, area_lt, total)`` where ``area_le[k]`` is the
        answer area of ``value <= thresholds[k]`` over the records,
        ``area_lt[k]`` the area of ``value < thresholds[k]`` (the two
        differ only on completely flat atoms sitting exactly at a
        threshold), and ``total`` the whole footprint area.  The exact
        band area of ``[lo, hi]`` decomposes as
        ``area_le(hi) - area_lt(lo)`` — the identity the aggregate models
        (``repro.core.aggregate``) are fitted on.

        Generic implementation: one :meth:`estimate_area` call per
        threshold.  Field types with a cheap closed form override this
        with a single broadcast evaluation.
        """
        thresholds = np.asarray(thresholds, dtype=np.float64)
        total = float(cls.estimate_area(records, -np.inf, np.inf))
        area_le = np.array([cls.estimate_area(records, -np.inf, float(t))
                            for t in thresholds])
        area_lt = total - np.array(
            [cls.estimate_area(records, float(t), np.inf)
             for t in thresholds])
        return area_le, area_lt, total

    # -- spatial access (conventional queries through an index) ----------

    @classmethod
    @abc.abstractmethod
    def record_mbrs(cls, records: np.ndarray) -> np.ndarray:
        """``(n, 4)`` spatial MBRs ``(xmin, ymin, xmax, ymax)`` of records.

        Coordinates are in *record space* (see :meth:`to_record_space`).
        """

    def to_record_space(self, x: float, y: float) -> tuple[float, float]:
        """Map a domain point into the records' coordinate space.

        Identity by default; DEM records store grid units, so the DEM
        override divides by the cell size.
        """
        return (x, y)

    # -- shared helpers ---------------------------------------------------

    def intervals_array(self) -> np.ndarray:
        """``(num_cells, 2)`` array of per-cell ``[min, max]``.

        Derived from the stored records so every access method sees the
        exact same (precision-consistent) intervals.
        """
        records = self.cell_records()
        return np.column_stack([records["vmin"], records["vmax"]])

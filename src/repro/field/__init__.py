"""Continuous field data model: DEM grids, TINs, interpolation, estimation."""

from .base import Field
from .delaunay import triangulate
from .dem import DEM_RECORD_DTYPE, DEMField
from .extraction import AnswerRegion, extract_regions, total_area
from .isolines import (
    IsolineSegment,
    extract_isolines,
    total_length,
    triangle_level_segment,
)
from .interpolation import (
    barycentric_coordinates,
    bilinear,
    inverse_distance,
    linear_triangle,
    nearest,
    plane_coefficients,
    triangle_band_fraction,
    triangle_fraction_below,
)
from .temporal import TemporalField
from .tin import TIN_RECORD_DTYPE, TINField
from .vector import VectorField, triangle_min_magnitude
from .volume import (
    VOLUME_RECORD_DTYPE,
    VolumeField,
    tetrahedron_band_fraction,
    tetrahedron_fraction_below,
)

__all__ = [
    "AnswerRegion",
    "IsolineSegment",
    "VOLUME_RECORD_DTYPE",
    "VectorField",
    "VolumeField",
    "extract_isolines",
    "tetrahedron_band_fraction",
    "tetrahedron_fraction_below",
    "total_length",
    "triangle_level_segment",
    "triangle_min_magnitude",
    "DEMField",
    "DEM_RECORD_DTYPE",
    "Field",
    "TINField",
    "TemporalField",
    "TIN_RECORD_DTYPE",
    "barycentric_coordinates",
    "bilinear",
    "extract_regions",
    "inverse_distance",
    "linear_triangle",
    "nearest",
    "plane_coefficients",
    "total_area",
    "triangle_band_fraction",
    "triangle_fraction_below",
    "triangulate",
]

"""3-D volume fields (paper §1: "three-dimensional fields can model
geological structures").

A :class:`VolumeField` samples a scalar (temperature, ore grade, …) at
the vertices of a regular 3-D grid.  Each cubic cell is split into the
six Kuhn tetrahedra sharing the main diagonal, over which linear
interpolation is exact — the 3-D analogue of the DEM's triangulated
squares.  Cell value intervals come from the eight corner samples.

The estimation step uses the closed-form sub-level volume of a linear
function on a tetrahedron (the cumulative distribution of a linear form
over a simplex — a piecewise cubic with knots at the vertex values).

Value queries work through the standard access methods: the centroids
are 3-D, so :class:`~repro.core.ihilbert.IHilbertIndex` linearizes them
with the n-dimensional Hilbert curve automatically.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..geometry import Interval
from .base import Field

#: Record layout of one volume cell (48 bytes -> 85 per 4 KiB page).
VOLUME_RECORD_DTYPE = np.dtype([
    ("cell_id", np.uint32),
    ("vmin", np.float32),
    ("vmax", np.float32),
    ("i", np.uint16),
    ("j", np.uint16),
    ("k", np.uint16),
    ("corners", np.float32, (8,)),
])

#: The six Kuhn tetrahedra of the unit cube, as corner indices into the
#: (x, y, z)-bit-ordered corner array: corner ``b`` has offset
#: ``(b & 1, (b >> 1) & 1, (b >> 2) & 1)``.
KUHN_TETRAHEDRA = tuple(
    (0,
     1 << axes[0],
     (1 << axes[0]) | (1 << axes[1]),
     7)
    for axes in itertools.permutations(range(3), 2)
)

#: Relative spacing used to break vertex-value ties in the closed form.
_TIE_EPS = 1e-6


def tetrahedron_fraction_below(values: np.ndarray,
                               threshold) -> np.ndarray:
    """Volume fraction of linear tetrahedra where ``value <= threshold``.

    ``values`` is ``(n, 4)``; returns ``(n,)``.  Uses the divided-
    difference closed form with the vertex values sorted and near-ties
    spread by a tiny relative epsilon for numerical stability.
    """
    v = np.sort(np.asarray(values, dtype=np.float64), axis=1)
    t = np.asarray(threshold, dtype=np.float64)
    span = v[:, 3] - v[:, 0]
    # A span negligible against the value magnitude (or denormal) is
    # numerically flat; the closed form would underflow on it.
    magnitude = np.maximum(np.abs(v).max(axis=1), 1.0)
    flat = span <= magnitude * 1e-12
    # Spread near-ties: enforce a minimum spacing between sorted values.
    scale = np.where(flat, 1.0, span) * _TIE_EPS
    for col in range(1, 4):
        v[:, col] = np.maximum(v[:, col],
                               v[:, col - 1] + scale)
    a, b, c, d = v[:, 0], v[:, 1], v[:, 2], v[:, 3]
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        term_a = (t - a) ** 3 / ((b - a) * (c - a) * (d - a))
        term_b = (t - b) ** 3 / ((a - b) * (c - b) * (d - b))
        term_c = (t - c) ** 3 / ((a - c) * (b - c) * (d - c))
    result = np.where(t <= b, term_a,
                      np.where(t <= c, term_a + term_b,
                               term_a + term_b + term_c))
    result = np.where(t < a, 0.0, result)
    result = np.where(t >= d, 1.0, result)
    result = np.clip(result, 0.0, 1.0)
    # Flat tetrahedra: fully below iff their value <= t.
    return np.where(flat, (t >= v[:, 0]).astype(float), result)


def tetrahedron_band_fraction(values: np.ndarray, lo: float,
                              hi: float) -> np.ndarray:
    """Volume fraction of linear tetrahedra where ``lo <= value <= hi``."""
    v = np.asarray(values, dtype=np.float64)
    below_hi = tetrahedron_fraction_below(v, hi)
    below_lo = tetrahedron_fraction_below(v, lo)
    frac = np.clip(below_hi - below_lo, 0.0, 1.0)
    span = v.max(axis=1) - v.min(axis=1)
    magnitude = np.maximum(np.abs(v).max(axis=1), 1.0)
    flat = span <= magnitude * 1e-12   # same convention as fraction_below
    vmin = v.min(axis=1)
    inside_flat = flat & (vmin >= lo) & (vmin <= hi)
    return np.where(inside_flat, 1.0, frac)


class VolumeField(Field):
    """A continuous scalar field over a regular 3-D voxel grid.

    Parameters
    ----------
    samples:
        ``(nz+1, ny+1, nx+1)`` vertex values; ``samples[k, j, i]`` is the
        sample at grid position ``(x=i, y=j, z=k)``.
    """

    record_dtype = VOLUME_RECORD_DTYPE

    def __init__(self, samples: np.ndarray) -> None:
        samples = np.asarray(samples, dtype=np.float32)
        if samples.ndim != 3 or min(samples.shape) < 2:
            raise ValueError(
                f"samples must be a (nz+1, ny+1, nx+1) grid with at "
                f"least one cell, got shape {samples.shape}")
        self.samples = samples
        self.nz = samples.shape[0] - 1
        self.ny = samples.shape[1] - 1
        self.nx = samples.shape[2] - 1
        self._records: np.ndarray | None = None

    # -- structure ------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def value_range(self) -> Interval:
        return Interval(float(self.samples.min()),
                        float(self.samples.max()))

    @property
    def bounds(self) -> tuple[float, ...]:
        return (0.0, 0.0, 0.0,
                float(self.nx), float(self.ny), float(self.nz))

    def cell_id(self, i: int, j: int, k: int) -> int:
        """Dense id of the cell at grid position ``(i, j, k)``."""
        if not (0 <= i < self.nx and 0 <= j < self.ny
                and 0 <= k < self.nz):
            raise IndexError(f"cell ({i}, {j}, {k}) outside grid")
        return (k * self.ny + j) * self.nx + i

    def cell_position(self, cell_id: int) -> tuple[int, int, int]:
        """Inverse of :meth:`cell_id`."""
        if not 0 <= cell_id < self.num_cells:
            raise IndexError(f"cell id {cell_id} out of range")
        k, rest = divmod(cell_id, self.nx * self.ny)
        j, i = divmod(rest, self.nx)
        return (i, j, k)

    def cell_records(self) -> np.ndarray:
        if self._records is None:
            s = self.samples
            # Corner b at offset (b&1, (b>>1)&1, (b>>2)&1) in (x, y, z).
            corner_views = []
            for b in range(8):
                dx, dy, dz = b & 1, (b >> 1) & 1, (b >> 2) & 1
                corner_views.append(
                    s[dz:dz + self.nz, dy:dy + self.ny, dx:dx + self.nx])
            corners = np.stack(corner_views, axis=-1).reshape(
                self.num_cells, 8)
            records = np.empty(self.num_cells, dtype=self.record_dtype)
            records["cell_id"] = np.arange(self.num_cells, dtype=np.uint32)
            records["vmin"] = corners.min(axis=1)
            records["vmax"] = corners.max(axis=1)
            kk, jj, ii = np.meshgrid(np.arange(self.nz),
                                     np.arange(self.ny),
                                     np.arange(self.nx), indexing="ij")
            records["i"] = ii.ravel().astype(np.uint16)
            records["j"] = jj.ravel().astype(np.uint16)
            records["k"] = kk.ravel().astype(np.uint16)
            records["corners"] = corners
            self._records = records
        return self._records

    def cell_centroids(self) -> np.ndarray:
        kk, jj, ii = np.meshgrid(np.arange(self.nz), np.arange(self.ny),
                                 np.arange(self.nx), indexing="ij")
        return np.column_stack([ii.ravel() + 0.5, jj.ravel() + 0.5,
                                kk.ravel() + 0.5])

    def cell_interval(self, cell_id: int) -> Interval:
        rec = self.cell_records()[cell_id]
        return Interval(float(rec["vmin"]), float(rec["vmax"]))

    # -- conventional (Q1) queries ---------------------------------------

    def locate_cell(self, x: float, y: float, z: float = 0.0) -> int:
        if not (0.0 <= x <= self.nx and 0.0 <= y <= self.ny
                and 0.0 <= z <= self.nz):
            return -1
        i = min(int(x), self.nx - 1)
        j = min(int(y), self.ny - 1)
        k = min(int(z), self.nz - 1)
        return self.cell_id(i, j, k)

    def value_at(self, x: float, y: float, z: float = 0.0) -> float:
        """Linear (Kuhn-tetrahedral) interpolation at a 3-D point."""
        cell = self.locate_cell(x, y, z)
        if cell < 0:
            raise ValueError(
                f"point ({x}, {y}, {z}) outside the field domain")
        i, j, k = self.cell_position(cell)
        u, v, w = x - i, y - j, z - k
        corners = self.cell_records()[cell]["corners"]
        # Find the Kuhn tetrahedron containing (u, v, w) and evaluate
        # its linear form via barycentric weights along the Kuhn path.
        order = np.argsort([-u, -v, -w], kind="stable")
        coords = (u, v, w)
        path = [0]
        acc = 0
        for axis in order:
            acc |= 1 << int(axis)
            path.append(acc)
        sorted_vals = sorted(coords, reverse=True)
        weights = [1.0 - sorted_vals[0],
                   sorted_vals[0] - sorted_vals[1],
                   sorted_vals[1] - sorted_vals[2],
                   sorted_vals[2]]
        return float(sum(wgt * float(corners[p])
                         for wgt, p in zip(weights, path)))

    # -- estimation step -------------------------------------------------

    @classmethod
    def record_tetrahedra_values(cls, records: np.ndarray) -> np.ndarray:
        """``(n, 6, 4)`` vertex values of every cell's Kuhn tetrahedra."""
        corners = records["corners"].astype(np.float64)
        tets = np.empty((len(records), 6, 4))
        for t, tet in enumerate(KUHN_TETRAHEDRA):
            tets[:, t, :] = corners[:, list(tet)]
        return tets

    @classmethod
    def record_triangles(cls, record: np.void):
        raise NotImplementedError(
            "3-D fields report answer volumes, not 2-D polygons; use "
            "estimate='area' (the answer measure is a volume)")

    @classmethod
    def estimate_area(cls, records: np.ndarray, lo: float,
                      hi: float) -> float:
        """Answer-region *volume* (in cell units) over candidate records."""
        if len(records) == 0:
            return 0.0
        tets = cls.record_tetrahedra_values(records)
        flat_vals = tets.reshape(-1, 4)
        fractions = tetrahedron_band_fraction(flat_vals, lo, hi)
        # Each Kuhn tetrahedron has volume 1/6 of the unit cell.
        return float(fractions.sum() / 6.0)

    @classmethod
    def record_mbrs(cls, records: np.ndarray) -> np.ndarray:
        i = records["i"].astype(np.float64)
        j = records["j"].astype(np.float64)
        k = records["k"].astype(np.float64)
        return np.column_stack([i, j, k, i + 1.0, j + 1.0, k + 1.0])

"""Disk-backed R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).

This is the index structure the paper layers over value intervals: 1-D for
interval MBRs (I-All, I-Hilbert) and 2-D for conventional point queries.
Nodes live one-per-page on a :class:`~repro.storage.disk.DiskManager`;
searches read and deserialize real page images so that I/O counts and
CPU work are honest.  Besides dynamic insertion with forced reinsert, the
tree offers Kamel–Faloutsos Hilbert-packed bulk loading (the paper's
ref [14]) used to build the large I-All indexes in reasonable time.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..curves import HilbertCurve2D
from ..geometry import Rect
from ..storage import BufferPool, DiskManager
from .node import Node, entry_dtype, node_capacity
from .split import rstar_split

Entry = tuple[Rect, int]

#: Fraction of the node the R* forced-reinsert evicts.
REINSERT_FRACTION = 0.3
#: Minimum node fill as a fraction of capacity.
MIN_FILL_FRACTION = 0.4
#: Entries considered when computing overlap enlargement in ChooseSubtree.
CHOOSE_SUBTREE_CANDIDATES = 32


class RStarTree:
    """An R*-tree over ``dim``-dimensional rectangles.

    Parameters
    ----------
    dim:
        Dimensionality of indexed rectangles (1 for value intervals).
    disk:
        Page file for the nodes; a private one is created when omitted.
    cache_pages:
        Buffer-pool capacity used by accounted searches.
    max_entries:
        Override the page-derived node capacity (mainly for tests that
        want tiny nodes and deep trees).
    """

    def __init__(self, dim: int, disk: DiskManager | None = None,
                 cache_pages: int = 0,
                 max_entries: int | None = None) -> None:
        self.dim = dim
        self.disk = disk if disk is not None else DiskManager(name="rstar")
        page_cap = node_capacity(self.disk.usable_page_size, dim)
        if max_entries is None:
            self.capacity = page_cap
        else:
            if not 4 <= max_entries <= page_cap:
                raise ValueError(
                    f"max_entries must be in [4, {page_cap}], "
                    f"got {max_entries}")
            self.capacity = max_entries
        self.min_fill = max(2, int(MIN_FILL_FRACTION * self.capacity))
        self.reinsert_count = max(1, int(REINSERT_FRACTION * self.capacity))
        self.pool = BufferPool(self.disk, capacity=cache_pages)
        self._nodes: dict[int, Node] = {}
        self._root_id = self._new_node(is_leaf=True).page_id
        self._height = 1
        self._count = 0
        self._dirty = True
        self._reinserted_levels: set[int] = set()

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Number of levels (1 = a single leaf root)."""
        return self._height

    @property
    def num_nodes(self) -> int:
        """Number of live nodes."""
        return len(self._nodes)

    def insert(self, rect: Rect, ident: int) -> None:
        """Insert a rectangle with an opaque integer id."""
        self._require_dim(rect)
        self._reinserted_levels = set()
        self._insert_top(rect, ident, target_level=0)
        self._count += 1
        self._dirty = True

    def delete(self, rect: Rect, ident: int) -> bool:
        """Remove one entry matching ``(rect, ident)`` exactly.

        Returns True when an entry was found and removed.  Underfull nodes
        are dissolved and their entries reinserted (the classic condense
        step); a non-leaf root with a single child is cut.
        """
        self._require_dim(rect)
        found = self._delete_rec(self._root_id, self._height - 1,
                                 rect, ident)
        if not found:
            return False
        self._count -= 1
        root = self._nodes[self._root_id]
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0][1]
            del self._nodes[self._root_id]
            self._root_id = child_id
            self._height -= 1
            root = self._nodes[self._root_id]
        self._dirty = True
        return True

    def search(self, rect: Rect) -> np.ndarray:
        """Ids of all entries whose rectangle intersects ``rect``.

        Traversal reads node pages through the buffer pool, charging I/O;
        intersection tests run vectorized over each page's entry array.
        """
        self._require_dim(rect)
        if self._dirty:
            self.flush()
        qlows = np.asarray(rect.lows)
        qhighs = np.asarray(rect.highs)
        hits: list[np.ndarray] = []
        stack = [self._root_id]
        while stack:
            data = self.pool.read(stack.pop())
            is_leaf, records = Node.read_arrays(data, self.dim)
            mask = (np.all(records["lows"] <= qhighs, axis=1)
                    & np.all(records["highs"] >= qlows, axis=1))
            ids = records["id"][mask]
            if is_leaf:
                if len(ids):
                    hits.append(ids)
            else:
                # tolist() converts the child ids in one C pass; the
                # per-element int() generator it replaces dominated
                # profile time on deep traversals.
                stack.extend(ids.tolist())
        if not hits:
            return np.empty(0, dtype=np.int64)
        if len(hits) == 1:
            return hits[0].copy()
        return np.concatenate(hits)

    def search_entries(self, rect: Rect) -> list[Entry]:
        """Like :meth:`search` but returning ``(rect, id)`` pairs."""
        self._require_dim(rect)
        if self._dirty:
            self.flush()
        qlows = np.asarray(rect.lows)
        qhighs = np.asarray(rect.highs)
        results: list[Entry] = []
        stack = [self._root_id]
        while stack:
            data = self.pool.read(stack.pop())
            is_leaf, records = Node.read_arrays(data, self.dim)
            mask = (np.all(records["lows"] <= qhighs, axis=1)
                    & np.all(records["highs"] >= qlows, axis=1))
            if is_leaf:
                results.extend(
                    (Rect(tuple(rec["lows"]), tuple(rec["highs"])),
                     int(rec["id"]))
                    for rec in records[mask])
            else:
                stack.extend(records["id"][mask].tolist())
        return results

    def bulk_load(self, rects: Sequence[Rect], idents: Iterable[int],
                  fill: float = 1.0) -> None:
        """Hilbert-pack ``rects`` into a fresh tree (Kamel–Faloutsos).

        Rectangles are sorted by the Hilbert value of their centers (plain
        center order in 1-D) and packed bottom-up at ``fill`` × capacity.
        The tree must be empty.
        """
        idents = list(idents)
        if len(rects) != len(idents):
            raise ValueError(
                f"{len(rects)} rects vs {len(idents)} ids")
        for rect in rects:
            self._require_dim(rect)
        n = len(rects)
        lows = np.array([r.lows for r in rects],
                        dtype=np.float64).reshape(n, self.dim)
        highs = np.array([r.highs for r in rects],
                         dtype=np.float64).reshape(n, self.dim)
        self.bulk_load_arrays(lows, highs,
                              np.asarray(idents, dtype=np.int64), fill=fill)

    def bulk_load_arrays(self, lows: np.ndarray, highs: np.ndarray,
                         idents: np.ndarray, fill: float = 1.0) -> None:
        """Array-native bulk load: same packing, no per-entry objects.

        ``lows``/``highs`` are float64 arrays of shape ``(n, dim)`` (or
        ``(n,)`` for 1-D trees) and ``idents`` an int64 array of ids.
        Produces a tree byte-identical to :meth:`bulk_load` over the
        equivalent ``Rect`` sequence — same page allocation order, same
        node records — but sorts, chunks, and packs straight over the
        input arrays, so the build cost is the ``argsort`` plus one
        record-array fill per node.  This is the bulk-ingestion entry
        point: :meth:`bulk_load` itself converts and delegates here.
        """
        if self._count:
            raise ValueError("bulk_load requires an empty tree")
        if not 0.0 < fill <= 1.0:
            raise ValueError(f"fill must be in (0, 1], got {fill}")
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        idents = np.asarray(idents, dtype=np.int64)
        if lows.ndim == 1:
            lows = lows[:, None]
        if highs.ndim == 1:
            highs = highs[:, None]
        n = len(lows)
        if lows.shape != (n, self.dim) or highs.shape != (n, self.dim):
            raise ValueError(
                f"expected ({n}, {self.dim}) bounds arrays, got "
                f"{lows.shape} / {highs.shape}")
        if len(idents) != n:
            raise ValueError(f"{n} rects vs {len(idents)} ids")
        if not n:
            return
        order = self._packing_order_arrays(lows, highs)
        slows = np.ascontiguousarray(lows[order])
        shighs = np.ascontiguousarray(highs[order])
        sids = np.ascontiguousarray(idents[order])
        per_node = max(self.min_fill, int(self.capacity * fill))
        dtype = entry_dtype(self.dim)
        self._nodes.clear()
        self._height = 1
        while True:
            bounds = self._chunk_bounds(len(sids), per_node)
            is_leaf = self._height == 1
            up_lows = np.empty((len(bounds), self.dim))
            up_highs = np.empty((len(bounds), self.dim))
            up_ids = np.empty(len(bounds), dtype=np.int64)
            for k, (s, e) in enumerate(bounds):
                records = np.empty(e - s, dtype=dtype)
                records["lows"] = slows[s:e]
                records["highs"] = shighs[s:e]
                records["id"] = sids[s:e]
                page_id = self.disk.allocate()
                self._nodes[page_id] = Node.from_records(
                    page_id, is_leaf, records)
                up_lows[k] = slows[s:e].min(axis=0)
                up_highs[k] = shighs[s:e].max(axis=0)
                up_ids[k] = page_id
            if len(bounds) == 1:
                self._root_id = int(up_ids[0])
                break
            slows, shighs, sids = up_lows, up_highs, up_ids
            self._height += 1
        self._count = n
        self._dirty = True

    def _chunk_bounds(self, n: int, per_node: int) -> list[tuple[int, int]]:
        """Slice bounds of ~``per_node`` groups, none below ``min_fill``.

        A short remainder borrows from the previous full group so every
        packed node satisfies the fill invariant (the array twin of the
        object path's balanced chunking).
        """
        bounds = [(s, min(s + per_node, n)) for s in range(0, n, per_node)]
        if len(bounds) > 1 and bounds[-1][1] - bounds[-1][0] < self.min_fill:
            s0 = bounds[-2][0]
            e1 = bounds[-1][1]
            half = (e1 - s0) // 2
            bounds[-2:] = [(s0, s0 + half), (s0 + half, e1)]
        return bounds

    def flush(self) -> None:
        """Serialize every node to its page (mirror for accounted reads)."""
        for node in self._nodes.values():
            self.disk.write(node.page_id,
                            node.to_bytes(self.disk.usable_page_size,
                                          self.dim))
        self.pool.clear()
        self._dirty = False

    def root_mbr(self) -> Rect | None:
        """Bounding box of the whole tree, or None when empty."""
        root = self._nodes[self._root_id]
        if not root.entries:
            return None
        return root.mbr()

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on breach.

        Checks: every internal entry's rect equals its child's MBR, node
        fill bounds (root exempt), uniform leaf depth, and entry count.
        """
        counted = self._check_rec(self._root_id, self._height - 1)
        assert counted == self._count, (
            f"entry count mismatch: tree says {self._count}, "
            f"walk found {counted}")

    # ------------------------------------------------------------------
    # insertion internals
    # ------------------------------------------------------------------

    def _insert_top(self, rect: Rect, ident: int, target_level: int) -> None:
        root_before = self._root_id
        root_level = self._height - 1
        split = self._insert_rec(root_before, root_level,
                                 rect, ident, target_level)
        if split is None:
            return
        if self._root_id == root_before:
            old_root = self._nodes[root_before]
            new_root = self._new_node(is_leaf=False)
            new_root.entries = [(old_root.mbr(), old_root.page_id), split]
            self._root_id = new_root.page_id
            self._height += 1
        else:
            # A nested forced-reinsert grew the tree above ``root_before``
            # while we were working: attach the sibling to the level that
            # now sits above the old root instead of minting a new root.
            self._insert_top(split[0], split[1],
                             target_level=root_level + 1)

    def _insert_rec(self, node_id: int, level: int, rect: Rect,
                    ident: int, target_level: int) -> Entry | None:
        node = self._nodes[node_id]
        if level == target_level:
            node.entries.append((rect, ident))
        else:
            idx = self._pick_child(node, rect, level)
            child_id = node.entries[idx][1]
            split = self._insert_rec(child_id, level - 1,
                                     rect, ident, target_level)
            child = self._nodes[child_id]
            # Re-locate the child by id: nested forced-reinserts may have
            # appended entries or even migrated the child to a sibling
            # during the recursive call, leaving a stale MBR behind.
            holder, k = self._find_parent_entry(node, child_id)
            holder.entries[k] = (child.mbr(), child_id)
            if split is not None:
                node.entries.append(split)
        if len(node.entries) > self.capacity:
            return self._overflow(node, level)
        return None

    def _overflow(self, node: Node, level: int) -> Entry | None:
        is_root = node.page_id == self._root_id
        if not is_root and level not in self._reinserted_levels:
            self._reinserted_levels.add(level)
            self._force_reinsert(node, level)
            return None
        left, right = rstar_split(node.entries, self.min_fill, self.dim)
        node.entries = left
        sibling = self._new_node(node.is_leaf)
        sibling.entries = right
        return (sibling.mbr(), sibling.page_id)

    def _force_reinsert(self, node: Node, level: int) -> None:
        center = node.mbr().center()
        by_distance = sorted(
            node.entries,
            key=lambda e: self._center_distance(e[0], center),
            reverse=True)
        evicted = by_distance[:self.reinsert_count]
        node.entries = by_distance[self.reinsert_count:]
        # Close reinsert: push the nearest evictee back in first.
        for rect, ident in reversed(evicted):
            self._insert_top(rect, ident, target_level=level)

    def _pick_child(self, node: Node, rect: Rect, level: int) -> int:
        children_are_leaves = level == 1
        if not children_are_leaves:
            return self._least_enlargement(node.entries, rect)
        # R* leaf-level rule: minimize overlap enlargement among the
        # candidates with least area enlargement.
        ranked = sorted(
            range(len(node.entries)),
            key=lambda i: (node.entries[i][0].enlargement(rect),
                           node.entries[i][0].area()))
        candidates = ranked[:CHOOSE_SUBTREE_CANDIDATES]
        best = candidates[0]
        best_key = None
        for i in candidates:
            box = node.entries[i][0]
            grown = box.union(rect)
            overlap_delta = 0.0
            for j, (other, _unused) in enumerate(node.entries):
                if j == i:
                    continue
                overlap_delta += (grown.intersection_area(other)
                                  - box.intersection_area(other))
            key = (overlap_delta, box.enlargement(rect), box.area())
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    @staticmethod
    def _least_enlargement(entries: list[Entry], rect: Rect) -> int:
        best = 0
        best_key = None
        for i, (box, _unused) in enumerate(entries):
            key = (box.enlargement(rect), box.area())
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    # ------------------------------------------------------------------
    # deletion internals
    # ------------------------------------------------------------------

    def _delete_rec(self, node_id: int, level: int, rect: Rect,
                    ident: int) -> bool:
        node = self._nodes[node_id]
        if node.is_leaf:
            for i, (box, entry_id) in enumerate(node.entries):
                if entry_id == ident and box == rect:
                    node.entries.pop(i)
                    return True
            return False
        for box, child_id in list(node.entries):
            if not box.intersects(rect):
                continue
            if not self._delete_rec(child_id, level - 1, rect, ident):
                continue
            child = self._nodes[child_id]
            # Re-locate by id: the recursion may have reshuffled entries
            # (orphan reinsertion can split ancestors).
            holder, k = self._find_parent_entry(node, child_id)
            if len(child.entries) < self.min_fill:
                holder.entries.pop(k)
                orphans = self._collect_entries(child_id, level - 1)
                self._reinserted_levels = set(range(self._height))
                for orphan_level, orect, oid in orphans:
                    self._insert_top(orect, oid, target_level=orphan_level)
                self._dissolve_if_underfull(holder, node, level)
            else:
                holder.entries[k] = (child.mbr(), child_id)
            return True
        return False

    def _dissolve_if_underfull(self, holder: Node, frame: Node,
                               level: int) -> None:
        """Condense ``holder`` when an out-of-frame pop underfilled it.

        Normally the caller's parent frame handles underflow of the node
        it descended into; when the popped entry had migrated to a
        sibling, that sibling has no active frame, so it is dissolved
        here.
        """
        if (holder.page_id == frame.page_id
                or holder.page_id == self._root_id
                or len(holder.entries) >= self.min_fill):
            return
        parent, k = self._find_parent_entry(frame, holder.page_id)
        parent.entries.pop(k)
        orphans = self._collect_entries(holder.page_id, level)
        self._reinserted_levels = set(range(self._height))
        for orphan_level, orect, oid in orphans:
            self._insert_top(orect, oid, target_level=orphan_level)

    def _collect_entries(self, node_id: int,
                         level: int) -> list[tuple[int, Rect, int]]:
        node = self._nodes.pop(node_id)
        if node.is_leaf:
            return [(0, rect, ident) for rect, ident in node.entries]
        collected: list[tuple[int, Rect, int]] = []
        for _unused, child_id in node.entries:
            collected.extend(self._collect_entries(child_id, level - 1))
        return collected

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _find_parent_entry(self, likely: Node,
                           child_id: int) -> tuple[Node, int]:
        """Locate the internal entry pointing at ``child_id``.

        ``likely`` is checked first (the common case); when a nested
        forced-reinsert migrated the entry to a sibling, every node is
        scanned — rare enough that O(nodes) is acceptable.
        """
        for k, (_unused, cid) in enumerate(likely.entries):
            if cid == child_id:
                return likely, k
        for node in self._nodes.values():
            if node.is_leaf or node.page_id == likely.page_id:
                continue
            for k, (_unused, cid) in enumerate(node.entries):
                if cid == child_id:
                    return node, k
        raise AssertionError(
            f"no parent entry found for node {child_id}")

    def _new_node(self, is_leaf: bool) -> Node:
        page_id = self.disk.allocate()
        node = Node(page_id, is_leaf)
        self._nodes[page_id] = node
        return node

    def _read_accounted(self, page_id: int) -> Node:
        data = self.pool.read(page_id)
        return Node.from_bytes(page_id, data, self.dim)

    def _packing_order_arrays(self, lows: np.ndarray,
                              highs: np.ndarray) -> np.ndarray:
        # (lo + hi) / 2.0 matches Rect.center() bit for bit, so the
        # array path sorts exactly as the object path did.
        centers = (lows + highs) / 2.0
        if self.dim == 1:
            return np.argsort(centers[:, 0], kind="stable")
        curve = HilbertCurve2D(16)
        lo = centers.min(axis=0)
        hi = centers.max(axis=0)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        grid = ((centers[:, :2] - lo[:2]) / span[:2]
                * (curve.side - 1)).astype(np.int64)
        keys = curve.indices(grid)
        return np.argsort(keys, kind="stable")

    @staticmethod
    def _center_distance(rect: Rect, center: tuple[float, ...]) -> float:
        c = rect.center()
        return sum((a - b) ** 2 for a, b in zip(c, center))

    def _require_dim(self, rect: Rect) -> None:
        if rect.dim != self.dim:
            raise ValueError(
                f"rect dimension {rect.dim} does not match tree "
                f"dimension {self.dim}")

    def _check_rec(self, node_id: int, level: int) -> int:
        node = self._nodes[node_id]
        is_root = node_id == self._root_id
        if not is_root:
            assert len(node.entries) >= self.min_fill, (
                f"underfull node {node_id}: {len(node.entries)} entries")
        assert len(node.entries) <= self.capacity, (
            f"overfull node {node_id}")
        if node.is_leaf:
            assert level == 0, f"leaf {node_id} at level {level}"
            return len(node.entries)
        assert level > 0, f"internal node {node_id} at leaf level"
        total = 0
        for rect, child_id in node.entries:
            child = self._nodes[child_id]
            assert child.mbr() == rect, (
                f"stale MBR for child {child_id} of node {node_id}")
            total += self._check_rec(child_id, level - 1)
        return total

"""R*-tree nodes and their on-page representation.

A node occupies exactly one 4 KiB page.  Entries are ``(Rect, id)`` pairs:
in internal nodes the id is a child page id, in leaves it is an opaque
data id (a cell rid for I-All, a subfield id for I-Hilbert).  The byte
layout is a small header followed by a packed numpy record array, so node
capacity — and therefore tree height — derives honestly from the page size.

Nodes built by the bulk loader (and nodes deserialized from disk) carry
their entries as the packed record array itself and only materialize the
``(Rect, id)`` object list on first access — serialization and MBR
computation stay vectorized for nodes the insert path never touches.
"""

from __future__ import annotations

import struct

import numpy as np

from ..geometry import Rect
from ..storage.codec import decode_records

#: Node header: leaf flag (1 byte), pad, entry count (uint32).
_HEADER = struct.Struct("<B3xI")


def entry_dtype(dim: int) -> np.dtype:
    """Record dtype of one serialized entry for a ``dim``-D tree."""
    return np.dtype([("lows", np.float64, (dim,)),
                     ("highs", np.float64, (dim,)),
                     ("id", np.int64)])


def node_capacity(page_size: int, dim: int) -> int:
    """Maximum entries per node for the given page size."""
    cap = (page_size - _HEADER.size) // entry_dtype(dim).itemsize
    if cap < 4:
        raise ValueError(
            f"page size {page_size} too small for a {dim}-D node")
    return cap


class Node:
    """One R*-tree node (in memory)."""

    __slots__ = ("page_id", "is_leaf", "_entries", "_records")

    def __init__(self, page_id: int, is_leaf: bool,
                 entries: list[tuple[Rect, int]] | None = None) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self._entries: list[tuple[Rect, int]] | None = \
            entries if entries else []
        self._records: np.ndarray | None = None

    @classmethod
    def from_records(cls, page_id: int, is_leaf: bool,
                     records: np.ndarray) -> "Node":
        """Build a node directly over a packed entry record array.

        The object-level entry list is materialized lazily on first
        access to :attr:`entries`; until then ``to_bytes`` and ``mbr``
        run straight off the array.
        """
        node = cls(page_id, is_leaf)
        node._entries = None
        node._records = records
        return node

    @property
    def entries(self) -> list[tuple[Rect, int]]:
        """The ``(Rect, child-or-record id)`` entry list, materializing
        it lazily from the packed record array on first access."""
        if self._entries is None:
            self._entries = [
                (Rect(tuple(rec["lows"]), tuple(rec["highs"])),
                 int(rec["id"]))
                for rec in self._records
            ]
            # Mutations go through the list from here on; the packed
            # array would go stale, so drop it.
            self._records = None
        return self._entries

    @entries.setter
    def entries(self, value: list[tuple[Rect, int]]) -> None:
        self._entries = value
        self._records = None

    def __len__(self) -> int:
        if self._entries is None:
            return len(self._records)
        return len(self._entries)

    def mbr(self) -> Rect:
        """Bounding box of every entry (node must be non-empty)."""
        if self._entries is None:
            if not len(self._records):
                raise ValueError("MBR of an empty node")
            # Element-wise min/max equals the chain of pairwise unions.
            return Rect(tuple(self._records["lows"].min(axis=0)),
                        tuple(self._records["highs"].max(axis=0)))
        if not self.entries:
            raise ValueError("MBR of an empty node")
        box = self.entries[0][0]
        for rect, _unused in self.entries[1:]:
            box = box.union(rect)
        return box

    def to_bytes(self, page_size: int, dim: int) -> bytes:
        """Serialize into one page image."""
        if self._entries is None:
            records = self._records
        else:
            records = np.empty(len(self.entries), dtype=entry_dtype(dim))
            for i, (rect, ident) in enumerate(self.entries):
                records[i] = (rect.lows, rect.highs, ident)
        payload = _HEADER.pack(1 if self.is_leaf else 0,
                               len(records)) + records.tobytes()
        if len(payload) > page_size:
            raise ValueError(
                f"node with {len(records)} entries overflows the page")
        return payload

    @classmethod
    def read_arrays(cls, data: bytes, dim: int) -> tuple[bool, np.ndarray]:
        """Fast path: ``(is_leaf, entry record array)`` without objects.

        Search traversals use this to test intersections vectorized
        instead of materializing per-entry :class:`~repro.geometry.Rect`
        objects.
        """
        leaf_flag, count = _HEADER.unpack_from(data, 0)
        records = decode_records(data, entry_dtype(dim),
                                 count=count, offset=_HEADER.size)
        return bool(leaf_flag), records

    @classmethod
    def from_bytes(cls, page_id: int, data: bytes, dim: int) -> "Node":
        """Deserialize a page image back into a node."""
        leaf_flag, count = _HEADER.unpack_from(data, 0)
        records = decode_records(data, entry_dtype(dim),
                                 count=count, offset=_HEADER.size)
        return cls.from_records(page_id, bool(leaf_flag), records)

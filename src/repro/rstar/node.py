"""R*-tree nodes and their on-page representation.

A node occupies exactly one 4 KiB page.  Entries are ``(Rect, id)`` pairs:
in internal nodes the id is a child page id, in leaves it is an opaque
data id (a cell rid for I-All, a subfield id for I-Hilbert).  The byte
layout is a small header followed by a packed numpy record array, so node
capacity — and therefore tree height — derives honestly from the page size.
"""

from __future__ import annotations

import struct

import numpy as np

from ..geometry import Rect

#: Node header: leaf flag (1 byte), pad, entry count (uint32).
_HEADER = struct.Struct("<B3xI")


def entry_dtype(dim: int) -> np.dtype:
    """Record dtype of one serialized entry for a ``dim``-D tree."""
    return np.dtype([("lows", np.float64, (dim,)),
                     ("highs", np.float64, (dim,)),
                     ("id", np.int64)])


def node_capacity(page_size: int, dim: int) -> int:
    """Maximum entries per node for the given page size."""
    cap = (page_size - _HEADER.size) // entry_dtype(dim).itemsize
    if cap < 4:
        raise ValueError(
            f"page size {page_size} too small for a {dim}-D node")
    return cap


class Node:
    """One R*-tree node (in memory)."""

    __slots__ = ("page_id", "is_leaf", "entries")

    def __init__(self, page_id: int, is_leaf: bool,
                 entries: list[tuple[Rect, int]] | None = None) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.entries: list[tuple[Rect, int]] = entries if entries else []

    def __len__(self) -> int:
        return len(self.entries)

    def mbr(self) -> Rect:
        """Bounding box of every entry (node must be non-empty)."""
        if not self.entries:
            raise ValueError("MBR of an empty node")
        box = self.entries[0][0]
        for rect, _unused in self.entries[1:]:
            box = box.union(rect)
        return box

    def to_bytes(self, page_size: int, dim: int) -> bytes:
        """Serialize into one page image."""
        records = np.empty(len(self.entries), dtype=entry_dtype(dim))
        for i, (rect, ident) in enumerate(self.entries):
            records[i] = (rect.lows, rect.highs, ident)
        payload = _HEADER.pack(1 if self.is_leaf else 0,
                               len(self.entries)) + records.tobytes()
        if len(payload) > page_size:
            raise ValueError(
                f"node with {len(self.entries)} entries overflows the page")
        return payload

    @classmethod
    def read_arrays(cls, data: bytes, dim: int) -> tuple[bool, np.ndarray]:
        """Fast path: ``(is_leaf, entry record array)`` without objects.

        Search traversals use this to test intersections vectorized
        instead of materializing per-entry :class:`~repro.geometry.Rect`
        objects.
        """
        leaf_flag, count = _HEADER.unpack_from(data, 0)
        records = np.frombuffer(data, dtype=entry_dtype(dim),
                                count=count, offset=_HEADER.size)
        return bool(leaf_flag), records

    @classmethod
    def from_bytes(cls, page_id: int, data: bytes, dim: int) -> "Node":
        """Deserialize a page image back into a node."""
        leaf_flag, count = _HEADER.unpack_from(data, 0)
        records = np.frombuffer(data, dtype=entry_dtype(dim),
                                count=count, offset=_HEADER.size)
        entries = [
            (Rect(tuple(rec["lows"]), tuple(rec["highs"])), int(rec["id"]))
            for rec in records
        ]
        return cls(page_id, bool(leaf_flag), entries)

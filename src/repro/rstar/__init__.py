"""R*-tree access method (Beckmann et al.), page-backed and I/O-accounted."""

from .node import Node, entry_dtype, node_capacity
from .split import choose_split_axis, choose_split_index, rstar_split
from .tree import RStarTree

__all__ = [
    "Node",
    "RStarTree",
    "choose_split_axis",
    "choose_split_index",
    "entry_dtype",
    "node_capacity",
    "rstar_split",
]

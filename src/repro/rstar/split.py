"""The R* split: axis selection by margin, distribution by overlap.

Implements the topological split of Beckmann et al. (SIGMOD 1990), the
index structure the paper uses for interval MBRs (§3).  Given an
overflowing entry list, :func:`rstar_split` returns the two entry groups.
"""

from __future__ import annotations

from ..geometry import Rect

Entry = tuple[Rect, int]


def _group_mbr(entries: list[Entry]) -> Rect:
    box = entries[0][0]
    for rect, _unused in entries[1:]:
        box = box.union(rect)
    return box


def _distributions(entries: list[Entry], min_fill: int):
    """Yield every (first-group, second-group) split position."""
    for k in range(min_fill, len(entries) - min_fill + 1):
        yield entries[:k], entries[k:]


def choose_split_axis(entries: list[Entry], min_fill: int, dim: int) -> int:
    """Axis whose sorted distributions have the least total margin."""
    best_axis = 0
    best_margin = float("inf")
    for axis in range(dim):
        margin = 0.0
        for key in (_low_key(axis), _high_key(axis)):
            ordered = sorted(entries, key=key)
            for left, right in _distributions(ordered, min_fill):
                margin += _group_mbr(left).margin()
                margin += _group_mbr(right).margin()
        if margin < best_margin:
            best_margin = margin
            best_axis = axis
    return best_axis


def choose_split_index(entries: list[Entry], min_fill: int,
                       axis: int) -> tuple[list[Entry], list[Entry]]:
    """Distribution on ``axis`` with minimal overlap (ties: minimal area)."""
    best: tuple[list[Entry], list[Entry]] | None = None
    best_overlap = float("inf")
    best_area = float("inf")
    for key in (_low_key(axis), _high_key(axis)):
        ordered = sorted(entries, key=key)
        for left, right in _distributions(ordered, min_fill):
            left_mbr = _group_mbr(left)
            right_mbr = _group_mbr(right)
            overlap = left_mbr.intersection_area(right_mbr)
            area = left_mbr.area() + right_mbr.area()
            if (overlap < best_overlap
                    or (overlap == best_overlap and area < best_area)):
                best_overlap = overlap
                best_area = area
                best = (list(left), list(right))
    assert best is not None
    return best


def rstar_split(entries: list[Entry], min_fill: int,
                dim: int) -> tuple[list[Entry], list[Entry]]:
    """Split an overflowing entry list into two R*-quality groups."""
    axis = choose_split_axis(entries, min_fill, dim)
    return choose_split_index(entries, min_fill, axis)


def _low_key(axis: int):
    return lambda entry: (entry[0].lows[axis], entry[0].highs[axis])


def _high_key(axis: int):
    return lambda entry: (entry[0].highs[axis], entry[0].lows[axis])

"""Definitions of every paper experiment (and our ablations).

Each function regenerates one figure of the paper's evaluation section
(§4) with the harness protocol; ``EXPERIMENTS`` maps experiment ids to
runners for the command-line front end.  Sizes default to laptop-scale
(documented in DESIGN.md); ``full=True`` restores the paper's sizes.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..core import (
    CostBasedGrouping,
    IAllIndex,
    IHilbertIndex,
    ITreeIndex,
    IntervalQuadtreeIndex,
    LinearScanIndex,
    PlannedIndex,
)
from ..field.dem import DEMField
from ..synth import (
    diamond_square,
    fractal_dem_heights,
    lyon_like,
    monotonic_field,
    roseburg_like,
)
from .harness import ExperimentResult, run_experiment
from .report import format_result

#: Qinterval axes used in the paper's figures.
QINTERVALS_FIG8 = [0.0, 0.02, 0.04, 0.06, 0.08, 0.10]
QINTERVALS_FIG11 = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
QINTERVALS_FIG12 = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06]


def standard_methods(cache_pages: int = 0) -> dict:
    """The paper's three contenders (§4)."""
    return {
        "LinearScan": lambda f: LinearScanIndex(f, cache_pages=cache_pages),
        "I-All": lambda f: IAllIndex(f, cache_pages=cache_pages),
        "I-Hilbert": lambda f: IHilbertIndex(f, cache_pages=cache_pages),
    }


#: Buffer-pool size used by the warm regime (large enough to hold every
#: experiment's data + index pages, as a 2002-era OS file cache would).
WARM_CACHE_PAGES = 16384


def _regime(warm: bool) -> dict:
    """Harness/method settings for the cold or warm measurement regime.

    Cold models the paper's nominal disk-resident setting (caches dropped
    per query, simulated seek/transfer time).  Warm models repeated
    queries over an OS-cached file — the regime the paper's absolute
    magnitudes suggest (see EXPERIMENTS.md) — where time is CPU-bound.
    """
    if warm:
        return {
            "methods": standard_methods(cache_pages=WARM_CACHE_PAGES),
            "cold": False,
        }
    return {"methods": standard_methods(), "cold": True}


def fig8a(full: bool = True, queries: int = 200, seed: int = 0,
          estimate: str = "area", warm: bool = False) -> ExperimentResult:
    """Fig. 8a — real terrain DEM (Roseburg surrogate, 512×512)."""
    size = 512 if full else 128
    field = roseburg_like(cells_per_side=size)
    regime = _regime(warm)
    return run_experiment(
        f"fig8a: terrain DEM {size}x{size}"
        + (" [warm]" if warm else ""), field, regime["methods"],
        QINTERVALS_FIG8, queries=queries, seed=seed, estimate=estimate,
        cold=regime["cold"])


def fig8b(full: bool = True, queries: int = 200, seed: int = 0,
          estimate: str = "area", warm: bool = False) -> ExperimentResult:
    """Fig. 8b — urban noise TIN (Lyon surrogate, ~9000 triangles)."""
    sites = 4600 if full else 1200
    field = lyon_like(num_sites=sites)
    regime = _regime(warm)
    return run_experiment(
        f"fig8b: urban noise TIN ({field.num_cells} triangles)"
        + (" [warm]" if warm else ""), field, regime["methods"],
        QINTERVALS_FIG8, queries=queries, seed=seed, estimate=estimate,
        cold=regime["cold"])


def fig11(full: bool = False, queries: int = 200, seed: int = 0,
          estimate: str = "area", warm: bool = False,
          roughness_values: tuple[float, ...] = (0.1, 0.3, 0.6, 0.9),
          ) -> list[ExperimentResult]:
    """Fig. 11a–d — fractal DEMs across roughness H.

    The paper uses 1,048,576 cells (1024²); the default here is 262,144
    (512²) for pure-Python run times, with ``full=True`` restoring 1024².
    """
    size = 1024 if full else 512
    regime = _regime(warm)
    results = []
    for h in roughness_values:
        heights = fractal_dem_heights(size, h, seed=seed + int(h * 10))
        field = DEMField(heights)
        results.append(run_experiment(
            f"fig11 H={h}: fractal DEM {size}x{size}"
            + (" [warm]" if warm else ""), field,
            regime["methods"], QINTERVALS_FIG11, queries=queries,
            seed=seed, estimate=estimate, cold=regime["cold"]))
    return results


def fig12(full: bool = True, queries: int = 200, seed: int = 0,
          estimate: str = "area", warm: bool = False) -> ExperimentResult:
    """Fig. 12b — monotonic field ``w = x + y`` (512×512)."""
    size = 512 if full else 128
    field = monotonic_field(size)
    regime = _regime(warm)
    return run_experiment(
        f"fig12: monotonic DEM {size}x{size}"
        + (" [warm]" if warm else ""), field, regime["methods"],
        QINTERVALS_FIG12, queries=queries, seed=seed, estimate=estimate,
        cold=regime["cold"])


def fig7(full: bool = False, seed: int = 0, **_ignored) -> str:
    """Fig. 7 — geography of the generated subfields on terrain data."""
    size = 512 if full else 128
    field = roseburg_like(cells_per_side=size, seed=20020314 + seed)
    index = IHilbertIndex(field)
    sizes = np.array([sf.num_cells for sf in index.subfields])
    extents = np.array([sf.hi - sf.lo for sf in index.subfields])
    span = field.value_range.hi - field.value_range.lo
    lines = [
        f"== fig7: subfields on terrain {size}x{size} ==",
        f"cells: {field.num_cells}",
        f"subfields: {index.num_subfields}",
        f"cells per subfield: mean={sizes.mean():.1f} "
        f"median={np.median(sizes):.0f} max={sizes.max()}",
        f"subfield interval extent: mean={extents.mean():.2f} "
        f"({extents.mean() / span:.1%} of value range)",
        f"compression vs I-All: "
        f"{field.num_cells / index.num_subfields:.1f}x fewer intervals",
        "",
        "subfield size histogram (cells -> count):",
    ]
    bins = [1, 2, 4, 8, 16, 32, 64, 128, 256, 1 << 30]
    hist, _edges = np.histogram(sizes, bins=bins)
    for lo, hi, count in zip(bins[:-1], bins[1:], hist):
        label = f"{lo}" if hi == lo + 1 else f"{lo}-{hi - 1}"
        bar = "#" * int(60 * count / max(hist.max(), 1))
        lines.append(f"{label:>10}: {count:>7} {bar}")
    return "\n".join(lines)


def fig10(seed: int = 0, **_ignored) -> str:
    """Fig. 10 — effect of roughness H on 32×32 fractal terrain."""
    lines = ["== fig10: fractal roughness illustration (32x32) =="]
    for h in (0.2, 0.8):
        grid = diamond_square(5, h, seed=seed)
        gradients = np.abs(np.diff(grid, axis=0)).mean()
        field = DEMField(grid)
        records = field.cell_records()
        interval_sizes = (records["vmax"] - records["vmin"]).astype(float)
        lines.append(
            f"H={h}: value range [{grid.min():+.2f}, {grid.max():+.2f}], "
            f"mean |gradient|={gradients:.3f}, "
            f"mean cell interval={interval_sizes.mean():.3f}")
    lines.append("(larger H -> smoother surface, smaller cell intervals)")
    return "\n".join(lines)


def ablation_cost(full: bool = False, queries: int = 100, seed: int = 0,
                  estimate: str = "area", **_ignored) -> ExperimentResult:
    """Grouping-policy ablation (§3.1 discussion).

    Compares the paper's cost-based grouping against the fixed-threshold
    criterion (Interval Quadtree) and the normalized ``+0.5`` variant.
    """
    size = 256 if full else 128
    field = roseburg_like(cells_per_side=size, seed=20020314 + seed)
    span = field.value_range.hi - field.value_range.lo
    methods: dict[str, Callable] = {
        "LinearScan": LinearScanIndex,
        "I-Hilbert": IHilbertIndex,
        "IH-q0.5": lambda f: IHilbertIndex(
            f, grouping=CostBasedGrouping(unit=1.0, avg_query=0.5 * span)),
        "I-Quadtree": IntervalQuadtreeIndex,
        "IQ-tight": lambda f: IntervalQuadtreeIndex(
            f, threshold=0.05 * span),
    }
    return run_experiment(
        f"ablation-cost: terrain {size}x{size}", field, methods,
        QINTERVALS_FIG8, queries=queries, seed=seed, estimate=estimate)


def ablation_curve(full: bool = False, queries: int = 100, seed: int = 0,
                    estimate: str = "area", **_ignored) -> ExperimentResult:
    """Space-filling-curve ablation (the paper's Hilbert-vs-others claim)."""
    size = 256 if full else 128
    field = roseburg_like(cells_per_side=size, seed=20020314 + seed)
    methods: dict[str, Callable] = {
        "LinearScan": LinearScanIndex,
        "IH-hilbert": lambda f: IHilbertIndex(f, curve="hilbert"),
        "IH-zorder": lambda f: IHilbertIndex(f, curve="zorder"),
        "IH-gray": lambda f: IHilbertIndex(f, curve="gray"),
    }
    return run_experiment(
        f"ablation-curve: terrain {size}x{size}", field, methods,
        QINTERVALS_FIG8, queries=queries, seed=seed, estimate=estimate)


def ablation_pagesize(full: bool = False, queries: int = 100,
                      seed: int = 0, estimate: str = "area",
                      **_ignored) -> list[ExperimentResult]:
    """Page-size sensitivity (the paper fixes 4 KiB; we sweep it).

    Larger pages favour LinearScan (fewer, bigger sequential reads) and
    blunt I-Hilbert's selectivity; smaller pages sharpen filtering but
    multiply per-page overheads.
    """
    size = 512 if full else 256
    field = roseburg_like(cells_per_side=size, seed=20020314 + seed)
    results = []
    for page_size in (1024, 4096, 16384):
        methods = {
            "LinearScan": lambda f, p=page_size: LinearScanIndex(
                f, page_size=p),
            "I-Hilbert": lambda f, p=page_size: IHilbertIndex(
                f, page_size=p),
        }
        results.append(run_experiment(
            f"ablation-pagesize {page_size}B: terrain {size}x{size}",
            field, methods, [0.0, 0.02, 0.05], queries=queries,
            seed=seed, estimate=estimate,
            sequential_read_ms=0.2 * page_size / 4096.0))
    return results


def scale_sweep(full: bool = False, queries: int = 100, seed: int = 0,
                estimate: str = "area", **_ignored
                ) -> list[ExperimentResult]:
    """Speedup vs data size: the paper's advantage grows with the field."""
    sizes = (64, 128, 256, 512) if not full else (128, 256, 512, 1024)
    results = []
    for size in sizes:
        field = roseburg_like(cells_per_side=size, seed=20020314 + seed)
        results.append(run_experiment(
            f"scale {size}x{size} terrain", field, standard_methods(),
            [0.0, 0.05], queries=queries, seed=seed, estimate=estimate))
    return results


def methods_extra(full: bool = False, queries: int = 100, seed: int = 0,
                  estimate: str = "area", **_ignored) -> ExperimentResult:
    """Every implemented access method side by side on terrain data."""
    size = 512 if full else 256
    field = roseburg_like(cells_per_side=size, seed=20020314 + seed)
    methods = {
        "LinearScan": LinearScanIndex,
        "I-All": IAllIndex,
        "I-Hilbert": IHilbertIndex,
        "I-Quadtree": IntervalQuadtreeIndex,
        "I-Tree": ITreeIndex,
        "IH+planner": PlannedIndex,
    }
    return run_experiment(
        f"methods-extra: terrain {size}x{size}", field, methods,
        QINTERVALS_FIG8, queries=queries, seed=seed, estimate=estimate)


def batch_compare(full: bool = False, queries: int = 200, seed: int = 0,
                  estimate: str = "area", **_ignored) -> str:
    """Batched vs. sequential execution of the Fig. 8a workload.

    Replays the Fig. 8a query mix (200 random queries per Qinterval
    setting, identical draws for every method) two ways: one at a time
    against a cold store — the paper's protocol — and as one batch
    through :class:`~repro.core.batch.BatchQueryEngine` with merged
    intervals and a shared buffer pool.  Reports total page reads, the
    reduction, and the pool's hit rate per access method.
    """
    from ..core.batch import (
        BatchQueryEngine,
        DEFAULT_BATCH_CACHE_PAGES,
        run_sequential,
    )
    from ..synth import value_query_workload

    size = 512 if full else 256
    field = roseburg_like(cells_per_side=size)
    workload = []
    for q in QINTERVALS_FIG8:
        workload += value_query_workload(field.value_range, q,
                                         count=queries, seed=seed)
    methods = {
        "LinearScan": LinearScanIndex,
        "I-All": IAllIndex,
        "I-Hilbert": IHilbertIndex,
        "IH+planner": PlannedIndex,
    }
    lines = [
        f"== batch: Fig. 8a workload on {size}x{size} terrain DEM ==",
        f"queries: {len(workload)} ({queries} per Qinterval setting "
        f"{QINTERVALS_FIG8}), seed={seed}, estimate={estimate}",
        "",
        f"{'method':>12} {'seq pages':>12} {'cache-only':>12} "
        f"{'hit rate':>9} {'merged':>12} {'saved':>8} {'groups':>7}",
    ]
    for name, cls in methods.items():
        index = cls(field)
        seq = run_sequential(index, workload, estimate=estimate, cold=True)
        # Shared LRU pool alone (one fetch per query, value-sorted).
        index.clear_caches()
        cache_only = BatchQueryEngine(index, merge=False).run(
            workload, estimate=estimate)
        # Full engine: merged overlapping intervals + shared pool.
        index.clear_caches()
        batch = BatchQueryEngine(index).run(workload, estimate=estimate)
        for r_seq, r_one, r_bat in zip(seq.results, cache_only.results,
                                       batch.results):
            assert r_seq.candidate_count == r_bat.candidate_count, name
            assert r_seq.candidate_count == r_one.candidate_count, name
        saved = 1.0 - batch.io.page_reads / max(seq.io.page_reads, 1)
        lines.append(
            f"{name:>12} {seq.io.page_reads:>12} "
            f"{cache_only.io.page_reads:>12} "
            f"{cache_only.pool.hit_rate:>8.1%} "
            f"{batch.io.page_reads:>12} {saved:>7.1%} "
            f"{batch.groups:>7}")
        del index
    lines += [
        "",
        "(seq = one query at a time, caches dropped per query; "
        "cache-only = batch engine with merging disabled, shared LRU "
        f"pool of {DEFAULT_BATCH_CACHE_PAGES} pages; merged = full "
        "engine, overlapping intervals coalesced into one fetch each; "
        "candidate counts verified identical per query)",
    ]
    return "\n".join(lines)


def throughput(full: bool = False, queries: int | None = None,
               seed: int = 0, estimate: str = "area",
               workers: tuple[int, ...] = (1, 2, 4, 8),
               smoke: bool = False,
               json_path: str | None = "BENCH_throughput.json",
               **_ignored) -> str:
    """Queries/sec vs worker count on the Fig. 8a workload.

    Runs the Fig. 8a query mix against LinearScan, I-All and I-Hilbert
    (mmap-backed storage) through the
    :class:`~repro.core.parallel.ParallelQueryEngine` at each worker
    count, with the :class:`~repro.core.parallel.DeviceModel` turning
    accounted page reads into real waits — the serving regime where
    thread-level overlap pays.  Before the sweep each method's workload
    is executed once through the serial
    :class:`~repro.core.batch.BatchQueryEngine`; every parallel run is
    then asserted to return identical per-query answers and identical
    page counts, so the speedups below are speedups on *provably
    equivalent* executions.

    ``smoke=True`` shrinks everything (64² field, 24 queries, workers 1
    and 4, no JSON artifact) and exits non-zero if workers=4 fails to
    beat workers=1 — the CI regression gate.

    Each method is swept twice.  The *legacy* sweep (``merge=False``,
    no cache) reproduces the PR-8 baseline configuration so q/s stays
    comparable across commits.  The *pipeline* sweep is the serving
    configuration — merged fetch groups, a shared
    :data:`~repro.core.batch.DEFAULT_BATCH_CACHE_PAGES`-page buffer
    pool, and the vectorized hot path — whose oracle is one serial run
    with ``engine="scalar"``: every pipelined point must match that
    oracle byte for byte (per-query answers, per-query I/O, and total
    I/O accounting), so the speedup it reports is a speedup on a
    provably equivalent execution.
    """
    import json as json_mod
    import time

    from ..core import (
        BatchQueryEngine,
        DeviceModel,
        ParallelQueryEngine,
    )
    from ..core.batch import DEFAULT_BATCH_CACHE_PAGES
    from ..storage import IOStats
    from ..synth import value_query_workload

    if smoke:
        size, per_q, worker_counts = 64, 4, (1, 4)
        json_path = None
    else:
        size = 512 if full else 256
        per_q = 20 if queries is None else queries
        worker_counts = tuple(workers)
    field = roseburg_like(cells_per_side=size)
    workload = []
    for q in QINTERVALS_FIG8:
        workload += value_query_workload(field.value_range, q,
                                         count=per_q, seed=seed)
    device = DeviceModel()
    factories = {
        "LinearScan": lambda f: LinearScanIndex(f, disk_backend="mmap"),
        "I-All": lambda f: IAllIndex(f, disk_backend="mmap"),
        "I-Hilbert": lambda f: IHilbertIndex(f, disk_backend="mmap"),
    }

    lines = [
        f"== throughput: parallel engine on Fig. 8a workload "
        f"({size}x{size} terrain, mmap storage) ==",
        f"queries: {len(workload)} ({per_q} per Qinterval setting "
        f"{QINTERVALS_FIG8}), seed={seed}, estimate={estimate}",
        f"device model: {device.random_read_ms} ms random / "
        f"{device.sequential_read_ms} ms sequential per page "
        f"(x{device.scale:g})",
        "",
        f"{'method':>12} {'workers':>8} {'wall s':>8} {'q/s':>8} "
        f"{'speedup':>8} {'pages':>9} {'random':>8} {'seq':>9}",
    ]
    payload_methods = []
    regressions = []
    for name, factory in factories.items():
        t0 = time.perf_counter()
        index = factory(field)
        build_seconds = time.perf_counter() - t0
        # Serial reference: same groups, no device waits — the answer
        # and page-count oracle for every parallel run.
        index.clear_caches()
        index.stats.reset()
        serial = BatchQueryEngine(index, cache_pages=0, merge=False).run(
            workload, estimate=estimate)
        entry = {
            "method": name,
            "build_seconds": round(build_seconds, 3),
            "data_pages": index.data_pages,
            "index_pages": index.index_pages,
            "serial_page_reads": serial.io.page_reads,
            "points": [],
        }
        qps_by_workers = {}
        for n_workers in worker_counts:
            index.clear_caches()
            index.stats.reset()
            engine = ParallelQueryEngine(index, workers=n_workers,
                                         cache_pages=0, merge=False,
                                         device=device)
            t0 = time.perf_counter()
            par = engine.run(workload, estimate=estimate)
            wall = time.perf_counter() - t0
            for r_ser, r_par in zip(serial.results, par.results):
                assert r_ser.candidate_count == r_par.candidate_count, name
                assert r_ser.area == r_par.area, name
                assert r_ser.io == r_par.io, name
            assert serial.io == par.io, name
            assert sum(par.worker_io, IOStats()) == par.io, name
            qps = len(workload) / wall
            qps_by_workers[n_workers] = qps
            speedup = qps / qps_by_workers[worker_counts[0]]
            lines.append(
                f"{name:>12} {n_workers:>8} {wall:>8.2f} {qps:>8.1f} "
                f"{speedup:>7.2f}x {par.io.page_reads:>9} "
                f"{par.io.random_reads:>8} {par.io.sequential_reads:>9}")
            entry["points"].append({
                "workers": n_workers,
                "wall_s": round(wall, 4),
                "qps": round(qps, 2),
                "speedup_vs_1": round(speedup, 3),
                "page_reads": par.io.page_reads,
                "random_reads": par.io.random_reads,
                "sequential_reads": par.io.sequential_reads,
            })
        if (len(worker_counts) > 1
                and qps_by_workers[worker_counts[-1]]
                < qps_by_workers[worker_counts[0]]):
            regressions.append(name)
        # Pipeline sweep: merged groups + shared pool + vectorized
        # engine, checked byte-for-byte against a serial scalar oracle.
        cache = DEFAULT_BATCH_CACHE_PAGES
        index.engine = "scalar"
        index.clear_caches()
        index.stats.reset()
        oracle = BatchQueryEngine(index, cache_pages=cache,
                                  merge=True).run(workload,
                                                  estimate=estimate)
        index.engine = "vectorized"
        entry["pipeline"] = {
            "cache_pages": cache,
            "merge": True,
            "scalar_oracle_page_reads": oracle.io.page_reads,
            "points": [],
        }
        for n_workers in worker_counts:
            index.clear_caches()
            index.stats.reset()
            engine = ParallelQueryEngine(index, workers=n_workers,
                                         cache_pages=cache, merge=True,
                                         device=device)
            t0 = time.perf_counter()
            par = engine.run(workload, estimate=estimate)
            wall = time.perf_counter() - t0
            for r_scl, r_par in zip(oracle.results, par.results):
                assert r_scl.candidate_count == r_par.candidate_count, name
                assert r_scl.area == r_par.area, name
                assert r_scl.io == r_par.io, name
            assert oracle.io == par.io, name
            qps = len(workload) / wall
            vs_legacy = qps / qps_by_workers[n_workers]
            lines.append(
                f"{name + '+pipe':>12} {n_workers:>8} {wall:>8.2f} "
                f"{qps:>8.1f} {vs_legacy:>7.2f}x "
                f"{par.io.page_reads:>9} {par.io.random_reads:>8} "
                f"{par.io.sequential_reads:>9}")
            entry["pipeline"]["points"].append({
                "workers": n_workers,
                "wall_s": round(wall, 4),
                "qps": round(qps, 2),
                "speedup_vs_legacy": round(vs_legacy, 3),
                "page_reads": par.io.page_reads,
                "random_reads": par.io.random_reads,
                "sequential_reads": par.io.sequential_reads,
            })
            if (n_workers == worker_counts[-1]
                    and qps < qps_by_workers[n_workers]):
                regressions.append(f"{name}+pipeline")
        payload_methods.append(entry)
        del index
    lines += [
        "",
        "(answers, per-query I/O and total page counts verified "
        "identical to the serial batch engine at every worker count; "
        "'+pipe' rows are the merged+cached+vectorized pipeline, "
        "verified byte-identical to a serial scalar-engine oracle, "
        "speedup column relative to the legacy row at the same worker "
        "count)",
    ]
    if json_path:
        payload = {
            "schema_version": 1,
            "experiment": "throughput",
            "field": {
                "type": type(field).__name__,
                "cells_per_side": size,
                "cells": field.num_cells,
            },
            "workload": {
                "queries": len(workload),
                "per_qinterval": per_q,
                "qintervals": QINTERVALS_FIG8,
                "seed": seed,
                "estimate": estimate,
            },
            "device_model": {
                "random_read_ms": device.random_read_ms,
                "sequential_read_ms": device.sequential_read_ms,
                "scale": device.scale,
            },
            "smoke": smoke,
            "workers": list(worker_counts),
            "methods": payload_methods,
        }
        with open(json_path, "w") as fh:
            json_mod.dump(payload, fh, indent=1)
            fh.write("\n")
        lines.append(f"(machine-readable results written to {json_path})")
    if regressions:
        raise SystemExit(
            f"throughput regression: workers={worker_counts[-1]} slower "
            f"than workers={worker_counts[0]} for {', '.join(regressions)}")
    return "\n".join(lines)


def micro(full: bool = False, seed: int = 0, smoke: bool = False,
          json_path: str | None = "BENCH_micro.json",
          gate_ratio: float = 1.5, **_ignored) -> str:
    """Criterion-style microbenchmarks of the query hot path + ingestion.

    Times the five kernels the vectorized executor is built from —
    inverse-interpolation estimation, interval filter + pack, page
    decode, Hilbert key computation, greedy grouping — plus R*-tree
    traversal, each as repeated rounds until a minimum measurement
    time, reporting best/median ns per operation.  A separate ingest
    section measures bulk-load cells/s (1M-cell field with ``full`` or
    the default run) against the per-insert incremental path.

    ``smoke=True`` shrinks the ingest fields and measurement budget,
    writes no JSON, and instead *gates* against the committed
    ``BENCH_micro.json``: any kernel whose best ns/op exceeds
    ``gate_ratio`` (default 1.5×) of the pinned value fails the run —
    the CI regression gate.  Kernel input sizes are identical in both
    modes, so ns/op is comparable across them.
    """
    import json as json_mod
    import statistics
    import time
    from pathlib import Path

    from ..core import CostBasedGrouping, bulk_build, group_cells
    from ..core.cost import ThresholdGrouping  # noqa: F401 (doc link)
    from ..curves import HilbertCurve2D
    from ..field.interpolation import triangle_band_fraction
    from ..geometry import Rect
    from ..rstar import RStarTree
    from ..storage import DiskManager
    from ..storage.codec import decode_pages

    rng = np.random.default_rng(seed)
    min_time = 0.05 if smoke else 0.25

    def _rounds(fn, ops: int) -> dict:
        """Warm up once, then repeat until ``min_time`` of samples."""
        fn()
        times = []
        total = 0.0
        while total < min_time or len(times) < 3:
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            times.append(dt)
            total += dt
            if len(times) >= 500:
                break
        return {
            "ops_per_round": ops,
            "rounds": len(times),
            "best_ns_per_op": round(min(times) / ops * 1e9, 2),
            "median_ns_per_op": round(
                statistics.median(times) / ops * 1e9, 2),
            "total_s": round(total, 4),
        }

    kernels = []

    # 1. Estimation kernel: closed-form band fraction over triangles.
    n_tri = 200_000
    v0, v1, v2 = (rng.random(n_tri) * 1000.0 for _ in range(3))
    kernels.append(("estimate_kernel", n_tri, lambda:
                    triangle_band_fraction(v0, v1, v2, 300.0, 320.0)))

    # 2. Filter + pack: float64 interval mask over float32 records,
    #    then gather of the survivors (the _candidates hot loop).
    n_rec = 1_000_000
    block = np.zeros(n_rec, dtype=[("vmin", "f4"), ("vmax", "f4"),
                                   ("cell", "i8")])
    lo32 = (rng.random(n_rec) * 1000.0).astype(np.float32)
    block["vmin"] = lo32
    block["vmax"] = lo32 + rng.random(n_rec).astype(np.float32) * 5.0
    block["cell"] = np.arange(n_rec)

    def _filter_pack():
        mask = ((block["vmin"].astype(np.float64) <= 320.0)
                & (block["vmax"].astype(np.float64) >= 300.0))
        return block[mask]
    kernels.append(("filter_pack", n_rec, _filter_pack))

    # 3. Page decode: frames -> one structured array (the codec).
    rec_dtype = block.dtype
    per_page = 4096 // rec_dtype.itemsize
    n_pages = 256
    payloads = [block[i * per_page:(i + 1) * per_page].tobytes()
                for i in range(n_pages)]
    counts = [per_page] * n_pages
    kernels.append(("page_decode", n_pages * per_page, lambda:
                    decode_pages(payloads, rec_dtype, counts)))

    # 4. Hilbert keys: vectorized curve arithmetic (the bulk-load sort
    #    key and the I-Hilbert linearization).
    n_keys = 262_144
    curve = HilbertCurve2D(10)
    xs = rng.integers(0, curve.side, n_keys)
    ys = rng.integers(0, curve.side, n_keys)
    kernels.append(("hilbert_keys", n_keys, lambda: curve.keys(xs, ys)))

    # 5. Greedy grouping: the cost-based subfield pass.
    n_cells = 262_144
    gmin = np.sort(rng.random(n_cells) * 1000.0)
    gmax = gmin + rng.random(n_cells) * 4.0
    policy = CostBasedGrouping(unit=1000.0, avg_query=500.0)
    kernels.append(("group_cells", n_cells, lambda:
                    group_cells(gmin, gmax, policy)))

    # 6. R*-tree traversal: interval searches against a bulk-loaded
    #    1-D tree of 16384 cell intervals (the I-All shape).
    t_lo = rng.random(16384) * 1000.0
    t_hi = t_lo + rng.random(16384) * 5.0
    tree = RStarTree(dim=1, disk=DiskManager(name="micro-tree"),
                     cache_pages=64)
    tree.bulk_load_arrays(t_lo, t_hi, np.arange(16384, dtype=np.int64))
    tree.flush()
    queries = [(float(lo), float(lo + 10.0))
               for lo in rng.random(64) * 990.0]
    kernels.append(("rtree_search", len(queries), lambda:
                    [tree.search(Rect.from_interval(lo, hi))
                     for lo, hi in queries]))

    results = {name: _rounds(fn, ops) for name, ops, fn in kernels}

    # -- ingestion: bulk vs per-insert ---------------------------------
    # Bulk loads a >= 1M-cell field by default; the per-insert baseline
    # is measured on a small field (its throughput only *degrades* with
    # size — tree descents deepen — so the reported speedup is a lower
    # bound).
    bulk_side = 128 if smoke else 1024
    inc_side = 16 if smoke else 32
    cmp_side = 64 if smoke else 256

    bulk_field = roseburg_like(cells_per_side=bulk_side)
    _, bulk_rep = bulk_build(bulk_field, method="I-Hilbert")

    inc_field = roseburg_like(cells_per_side=inc_side)
    t0 = time.perf_counter()
    IAllIndex(inc_field, bulk=False)
    inc_s = time.perf_counter() - t0
    inc_cps = inc_field.num_cells / inc_s

    cmp_field = roseburg_like(cells_per_side=cmp_side)
    t0 = time.perf_counter()
    IHilbertIndex(cmp_field)
    ih_inc_s = time.perf_counter() - t0
    _, ih_bulk_rep = bulk_build(cmp_field, method="I-Hilbert")
    ih_inc_cps = cmp_field.num_cells / ih_inc_s

    ingest = {
        "bulk": dict(bulk_rep.to_dict(),
                     cells_per_second=round(bulk_rep.cells_per_second),
                     build_seconds=round(bulk_rep.build_seconds, 4)),
        "incremental": {
            "method": "I-All (per-insert R* path)",
            "cells": inc_field.num_cells,
            "build_seconds": round(inc_s, 4),
            "cells_per_second": round(inc_cps, 1),
            "note": "measured at small n; upper bound on 1M-cell rate",
        },
        "speedup_bulk_vs_incremental": round(
            bulk_rep.cells_per_second / inc_cps, 1),
        "ihilbert_same_field": {
            "cells": cmp_field.num_cells,
            "incremental_cells_per_second": round(ih_inc_cps),
            "bulk_cells_per_second": round(
                ih_bulk_rep.cells_per_second),
            "speedup": round(
                ih_bulk_rep.cells_per_second / ih_inc_cps, 2),
        },
    }

    lines = [
        "== micro: query hot path + ingestion kernels ==",
        f"seed={seed}, min measurement time {min_time}s/kernel",
        "",
        f"{'kernel':>16} {'ops/round':>10} {'rounds':>7} "
        f"{'best ns/op':>11} {'median ns/op':>13}",
    ]
    for name, stats in results.items():
        lines.append(
            f"{name:>16} {stats['ops_per_round']:>10} "
            f"{stats['rounds']:>7} {stats['best_ns_per_op']:>11.1f} "
            f"{stats['median_ns_per_op']:>13.1f}")
    lines += [
        "",
        f"bulk load   : {bulk_rep.cells:,} cells in "
        f"{bulk_rep.build_seconds:.3f}s = "
        f"{bulk_rep.cells_per_second:,.0f} cells/s (I-Hilbert)",
        f"incremental : {inc_field.num_cells:,} cells in {inc_s:.3f}s = "
        f"{inc_cps:,.0f} cells/s (I-All per-insert; upper bound)",
        f"speedup     : {ingest['speedup_bulk_vs_incremental']:,.1f}x "
        f"bulk vs per-insert",
        f"I-Hilbert   : bulk "
        f"{ih_bulk_rep.cells_per_second:,.0f} vs incremental "
        f"{ih_inc_cps:,.0f} cells/s on the same "
        f"{cmp_field.num_cells:,}-cell field "
        f"({ingest['ihilbert_same_field']['speedup']:.2f}x)",
    ]

    if smoke:
        baseline_path = Path(json_path or "BENCH_micro.json")
        failures = []
        if baseline_path.is_file():
            with open(baseline_path) as fh:
                baseline = json_mod.load(fh)
            pinned = baseline.get("kernels", {})
            for name, stats in results.items():
                pin = pinned.get(name)
                if pin is None:
                    continue
                ratio = stats["best_ns_per_op"] / pin["best_ns_per_op"]
                mark = "FAIL" if ratio > gate_ratio else "ok"
                lines.append(
                    f"gate {name}: {ratio:.2f}x of pinned "
                    f"{pin['best_ns_per_op']:.1f} ns/op "
                    f"(limit {gate_ratio}x) — {mark}")
                if ratio > gate_ratio:
                    failures.append(name)
        else:
            lines.append(f"(no {baseline_path} baseline; gate skipped)")
        if failures:
            raise SystemExit(
                f"micro regression: {', '.join(failures)} slower than "
                f"{gate_ratio}x the pinned BENCH_micro.json")
        return "\n".join(lines)

    if json_path:
        payload = {
            "schema_version": 1,
            "experiment": "micro",
            "seed": seed,
            "smoke": False,
            "gate": {"max_ratio": gate_ratio},
            "kernels": results,
            "ingest": ingest,
        }
        with open(json_path, "w") as fh:
            json_mod.dump(payload, fh, indent=1)
            fh.write("\n")
        lines.append("")
        lines.append(f"(machine-readable results written to {json_path})")
    return "\n".join(lines)


def update_stream(full: bool = False, queries: int | None = None,
                  seed: int = 0, estimate: str = "area",
                  updates: int | None = None, smoke: bool = False,
                  json_path: str | None = "BENCH_update.json",
                  **_ignored) -> str:
    """Query cost vs. update fraction, compaction recovery, and WAL
    crash recovery on the Fig. 8a terrain.

    A stream of random vertex updates (values drawn uniformly over the
    field's initial value range, destroying the spatial value locality
    the clustering exploits) is applied in cumulative fractions to
    LinearScan, I-All and I-Hilbert.  After each fraction the Fig. 8a
    query mix is replayed cold, giving the degradation curve; I-Hilbert
    additionally reports the §3.1.2 cost-drift staleness metric and its
    cumulative maintenance I/O.  After the full stream:

    * every method's answers are verified identical to a from-scratch
      rebuild over the updated field (the acceptance bar for in-place
      maintenance);
    * I-Hilbert is compacted and must recover to within 10% of a
      fresh-built index's page reads;
    * a separate small index is crashed between WAL append and page
      write, reloaded, and verified against an uncrashed twin.

    Violating any of the three gates exits non-zero, so ``--smoke`` is
    a CI regression gate alongside ``throughput --smoke``.
    """
    import json as json_mod
    import tempfile
    from pathlib import Path

    from ..core import ValueQuery, load_index, run_sequential, save_index
    from ..field.dem import DEMField
    from ..storage import SimulatedCrash
    from ..synth import value_query_workload

    if smoke:
        size, per_q, n_updates = 64, 3, 200
        fractions = (0.5, 1.0)
        json_path = None
    else:
        size = 512 if full else 256
        per_q = 10 if queries is None else queries
        n_updates = 1000 if updates is None else updates
        fractions = (0.1, 0.25, 0.5, 1.0)

    base = roseburg_like(cells_per_side=size)
    vrange = base.value_range
    lo0, hi0 = vrange.lo, vrange.hi
    workload = []
    for q in QINTERVALS_FIG8:
        workload += value_query_workload(vrange, q,
                                         count=per_q, seed=seed)

    rng = np.random.default_rng(seed + 1)
    up_ids = rng.integers(0, base.num_vertices, n_updates)
    up_vals = rng.uniform(lo0, hi0, n_updates).astype(np.float32)

    # Each method maintains its own field copy so the three update
    # paths are exercised fully independently.
    factories = {
        "LinearScan": LinearScanIndex,
        "I-All": IAllIndex,
        "I-Hilbert": IHilbertIndex,
    }
    indexes = {name: cls(DEMField(base.heights.copy()))
               for name, cls in factories.items()}

    def cold_pages(index):
        index.clear_caches()
        return run_sequential(index, workload, estimate=estimate,
                              cold=True).io.page_reads

    baseline = {name: cold_pages(ix) for name, ix in indexes.items()}

    lines = [
        f"== update: live vertex updates on {size}x{size} terrain DEM ==",
        f"queries: {len(workload)} ({per_q} per Qinterval setting "
        f"{QINTERVALS_FIG8}), seed={seed}, estimate={estimate}",
        f"updates: {n_updates} random vertices, values uniform over "
        f"[{lo0:.0f}, {hi0:.0f}] (locality-destroying), seed={seed + 1}",
        "",
        f"{'updates':>8} {'frac':>6} "
        + " ".join(f"{name:>12}" for name in factories)
        + f" {'IH drift':>9} {'IH maint r/w':>13}",
        f"{'0':>8} {'0%':>6} "
        + " ".join(f"{baseline[name]:>12}" for name in factories)
        + f" {'—':>9} {'—':>13}",
    ]
    steps = []
    applied = 0
    for frac in fractions:
        upto = int(round(frac * n_updates))
        if upto > applied:
            for index in indexes.values():
                index.apply_updates(up_ids[applied:upto],
                                    up_vals[applied:upto])
            applied = upto
        pages = {name: cold_pages(ix) for name, ix in indexes.items()}
        ih = indexes["I-Hilbert"]
        st = ih.staleness()
        lines.append(
            f"{applied:>8} {frac:>6.0%} "
            + " ".join(f"{pages[name]:>12}" for name in factories)
            + f" {st['max_drift']:>+8.1%} "
            f"{ih.maint_stats.page_reads:>6}/"
            f"{ih.maint_stats.page_writes:<6}")
        steps.append({
            "updates_applied": applied,
            "fraction": frac,
            "page_reads": pages,
            "ratio_vs_baseline": {
                name: round(pages[name] / max(baseline[name], 1), 4)
                for name in factories},
            "ih_staleness": {k: (round(v, 6) if isinstance(v, float)
                                 else v) for k, v in st.items()},
            "ih_maint_page_reads": ih.maint_stats.page_reads,
            "ih_maint_page_writes": ih.maint_stats.page_writes,
        })

    # Gate 1: every method must now answer exactly like a fresh build
    # over the updated field.
    final_field = indexes["I-Hilbert"].field
    for index in indexes.values():
        assert np.array_equal(index.field.heights, final_field.heights)
    equivalent = True
    for name, cls in factories.items():
        fresh = cls(DEMField(final_field.heights.copy()))
        updated = indexes[name]
        updated.clear_caches()
        fresh.clear_caches()
        for query in workload:
            a = updated.query(query, estimate=estimate)
            b = fresh.query(query, estimate=estimate)
            if (a.candidate_count != b.candidate_count
                    or not np.isclose(a.area, b.area,
                                      rtol=1e-9, atol=1e-9)):
                equivalent = False
        del fresh
    lines += [
        "",
        "equivalence vs from-scratch rebuild after all updates: "
        + ("PASS (answers identical for all methods)" if equivalent
           else "FAIL"),
    ]

    # Gate 2: compaction must bring I-Hilbert back within 10% of a
    # fresh-built index.
    ih = indexes["I-Hilbert"]
    degraded_pages = cold_pages(ih)
    report = ih.compact()
    compacted_pages = cold_pages(ih)
    fresh_ih = IHilbertIndex(DEMField(final_field.heights.copy()))
    fresh_pages = cold_pages(fresh_ih)
    recovery_ratio = compacted_pages / max(fresh_pages, 1)
    del fresh_ih
    lines += [
        f"compaction: {report['reclustered_cells']} cells re-clustered "
        f"in {report['stale_runs']} run(s), "
        f"{report['subfields_before']} -> {report['subfields_after']} "
        f"subfields",
        f"I-Hilbert page reads: degraded {degraded_pages}, "
        f"compacted {compacted_pages}, fresh build {fresh_pages} "
        f"(recovery ratio {recovery_ratio:.3f}, gate <= 1.10)",
    ]

    # Gate 3: an update acknowledged by the WAL but crashed before any
    # page write must survive reload.
    wal_recovered = True
    crash_field = roseburg_like(cells_per_side=32)
    crash_ids = rng.integers(0, crash_field.num_vertices, 50)
    crash_vals = rng.uniform(lo0, hi0, 50).astype(np.float32)
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "idx"
        victim = IHilbertIndex(DEMField(crash_field.heights.copy()))
        save_index(victim, directory)
        victim.attach_wal(directory / "wal.log")
        try:
            victim.apply_updates(crash_ids, crash_vals,
                                 crash_point="wal-appended")
        except SimulatedCrash:
            pass
        recovered = load_index(directory)
        twin = IHilbertIndex(DEMField(crash_field.heights.copy()))
        twin.apply_updates(crash_ids, crash_vals)
        for q in QINTERVALS_FIG8:
            span = (hi0 - lo0) * q
            query = ValueQuery(lo0 + span, lo0 + 2 * span + 1.0)
            a = recovered.query(query, estimate=estimate)
            b = twin.query(query, estimate=estimate)
            if (a.candidate_count != b.candidate_count
                    or not np.isclose(a.area, b.area,
                                      rtol=1e-9, atol=1e-9)):
                wal_recovered = False
    lines.append(
        "WAL crash recovery (crash after append, before page write): "
        + ("PASS (reloaded index matches uncrashed twin)"
           if wal_recovered else "FAIL"))

    if json_path:
        payload = {
            "schema_version": 1,
            "experiment": "update",
            "field": {
                "type": type(base).__name__,
                "cells_per_side": size,
                "cells": base.num_cells,
                "vertices": base.num_vertices,
            },
            "workload": {
                "queries": len(workload),
                "per_qinterval": per_q,
                "qintervals": QINTERVALS_FIG8,
                "seed": seed,
                "estimate": estimate,
            },
            "updates": {
                "count": n_updates,
                "seed": seed + 1,
                "distribution": "uniform over initial value range",
            },
            "smoke": smoke,
            "baseline_page_reads": baseline,
            "steps": steps,
            "final": {
                "equivalent_to_rebuild": equivalent,
                "compaction": {
                    "degraded_page_reads": degraded_pages,
                    "compacted_page_reads": compacted_pages,
                    "fresh_page_reads": fresh_pages,
                    "recovery_ratio": round(recovery_ratio, 4),
                    "reclustered_cells": report["reclustered_cells"],
                    "subfields_before": report["subfields_before"],
                    "subfields_after": report["subfields_after"],
                },
                "wal_recovery": wal_recovered,
            },
        }
        with open(json_path, "w") as fh:
            json_mod.dump(payload, fh, indent=1)
            fh.write("\n")
        lines.append(f"(machine-readable results written to {json_path})")

    failures = []
    if not equivalent:
        failures.append("updated indexes diverge from a fresh rebuild")
    if recovery_ratio > 1.10:
        failures.append(
            f"compaction recovery ratio {recovery_ratio:.3f} > 1.10")
    if not wal_recovered:
        failures.append("WAL replay lost an acknowledged update")
    if failures:
        raise SystemExit("update regression: " + "; ".join(failures))
    return "\n".join(lines)


def serve_bench(full: bool = False, queries: int | None = None,
                seed: int = 0, estimate: str = "area",
                smoke: bool = False,
                json_path: str | None = "BENCH_serve.json",
                **_ignored) -> str:
    """Closed-loop multi-tenant load against the field query service.

    Boots a :class:`~repro.serve.server.FieldServer` in-process on an
    ephemeral port with the Fig. 8a terrain open behind the engine
    facade, then drives it from concurrent closed-loop clients — two
    tenants, several connections each, every client replaying its own
    Fig. 8a query mix through the wire protocol.  Reports q/s and
    latency percentiles (p50/p95/p99) per tenant, plus the per-tenant
    buffer-pool attribution the shared pool accounted during the run.

    Every response is verified *byte-equivalent* to a direct
    :class:`~repro.core.facade.EngineFacade` call: candidates must
    match exactly and areas must round-trip JSON to the identical
    float.  Any mismatch, error response or client failure exits
    non-zero — so ``--smoke`` (tiny field, fewer clients, no JSON
    artifact) doubles as the CI regression gate for the serving layer.
    """
    import json as json_mod
    import threading
    import time
    from pathlib import Path

    from ..core import EngineFacade
    from ..obs.export import write_trace
    from ..obs.metrics import REGISTRY
    from ..obs.qlog import QueryLog
    from ..obs.rolling import percentile_from_buckets
    from ..serve import (AdmissionController, FieldClient, FieldServer,
                         ServerError, ServerThread, TenantQuota)
    from ..synth import value_query_workload

    if smoke:
        size, per_q, clients_per_tenant = 64, 2, 2
        json_path = None
    else:
        size = 512 if full else 256
        per_q = 4 if queries is None else queries
        clients_per_tenant = 4
    tenants = ("alice", "bob")
    engine_workers, executor_workers = 2, 4

    field = roseburg_like(cells_per_side=size)
    facade = EngineFacade(default_workers=engine_workers)
    t0 = time.perf_counter()
    # Pool-backed storage (not mmap) with a warm shared pool: the point
    # here is the cross-tenant buffer pool and its per-tenant
    # hit/miss/byte and residency attribution.
    facade.open_field("terrain",
                      IHilbertIndex(field, cache_pages=WARM_CACHE_PAGES))
    build_seconds = time.perf_counter() - t0

    # Per-client workloads: each client replays its own Fig. 8a mix,
    # seeded per (tenant, client) so connections do not run in lockstep.
    workloads: dict[tuple[str, int], list] = {}
    for ti, tenant in enumerate(tenants):
        for ci in range(clients_per_tenant):
            mix = []
            for q in QINTERVALS_FIG8:
                mix += value_query_workload(
                    field.value_range, q, count=per_q,
                    seed=seed + 1000 * ti + ci)
            workloads[(tenant, ci)] = mix
    per_client = per_q * len(QINTERVALS_FIG8)

    # Direct-engine oracle for every distinct query, computed before
    # the load run (queries are read-only, so order cannot matter).
    oracle = {}
    for mix in workloads.values():
        for query in mix:
            key = (query.lo, query.hi)
            if key not in oracle:
                result = facade.query("terrain", query.lo, query.hi,
                                      estimate=estimate)
                oracle[key] = (result.candidate_count, result.area)

    admission = AdmissionController(
        default=TenantQuota(burst=64, max_pending=256, timeout_s=60.0))
    server = FieldServer(facade=facade, admission=admission,
                         executor_workers=executor_workers,
                         enable_metrics=True)
    harness = ServerThread(server)
    host, port = harness.start()

    n_clients = len(workloads)
    barrier = threading.Barrier(n_clients)
    records: dict[tuple[str, int], dict] = {}

    def run_client(tenant: str, ci: int) -> None:
        mix = workloads[(tenant, ci)]
        latencies, mismatches, errors = [], 0, 0
        client = FieldClient(host, port, tenant=tenant)
        try:
            barrier.wait()
            start = time.perf_counter()
            for query in mix:
                q0 = time.perf_counter()
                try:
                    reply = client.query("terrain", query.lo, query.hi,
                                         estimate=estimate)
                except ServerError:
                    errors += 1
                    continue
                latencies.append((time.perf_counter() - q0) * 1000.0)
                want = oracle[(query.lo, query.hi)]
                if (reply["candidates"], reply["area"]) != want:
                    mismatches += 1
            wall = time.perf_counter() - start
        finally:
            client.close()
        records[(tenant, ci)] = {"latencies": latencies, "wall": wall,
                                 "mismatches": mismatches,
                                 "errors": errors}

    threads = [threading.Thread(target=run_client, args=key,
                                name=f"client-{key[0]}-{key[1]}")
               for key in workloads]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Observability artifact pass, deliberately *after* the timed load
    # (which ran with sampling and the qlog off, so the q/s above is
    # the clean number): flip sampling to 1.0 plus an always-log qlog,
    # replay a few traced queries per tenant, and write the sampled
    # span trees (Chrome trace) and qlog excerpt under results/.
    results_dir = Path("results")
    results_dir.mkdir(exist_ok=True)
    qlog_path = results_dir / "serve_qlog.jsonl"
    qlog_path.unlink(missing_ok=True)
    qlog = QueryLog(qlog_path, latency_ms=0.0)
    server.trace_sample_rate = 1.0
    server.qlog = qlog
    for tenant in tenants:
        with FieldClient(host, port, tenant=tenant, trace=True) as traced:
            for query in workloads[(tenant, 0)][:3]:
                traced.query("terrain", query.lo, query.hi,
                             estimate=estimate)
    trace_spans = write_trace(list(server.sampled),
                              results_dir / "serve_trace.json",
                              process_name="repro-serve")
    server.trace_sample_rate = 0.0
    server.qlog = None

    # Admission-wait percentiles out of the registry histogram the
    # server fed during the whole run (all tenants aggregated).
    wait_hist = REGISTRY.get("repro_serve_admission_wait_ms")
    wait_collected = wait_hist.collect()
    wait_counts = [0] * (len(wait_hist.buckets) + 1)
    for row in wait_collected["series"]:
        for i, count in enumerate(row["bucket_counts"]):
            wait_counts[i] += count
    admission_wait_ms = {
        q: round(percentile_from_buckets(wait_hist.buckets,
                                         wait_counts, p), 4)
        for q, p in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))}

    with FieldClient(host, port, tenant="bench") as probe:
        stats = probe.stats("terrain")
    harness.stop()

    lines = [
        f"== serve: multi-tenant load on the field query service "
        f"({size}x{size} terrain, shared buffer pool) ==",
        f"tenants: {len(tenants)} x {clients_per_tenant} client(s), "
        f"{per_client} queries/client ({per_q} per Qinterval setting "
        f"{QINTERVALS_FIG8}), seed={seed}, estimate={estimate}",
        f"server: engine workers={engine_workers}, executor "
        f"workers={executor_workers}, build {build_seconds:.2f}s",
        "",
        f"{'tenant':>8} {'clients':>8} {'queries':>8} {'errors':>7} "
        f"{'q/s':>8} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} "
        f"{'max ms':>8}",
    ]
    tenant_payload = []
    total_queries = total_mismatches = total_errors = 0
    max_wall = 0.0
    for tenant in tenants:
        tenant_records = [records[key] for key in sorted(records)
                          if key[0] == tenant]
        latencies = np.asarray(
            [ms for record in tenant_records
             for ms in record["latencies"]])
        wall = max(record["wall"] for record in tenant_records)
        errors = sum(record["errors"] for record in tenant_records)
        mismatches = sum(record["mismatches"]
                         for record in tenant_records)
        qps = len(latencies) / wall if wall > 0 else 0.0
        p50, p95, p99 = (np.percentile(latencies, (50, 95, 99))
                         if len(latencies) else (0.0, 0.0, 0.0))
        lines.append(
            f"{tenant:>8} {clients_per_tenant:>8} {len(latencies):>8} "
            f"{errors:>7} {qps:>8.1f} {p50:>8.2f} {p95:>8.2f} "
            f"{p99:>8.2f} {latencies.max() if len(latencies) else 0:>8.2f}")
        pool_share = stats["tenants"].get(tenant, {})
        residency = stats["residency"]["tenants"].get(tenant, {})
        tenant_payload.append({
            "tenant": tenant,
            "clients": clients_per_tenant,
            "queries": int(len(latencies)),
            "errors": errors,
            "wall_s": round(wall, 4),
            "qps": round(qps, 2),
            "latency_ms": {
                "p50": round(float(p50), 3),
                "p95": round(float(p95), 3),
                "p99": round(float(p99), 3),
                "mean": round(float(latencies.mean()), 3)
                        if len(latencies) else 0.0,
                "max": round(float(latencies.max()), 3)
                       if len(latencies) else 0.0,
            },
            "pool": pool_share,
            "residency": residency,
        })
        total_queries += len(latencies)
        total_mismatches += mismatches
        total_errors += errors
        max_wall = max(max_wall, wall)
    overall_qps = total_queries / max_wall if max_wall > 0 else 0.0
    lines += [
        "",
        f"total: {total_queries} queries in {max_wall:.2f}s "
        f"({overall_qps:.1f} q/s across {n_clients} connections)",
        f"equivalence: {total_queries - total_mismatches}/"
        f"{total_queries} responses byte-equivalent to direct engine "
        f"calls",
        f"shared pool: {stats['pool']['hits']} hits / "
        f"{stats['pool']['misses']} misses, per-tenant attribution "
        + ", ".join(
            f"{t}={sum(stats['tenants'].get(t, {}).get(k, 0) for k in ('hits', 'misses'))} "
            f"accesses ({stats['tenants'].get(t, {}).get('bytes_read', 0)} B)"
            for t in tenants),
        f"observability: {server.sampled_total} sampled trace(s) "
        f"({trace_spans} spans -> results/serve_trace.json), "
        f"{qlog.entries} qlog entrie(s) -> results/serve_qlog.jsonl, "
        f"admission wait p50/p95/p99 = "
        f"{admission_wait_ms['p50']}/{admission_wait_ms['p95']}/"
        f"{admission_wait_ms['p99']} ms",
    ]
    if json_path:
        payload = {
            "schema_version": 1,
            "experiment": "serve",
            "field": {
                "type": type(field).__name__,
                "cells_per_side": size,
                "cells": field.num_cells,
            },
            "workload": {
                "queries": per_client,
                "per_qinterval": per_q,
                "qintervals": QINTERVALS_FIG8,
                "seed": seed,
                "estimate": estimate,
            },
            "smoke": smoke,
            "server": {
                "engine_workers": engine_workers,
                "executor_workers": executor_workers,
                "tenants": len(tenants),
                "clients_per_tenant": clients_per_tenant,
                "total_requests": total_queries,
            },
            "tenants": tenant_payload,
            "totals": {
                "queries": total_queries,
                "wall_s": round(max_wall, 4),
                "qps": round(overall_qps, 2),
            },
            "equivalence": {
                "checked": total_queries,
                "mismatches": total_mismatches,
            },
            "observability": {
                "trace_sample_rate": server.trace_sample_rate,
                "sampled_spans": server.sampled_total,
                "trace_span_events": trace_spans,
                "qlog_entries": qlog.entries,
                "admission_wait_ms": admission_wait_ms,
            },
        }
        with open(json_path, "w") as fh:
            json_mod.dump(payload, fh, indent=1)
            fh.write("\n")
        lines.append(f"(machine-readable results written to {json_path})")
    failures = []
    if total_mismatches:
        failures.append(f"{total_mismatches} responses diverged from "
                        f"direct engine answers")
    if total_errors:
        failures.append(f"{total_errors} requests got error responses")
    if total_queries != n_clients * per_client:
        failures.append(
            f"served {total_queries} queries, expected "
            f"{n_clients * per_client}")
    if failures:
        raise SystemExit("serve regression: " + "; ".join(failures))
    return "\n".join(lines)


def shard_bench(full: bool = False, queries: int | None = None,
                seed: int = 0, estimate: str = "area",
                smoke: bool = False,
                json_path: str | None = "BENCH_shard.json",
                **_ignored) -> str:
    """Scale-out sweep: Hilbert-range shards 1/2/4/8 on Fig. 8a.

    For each shard count the Fig. 8a workload runs against a
    :class:`~repro.shard.ShardedEngine` over tiered storage (every
    shard's pages in a simulated object store behind a small local
    cache) and every answer is verified identical — candidate count
    and bit-equal area — to the unsharded I-Hilbert engine on local
    storage.  The reported speedup is on the *simulated device model*
    (:data:`~repro.storage.stats.RANDOM_READ_MS` /
    :data:`~repro.storage.stats.SEQUENTIAL_READ_MS`): scatter-gather
    wall time per query is the slowest shard's device time, so speedup
    = unsharded device ms / Σ max-over-shards ms — the honest
    distributed-I/O number, independent of host scheduling noise.
    Remote-tier traffic (fetches, evictions, local hits) is reported
    per shard count.  ``--smoke`` shrinks the field, skips the JSON
    artifact, and exits non-zero on any divergence — the CI gate.
    """
    import json as json_mod

    from ..shard import ShardedEngine
    from ..storage import SimulatedObjectStore
    from ..storage.stats import RANDOM_READ_MS, SEQUENTIAL_READ_MS
    from ..synth import value_query_workload

    if smoke:
        size, per_q, shard_counts = 32, 2, (1, 2, 4)
        json_path = None
    else:
        size = 256 if full else 128
        per_q = 4 if queries is None else queries
        shard_counts = (1, 2, 4, 8)
    remote_cache_pages = 8

    field = roseburg_like(cells_per_side=size)
    workload = []
    for q in QINTERVALS_FIG8:
        workload += value_query_workload(field.value_range, q,
                                         count=per_q, seed=seed)

    def device_ms(delta) -> float:
        return delta.simulated_cost(random_read=RANDOM_READ_MS,
                                    sequential_read=SEQUENTIAL_READ_MS)

    baseline = IHilbertIndex(field, cache_pages=0)
    oracle, base_ms = [], 0.0
    for query in workload:
        result = baseline.query(query, estimate=estimate)
        oracle.append((result.candidate_count, result.area))
        base_ms += device_ms(result.io)
        baseline.clear_caches()

    lines = [
        f"== shard: Hilbert-range scale-out sweep "
        f"({size}x{size} terrain, tiered remote storage) ==",
        f"workload: {len(workload)} queries ({per_q} per Qinterval "
        f"setting {QINTERVALS_FIG8}), seed={seed}, estimate={estimate}",
        f"device model: random {RANDOM_READ_MS} ms / sequential "
        f"{SEQUENTIAL_READ_MS} ms; coordinator wall = slowest shard",
        f"unsharded I-Hilbert: {base_ms:.1f} device ms over the workload",
        "",
        f"{'shards':>6} {'built':>6} {'verified':>9} {'reads':>7} "
        f"{'dev ms':>9} {'speedup':>8} {'fetches':>8} {'evicted':>8} "
        f"{'hits':>8}",
    ]
    sweep_payload = []
    total_checked = total_mismatches = 0
    for n_shards in shard_counts:
        store = SimulatedObjectStore()
        engine = ShardedEngine(field, n_shards=n_shards,
                               method="I-Hilbert", cache_pages=0,
                               remote_store=store,
                               remote_cache_pages=remote_cache_pages)
        mismatches, shard_ms, reads = 0, 0.0, 0
        for query, want in zip(workload, oracle):
            result = engine.query(query, estimate=estimate)
            if (result.candidate_count, result.area) != want:
                mismatches += 1
            shard_ms += max((device_ms(d) for d in engine.last_shard_io),
                            default=0.0)
            reads += result.io.page_reads
            engine.clear_caches()
        total_checked += len(workload)
        total_mismatches += mismatches
        remote = engine.remote_counters()["total"]
        speedup = base_ms / shard_ms if shard_ms > 0 else 0.0
        lines.append(
            f"{n_shards:>6} {engine.shard_map.num_shards:>6} "
            f"{len(workload) - mismatches:>4}/{len(workload):<4} "
            f"{reads:>7} {shard_ms:>9.1f} {speedup:>7.2f}x "
            f"{int(remote['fetches']):>8} {int(remote['evictions']):>8} "
            f"{int(remote['local_hits']):>8}")
        sweep_payload.append({
            "shards_requested": n_shards,
            "shards_built": engine.shard_map.num_shards,
            "verified": len(workload) - mismatches,
            "mismatches": mismatches,
            "page_reads": int(reads),
            "device_ms": round(shard_ms, 3),
            "speedup": round(speedup, 3),
            "remote": {
                "fetches": int(remote["fetches"]),
                "evictions": int(remote["evictions"]),
                "local_hits": int(remote["local_hits"]),
                "puts": int(remote["puts"]),
            },
        })
    lines += [
        "",
        f"equivalence: {total_checked - total_mismatches}/"
        f"{total_checked} sharded answers identical to the unsharded "
        f"engine",
    ]
    if json_path:
        payload = {
            "schema_version": 1,
            "experiment": "shard",
            "field": {
                "type": type(field).__name__,
                "cells_per_side": size,
                "cells": field.num_cells,
            },
            "workload": {
                "queries": len(workload),
                "per_qinterval": per_q,
                "qintervals": QINTERVALS_FIG8,
                "seed": seed,
                "estimate": estimate,
            },
            "device_model": {
                "random_read_ms": RANDOM_READ_MS,
                "sequential_read_ms": SEQUENTIAL_READ_MS,
            },
            "smoke": smoke,
            "remote_cache_pages": remote_cache_pages,
            "baseline_device_ms": round(base_ms, 3),
            "sweep": sweep_payload,
            "equivalence": {
                "checked": total_checked,
                "mismatches": total_mismatches,
            },
        }
        with open(json_path, "w") as fh:
            json_mod.dump(payload, fh, indent=1)
            fh.write("\n")
        lines.append(f"(machine-readable results written to {json_path})")
    if smoke and total_mismatches:
        print("\n".join(lines))
        raise SystemExit(
            f"shard smoke FAILED: {total_mismatches} sharded answers "
            f"diverged from the unsharded engine")
    return "\n".join(lines)


def aggregate_bench(full: bool = False, queries: int | None = None,
                    seed: int = 0, smoke: bool = False,
                    json_path: str | None = "BENCH_aggregate.json",
                    gate_ratio: float = 1.5,
                    **_ignored) -> str:
    """Accuracy-vs-speed frontier of the learned aggregate models.

    Runs the Fig. 8a query mix as COUNT/SUM/area aggregates against an
    I-Hilbert index through four configurations — exact, hybrid at a
    1% and a 0.1% tolerance (of each kind's field total), and pure
    model — each query cold (caches dropped), reporting wall time,
    pages and error statistics per configuration.

    Hard checks on every run (CI and full): every model-only answer
    must lie within its reported error bound vs the exact vectorized
    path; every hybrid answer's bound must fit its tolerance; and a
    ``tolerance=0`` hybrid subsample must match the exact answers
    byte for byte.  ``smoke=True`` shrinks the field, skips the JSON
    artifact and additionally gates hybrid wall time at
    ``gate_ratio``x the same run's exact wall time, cross-checking the
    committed ``BENCH_aggregate.json`` frontier the same way.
    """
    import json as json_mod
    import time
    from pathlib import Path

    from ..synth import value_query_workload

    if smoke:
        size, per_q = 48, 4
        json_path = None
    else:
        size = 512 if full else 256
        per_q = 20 if queries is None else queries
    field = roseburg_like(cells_per_side=size)
    workload = []
    for q in QINTERVALS_FIG8:
        workload += value_query_workload(field.value_range, q,
                                         count=per_q, seed=seed)
    kinds = ("count", "sum", "area")

    index = IHilbertIndex(field)
    t0 = time.perf_counter()
    models = index.fit_aggregate_models()
    fit_seconds = time.perf_counter() - t0
    vr = field.value_range
    # Full-range aggregates cover every subfield, so these are the
    # exact stored totals (zero pages) — the per-kind tolerance scale.
    totals = {k: index.aggregate(k, vr.lo, vr.hi, mode="model").value
              for k in kinds}

    configs = [
        ("exact", "exact", None),
        ("hybrid-1pct", "hybrid", 0.01),
        ("hybrid-0.1pct", "hybrid", 0.001),
        ("model", "model", None),
    ]
    lines = [
        f"== aggregate: learned-model frontier on Fig. 8a workload "
        f"({size}x{size} terrain) ==",
        f"queries: {len(workload)} ({per_q} per Qinterval setting "
        f"{QINTERVALS_FIG8}), seed={seed}, kinds={list(kinds)}",
        f"models: degree {models.degree}, {models.num_subfields} "
        f"subfields, {models.nbytes:,} bytes, fitted in "
        f"{fit_seconds:.3f}s",
        "",
        f"{'config':>14} {'wall s':>8} {'ops/s':>8} {'pages':>9} "
        f"{'max err%':>9} {'mean err%':>9} {'exact sf':>9} "
        f"{'model sf':>9}",
    ]
    exact_values: dict[tuple[int, str], float] = {}
    config_payload = []
    violations: list[str] = []
    wall_by_name: dict[str, float] = {}
    for name, mode, frac in configs:
        tols = ({k: frac * abs(totals[k]) for k in kinds}
                if frac is not None else {k: None for k in kinds})
        pages = 0
        n_exact_sf = 0
        n_model_sf = 0
        max_abs = {k: 0.0 for k in kinds}
        max_rel = 0.0
        sum_rel = 0.0
        ops = 0
        index.clear_caches()
        t0 = time.perf_counter()
        for qi, query in enumerate(workload):
            for kind in kinds:
                index.clear_caches()
                result = index.aggregate(kind, query.lo, query.hi,
                                         tolerance=tols[kind], mode=mode)
                ops += 1
                pages += result.page_reads
                n_exact_sf += result.exact_subfields
                n_model_sf += result.model_subfields
                if mode == "exact":
                    exact_values[(qi, kind)] = result.value
                    continue
                truth = exact_values[(qi, kind)]
                err = abs(result.value - truth)
                max_abs[kind] = max(max_abs[kind], err)
                rel = err / max(abs(totals[kind]), 1e-12)
                max_rel = max(max_rel, rel)
                sum_rel += rel
                if err > result.bound:
                    violations.append(
                        f"{name} {kind}[{query.lo:.4g},{query.hi:.4g}]: "
                        f"error {err:.6g} exceeds bound "
                        f"{result.bound:.6g}")
                if tols[kind] is not None and \
                        result.bound > tols[kind]:
                    violations.append(
                        f"{name} {kind}: bound {result.bound:.6g} "
                        f"exceeds tolerance {tols[kind]:.6g}")
        wall = time.perf_counter() - t0
        wall_by_name[name] = wall
        mean_rel = sum_rel / ops if mode != "exact" else 0.0
        lines.append(
            f"{name:>14} {wall:>8.3f} {ops / wall:>8.1f} {pages:>9,} "
            f"{max_rel * 100:>9.4f} {mean_rel * 100:>9.4f} "
            f"{n_exact_sf:>9,} {n_model_sf:>9,}")
        config_payload.append({
            "name": name,
            "mode": mode,
            "tolerance_frac": frac,
            "wall_seconds": round(wall, 4),
            "ops": ops,
            "ops_per_second": round(ops / wall, 2),
            "pages": pages,
            "exact_subfields": n_exact_sf,
            "model_subfields": n_model_sf,
            "max_abs_error": {k: max_abs[k] for k in kinds},
            "max_rel_error_pct": round(max_rel * 100, 6),
            "mean_rel_error_pct": round(mean_rel * 100, 6),
        })

    # Byte-for-byte equivalence: tolerance=0 hybrid must be the exact
    # vectorized path, AVG included.
    eq_checked = 0
    eq_mismatches = 0
    for qi, query in enumerate(workload[::5]):
        for kind in kinds + ("avg",):
            exact = index.aggregate(kind, query.lo, query.hi,
                                    mode="exact")
            hybrid = index.aggregate(kind, query.lo, query.hi,
                                     tolerance=0.0, mode="hybrid")
            eq_checked += 1
            if hybrid.value != exact.value or hybrid.bound != 0.0:
                eq_mismatches += 1
                violations.append(
                    f"hybrid(tol=0) {kind}[{query.lo:.4g},"
                    f"{query.hi:.4g}] = {hybrid.value!r} != exact "
                    f"{exact.value!r}")
    lines.append("")
    lines.append(
        f"equivalence: {eq_checked} tolerance=0 hybrid answers "
        f"checked against exact — {eq_mismatches} mismatches")

    if smoke:
        ratio = wall_by_name["hybrid-1pct"] / wall_by_name["exact"]
        mark = "FAIL" if ratio > gate_ratio else "ok"
        lines.append(
            f"gate hybrid-1pct: {ratio:.2f}x of exact wall "
            f"(limit {gate_ratio}x) — {mark}")
        if ratio > gate_ratio:
            violations.append(
                f"hybrid-1pct wall {ratio:.2f}x exact (limit "
                f"{gate_ratio}x)")
        baseline_path = Path(json_path or "BENCH_aggregate.json")
        if baseline_path.is_file():
            with open(baseline_path) as fh:
                pinned = json_mod.load(fh)
            by_name = {c["name"]: c for c in pinned.get("configs", [])}
            if "exact" in by_name and "hybrid-1pct" in by_name:
                pinned_ratio = (by_name["hybrid-1pct"]["wall_seconds"]
                                / by_name["exact"]["wall_seconds"])
                mark = "FAIL" if pinned_ratio > gate_ratio else "ok"
                lines.append(
                    f"gate pinned frontier: hybrid-1pct "
                    f"{pinned_ratio:.2f}x of exact (limit "
                    f"{gate_ratio}x) — {mark}")
                if pinned_ratio > gate_ratio:
                    violations.append(
                        f"pinned BENCH_aggregate.json frontier has "
                        f"hybrid-1pct at {pinned_ratio:.2f}x exact")
        else:
            lines.append(f"(no {baseline_path} baseline; pinned-frontier "
                         f"gate skipped)")

    if json_path:
        payload = {
            "schema_version": 1,
            "experiment": "aggregate",
            "field": {
                "type": type(field).__name__,
                "cells_per_side": size,
                "cells": field.num_cells,
            },
            "workload": {
                "queries": len(workload),
                "per_qinterval": per_q,
                "qintervals": QINTERVALS_FIG8,
                "seed": seed,
                "kinds": list(kinds),
            },
            "model": {
                "degree": models.degree,
                "subfields": models.num_subfields,
                "nbytes": models.nbytes,
                "fit_seconds": round(fit_seconds, 4),
                "weight": models.weight,
            },
            "smoke": smoke,
            "gate": {"max_slowdown": gate_ratio},
            "totals": {k: totals[k] for k in kinds},
            "configs": config_payload,
            "equivalence": {
                "checked": eq_checked,
                "mismatches": eq_mismatches,
            },
        }
        with open(json_path, "w") as fh:
            json_mod.dump(payload, fh, indent=1)
            fh.write("\n")
        lines.append(f"(machine-readable results written to {json_path})")
    if violations:
        print("\n".join(lines))
        raise SystemExit(
            "aggregate bench FAILED:\n  " + "\n  ".join(violations[:20]))
    return "\n".join(lines)


def _render(result) -> str:
    if isinstance(result, str):
        return result
    if isinstance(result, list):
        return "\n\n".join(format_result(r) for r in result)
    return format_result(result)


#: Experiment registry for the CLI: id -> callable(**options) -> result.
EXPERIMENTS: dict[str, Callable] = {
    "fig8a": fig8a,
    "fig8b": fig8b,
    "fig11": fig11,
    "fig12": fig12,
    "fig7": fig7,
    "fig10": fig10,
    "batch": batch_compare,
    "ablation-cost": ablation_cost,
    "ablation-curve": ablation_curve,
    "ablation-pagesize": ablation_pagesize,
    "scale": scale_sweep,
    "methods-extra": methods_extra,
    "micro": micro,
    "throughput": throughput,
    "update": update_stream,
    "serve": serve_bench,
    "shard": shard_bench,
    "aggregate": aggregate_bench,
}

"""Plain-text rendering of experiment results.

Prints the same series the paper plots: mean query execution time per
Qinterval per method, plus the I/O decomposition that explains the time,
and speedup rows against the LinearScan baseline.
"""

from __future__ import annotations

from .harness import ExperimentResult


def _fmt(value: float, width: int = 10) -> str:
    if value >= 1000:
        return f"{value:>{width}.0f}"
    if value >= 10:
        return f"{value:>{width}.1f}"
    return f"{value:>{width}.3f}"


def format_result(result: ExperimentResult,
                  metrics: tuple[str, ...] = ("mean_ms", "mean_pages",
                                              "mean_random"),
                  base: str = "LinearScan") -> str:
    """Render an experiment as aligned text tables."""
    lines: list[str] = []
    lines.append(f"== {result.name} ==")
    info = ", ".join(f"{k}={v}" for k, v in result.field_info.items())
    lines.append(f"field: {info}")
    for series in result.series:
        extra = {k: v for k, v in series.info.items()
                 if k in ("subfields", "index_pages", "data_pages",
                          "curve", "threshold")}
        extras = ", ".join(f"{k}={v}" for k, v in extra.items())
        lines.append(
            f"build[{series.method}] = {series.build_seconds:.2f}s"
            + (f"  ({extras})" if extras else ""))

    metric_titles = {
        "mean_ms": "mean query time (ms, CPU + simulated disk)",
        "mean_cpu_ms": "mean CPU time (ms)",
        "mean_disk_ms": "mean simulated disk time (ms)",
        "mean_pages": "mean page reads",
        "mean_random": "mean random reads",
        "mean_sequential": "mean sequential reads",
        "mean_io_cost": "weighted I/O cost",
        "mean_candidates": "mean candidate cells",
    }
    methods = [s.method for s in result.series]
    for metric in metrics:
        lines.append("")
        lines.append(f"-- {metric_titles.get(metric, metric)} --")
        header = f"{'Qinterval':>10}" + "".join(
            f"{m:>14}" for m in methods)
        lines.append(header)
        for i, q in enumerate(result.qintervals):
            row = f"{q:>10.3f}"
            for series in result.series:
                row += _fmt(getattr(series.points[i], metric), 14)
            lines.append(row)

    if base in methods:
        lines.append("")
        lines.append(f"-- speedup vs {base} (query time) --")
        header = f"{'Qinterval':>10}" + "".join(
            f"{m:>14}" for m in methods if m != base)
        lines.append(header)
        for i, q in enumerate(result.qintervals):
            row = f"{q:>10.3f}"
            for series in result.series:
                if series.method == base:
                    continue
                ratio = result.speedup(series.method, base)[i]
                row += f"{ratio:>13.1f}x"
            lines.append(row)
    return "\n".join(lines)


def print_result(result: ExperimentResult, **kwargs) -> None:
    """Print :func:`format_result` output."""
    print(format_result(result, **kwargs))


def to_markdown(result: ExperimentResult, metric: str = "mean_ms",
                base: str = "LinearScan") -> str:
    """One GitHub-markdown table for a metric, with speedups vs ``base``.

    Used to paste measured series into EXPERIMENTS.md.
    """
    methods = [s.method for s in result.series]
    header = ["Qinterval"] + methods
    if base in methods:
        header += [f"{m} vs {base}" for m in methods if m != base]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "---|" * len(header)]
    for i, q in enumerate(result.qintervals):
        row = [f"{q:.3f}"]
        for series in result.series:
            row.append(f"{getattr(series.points[i], metric):.1f}")
        if base in methods:
            for series in result.series:
                if series.method == base:
                    continue
                ratio = result.speedup(series.method, base,
                                       metric=metric)[i]
                row.append(f"{ratio:.1f}x")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)

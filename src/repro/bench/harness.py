"""Experiment harness implementing the paper's measurement protocol (§4).

For each access method and each ``Qinterval`` setting, a fixed seeded
workload of random interval queries is executed cold (caches dropped
between queries) and the harness records mean wall time, page reads
(sequential/random split), candidate counts and answer areas.  Identical
workloads are replayed against every method, so series are directly
comparable, as in the paper's figures.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field as dc_field

from ..core.base import EstimateMode, ValueIndex
from ..field.base import Field
from ..obs.trace import Tracer
# Simulated disk service times per 4 KiB page now live next to IOStats
# (one authoritative definition shared with the parallel engine's
# DeviceModel); re-exported here for backwards compatibility.
from ..storage.stats import RANDOM_READ_MS, SEQUENTIAL_READ_MS
from ..synth.queries import value_query_workload

__all__ = ["ExperimentResult", "MethodSeries", "SweepPoint",
           "RANDOM_READ_MS", "SEQUENTIAL_READ_MS", "run_experiment"]

MethodFactory = Callable[[Field], ValueIndex]


@dataclass
class SweepPoint:
    """Aggregated measurements for one (method, Qinterval) setting."""

    qinterval: float
    queries: int
    #: CPU + simulated disk time — the paper-comparable "execution time".
    mean_ms: float
    #: Pure Python CPU time (wall clock of the in-memory run).
    mean_cpu_ms: float
    #: Simulated disk time from the page-read counts.
    mean_disk_ms: float
    mean_pages: float
    mean_sequential: float
    mean_random: float
    mean_cache_hits: float
    mean_candidates: float
    mean_area: float
    mean_io_cost: float


@dataclass
class MethodSeries:
    """One method's full sweep over the Qinterval axis."""

    method: str
    build_seconds: float
    info: dict
    points: list[SweepPoint] = dc_field(default_factory=list)

    def point(self, qinterval: float) -> SweepPoint:
        """Sweep point for a given Qinterval (exact match)."""
        for p in self.points:
            if p.qinterval == qinterval:
                return p
        raise KeyError(f"no sweep point at Qinterval {qinterval}")


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    name: str
    field_info: dict
    qintervals: list[float]
    series: list[MethodSeries] = dc_field(default_factory=list)

    def series_for(self, method: str) -> MethodSeries:
        """Series of a given method name."""
        for s in self.series:
            if s.method == method:
                return s
        raise KeyError(f"no series for method {method!r}")

    def speedup(self, method: str, base: str = "LinearScan",
                metric: str = "mean_ms") -> list[float]:
        """Per-Qinterval ratio ``base / method`` for a metric."""
        target = self.series_for(method)
        baseline = self.series_for(base)
        return [getattr(b, metric) / max(getattr(m, metric), 1e-12)
                for b, m in zip(baseline.points, target.points)]


def run_experiment(name: str, field: Field,
                   methods: dict[str, MethodFactory],
                   qintervals: Sequence[float], queries: int = 200,
                   seed: int = 0, estimate: EstimateMode = "area",
                   cold: bool = True,
                   random_read_ms: float = RANDOM_READ_MS,
                   sequential_read_ms: float = SEQUENTIAL_READ_MS,
                   io_cost_random: float = 1.0,
                   io_cost_sequential: float = 0.1,
                   tracer: Tracer | None = None) -> ExperimentResult:
    """Run the paper's sweep protocol for one field and several methods.

    Parameters mirror §4: ``qintervals`` is the Qinterval axis, ``queries``
    the number of random queries per setting (paper: 200), ``estimate``
    the estimation-step mode.  ``cold=True`` drops caches before every
    query, modelling the paper's disk-resident setting.

    When a :class:`~repro.obs.trace.Tracer` is passed, it is attached to
    each method's index in turn and every (method, Qinterval) sweep
    point is wrapped in a ``sweep`` span, so the per-query span trees
    nest under the setting that produced them.  Leave it ``None`` (the
    default) for measurement runs — the no-op tracer path adds nothing
    to the counted I/O or the timed loop.
    """
    result = ExperimentResult(
        name=name,
        field_info={
            "cells": field.num_cells,
            "value_range": field.value_range.as_tuple(),
            "type": type(field).__name__,
        },
        qintervals=list(qintervals),
    )
    workloads = {
        q: value_query_workload(field.value_range, q, count=queries,
                                seed=seed)
        for q in qintervals
    }
    for method_name, factory in methods.items():
        t0 = time.perf_counter()
        index = factory(field)
        build_seconds = time.perf_counter() - t0
        if tracer is not None:
            tracer.attach(index)
        series = MethodSeries(method=method_name,
                              build_seconds=build_seconds,
                              info=index.describe())
        if not cold:
            # Warm regime: populate the buffer pool once, untimed, so the
            # measured queries run fully cached (CPU-bound).
            from ..core.query import ValueQuery
            vr = field.value_range
            index.query(ValueQuery(vr.lo, vr.hi), estimate="none")
        for q in qintervals:
            with index.tracer.span("sweep") as span:
                if span.enabled:
                    span.attrs["method"] = method_name
                    span.attrs["qinterval"] = q
                series.points.append(
                    _run_point(index, q, workloads[q], estimate, cold,
                               random_read_ms, sequential_read_ms,
                               io_cost_random, io_cost_sequential))
        result.series.append(series)
        del index
    return result


def _run_point(index: ValueIndex, qinterval: float, workload,
               estimate: EstimateMode, cold: bool,
               random_read_ms: float, sequential_read_ms: float,
               io_cost_random: float,
               io_cost_sequential: float) -> SweepPoint:
    total_ms = 0.0
    pages = seq = rand = hits = skipped = 0
    candidates = 0
    area = 0.0
    for query in workload:
        if cold:
            index.clear_caches()
        t0 = time.perf_counter()
        res = index.query(query, estimate=estimate)
        total_ms += (time.perf_counter() - t0) * 1e3
        pages += res.io.page_reads
        seq += res.io.sequential_reads
        rand += res.io.random_reads
        skipped += res.io.skipped_pages
        hits += res.io.cache_hits
        candidates += res.candidate_count
        if res.area is not None:
            area += res.area
    n = len(workload)
    disk_ms = (rand * random_read_ms
               + (seq + skipped) * sequential_read_ms) / n
    return SweepPoint(
        qinterval=qinterval,
        queries=n,
        mean_ms=total_ms / n + disk_ms,
        mean_cpu_ms=total_ms / n,
        mean_disk_ms=disk_ms,
        mean_pages=pages / n,
        mean_sequential=seq / n,
        mean_random=rand / n,
        mean_cache_hits=hits / n,
        mean_candidates=candidates / n,
        mean_area=area / n,
        mean_io_cost=(rand * io_cost_random
                      + seq * io_cost_sequential) / n,
    )

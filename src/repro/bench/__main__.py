"""Command-line front end: ``python -m repro.bench <experiment>``.

Regenerates any table/figure of the paper; see DESIGN.md for the mapping
from experiment ids to paper figures.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import EXPERIMENTS, _render


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's experiments "
                    "(EDBT 2002, Kang et al.)")
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="experiment id (paper figure) to run")
    parser.add_argument("--full", action="store_true",
                        help="force the paper's full data sizes "
                             "(only fig11 defaults to a smaller size)")
    parser.add_argument("--small", action="store_true",
                        help="force laptop-scale data sizes for a quick run")
    parser.add_argument("--queries", type=int, default=None,
                        help="random queries per Qinterval (default: "
                             "each experiment's own, paper: 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload/data RNG seed")
    parser.add_argument("--estimate", default="area",
                        choices=["none", "area", "regions"],
                        help="estimation-step mode (default: area)")
    parser.add_argument("--warm", action="store_true",
                        help="warm-cache regime: buffer pool retained "
                             "across queries, time is CPU-bound "
                             "(default: cold, simulated-disk-bound)")
    parser.add_argument("--workers", default=None,
                        help="throughput only: comma-separated worker "
                             "counts to sweep (default: 1,2,4,8)")
    parser.add_argument("--smoke", action="store_true",
                        help="throughput/update/serve/shard/micro/"
                             "aggregate only: "
                             "tiny field and workload, exit 1 on "
                             "regression (CI gate; micro gates ns/op "
                             "against the committed BENCH_micro.json)")
    parser.add_argument("--updates", type=int, default=None,
                        help="update only: length of the random vertex "
                             "update stream (default: 1000)")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    if args.full and args.small:
        parser.error("--full and --small are mutually exclusive")
    for name in names:
        runner = EXPERIMENTS[name]
        options = dict(seed=args.seed, estimate=args.estimate)
        if args.queries is not None:
            options["queries"] = args.queries
        if args.warm:
            options["warm"] = True
        if args.full:
            options["full"] = True
        elif args.small:
            options["full"] = False
        if name == "throughput":
            if args.workers:
                options["workers"] = tuple(
                    int(w) for w in args.workers.split(","))
            if args.smoke:
                options["smoke"] = True
        if name == "update":
            if args.smoke:
                options["smoke"] = True
            if args.updates is not None:
                options["updates"] = args.updates
        if name in ("serve", "shard", "micro", "aggregate") and args.smoke:
            options["smoke"] = True
        result = runner(**options)
        print(_render(result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Experiment harness regenerating the paper's tables and figures."""

from .experiments import EXPERIMENTS, standard_methods
from .harness import (
    ExperimentResult,
    MethodSeries,
    SweepPoint,
    run_experiment,
)
from .report import format_result, print_result

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "MethodSeries",
    "SweepPoint",
    "format_result",
    "print_result",
    "run_experiment",
    "standard_methods",
]

"""Per-tenant admission control for the field query service.

Serving millions of users means no tenant may starve the rest: before a
request touches an engine it must pass this controller, which enforces,
per tenant,

* a **token-bucket rate quota** (``rate`` requests/s sustained,
  ``burst`` absorbed instantly);
* a **bounded pending queue** — at most ``max_pending`` requests
  admitted-or-waiting at once; the bound exceeded is *backpressure* and
  is always an immediate typed rejection (waiting would just grow the
  queue the bound exists to cap);
* an exhausted bucket is handled by policy: ``on_limit="reject"``
  answers immediately with a ``quota`` error, ``on_limit="wait"``
  (default) parks the request on the event loop until a token refills,
  up to ``max_wait_s`` — past that, the ``quota`` rejection fires after
  all;
* an optional per-request **execution timeout** (``timeout_s``) the
  server enforces with cancellation.

Everything here runs on the event-loop thread, so the counters need no
locks; the controller's :meth:`AdmissionController.snapshot` is what the
``stats`` verb reports.  Rejections are *typed*
(:class:`~repro.serve.protocol.ProtocolError` with code ``quota`` or
``backpressure``), so a client can distinguish "slow down" from "you
broke the protocol".

When the metrics registry is enabled the controller also exposes live
gauges — per-tenant pending-queue depth, token-bucket fill, and
in-flight (admitted, not yet released) count, plus a rejection counter
split by reason.  The gauges are point-in-time values, so they are
mirrored lazily by :meth:`AdmissionController.publish` at scrape time
(``GET /metrics``, the ``metrics`` verb) rather than on every admission
transition: the scraper still sees queue state as it is *now*, and the
admit/release hot path stays free of per-request gauge writes.
Rejection counters are cumulative and so still increment eagerly.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from ..obs.metrics import REGISTRY
from .protocol import ProtocolError

#: Live admission gauges (published only while ``REGISTRY.enabled``).
PENDING_GAUGE = REGISTRY.gauge(
    "repro_admission_pending",
    "Requests admitted-or-waiting per tenant (queue depth)")
TOKENS_GAUGE = REGISTRY.gauge(
    "repro_admission_tokens",
    "Token-bucket fill per tenant (burst capacity when unlimited)")
INFLIGHT_GAUGE = REGISTRY.gauge(
    "repro_admission_inflight",
    "Admitted requests currently executing per tenant")
REJECTED_COUNTER = REGISTRY.counter(
    "repro_admission_rejected_total",
    "Admission rejections per tenant, split by reason")


class TokenBucket:
    """Classic token bucket over a monotonic clock.

    ``rate`` tokens/second refill continuously up to ``burst`` capacity;
    :meth:`try_acquire` either spends a token or reports how long until
    one is available.  The clock is injectable so tests can drive time
    deterministically.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if available; never blocks."""
        self._refill()
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def delay_until(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have refilled (0 if now)."""
        self._refill()
        missing = n - self.tokens
        return missing / self.rate if missing > 0 else 0.0


@dataclass(frozen=True)
class TenantQuota:
    """Admission parameters of one tenant (or the default)."""

    #: Sustained requests/second; ``None`` disables rate limiting.
    rate: float | None = None
    #: Bucket capacity: requests absorbed instantly at any rate.
    burst: int = 8
    #: Bound on requests admitted-or-waiting at once (backpressure).
    max_pending: int = 64
    #: Empty-bucket policy: ``"wait"`` parks up to ``max_wait_s``,
    #: ``"reject"`` answers immediately with a ``quota`` error.
    on_limit: str = "wait"
    #: Longest a ``"wait"``-policy request may park for a token.
    max_wait_s: float = 1.0
    #: Per-request execution deadline enforced by the server
    #: (``None`` = no deadline).
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}")
        if self.on_limit not in ("wait", "reject"):
            raise ValueError(
                f"on_limit must be 'wait' or 'reject', "
                f"got {self.on_limit!r}")
        if self.max_wait_s < 0:
            raise ValueError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be > 0, got {self.timeout_s}")


class TenantState:
    """Live admission state of one tenant."""

    __slots__ = ("quota", "bucket", "pending", "inflight", "admitted",
                 "rejected_quota", "rejected_backpressure", "timeouts")

    def __init__(self, quota: TenantQuota, clock) -> None:
        self.quota = quota
        self.bucket = (TokenBucket(quota.rate, quota.burst, clock)
                       if quota.rate is not None else None)
        self.pending = 0
        self.inflight = 0
        self.admitted = 0
        self.rejected_quota = 0
        self.rejected_backpressure = 0
        self.timeouts = 0

    def tokens(self) -> float:
        """Current token-bucket fill (burst capacity when unlimited)."""
        if self.bucket is None:
            return float(self.quota.burst)
        self.bucket._refill()
        return self.bucket.tokens

    def snapshot(self) -> dict:
        """JSON-safe counters for the ``stats`` verb."""
        return {
            "pending": self.pending,
            "inflight": self.inflight,
            "tokens": round(self.tokens(), 3),
            "admitted": self.admitted,
            "rejected_quota": self.rejected_quota,
            "rejected_backpressure": self.rejected_backpressure,
            "timeouts": self.timeouts,
            "rate": self.quota.rate,
            "burst": self.quota.burst,
            "max_pending": self.quota.max_pending,
            "on_limit": self.quota.on_limit,
            "timeout_s": self.quota.timeout_s,
        }


class AdmissionController:
    """Gates every engine request through its tenant's quota.

    Usage (event-loop thread only)::

        await controller.acquire(tenant)     # may raise ProtocolError
        try:
            ... run the request ...
        finally:
            controller.release(tenant)
    """

    def __init__(self, default: TenantQuota | None = None,
                 quotas: dict[str, TenantQuota] | None = None,
                 clock=time.monotonic) -> None:
        self.default = default if default is not None else TenantQuota()
        self.quotas = dict(quotas) if quotas else {}
        self.clock = clock
        self._tenants: dict[str, TenantState] = {}

    def quota(self, tenant: str) -> TenantQuota:
        """The quota governing ``tenant`` (explicit or default)."""
        return self.quotas.get(tenant, self.default)

    def state(self, tenant: str) -> TenantState:
        """The live state of ``tenant`` (created on first contact)."""
        st = self._tenants.get(tenant)
        if st is None:
            st = self._tenants[tenant] = TenantState(self.quota(tenant),
                                                     self.clock)
        return st

    async def acquire(self, tenant: str) -> TenantState:
        """Admit one request for ``tenant`` or raise a typed rejection.

        On success the tenant's ``pending`` count is held until the
        caller's :meth:`release`; on rejection nothing is held.
        """
        st = self.state(tenant)
        quota = st.quota
        if st.pending >= quota.max_pending:
            st.rejected_backpressure += 1
            if REGISTRY.enabled:
                REJECTED_COUNTER.inc(tenant=tenant, reason="backpressure")
            raise ProtocolError(
                "backpressure",
                f"tenant {tenant!r} has {st.pending} requests pending "
                f"(bound {quota.max_pending}); retry later")
        st.pending += 1
        try:
            if st.bucket is not None and not st.bucket.try_acquire():
                if quota.on_limit == "reject" or quota.max_wait_s == 0:
                    raise ProtocolError(
                        "quota",
                        f"tenant {tenant!r} exceeded its rate quota "
                        f"({quota.rate:g}/s, burst {quota.burst})")
                deadline = self.clock() + quota.max_wait_s
                while True:
                    delay = st.bucket.delay_until()
                    if delay <= 0 and st.bucket.try_acquire():
                        break
                    if self.clock() + delay > deadline:
                        raise ProtocolError(
                            "quota",
                            f"tenant {tenant!r} exceeded its rate quota "
                            f"({quota.rate:g}/s) and the "
                            f"{quota.max_wait_s:g}s wait bound")
                    await asyncio.sleep(min(delay, quota.max_wait_s)
                                        or 0.001)
        except ProtocolError:
            st.pending -= 1
            st.rejected_quota += 1
            if REGISTRY.enabled:
                REJECTED_COUNTER.inc(tenant=tenant, reason="quota")
            raise
        except BaseException:
            # Cancellation while parked: give the slot back untyped.
            st.pending -= 1
            raise
        st.admitted += 1
        st.inflight += 1
        return st

    def release(self, tenant: str) -> None:
        """Return the pending slot held by :meth:`acquire`."""
        st = self._tenants.get(tenant)
        if st is not None and st.pending > 0:
            st.pending -= 1
            if st.inflight > 0:
                st.inflight -= 1

    def publish(self) -> None:
        """Mirror every tenant's live state into the metrics gauges.

        Called at scrape time (not per admission transition): gauges
        are point-in-time, so publishing them when someone actually
        looks keeps the hot path free of per-request gauge writes
        while the scraper still sees current queue state.
        """
        if not REGISTRY.enabled:
            return
        for tenant, st in self._tenants.items():
            PENDING_GAUGE.set(st.pending, tenant=tenant)
            INFLIGHT_GAUGE.set(st.inflight, tenant=tenant)
            TOKENS_GAUGE.set(round(st.tokens(), 3), tenant=tenant)

    def note_timeout(self, tenant: str) -> None:
        """Record that an admitted request hit its execution deadline."""
        self.state(tenant).timeouts += 1

    def snapshot(self) -> dict:
        """Per-tenant admission counters for the ``stats`` verb."""
        return {tenant: st.snapshot()
                for tenant, st in sorted(self._tenants.items())}

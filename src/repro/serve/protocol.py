"""Newline-delimited JSON protocol of the field query service.

One *frame* is one line of UTF-8 JSON terminated by ``\\n``.  A request
frame is an object with an ``op`` (the verb), an optional ``id`` (echoed
verbatim in the response so clients can pipeline), an optional
``tenant`` (admission-control identity, default ``"default"``), an
optional ``trace_id``/``parent_span`` pair (distributed-trace identity:
a client-supplied ``trace_id`` forces the request to be sampled and is
echoed in the response, so one trace id follows the request from the
client frame through admission, engine and encode — DESIGN.md §11),
and op-specific parameters at the top level::

    {"id": 1, "op": "query", "tenant": "alice",
     "trace_id": "b1946ac92492", "field": "terrain",
     "lo": 300.0, "hi": 320.0}

Every frame the server reads yields exactly one response frame — either
a success envelope ``{"id": ..., "ok": true, ...payload...}`` or a typed
error ``{"id": ..., "ok": false, "error": {"code": ..., "message":
...}}``.  Malformed input (junk bytes, truncated JSON, oversized frames,
wrong shapes) never crashes the connection handler: the codec folds
every failure into :class:`ProtocolError`, whose ``code`` is one of
:data:`ERROR_CODES`, and the server answers with it.  The
property/fuzz suite (``tests/serve/test_protocol_fuzz.py``) pins exactly
this contract.

The verbs:

=========  ============================================================
``ping``    liveness check → ``{"pong": true}``
``fields``  list open fields with descriptions
``open``    open a catalogued field (idempotent per name)
``close``   close an open field
``query``   one value query (Q2) → candidates/area/io
``batch``   many value queries through the batch/parallel engine
``aggregate`` approximate COUNT/SUM/AVG/area with an error bound
``update``  apply vertex-value updates
``stats``   per-field + per-tenant serving statistics
``metrics`` metrics-registry dump (JSON or Prometheus-style text)
=========  ============================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dc_field

#: Hard bound on one frame's encoded size; larger frames are rejected
#: with ``bad-frame`` (and the connection closed, since the tail of an
#: oversized line cannot be resynchronized reliably).
MAX_FRAME_BYTES = 1 << 20

#: Hard bound on queries per ``batch`` request.
MAX_BATCH_QUERIES = 10_000

#: Hard bound on vertex updates per ``update`` request.
MAX_UPDATE_VERTICES = 100_000

#: Verbs the server understands.
OPS = frozenset({"ping", "fields", "open", "close", "query", "batch",
                 "aggregate", "update", "stats", "metrics"})

#: Every error code a response frame may carry.
ERROR_CODES = frozenset({
    "bad-frame",       # not a UTF-8 JSON object line (or oversized)
    "bad-request",     # frame parsed but parameters invalid
    "unknown-op",      # op is not one of OPS
    "unknown-field",   # op named a field that is not open
    "field-exists",    # open collided with an already-open name
    "quota",           # tenant's token bucket empty (after any wait)
    "backpressure",    # tenant's pending-request queue full
    "timeout",         # request exceeded its execution deadline
    "storage-fault",   # typed storage error (corrupt page, I/O error)
    "unsupported",     # operation valid but not possible on this field
    "shutting-down",   # server is draining; retry against another node
    "internal",        # unexpected server-side failure
})


class ProtocolError(Exception):
    """A typed protocol-level failure, rendered as an error frame."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")


#: Bound on ``trace_id``/``parent_span`` length (enough for a UUID or a
#: W3C trace-context id with room to spare).
MAX_TRACE_ID_CHARS = 64


@dataclass(frozen=True)
class Request:
    """One decoded request frame."""

    op: str
    id: object = None
    tenant: str = "default"
    trace_id: str | None = None
    parent_span: str | None = None
    params: dict = dc_field(default_factory=dict)


def decode_request(line: bytes | bytearray | memoryview | str) -> Request:
    """Parse one frame into a :class:`Request`.

    Every malformed input raises :class:`ProtocolError` — never any
    other exception type — so a server loop can answer with a typed
    error frame and keep the connection alive.
    """
    if isinstance(line, (bytes, bytearray, memoryview)):
        raw = bytes(line)
        if len(raw) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "bad-frame",
                f"frame of {len(raw)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit")
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-frame",
                                f"frame is not UTF-8: {exc}") from None
    else:
        text = line
        if len(text) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "bad-frame",
                f"frame of {len(text)} characters exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit")
    text = text.strip()
    if not text:
        raise ProtocolError("bad-frame", "empty frame")
    try:
        obj = json.loads(text)
    except (json.JSONDecodeError, ValueError) as exc:
        raise ProtocolError("bad-frame",
                            f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-frame",
            f"frame must be a JSON object, got {type(obj).__name__}")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request",
                            "missing or non-string 'op' field")
    if op not in OPS:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r} (known: {sorted(OPS)})")
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError(
            "bad-request",
            f"'id' must be a string, integer or null, "
            f"got {type(request_id).__name__}")
    tenant = obj.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
        raise ProtocolError(
            "bad-request",
            "'tenant' must be a non-empty string of at most 128 "
            "characters")
    trace_id = _optional_trace_field(obj, "trace_id")
    parent_span = _optional_trace_field(obj, "parent_span")
    params = {key: value for key, value in obj.items()
              if key not in ("op", "id", "tenant", "trace_id",
                             "parent_span")}
    return Request(op=op, id=request_id, tenant=tenant,
                   trace_id=trace_id, parent_span=parent_span,
                   params=params)


def _optional_trace_field(obj: dict, key: str) -> str | None:
    """Validate an optional trace-identity frame field."""
    value = obj.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value \
            or len(value) > MAX_TRACE_ID_CHARS:
        raise ProtocolError(
            "bad-request",
            f"'{key}' must be a non-empty string of at most "
            f"{MAX_TRACE_ID_CHARS} characters")
    return value


def encode_response(request_id, payload: dict) -> bytes:
    """Encode a success envelope as one frame."""
    obj = {"id": request_id, "ok": True}
    obj.update(payload)
    return (json.dumps(obj, separators=(",", ":"), allow_nan=False)
            + "\n").encode("utf-8")


def encode_error(request_id, code: str, message: str) -> bytes:
    """Encode a typed error envelope as one frame."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    obj = {"id": request_id, "ok": False,
           "error": {"code": code, "message": message}}
    return (json.dumps(obj, separators=(",", ":"), allow_nan=False)
            + "\n").encode("utf-8")


# -- parameter validation helpers -------------------------------------------

def need(params: dict, key: str, types, what: str):
    """Fetch a required, type-checked parameter or raise ``bad-request``."""
    if key not in params:
        raise ProtocolError("bad-request",
                            f"missing required parameter {key!r}")
    value = params[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProtocolError(
            "bad-request",
            f"parameter {key!r} must be {what}, "
            f"got {type(value).__name__}")
    return value


def need_number(params: dict, key: str) -> float:
    """Fetch a required finite number parameter."""
    value = need(params, key, (int, float), "a number")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ProtocolError("bad-request",
                            f"parameter {key!r} must be finite")
    return value


def optional_choice(params: dict, key: str, choices, default: str) -> str:
    """Fetch an optional enumerated string parameter."""
    value = params.get(key, default)
    if value not in choices:
        raise ProtocolError(
            "bad-request",
            f"parameter {key!r} must be one of {sorted(choices)}, "
            f"got {value!r}")
    return value

"""``repro top`` — a live serving console over the wire protocol.

Connects to a running :class:`~repro.serve.server.FieldServer` as an
ordinary client and refreshes, in place, the numbers an operator
watches during an incident: per-tenant × op q/s and latency quantiles
(p50/p95/p99 out of the server's rolling SLO window), error/timeout/
rejection rates, admission queue depth / token fill / in-flight per
tenant, buffer-pool hit rate and residency per field, and the
maintenance side (WAL-driven page writes, compactions, subfield
staleness) from the metrics registry.

Everything is fetched through the ``metrics`` (JSON mode, which
includes the ``slo`` rolling snapshot) and ``stats`` verbs — the
console needs no privileged channel, so it works against any server
it can reach, and the rendering is a pure function of the two payloads
(:func:`render_frame`), which is how the tests drive it without a
terminal.
"""

from __future__ import annotations

import sys
import time

from .client import FieldClient

#: ANSI: cursor home + clear-to-end (keeps scrollback, unlike 2J).
_REFRESH = "\x1b[H\x1b[J"


def _metric_series(families: list, name: str) -> list:
    """Series rows of one metric family out of a ``metrics`` payload."""
    for family in families:
        if family.get("name") == name:
            return family.get("series", [])
    return []


def _metric_total(families: list, name: str) -> float:
    """Sum of a counter/gauge family's series (0.0 when absent)."""
    return sum(row.get("value", 0.0)
               for row in _metric_series(families, name))


def _fmt_rate(value: float) -> str:
    return f"{value * 100.0:5.1f}%"


def _fmt_ms(value: float) -> str:
    if value >= 1000.0:
        return f"{value / 1000.0:6.2f}s"
    return f"{value:6.2f}"


def render_frame(metrics: dict, stats: dict, address: str,
                 interval_s: float) -> str:
    """Render one console frame from the two verb payloads."""
    lines: list[str] = []
    server = stats.get("server", {})
    lines.append(
        f"repro top — {address}   requests={server.get('requests', 0)}"
        f" active={server.get('active', 0)}"
        f" conns={server.get('open_connections', 0)}"
        f" sampled={server.get('sampled', 0)}"
        f" qlog={server.get('qlog_entries', 0)}"
        f"   every {interval_s:g}s")
    lines.append("")

    slo = metrics.get("slo", {})
    series = slo.get("series", [])
    lines.append(f"SLO (rolling {slo.get('window_s', 0):g}s window)")
    lines.append(f"  {'tenant':<12} {'op':<8} {'q/s':>8} {'p50ms':>7} "
                 f"{'p95ms':>7} {'p99ms':>7} {'err':>6} {'rej':>6} "
                 f"{'tmo':>6}")
    if not series:
        lines.append("  (no traffic in window)")
    for row in sorted(series, key=lambda r: (r["tenant"], r["op"])):
        latency = row["latency_ms"]
        lines.append(
            f"  {row['tenant']:<12.12} {row['op']:<8.8} "
            f"{row['qps']:>8.1f} {_fmt_ms(latency['p50']):>7} "
            f"{_fmt_ms(latency['p95']):>7} {_fmt_ms(latency['p99']):>7} "
            f"{_fmt_rate(row['error_rate']):>6} "
            f"{_fmt_rate(row['rejection_rate']):>6} "
            f"{_fmt_rate(row['timeout_rate']):>6}")
    lines.append("")

    admission = stats.get("admission", {})
    lines.append("Admission")
    lines.append(f"  {'tenant':<12} {'pend':>5} {'infl':>5} {'tokens':>8} "
                 f"{'admitted':>9} {'rej-q':>6} {'rej-bp':>7} {'tmo':>5}")
    if not admission:
        lines.append("  (no tenants yet)")
    for tenant, st in sorted(admission.items()):
        tokens = st.get("tokens")
        lines.append(
            f"  {tenant:<12.12} {st.get('pending', 0):>5} "
            f"{st.get('inflight', 0):>5} "
            f"{'inf' if tokens is None else f'{tokens:.1f}':>8} "
            f"{st.get('admitted', 0):>9} "
            f"{st.get('rejected_quota', 0):>6} "
            f"{st.get('rejected_backpressure', 0):>7} "
            f"{st.get('timeouts', 0):>5}")
    lines.append("")

    lines.append("Fields")
    lines.append(f"  {'field':<16} {'method':<10} {'queries':>8} "
                 f"{'reads':>9} {'hit%':>6} {'resident':>12}")
    fields = stats.get("fields", {})
    if not fields:
        lines.append("  (none open)")
    for name, field in sorted(fields.items()):
        pool = field.get("pool", {})
        hits = pool.get("hits", 0)
        misses = pool.get("misses", 0)
        total = hits + misses
        hit_rate = hits / total if total else 0.0
        lines.append(
            f"  {name:<16.16} {field.get('method', '?'):<10.10} "
            f"{field.get('queries', 0):>8} "
            f"{field.get('io', {}).get('page_reads', 0):>9} "
            f"{_fmt_rate(hit_rate):>6} "
            f"{pool.get('resident_pages', 0):>5}/"
            f"{pool.get('capacity', 0):<6}")
    lines.append("")

    families = metrics.get("metrics", [])
    maint_reads = _metric_total(families, "repro_maintenance_page_reads_total")
    maint_writes = _metric_total(families,
                                 "repro_maintenance_page_writes_total")
    compactions = _metric_total(families, "repro_compactions_total")
    updates = _metric_total(families, "repro_cell_updates_total")
    staleness = _metric_series(families, "repro_subfield_staleness")
    worst = max((row.get("value", 0.0) for row in staleness), default=0.0)
    lines.append(
        f"Maintenance   updates={updates:.0f} "
        f"wal/maint reads={maint_reads:.0f} writes={maint_writes:.0f} "
        f"compactions={compactions:.0f} worst-staleness={worst:.0f}")
    return "\n".join(lines) + "\n"


def run_top(host: str, port: int, tenant: str = "default",
            interval_s: float = 2.0, iterations: int | None = None,
            out=None, refresh: bool | None = None) -> int:
    """Run the live console; returns the number of frames rendered.

    ``iterations=None`` runs until interrupted (Ctrl-C exits cleanly);
    ``refresh=None`` auto-detects a TTY for in-place redraw (explicit
    ``False`` appends frames, the non-interactive/test mode).
    """
    if out is None:
        out = sys.stdout
    if refresh is None:
        refresh = bool(getattr(out, "isatty", lambda: False)())
    address = f"{host}:{port}"
    frames = 0
    with FieldClient(host, port, tenant=tenant) as client:
        try:
            while iterations is None or frames < iterations:
                metrics = client.metrics(format="json")
                stats = client.stats()
                frame = render_frame(metrics, stats, address, interval_s)
                if refresh:
                    out.write(_REFRESH + frame)
                else:
                    out.write(frame)
                out.flush()
                frames += 1
                if iterations is not None and frames >= iterations:
                    break
                time.sleep(interval_s)
        except KeyboardInterrupt:
            pass
    return frames

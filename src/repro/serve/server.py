"""Asyncio field query server: multiplexes tenants onto the engine.

:class:`FieldServer` listens on a TCP socket, speaks the
newline-delimited JSON protocol of :mod:`repro.serve.protocol`, and
drives every engine verb through one shared
:class:`~repro.core.facade.EngineFacade`.  The concurrency model:

* the **event loop** owns connections, frame codec, admission control
  and timeouts — everything cheap and cancellable;
* **engine calls** (query/batch/update/open) run on a bounded
  :class:`~concurrent.futures.ThreadPoolExecutor`, because the engines
  are synchronous; the facade's per-field lock serializes access to one
  field while different fields proceed in parallel;
* each tenant passes the :class:`~repro.serve.admission
  .AdmissionController` first — token-bucket quota, bounded pending
  queue with typed ``backpressure``/``quota`` rejections, and an
  optional execution deadline.  A deadline that expires answers the
  client immediately with a ``timeout`` error and *cancels* the work:
  an engine call still queued (behind the executor or a field lock)
  never starts; one already on a core finishes in the background and
  its result is discarded (Python threads cannot be interrupted
  mid-call), tracked as a straggler until it drains.

Every request is answered — malformed frames with typed errors — and
the server is fully observable end-to-end (DESIGN.md §11):

* **Trace propagation**: a client-supplied ``trace_id`` (or a
  head-based coin flip at ``trace_sample_rate``) samples the request
  into a span tree — ``request[op]`` bracketing ``decode``,
  ``admission`` (queue depth at entry + wait), ``engine`` (with the
  engine's own ``query → plan/filter/fetch/estimate`` spans grafted
  underneath, recorded on a per-request tracer through the facade) and
  ``encode``.  Sampled trees are kept in :attr:`FieldServer.sampled`
  (and mirrored to a server-wide ``tracer`` when one is installed),
  and the response echoes the ``trace_id``.
* **Rolling SLO metrics**: every outcome feeds a
  :class:`~repro.obs.rolling.RollingStats` window (per tenant × op
  q/s, latency quantiles, error/timeout/rejection rates), served by
  the ``metrics`` verb (``format="json"|"prometheus"``) and by a
  plain-HTTP ``GET /metrics`` side listener (``metrics_port``).
* **Slow-query log**: requests crossing the
  :class:`~repro.obs.qlog.QueryLog` thresholds append one JSONL entry
  with tenant, args, outcome, admission wait, engine I/O, plan choice
  and (when sampled) the full span tree.

Latency histograms and request/connection counters still publish to
the process metrics registry, which the ``metrics`` verb exposes over
the wire.

Graceful shutdown (:meth:`FieldServer.stop`) stops accepting, lets
in-flight requests finish and their responses flush, then closes idle
connections — a client mid-request gets its answer, not a reset.

:class:`ServerThread` runs a server on a private event loop in a
daemon thread — the shape the bench load generator, the regression-test
fixture, and embedders use.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
import uuid
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from ..core.aggregate import AGGREGATE_KINDS, AGGREGATE_MODES
from ..core.facade import (EngineFacade, FacadeError, FieldExistsError,
                           UnknownFieldError)
from ..obs.export import render_prometheus, span_to_tree
from ..obs.metrics import REGISTRY
from ..obs.qlog import QueryLog
from ..obs.rolling import LATENCY_BUCKETS_MS, RollingStats
from ..obs.trace import Span, Tracer
from ..storage import CorruptPageError, TransientIOError
from .admission import AdmissionController
from .protocol import (MAX_BATCH_QUERIES, MAX_FRAME_BYTES,
                       MAX_UPDATE_VERTICES, ProtocolError, Request,
                       decode_request, encode_error, encode_response,
                       need, need_number, optional_choice)

_REQUESTS = REGISTRY.counter(
    "repro_serve_requests_total",
    "Requests served, per op/tenant/outcome ('ok' or an error code).")
_LATENCY_MS = REGISTRY.histogram(
    "repro_serve_request_ms",
    "Request latency in milliseconds, per op.")
_CONNECTIONS = REGISTRY.counter(
    "repro_serve_connections_total",
    "Client connections accepted.")
_ADMISSION_WAIT_MS = REGISTRY.histogram(
    "repro_serve_admission_wait_ms",
    "Admission-control wait in milliseconds, per tenant.",
    buckets=LATENCY_BUCKETS_MS)
_SAMPLED = REGISTRY.counter(
    "repro_serve_sampled_total",
    "Requests sampled into a trace, per op.")

#: Estimate modes exposed over the wire per verb (``regions`` payloads
#: are unbounded, so only single queries may request them).
_QUERY_ESTIMATES = frozenset({"none", "area", "regions"})
_BATCH_ESTIMATES = frozenset({"none", "area"})
_FAULT_MODES = frozenset({"raise", "skip"})


def _io_payload(io) -> dict:
    """JSON-safe view of an :class:`~repro.storage.stats.IOStats`."""
    return {
        "page_reads": io.page_reads,
        "random_reads": io.random_reads,
        "sequential_reads": io.sequential_reads,
        "cache_hits": io.cache_hits,
        "skipped_pages": io.skipped_pages,
    }


def _fault_payload(faults) -> list[dict]:
    """JSON-safe view of survived page faults."""
    return [{"disk": f.disk, "page_id": f.page_id, "kind": f.kind,
             "detail": f.detail} for f in faults]


#: Longest list echoed verbatim into a slow-query-log ``args`` field;
#: bigger ones (batch query lists, update vertex arrays) are summarized.
_QLOG_MAX_LIST = 8


def _qlog_args(params: dict) -> dict:
    """Compact JSON-safe view of request params for the slow-query log."""
    args = {}
    for key, value in params.items():
        if isinstance(value, list) and len(value) > _QLOG_MAX_LIST:
            args[key] = f"<{len(value)} items>"
        else:
            args[key] = value
    return args


def _engine_summary(ctx: "_RequestContext") -> dict:
    """Plan/method choice of a sampled request's engine span tree."""
    if ctx.engine is None or not ctx.engine.roots:
        return {}
    summary: dict = {}
    root = ctx.engine.roots[0]
    method = root.attrs.get("method")
    if method is not None:
        summary["method"] = method
    for span, _ in root.walk():
        if span.name == "plan" and span.attrs:
            summary["plan"] = dict(span.attrs)
            break
    return summary


class _RequestContext:
    """Per-request observability state threaded through execution.

    Created for *every* request (the admission-wait and queue-depth
    numbers feed the slow-query log unconditionally); the tracers only
    exist when the request is sampled, so the unsampled path allocates
    one small object and no spans.
    """

    __slots__ = ("trace_id", "parent_span", "sampled", "tracer",
                 "engine", "root", "admission_wait_ms", "queue_depth")

    def __init__(self, trace_id: str | None = None,
                 parent_span: str | None = None,
                 sampled: bool = False) -> None:
        self.trace_id = trace_id
        self.parent_span = parent_span
        self.sampled = sampled
        #: Event-loop-side tracer: request/decode/admission/engine/
        #: encode spans (never touched by executor threads).
        self.tracer = Tracer() if sampled else None
        #: Engine-side tracer the facade installs on the index for the
        #: duration of the call; its roots are grafted under the
        #: ``engine`` span only when the call completed (a timed-out
        #: straggler may still be writing into it).
        self.engine = Tracer() if sampled else None
        self.root: Span | None = None
        self.admission_wait_ms: float | None = None
        self.queue_depth: int | None = None


class FieldServer:
    """Newline-JSON field query server over one engine facade.

    Parameters
    ----------
    facade:
        The engine facade requests execute against (fields may be
        pre-opened on it; a private one is created otherwise).
    catalog:
        Name → source mapping the ``open`` verb may open (sources as
        accepted by :meth:`~repro.core.facade.EngineFacade.open_field`).
        Fields *not* in the catalog cannot be opened over the wire —
        clients never name arbitrary filesystem paths.
    admission:
        The per-tenant admission controller (a default-quota one is
        created otherwise).
    host, port:
        Bind address; port 0 (default) picks an ephemeral port,
        reported by :meth:`start`.
    executor_workers:
        Thread budget for concurrent engine calls across fields.
    tracer:
        Optional span recorder; every sampled request's span tree is
        mirrored onto it (installing one also forces every request to
        be sampled, the pre-sampling behaviour).
    enable_metrics:
        Enable the process metrics registry for the server's lifetime
        (restored to its previous state on :meth:`stop`).
    trace_sample_rate:
        Head-based sampling probability in ``[0, 1]`` for requests
        that do not carry their own ``trace_id`` (which always forces
        sampling).  0 (default) samples nothing.
    qlog:
        Optional :class:`~repro.obs.qlog.QueryLog`; requests crossing
        its thresholds are appended (sampled ones with their span
        tree).
    metrics_port:
        When not ``None``, also bind a plain-HTTP listener on this
        port (0 = ephemeral) answering ``GET /metrics`` with the
        Prometheus text exposition; the bound port lands in
        :attr:`metrics_address`.
    keep_sampled:
        Most recent sampled span trees retained in
        :attr:`sampled` (a bounded deque).
    max_requests:
        Stop the server after this many requests (demos and tests).
    drain_timeout_s:
        Longest :meth:`stop` waits for in-flight requests to finish.
    """

    def __init__(self, facade: EngineFacade | None = None,
                 catalog: dict | None = None,
                 admission: AdmissionController | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 executor_workers: int = 4,
                 tracer: Tracer | None = None,
                 enable_metrics: bool = False,
                 trace_sample_rate: float = 0.0,
                 qlog: QueryLog | None = None,
                 metrics_port: int | None = None,
                 keep_sampled: int = 64,
                 max_requests: int | None = None,
                 drain_timeout_s: float = 30.0) -> None:
        if executor_workers < 1:
            raise ValueError(
                f"executor_workers must be >= 1, got {executor_workers}")
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError(f"trace_sample_rate must be in [0, 1], "
                             f"got {trace_sample_rate}")
        if keep_sampled < 1:
            raise ValueError(
                f"keep_sampled must be >= 1, got {keep_sampled}")
        self.facade = facade if facade is not None else EngineFacade()
        self.catalog = dict(catalog) if catalog else {}
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self.host = host
        self.port = port
        self.executor_workers = executor_workers
        self.tracer = tracer
        self.enable_metrics = enable_metrics
        self.trace_sample_rate = float(trace_sample_rate)
        self.qlog = qlog
        self.metrics_port = metrics_port
        self.max_requests = max_requests
        self.drain_timeout_s = drain_timeout_s
        #: Rolling SLO window every request outcome feeds.
        self.rolling = RollingStats()
        #: Most recent sampled span trees (root ``request[op]`` spans).
        self.sampled: deque[Span] = deque(maxlen=keep_sampled)
        #: Requests sampled into a trace so far (any retention).
        self.sampled_total = 0
        #: ``(host, port)`` of the HTTP metrics listener once bound.
        self.metrics_address: tuple[str, int] | None = None

        self._metrics_server: asyncio.AbstractServer | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stragglers: set[asyncio.Future] = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._active = 0
        self._served = 0
        self._connections = 0
        self._metrics_were_enabled = False
        #: Outcome → count, independent of the metrics registry.
        self.counts: dict[str, int] = {}
        self._handlers = {
            "ping": self._op_ping,
            "fields": self._op_fields,
            "open": self._op_open,
            "close": self._op_close,
            "query": self._op_query,
            "aggregate": self._op_aggregate,
            "batch": self._op_batch,
            "update": self._op_update,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the (host, port) bound."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.enable_metrics:
            self._metrics_were_enabled = REGISTRY.enabled
            REGISTRY.enable()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers,
            thread_name_prefix="repro-serve")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=MAX_FRAME_BYTES + 2)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_connection, self.host, self.metrics_port)
            bound = self._metrics_server.sockets[0].getsockname()
            self.metrics_address = (bound[0], bound[1])
        return self.host, self.port

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight requests, close connections.

        With ``drain=True`` (default) every request already being
        processed finishes and its response is flushed before its
        connection closes — bounded by ``drain_timeout_s``.  Idempotent;
        concurrent callers all return once the server is down.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if drain and self._active:
            try:
                await asyncio.wait_for(self._idle.wait(),
                                       self.drain_timeout_s)
            except (asyncio.TimeoutError, TimeoutError):
                pass
        if self._stragglers:
            await asyncio.wait(list(self._stragglers),
                               timeout=self.drain_timeout_s)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.enable_metrics and not self._metrics_were_enabled:
            REGISTRY.disable()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` completes (from any task)."""
        await self._stopped.wait()

    @property
    def requests_served(self) -> int:
        """Requests answered so far (any outcome)."""
        return self._served

    @property
    def active_requests(self) -> int:
        """Requests currently being processed."""
        return self._active

    # -- connection handling ------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections += 1
        if REGISTRY.enabled:
            _CONNECTIONS.inc(1)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                # An oversized frame cannot be resynchronized reliably:
                # answer with the typed error and close the connection.
                writer.write(encode_error(
                    None, "bad-frame",
                    f"frame exceeds {MAX_FRAME_BYTES} bytes"))
                await writer.drain()
                return
            except (ConnectionResetError, BrokenPipeError):
                return
            if not line:
                return
            self._active += 1
            self._idle.clear()
            try:
                frame = await self._handle_line(line)
                # Count before the flush: a client that has our reply
                # in hand must already observe it in requests_served.
                self._served += 1
                writer.write(frame)
                await writer.drain()
            finally:
                self._active -= 1
                if self._active == 0:
                    self._idle.set()
            if self._stopping:
                return
            if (self.max_requests is not None
                    and self._served >= self.max_requests):
                asyncio.get_running_loop().create_task(self.stop())
                return

    async def _handle_line(self, line: bytes) -> bytes:
        t0 = time.perf_counter_ns()
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self._observe("<frame>", "<unknown>", exc.code, 0.0)
            return encode_error(None, exc.code, exc.message)
        decode_ns = time.perf_counter_ns() - t0
        if self._stopping:
            return encode_error(request.id, "shutting-down",
                                "server is draining; retry elsewhere")
        return await self._dispatch(request, decode_ns)

    def _begin(self, request: Request) -> _RequestContext:
        """Head-based sampling decision: the request's trace context.

        A client-supplied ``trace_id`` always samples; otherwise a coin
        flip at ``trace_sample_rate`` (or an installed server-wide
        tracer) does, under a freshly generated id.
        """
        if request.trace_id is not None:
            sampled = True
        elif self.trace_sample_rate > 0.0 \
                and random.random() < self.trace_sample_rate:
            sampled = True
        else:
            sampled = self.tracer is not None and self.tracer.enabled
        trace_id = request.trace_id
        if sampled and trace_id is None:
            trace_id = uuid.uuid4().hex
        return _RequestContext(trace_id=trace_id,
                               parent_span=request.parent_span,
                               sampled=sampled)

    async def _dispatch(self, request: Request,
                        decode_ns: int = 0) -> bytes:
        t0 = time.perf_counter()
        ctx = self._begin(request)
        if ctx.sampled:
            # A private tracer per request: concurrent requests on one
            # shared span stack would interleave into a garbage tree.
            attrs = {"op": request.op, "tenant": request.tenant,
                     "trace_id": ctx.trace_id}
            if ctx.parent_span is not None:
                attrs["parent_span"] = ctx.parent_span
            with ctx.tracer.span(f"request[{request.op}]", attrs) as root:
                ctx.root = root
                # The frame was decoded before this span opened: pull
                # the span's start back so a synthetic ``decode`` child
                # honestly brackets that work inside the request.
                root.t0_ns -= decode_ns
                decode_span = Span(ctx.tracer, "decode")
                decode_span.t0_ns = root.t0_ns
                decode_span.t1_ns = root.t0_ns + decode_ns
                root.children.append(decode_span)
                payload, code, message = await self._execute(request, ctx)
                with ctx.tracer.span("encode"):
                    frame = self._encode(request, payload, code,
                                         message, ctx)
                root.attrs["outcome"] = code
        else:
            payload, code, message = await self._execute(request, ctx)
            frame = self._encode(request, payload, code, message, ctx)
        latency_ms = (time.perf_counter() - t0) * 1000.0
        self._observe(request.op, request.tenant, code, latency_ms)
        self._finish(request, ctx, payload, code, latency_ms)
        return frame

    async def _execute(self, request: Request,
                       ctx: _RequestContext) -> tuple:
        """Run one decoded request; fold every failure into a typed
        ``(payload, code, message)`` triple (payload None on error)."""
        try:
            payload = await self._handlers[request.op](request, ctx)
            return payload, "ok", None
        except ProtocolError as exc:
            return None, exc.code, exc.message
        except UnknownFieldError as exc:
            return None, "unknown-field", str(exc)
        except FieldExistsError as exc:
            return None, "field-exists", str(exc)
        except FacadeError as exc:
            return None, "unsupported", str(exc)
        except (CorruptPageError, TransientIOError) as exc:
            return None, "storage-fault", f"{type(exc).__name__}: {exc}"
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            return None, "bad-request", f"{type(exc).__name__}: {exc}"
        except asyncio.CancelledError:
            raise
        except Exception as exc:   # pragma: no cover - defense in depth
            return None, "internal", f"{type(exc).__name__}: {exc}"

    def _encode(self, request: Request, payload: dict | None, code: str,
                message: str | None, ctx: _RequestContext) -> bytes:
        """Encode the response frame, echoing the trace id if sampled."""
        if code == "ok":
            if ctx.sampled and payload is not None:
                payload = {**payload, "trace_id": ctx.trace_id}
            return encode_response(request.id, payload)
        return encode_error(request.id, code, message)

    def _observe(self, op: str, tenant: str, code: str,
                 latency_ms: float) -> None:
        self.counts[code] = self.counts.get(code, 0) + 1
        self.rolling.observe(tenant, op, latency_ms, outcome=code)
        if REGISTRY.enabled:
            _REQUESTS.inc(1, op=op, tenant=tenant, outcome=code)
            _LATENCY_MS.observe(latency_ms, op=op)

    def _finish(self, request: Request, ctx: _RequestContext,
                payload: dict | None, code: str,
                latency_ms: float) -> None:
        """Retain the sampled span tree and feed the slow-query log."""
        if ctx.sampled and ctx.root is not None:
            self.sampled_total += 1
            self.sampled.append(ctx.root)
            if self.tracer is not None:
                self.tracer.roots.append(ctx.root)
            if REGISTRY.enabled:
                _SAMPLED.inc(1, op=request.op)
        if self.qlog is None:
            return
        io = payload.get("io") if payload else None
        page_reads = io.get("page_reads") if io else None
        if not self.qlog.should_log(latency_ms, page_reads):
            return
        entry = {
            "tenant": request.tenant,
            "op": request.op,
            "outcome": code,
            "latency_ms": round(latency_ms, 4),
            "args": _qlog_args(request.params),
        }
        if ctx.trace_id is not None:
            entry["trace_id"] = ctx.trace_id
        if ctx.admission_wait_ms is not None:
            entry["admission_wait_ms"] = round(ctx.admission_wait_ms, 4)
        if ctx.queue_depth is not None:
            entry["queue_depth"] = ctx.queue_depth
        if io is not None:
            entry["io"] = io
        plan = _engine_summary(ctx)
        if plan:
            entry.update(plan)
        if ctx.sampled and ctx.root is not None:
            entry["spans"] = span_to_tree(ctx.root)
        self.qlog.record(entry)

    # -- HTTP metrics listener ----------------------------------------------

    async def _on_metrics_connection(self, reader, writer) -> None:
        """Answer one plain-HTTP request (``GET /metrics``) and close.

        Deliberately minimal — enough for ``curl`` and a Prometheus
        scraper: request line + headers in, one response out,
        connection closed.
        """
        try:
            request_line = await asyncio.wait_for(reader.readline(), 10.0)
            while True:   # drain headers up to the blank line
                header = await asyncio.wait_for(reader.readline(), 10.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if (len(parts) >= 2 and parts[0] == "GET"
                    and parts[1].split("?")[0] in ("/metrics", "/")):
                self.rolling.publish(REGISTRY)
                self.admission.publish()
                body = render_prometheus(REGISTRY).encode("utf-8")
                head = (b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: text/plain; version=0.0.4; "
                        b"charset=utf-8\r\n"
                        b"Content-Length: " + str(len(body)).encode()
                        + b"\r\nConnection: close\r\n\r\n")
            else:
                body = b"only GET /metrics here\n"
                head = (b"HTTP/1.1 404 Not Found\r\n"
                        b"Content-Type: text/plain; charset=utf-8\r\n"
                        b"Content-Length: " + str(len(body)).encode()
                        + b"\r\nConnection: close\r\n\r\n")
            writer.write(head + body)
            await writer.drain()
        except (asyncio.TimeoutError, TimeoutError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- engine execution ---------------------------------------------------

    async def _in_engine(self, request: Request, fn,
                         ctx: _RequestContext | None = None):
        """Admit, then run ``fn`` on the executor under the deadline.

        With a sampled ``ctx`` this also lands ``admission`` (queue
        depth at entry, wait time) and ``engine`` spans on the request
        tracer, grafting the engine's own span tree — recorded by the
        executor thread onto ``ctx.engine`` — under the latter once
        the call has actually completed.
        """
        if ctx is None:
            ctx = _RequestContext()
        ctx.queue_depth = self.admission.state(request.tenant).pending
        adm_span = (ctx.tracer.span("admission",
                                    {"queue_depth": ctx.queue_depth})
                    if ctx.sampled else None)
        t_adm = time.perf_counter()
        try:
            if adm_span is not None:
                with adm_span:
                    st = await self.admission.acquire(request.tenant)
            else:
                st = await self.admission.acquire(request.tenant)
        finally:
            ctx.admission_wait_ms = (time.perf_counter() - t_adm) * 1000.0
            if adm_span is not None:
                adm_span.attrs["wait_ms"] = round(ctx.admission_wait_ms, 4)
            if REGISTRY.enabled:
                _ADMISSION_WAIT_MS.observe(ctx.admission_wait_ms,
                                           tenant=request.tenant)
        try:
            timeout = st.quota.timeout_s
            override = request.params.get("timeout_s")
            if override is not None:
                if (not isinstance(override, (int, float))
                        or isinstance(override, bool) or override <= 0):
                    raise ProtocolError(
                        "bad-request",
                        "'timeout_s' must be a positive number")
                timeout = (min(timeout, float(override))
                           if timeout is not None else float(override))
            cancelled: list[bool] = []

            def run():
                # Queued work the deadline already killed never starts.
                if cancelled:
                    raise ProtocolError("timeout",
                                        "cancelled before execution")
                return fn()

            loop = asyncio.get_running_loop()
            eng_span = (ctx.tracer.span("engine") if ctx.sampled
                        else None)
            if eng_span is not None:
                eng_span.__enter__()
            try:
                future = loop.run_in_executor(self._executor, run)
                if timeout is None:
                    result = await future
                else:
                    done, _ = await asyncio.wait({future},
                                                 timeout=timeout)
                    if not done:
                        cancelled.append(True)
                        self.admission.note_timeout(request.tenant)
                        self._stragglers.add(future)
                        future.add_done_callback(self._reap_straggler)
                        raise ProtocolError(
                            "timeout",
                            f"request exceeded its {timeout:g}s "
                            f"execution deadline")
                    result = future.result()
            finally:
                if eng_span is not None:
                    eng_span.__exit__(None, None, None)
            if eng_span is not None and ctx.engine is not None:
                # Graft only now that the call has completed: a
                # timed-out straggler may still be writing spans into
                # ctx.engine from its executor thread.
                eng_span.children.extend(ctx.engine.roots)
            return result
        finally:
            self.admission.release(request.tenant)

    def _reap_straggler(self, future: asyncio.Future) -> None:
        self._stragglers.discard(future)
        if not future.cancelled():
            future.exception()   # retrieved: no "never awaited" warning

    # -- verbs --------------------------------------------------------------

    async def _op_ping(self, request: Request,
                       ctx: _RequestContext) -> dict:
        return {"pong": True}

    async def _op_fields(self, request: Request,
                         ctx: _RequestContext) -> dict:
        open_fields = {name: self.facade.describe(name)
                       for name in self.facade.field_names()}
        return {"fields": open_fields,
                "catalog": sorted(self.catalog)}

    async def _op_open(self, request: Request,
                       ctx: _RequestContext) -> dict:
        name = need(request.params, "field", str, "a string")
        if name in self.facade.field_names():
            return {"field": name, "opened": False,
                    "info": self.facade.describe(name)}
        source = self.catalog.get(name)
        if source is None:
            raise ProtocolError(
                "unknown-field",
                f"field {name!r} is not in this server's catalog "
                f"(catalog: {sorted(self.catalog)})")

        def fn():
            try:
                return self.facade.open_field(name, source)
            except FieldExistsError:
                # Lost a race with a concurrent open: idempotent.
                return self.facade.describe(name)

        info = await self._in_engine(request, fn, ctx)
        return {"field": name, "opened": True, "info": info}

    async def _op_close(self, request: Request,
                        ctx: _RequestContext) -> dict:
        name = need(request.params, "field", str, "a string")

        def fn():
            self.facade.close_field(name)
            return {"field": name, "closed": True}

        return await self._in_engine(request, fn, ctx)

    async def _op_query(self, request: Request,
                        ctx: _RequestContext) -> dict:
        params = request.params
        name = need(params, "field", str, "a string")
        lo = need_number(params, "lo")
        hi = need_number(params, "hi")
        if lo > hi:
            raise ProtocolError("bad-request",
                                f"empty query interval: lo={lo} > hi={hi}")
        estimate = optional_choice(params, "estimate",
                                   _QUERY_ESTIMATES, "area")
        on_fault = optional_choice(params, "on_fault",
                                   _FAULT_MODES, "raise")
        max_regions = params.get("max_regions", 100)
        if (not isinstance(max_regions, int)
                or isinstance(max_regions, bool) or max_regions < 0):
            raise ProtocolError("bad-request",
                                "'max_regions' must be an integer >= 0")

        def fn():
            return self.facade.query(name, lo, hi, estimate=estimate,
                                     on_fault=on_fault,
                                     tenant=request.tenant,
                                     tracer=ctx.engine)

        result = await self._in_engine(request, fn, ctx)
        payload = {
            "field": name,
            "candidates": result.candidate_count,
            "area": result.area,
            "io": _io_payload(result.io),
            "degraded": result.degraded,
        }
        if result.faults:
            payload["faults"] = _fault_payload(result.faults)
        if estimate == "regions" and result.regions is not None:
            payload["regions"] = [
                {"cell_id": int(region.cell_id),
                 "area": float(region.area),
                 "polygon": [[float(x), float(y)]
                             for x, y in region.polygon]}
                for region in result.regions[:max_regions]
            ]
            payload["regions_total"] = len(result.regions)
        return payload

    async def _op_aggregate(self, request: Request,
                            ctx: _RequestContext) -> dict:
        params = request.params
        name = need(params, "field", str, "a string")
        kind = optional_choice(params, "kind", AGGREGATE_KINDS, "count")
        lo = need_number(params, "lo")
        hi = need_number(params, "hi")
        if lo > hi:
            raise ProtocolError(
                "bad-request",
                f"empty aggregate interval: lo={lo} > hi={hi}")
        mode = optional_choice(params, "mode", AGGREGATE_MODES, "hybrid")
        tolerance = params.get("tolerance")
        if tolerance is not None:
            tolerance = need_number(params, "tolerance")
            if tolerance < 0:
                raise ProtocolError("bad-request",
                                    "'tolerance' must be >= 0")

        def fn():
            return self.facade.aggregate(name, kind, lo, hi,
                                         tolerance=tolerance, mode=mode,
                                         tenant=request.tenant,
                                         tracer=ctx.engine)

        result = await self._in_engine(request, fn, ctx)
        return {"field": name, **result.to_dict()}

    async def _op_batch(self, request: Request,
                        ctx: _RequestContext) -> dict:
        params = request.params
        name = need(params, "field", str, "a string")
        raw = need(params, "queries", list, "a list")
        if not raw:
            raise ProtocolError("bad-request",
                                "'queries' must not be empty")
        if len(raw) > MAX_BATCH_QUERIES:
            raise ProtocolError(
                "bad-request",
                f"batch of {len(raw)} queries exceeds the "
                f"{MAX_BATCH_QUERIES}-query limit")
        pairs = []
        for i, entry in enumerate(raw):
            if isinstance(entry, (int, float)) \
                    and not isinstance(entry, bool):
                pairs.append((float(entry), float(entry)))
                continue
            if (not isinstance(entry, list) or len(entry) != 2
                    or not all(isinstance(v, (int, float))
                               and not isinstance(v, bool)
                               for v in entry)):
                raise ProtocolError(
                    "bad-request",
                    f"queries[{i}] must be a [lo, hi] pair of numbers "
                    f"or a single exact value")
            lo, hi = float(entry[0]), float(entry[1])
            if lo > hi:
                raise ProtocolError(
                    "bad-request",
                    f"queries[{i}]: empty interval lo={lo} > hi={hi}")
            pairs.append((lo, hi))
        estimate = optional_choice(params, "estimate",
                                   _BATCH_ESTIMATES, "area")
        on_fault = optional_choice(params, "on_fault",
                                   _FAULT_MODES, "raise")

        def fn():
            return self.facade.batch(name, pairs, estimate=estimate,
                                     on_fault=on_fault,
                                     tenant=request.tenant,
                                     tracer=ctx.engine)

        batch = await self._in_engine(request, fn, ctx)
        return {
            "field": name,
            "results": [
                {"candidates": r.candidate_count, "area": r.area,
                 "page_reads": r.io.page_reads}
                for r in batch.results
            ],
            "groups": batch.groups,
            "io": _io_payload(batch.io),
            "pool": {"hits": batch.pool.hits,
                     "misses": batch.pool.misses,
                     "evictions": batch.pool.evictions},
        }

    async def _op_update(self, request: Request,
                         ctx: _RequestContext) -> dict:
        params = request.params
        name = need(params, "field", str, "a string")
        vertex_ids = need(params, "vertex_ids", list, "a list")
        values = need(params, "values", list, "a list")
        if len(vertex_ids) != len(values):
            raise ProtocolError(
                "bad-request",
                f"{len(vertex_ids)} vertex_ids vs {len(values)} values")
        if not vertex_ids:
            raise ProtocolError("bad-request",
                                "'vertex_ids' must not be empty")
        if len(vertex_ids) > MAX_UPDATE_VERTICES:
            raise ProtocolError(
                "bad-request",
                f"update of {len(vertex_ids)} vertices exceeds the "
                f"{MAX_UPDATE_VERTICES}-vertex limit")
        for i, vid in enumerate(vertex_ids):
            if not isinstance(vid, int) or isinstance(vid, bool):
                raise ProtocolError(
                    "bad-request",
                    f"vertex_ids[{i}] must be an integer")
        for i, value in enumerate(values):
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ProtocolError(
                    "bad-request", f"values[{i}] must be a number")

        def fn():
            return self.facade.update(name, vertex_ids, values,
                                      tenant=request.tenant,
                                      tracer=ctx.engine)

        rewritten = await self._in_engine(request, fn, ctx)
        return {"field": name, "cells_rewritten": rewritten}

    async def _op_stats(self, request: Request,
                        ctx: _RequestContext) -> dict:
        name = request.params.get("field")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("bad-request",
                                "'field' must be a string")
        payload = self.facade.stats(name)
        payload["admission"] = self.admission.snapshot()
        payload["server"] = {
            "requests": self._served,
            "active": self._active,
            "connections": self._connections,
            "open_connections": len(self._conn_tasks),
            "outcomes": dict(sorted(self.counts.items())),
            "stopping": self._stopping,
            "sampled": self.sampled_total,
            "trace_sample_rate": self.trace_sample_rate,
            "qlog_entries": (self.qlog.entries
                             if self.qlog is not None else 0),
        }
        return payload

    async def _op_metrics(self, request: Request,
                          ctx: _RequestContext) -> dict:
        fmt = optional_choice(request.params, "format",
                              {"json", "text", "prometheus"}, "json")
        if fmt == "prometheus":
            self.rolling.publish(REGISTRY)
            self.admission.publish()
            return {"format": "prometheus",
                    "text": render_prometheus(REGISTRY)}
        if fmt == "text":
            self.admission.publish()
            return {"format": "text", "text": REGISTRY.render_text()}
        self.admission.publish()
        return {"format": "json", "slo": self.rolling.snapshot(),
                **REGISTRY.collect()}


class ServerThread:
    """A :class:`FieldServer` on a private event loop in a daemon thread.

    The shape every synchronous embedder uses (the bench load
    generator, the pytest fixture, the CLI's ``--max-requests`` demo
    mode)::

        harness = ServerThread(FieldServer(facade=facade))
        host, port = harness.start()
        ...
        harness.stop()
    """

    def __init__(self, server: FieldServer) -> None:
        self.server = server
        self.loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self, timeout_s: float = 30.0) -> tuple[str, int]:
        """Start the loop thread and the server; returns (host, port)."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            started.set()
            self.loop.run_forever()
            # Drain callbacks scheduled during the final stop.
            self.loop.run_until_complete(asyncio.sleep(0))
            self.loop.close()

        self._thread = threading.Thread(target=run, name="repro-serve-loop",
                                        daemon=True)
        self._thread.start()
        started.wait(timeout_s)
        future = asyncio.run_coroutine_threadsafe(self.server.start(),
                                                  self.loop)
        return future.result(timeout_s)

    def submit(self, coro, timeout_s: float = 30.0):
        """Run a coroutine on the server's loop; returns its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout_s)

    def stop(self, timeout_s: float = 30.0) -> None:
        """Gracefully stop the server and tear the loop thread down."""
        if self.loop is None:
            return
        try:
            self.submit(self.server.stop(), timeout_s)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            if self._thread is not None:
                self._thread.join(timeout_s)
            self.loop = None
            self._thread = None

"""Blocking client for the field query service.

:class:`FieldClient` is a thin synchronous wrapper over one TCP
connection: it writes request frames, reads exactly one response frame
per request, and raises :class:`ServerError` for typed error envelopes.
The bench load generator, the test harness and example sessions in the
README all talk through it; it has no dependency on the server side
beyond the frame format, so it doubles as a reference client for the
protocol spec in DESIGN.md §10.

Thread-safe: a lock serializes request/response pairs, so one client
may be shared — though the intended load-generator shape is one client
per simulated user (each holding its own connection).

Trace propagation: pass ``trace_id="..."`` to any verb (or
:meth:`FieldClient.request`) to force that request to be sampled
server-side under that id, or construct the client with ``trace=True``
to stamp a fresh ``uuid4`` hex id on *every* request.  Sampled
responses echo the id back (``answer["trace_id"]``), tying the client
call to the server's span tree and slow-query-log entries.
"""

from __future__ import annotations

import json
import socket
import threading
import uuid

from .protocol import MAX_FRAME_BYTES


class ClientError(Exception):
    """Transport-level failure (connection closed, unparseable frame)."""


class ServerError(ClientError):
    """A typed error envelope from the server."""

    def __init__(self, code: str, message: str,
                 request_id=None) -> None:
        self.code = code
        self.message = message
        self.request_id = request_id
        super().__init__(f"{code}: {message}")


class FieldClient:
    """One blocking connection to a :class:`~repro.serve.server.FieldServer`.

    Usage::

        with FieldClient(host, port, tenant="alice") as client:
            client.open("terrain")
            answer = client.query("terrain", 300.0, 320.0)
            print(answer["area"], answer["candidates"])
    """

    def __init__(self, host: str, port: int, tenant: str = "default",
                 timeout_s: float | None = 30.0,
                 trace: bool = False) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        #: Stamp a fresh ``trace_id`` on every request (forces
        #: server-side sampling; per-call ``trace_id=`` still wins).
        self.trace = trace
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._file = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------

    def request(self, op: str, **params) -> dict:
        """Send one request, wait for its response, return the payload.

        Raises :class:`ServerError` on a typed error envelope and
        :class:`ClientError` on transport failures.
        """
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            obj = {"id": request_id, "op": op, "tenant": self.tenant}
            if self.trace and "trace_id" not in params:
                obj["trace_id"] = uuid.uuid4().hex
            obj.update(params)
            frame = (json.dumps(obj, separators=(",", ":"),
                                allow_nan=False) + "\n").encode("utf-8")
            try:
                self._sock.sendall(frame)
                line = self._file.readline(MAX_FRAME_BYTES + 2)
            except OSError as exc:
                raise ClientError(f"transport failure: {exc}") from exc
            if not line:
                raise ClientError("connection closed by server")
            try:
                response = json.loads(line)
            except (json.JSONDecodeError, ValueError) as exc:
                raise ClientError(
                    f"unparseable response frame: {exc}") from exc
        if not isinstance(response, dict):
            raise ClientError(
                f"response is not an object: {response!r}")
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise ServerError(error.get("code", "internal"),
                          error.get("message", "no message"),
                          request_id=response.get("id"))

    def send_raw(self, data: bytes) -> bytes:
        """Write raw bytes, read one response line (fuzz/protocol tests)."""
        with self._lock:
            try:
                self._sock.sendall(data)
                line = self._file.readline(MAX_FRAME_BYTES + 2)
            except OSError as exc:
                raise ClientError(f"transport failure: {exc}") from exc
        if not line:
            raise ClientError("connection closed by server")
        return line

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FieldClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- convenience verbs --------------------------------------------------

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.request("ping").get("pong"))

    def fields(self) -> dict:
        """Open fields and the server's catalog."""
        return self.request("fields")

    def open(self, field: str, **params) -> dict:
        """Open a catalogued field (idempotent per name)."""
        return self.request("open", field=field, **params)

    def close_field(self, field: str) -> dict:
        """Close an open field."""
        return self.request("close", field=field)

    def query(self, field: str, lo: float, hi: float, **params) -> dict:
        """One value query: where is ``lo <= F(x) <= hi``?"""
        return self.request("query", field=field, lo=lo, hi=hi, **params)

    def aggregate(self, field: str, kind: str, lo: float, hi: float,
                  **params) -> dict:
        """Approximate COUNT/SUM/AVG/area with a guaranteed error bound.

        ``tolerance=`` and ``mode=`` pick the accuracy-vs-speed point;
        the response carries ``value``/``bound`` (``bound`` is ``None``
        for an unbounded AVG) plus per-subfield routing counts.
        """
        return self.request("aggregate", field=field, kind=kind,
                            lo=lo, hi=hi, **params)

    def batch(self, field: str, queries, **params) -> dict:
        """Many value queries through the batch/parallel engine."""
        return self.request("batch", field=field,
                            queries=[list(q) for q in queries], **params)

    def update(self, field: str, vertex_ids, values) -> dict:
        """Apply vertex-value updates to the field."""
        return self.request("update", field=field,
                            vertex_ids=list(vertex_ids),
                            values=list(values))

    def stats(self, field: str | None = None) -> dict:
        """Per-field, per-tenant and server-level statistics."""
        if field is None:
            return self.request("stats")
        return self.request("stats", field=field)

    def metrics(self, format: str = "json") -> dict:
        """Metrics-registry dump."""
        return self.request("metrics", format=format)

"""Field query service: protocol, admission control, server, client.

The serving layer of the reproduction (DESIGN.md §10): an asyncio TCP
server speaking a newline-delimited JSON protocol, multiplexing
concurrent multi-tenant clients onto the engines of :mod:`repro.core`
through a per-tenant admission controller and one shared buffer pool
with per-tenant accounting.
"""

from .admission import AdmissionController, TenantQuota, TenantState, TokenBucket
from .client import ClientError, FieldClient, ServerError
from .protocol import (ERROR_CODES, MAX_BATCH_QUERIES, MAX_FRAME_BYTES,
                       MAX_TRACE_ID_CHARS, MAX_UPDATE_VERTICES, OPS,
                       ProtocolError, Request, decode_request,
                       encode_error, encode_response)
from .server import FieldServer, ServerThread
from .top import render_frame, run_top

__all__ = [
    "AdmissionController",
    "ClientError",
    "ERROR_CODES",
    "FieldClient",
    "FieldServer",
    "MAX_BATCH_QUERIES",
    "MAX_FRAME_BYTES",
    "MAX_TRACE_ID_CHARS",
    "MAX_UPDATE_VERTICES",
    "OPS",
    "ProtocolError",
    "Request",
    "ServerError",
    "ServerThread",
    "TenantQuota",
    "TenantState",
    "TokenBucket",
    "decode_request",
    "encode_error",
    "encode_response",
    "render_frame",
    "run_top",
]

"""n-dimensional axis-aligned rectangles (MBRs) for the R*-tree.

The R*-tree stores these for any dimensionality: 1-D boxes are value
intervals (the paper's use), 2-D boxes bound cells for conventional point
queries.  Coordinates are plain tuples — the tree manipulates millions of
small boxes and tuple arithmetic is the fastest pure-Python option.
"""

from __future__ import annotations

from dataclasses import dataclass
import math


@dataclass(frozen=True, slots=True)
class Rect:
    """Axis-aligned box given by per-dimension lows and highs."""

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError(
                f"dimension mismatch: {len(self.lows)} lows vs "
                f"{len(self.highs)} highs")
        for lo, hi in zip(self.lows, self.highs):
            if lo > hi:
                raise ValueError(f"empty box: low {lo} > high {hi}")

    @classmethod
    def from_interval(cls, lo: float, hi: float) -> "Rect":
        """1-D box covering ``[lo, hi]``."""
        return cls((lo,), (hi,))

    @classmethod
    def from_point(cls, coords: tuple[float, ...]) -> "Rect":
        """Degenerate box at a single point."""
        coords = tuple(coords)
        return cls(coords, coords)

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    def area(self) -> float:
        """Hyper-volume (product of extents)."""
        return math.prod(hi - lo for lo, hi in zip(self.lows, self.highs))

    def margin(self) -> float:
        """Sum of extents (the R* split criterion's perimeter proxy)."""
        return sum(hi - lo for lo, hi in zip(self.lows, self.highs))

    def center(self) -> tuple[float, ...]:
        """Geometric center."""
        return tuple((lo + hi) / 2.0
                     for lo, hi in zip(self.lows, self.highs))

    def union(self, other: "Rect") -> "Rect":
        """Smallest box covering both operands."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the closed boxes overlap in every dimension."""
        for lo, hi, olo, ohi in zip(self.lows, self.highs,
                                    other.lows, other.highs):
            if lo > ohi or olo > hi:
                return False
        return True

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies fully inside this box."""
        for lo, hi, olo, ohi in zip(self.lows, self.highs,
                                    other.lows, other.highs):
            if olo < lo or ohi > hi:
                return False
        return True

    def contains_point(self, coords: tuple[float, ...]) -> bool:
        """True when the point lies inside the closed box."""
        for lo, hi, c in zip(self.lows, self.highs, coords):
            if c < lo or c > hi:
                return False
        return True

    def intersection_area(self, other: "Rect") -> float:
        """Hyper-volume of the overlap region (0 when disjoint)."""
        product = 1.0
        for lo, hi, olo, ohi in zip(self.lows, self.highs,
                                    other.lows, other.highs):
            extent = min(hi, ohi) - max(lo, olo)
            if extent <= 0.0:
                return 0.0
            product *= extent
        return product

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other``."""
        return self.union(other).area() - self.area()

"""Small 2-D polygon kernel for the estimation step.

The estimation step (paper §3.2, algorithm ``Estimate``) converts candidate
cells into exact answer regions by clipping each cell against the half-planes
``F(x) >= w_lo`` and ``F(x) <= w_hi``.  Under linear interpolation those
half-planes are straight lines inside a triangle, so Sutherland–Hodgman
clipping is exact.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

Point2 = tuple[float, float]

#: Tolerance for degenerate polygon areas.
AREA_EPS = 1e-12


def polygon_area(points: Sequence[Point2]) -> float:
    """Unsigned area via the shoelace formula (0 for < 3 vertices)."""
    n = len(points)
    if n < 3:
        return 0.0
    twice = 0.0
    for i in range(n):
        x0, y0 = points[i]
        x1, y1 = points[(i + 1) % n]
        twice += x0 * y1 - x1 * y0
    return abs(twice) / 2.0


def polygon_centroid(points: Sequence[Point2]) -> Point2:
    """Area-weighted centroid (vertex mean for degenerate polygons)."""
    n = len(points)
    if n == 0:
        raise ValueError("centroid of empty polygon")
    twice = 0.0
    cx = 0.0
    cy = 0.0
    for i in range(n):
        x0, y0 = points[i]
        x1, y1 = points[(i + 1) % n]
        cross = x0 * y1 - x1 * y0
        twice += cross
        cx += (x0 + x1) * cross
        cy += (y0 + y1) * cross
    if abs(twice) < AREA_EPS:
        xs = sum(p[0] for p in points) / n
        ys = sum(p[1] for p in points) / n
        return (xs, ys)
    return (cx / (3.0 * twice), cy / (3.0 * twice))


def clip_halfplane(points: Sequence[Point2],
                   inside: Callable[[Point2], float]) -> list[Point2]:
    """Clip a convex polygon against ``inside(p) >= 0``.

    ``inside`` must be an affine function of the point (linear interpolation
    guarantees this), so edge crossings are found by exact linear blending.
    """
    result: list[Point2] = []
    n = len(points)
    if n == 0:
        return result
    values = [inside(p) for p in points]
    for i in range(n):
        j = (i + 1) % n
        p, q = points[i], points[j]
        pv, qv = values[i], values[j]
        if pv >= 0.0:
            result.append(p)
            if qv < 0.0:
                result.append(_crossing(p, q, pv, qv))
        elif qv >= 0.0:
            result.append(_crossing(p, q, pv, qv))
    return result


def clip_to_value_band(points: Sequence[Point2],
                       value_at: Callable[[Point2], float],
                       lo: float, hi: float) -> list[Point2]:
    """Portion of a convex cell where ``lo <= value_at(p) <= hi``.

    ``value_at`` must be affine over the polygon (true for linear
    interpolation on a triangle).  Returns the clipped polygon's vertices,
    possibly empty.
    """
    band = clip_halfplane(points, lambda p: value_at(p) - lo)
    if not band:
        return band
    return clip_halfplane(band, lambda p: hi - value_at(p))


def _crossing(p: Point2, q: Point2, pv: float, qv: float) -> Point2:
    """Point where the affine function crosses zero on segment pq."""
    t = pv / (pv - qv)
    return (p[0] + t * (q[0] - p[0]), p[1] + t * (q[1] - p[1]))

"""Geometric primitives: value intervals, n-D MBRs, polygon clipping."""

from .interval import Interval
from .polygon import (
    clip_halfplane,
    clip_to_value_band,
    polygon_area,
    polygon_centroid,
)
from .rect import Rect

__all__ = [
    "Interval",
    "Rect",
    "clip_halfplane",
    "clip_to_value_band",
    "polygon_area",
    "polygon_centroid",
]

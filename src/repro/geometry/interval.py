"""1-D value intervals — the unit the paper indexes.

An :class:`Interval` is the one-dimensional MBR of all values (explicit and
interpolated) inside a cell or subfield.  The paper's *interval size*
convention (§3.1.2) is ``max − min + 1`` so that a constant cell still has
size 1; the additive unit is configurable because the experiments normalize
value space to ``[0, 1]`` where a unit of 1 would swamp the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Interval:
    """Closed interval ``[lo, hi]`` on the value domain."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    @classmethod
    def of(cls, *values: float) -> "Interval":
        """Smallest interval covering every given value."""
        if not values:
            raise ValueError("Interval.of() needs at least one value")
        return cls(min(values), max(values))

    @property
    def length(self) -> float:
        """Geometric extent ``hi − lo``."""
        return self.hi - self.lo

    def size(self, unit: float = 1.0) -> float:
        """Paper's interval size ``max − min + unit`` (§3.1.2)."""
        return self.hi - self.lo + unit

    def contains(self, value: float) -> bool:
        """True when ``lo <= value <= hi``."""
        return self.lo <= value <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """True when the closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """Common sub-interval, or None when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def union(self, other: "Interval") -> "Interval":
        """Smallest interval covering both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expanded(self, value: float) -> "Interval":
        """Smallest interval covering self and ``value``."""
        if value < self.lo:
            return Interval(value, self.hi)
        if value > self.hi:
            return Interval(self.lo, value)
        return self

    def as_tuple(self) -> tuple[float, float]:
        """``(lo, hi)`` pair, for serialization."""
        return (self.lo, self.hi)

"""Hilbert curve in 2-D (fast path) and arbitrary dimension.

The paper linearizes cells by the Hilbert value of their center (§3.1.2),
citing the curve's superior clustering.  Two implementations are provided:

* :class:`HilbertCurve2D` — the classic quadrant-rotation algorithm, with a
  fully vectorized numpy variant used to linearize large cell sets.
* :class:`HilbertCurveND` — Skilling's transpose algorithm (AIP 2004),
  correct for any dimension; used for 3-D fields and as a cross-check of
  the 2-D fast path.
"""

from __future__ import annotations

import numpy as np

from .base import SpaceFillingCurve


class HilbertCurve2D(SpaceFillingCurve):
    """Order-``order`` Hilbert curve on a 2-D grid."""

    name = "hilbert"

    def __init__(self, order: int) -> None:
        super().__init__(order, dim=2)

    def index(self, coords: tuple[int, ...]) -> int:
        self._check_coords(coords)
        x, y = coords
        rx = ry = 0
        d = 0
        s = self.side >> 1
        while s > 0:
            rx = 1 if (x & s) > 0 else 0
            ry = 1 if (y & s) > 0 else 0
            d += s * s * ((3 * rx) ^ ry)
            x, y = self._rotate(s, x, y, rx, ry)
            s >>= 1
        return d

    def coords(self, index: int) -> tuple[int, ...]:
        self._check_index(index)
        x = y = 0
        t = index
        s = 1
        while s < self.side:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            x, y = self._rotate(s, x, y, rx, ry)
            x += s * rx
            y += s * ry
            t //= 4
            s <<= 1
        return (x, y)

    def indices(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized curve positions for an ``(n, 2)`` coordinate array."""
        coords = np.asarray(coords)
        x = coords[:, 0].astype(np.int64).copy()
        y = coords[:, 1].astype(np.int64).copy()
        if len(x) and (x.min() < 0 or y.min() < 0
                       or x.max() >= self.side or y.max() >= self.side):
            raise ValueError(f"coordinates outside grid [0, {self.side})")
        d = np.zeros(len(x), dtype=np.int64)
        s = self.side >> 1
        while s > 0:
            rx = ((x & s) > 0).astype(np.int64)
            ry = ((y & s) > 0).astype(np.int64)
            d += s * s * ((3 * rx) ^ ry)
            # Rotate the quadrant, mirroring the scalar implementation.
            flip = (ry == 0) & (rx == 1)
            x = np.where(flip, s - 1 - x, x)
            y = np.where(flip, s - 1 - y, y)
            swap = ry == 0
            x, y = np.where(swap, y, x), np.where(swap, x, y)
            s >>= 1
        return d

    def keys(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized curve positions for separate x/y coordinate arrays.

        Convenience wrapper over :meth:`indices` for callers that already
        hold columnar coordinates (the bulk-load path), avoiding an
        intermediate ``(n, 2)`` stack at every call site.
        """
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        if xs.shape != ys.shape:
            raise ValueError("xs and ys must have the same shape")
        return self.indices(np.column_stack([xs, ys]))

    @staticmethod
    def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        return x, y


class HilbertCurveND(SpaceFillingCurve):
    """Skilling's transpose-based Hilbert curve for any dimension."""

    name = "hilbert-nd"

    def index(self, coords: tuple[int, ...]) -> int:
        self._check_coords(coords)
        x = self._axes_to_transpose(list(coords))
        return self._pack(x)

    def coords(self, index: int) -> tuple[int, ...]:
        self._check_index(index)
        x = self._unpack(index)
        return tuple(self._transpose_to_axes(x))

    def _axes_to_transpose(self, x: list[int]) -> list[int]:
        n = self.dim
        m = 1 << (self.order - 1)
        q = m
        while q > 1:
            p = q - 1
            for i in range(n):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q >>= 1
        for i in range(1, n):
            x[i] ^= x[i - 1]
        t = 0
        q = m
        while q > 1:
            if x[n - 1] & q:
                t ^= q - 1
            q >>= 1
        for i in range(n):
            x[i] ^= t
        return x

    def _transpose_to_axes(self, x: list[int]) -> list[int]:
        n = self.dim
        big = 2 << (self.order - 1)
        t = x[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            x[i] ^= x[i - 1]
        x[0] ^= t
        q = 2
        while q != big:
            p = q - 1
            for i in range(n - 1, -1, -1):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q <<= 1
        return x

    def _pack(self, x: list[int]) -> int:
        """Interleave transposed words into a single curve index."""
        index = 0
        for bit in range(self.order - 1, -1, -1):
            for axis in range(self.dim):
                index = (index << 1) | ((x[axis] >> bit) & 1)
        return index

    def _unpack(self, index: int) -> list[int]:
        """Split a curve index back into transposed per-axis words."""
        x = [0] * self.dim
        pos = self.order * self.dim - 1
        for bit in range(self.order - 1, -1, -1):
            for axis in range(self.dim):
                x[axis] |= ((index >> pos) & 1) << bit
                pos -= 1
        return x

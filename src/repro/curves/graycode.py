"""Gray-code curve (Faloutsos 1989), third curve of the paper's trio.

The curve visits grid points in the rank order of the Gray code of their
bit-interleaved coordinates: consecutive curve positions differ in exactly
one bit of the interleaved word, i.e. they are neighbors along one axis at
some resolution.
"""

from __future__ import annotations

import numpy as np

from .base import SpaceFillingCurve
from .zorder import ZOrderCurve


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Rank of a binary-reflected Gray code."""
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


class GrayCodeCurve(SpaceFillingCurve):
    """Orders points by the Gray-code rank of their Morton code."""

    name = "gray"

    def __init__(self, order: int, dim: int = 2) -> None:
        super().__init__(order, dim)
        self._morton = ZOrderCurve(order, dim)

    def index(self, coords: tuple[int, ...]) -> int:
        self._check_coords(coords)
        return gray_decode(self._morton.index(coords))

    def coords(self, index: int) -> tuple[int, ...]:
        self._check_index(index)
        return self._morton.coords(gray_encode(index))

    def indices(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized Gray-code ranks for an ``(n, dim)`` array."""
        morton = self._morton.indices(coords)
        # Vectorized Gray decode: prefix XOR over bit shifts.
        value = morton.copy()
        shift = 1
        bits = self.order * self.dim
        while shift < bits:
            value ^= value >> shift
            shift <<= 1
        return value

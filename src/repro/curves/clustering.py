"""Clustering quality metrics for space-filling curves.

The paper justifies the Hilbert curve by its clustering (refs [7, 13]): a
good curve maps a compact spatial region onto few contiguous index runs.
``count_runs`` measures exactly that, and ``average_clusters`` reproduces
the classic random-sub-square experiment used to compare curves.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .base import SpaceFillingCurve


def count_runs(indices: Iterable[int]) -> int:
    """Number of maximal consecutive runs in a set of curve indices."""
    ordered = np.unique(np.fromiter(indices, dtype=np.int64))
    if ordered.size == 0:
        return 0
    return int(1 + np.count_nonzero(np.diff(ordered) != 1))


def region_runs(curve: SpaceFillingCurve, x0: int, y0: int,
                width: int, height: int) -> int:
    """Runs covering an axis-aligned sub-rectangle of a 2-D grid."""
    if curve.dim != 2:
        raise ValueError("region_runs is defined for 2-D curves")
    xs, ys = np.meshgrid(np.arange(x0, x0 + width),
                         np.arange(y0, y0 + height), indexing="ij")
    coords = np.column_stack([xs.ravel(), ys.ravel()])
    return count_runs(curve.indices(coords))


def average_clusters(curve: SpaceFillingCurve, square_side: int,
                     samples: int = 50, seed: int = 0) -> float:
    """Mean run count over random ``square_side``-sized sub-squares.

    Lower is better; Hilbert should beat Z-order and Gray code, matching
    the comparison the paper cites when choosing Hilbert.
    """
    if square_side > curve.side:
        raise ValueError(
            f"square side {square_side} exceeds grid side {curve.side}")
    rng = np.random.default_rng(seed)
    limit = curve.side - square_side + 1
    total = 0
    for _ in range(samples):
        x0 = int(rng.integers(0, limit))
        y0 = int(rng.integers(0, limit))
        total += region_runs(curve, x0, y0, square_side, square_side)
    return total / samples

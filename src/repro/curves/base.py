"""Common interface for space-filling curves.

A curve of a given *order* visits every point of a ``2^order``-per-side grid
exactly once (paper §3.1.2).  Implementations provide both directions
(coordinates → curve index and back) plus a vectorized index computation
used to linearize hundreds of thousands of cell centroids at build time.
"""

from __future__ import annotations

import abc

import numpy as np


class SpaceFillingCurve(abc.ABC):
    """Bijection between grid coordinates and a 1-D visiting order."""

    #: Short name used in reports and ablation tables.
    name: str = "curve"

    def __init__(self, order: int, dim: int = 2) -> None:
        if order < 1:
            raise ValueError(f"curve order must be >= 1, got {order}")
        if dim < 1:
            raise ValueError(f"curve dimension must be >= 1, got {dim}")
        self.order = order
        self.dim = dim

    @property
    def side(self) -> int:
        """Grid points per side, ``2^order``."""
        return 1 << self.order

    @property
    def size(self) -> int:
        """Total number of grid points, ``2^(order*dim)``."""
        return 1 << (self.order * self.dim)

    @abc.abstractmethod
    def index(self, coords: tuple[int, ...]) -> int:
        """Curve position of one grid point."""

    @abc.abstractmethod
    def coords(self, index: int) -> tuple[int, ...]:
        """Grid point at one curve position."""

    def indices(self, coords: np.ndarray) -> np.ndarray:
        """Curve positions for an ``(n, dim)`` integer coordinate array.

        The default implementation loops; subclasses override with
        vectorized arithmetic where it matters (2-D Hilbert, Z-order).
        """
        coords = np.asarray(coords)
        return np.fromiter(
            (self.index(tuple(int(c) for c in row)) for row in coords),
            dtype=np.int64, count=len(coords))

    def _check_coords(self, coords: tuple[int, ...]) -> None:
        if len(coords) != self.dim:
            raise ValueError(
                f"expected {self.dim} coordinates, got {len(coords)}")
        for c in coords:
            if not 0 <= c < self.side:
                raise ValueError(
                    f"coordinate {c} outside grid [0, {self.side})")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise ValueError(
                f"index {index} outside curve range [0, {self.size})")

"""Space-filling curves: Hilbert (2-D and n-D), Z-order, Gray code."""

from .base import SpaceFillingCurve
from .clustering import average_clusters, count_runs, region_runs
from .graycode import GrayCodeCurve, gray_decode, gray_encode
from .hilbert import HilbertCurve2D, HilbertCurveND
from .zorder import ZOrderCurve

CURVES = {
    "hilbert": HilbertCurve2D,
    "zorder": ZOrderCurve,
    "gray": GrayCodeCurve,
}

__all__ = [
    "CURVES",
    "GrayCodeCurve",
    "HilbertCurve2D",
    "HilbertCurveND",
    "SpaceFillingCurve",
    "ZOrderCurve",
    "average_clusters",
    "count_runs",
    "gray_decode",
    "gray_encode",
    "region_runs",
]

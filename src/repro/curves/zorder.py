"""Z-order (Peano / bit-interleaving) curve.

One of the three curves the paper discusses (§3.1.2); used by the curve
ablation to confirm Hilbert's clustering advantage on this workload.
"""

from __future__ import annotations

import numpy as np

from .base import SpaceFillingCurve


class ZOrderCurve(SpaceFillingCurve):
    """Morton order: interleave the bits of each coordinate."""

    name = "zorder"

    def index(self, coords: tuple[int, ...]) -> int:
        self._check_coords(coords)
        index = 0
        for bit in range(self.order - 1, -1, -1):
            for axis in range(self.dim):
                index = (index << 1) | ((coords[axis] >> bit) & 1)
        return index

    def coords(self, index: int) -> tuple[int, ...]:
        self._check_index(index)
        out = [0] * self.dim
        pos = self.order * self.dim - 1
        for bit in range(self.order - 1, -1, -1):
            for axis in range(self.dim):
                out[axis] |= ((index >> pos) & 1) << bit
                pos -= 1
        return tuple(out)

    def indices(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized Morton codes for an ``(n, dim)`` coordinate array."""
        coords = np.asarray(coords).astype(np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.dim:
            raise ValueError(
                f"expected (n, {self.dim}) coordinates, got {coords.shape}")
        index = np.zeros(len(coords), dtype=np.int64)
        for bit in range(self.order - 1, -1, -1):
            for axis in range(self.dim):
                index = (index << 1) | ((coords[:, axis] >> bit) & 1)
        return index

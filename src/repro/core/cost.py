"""Grouping policies: how linearized cells merge into subfields.

The paper's policy (§3.1.2) is cost-based: a subfield of interval size
``L`` is accessed by the average range query with probability ``P``
(Kamel–Faloutsos, ref [14]); dividing by the sum ``SI`` of member-cell
interval sizes yields the cost ``C = P / SI``.  A cell joins the current
subfield only when that strictly lowers ``C``.

The worked example in paper Fig. 5 computes ``P`` as the plain interval
size ``max − min + 1`` (no normalization, no additive 0.5), giving costs
21/45 → 31/58.  :class:`CostBasedGrouping` defaults reproduce that
example; the ``avg_query`` knob restores the prose's ``+0.5`` term for
normalized value spaces.

:class:`ThresholdGrouping` is the fixed-threshold criterion of the
Interval Quadtree predecessor (ref [15]), kept for ablations.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

GroupState = tuple[float, float, float]   # (lo, hi, sum of interval sizes)


class GroupingPolicy(abc.ABC):
    """Decides whether the next linearized cell joins the open subfield."""

    @abc.abstractmethod
    def open_group(self, vmin: float, vmax: float) -> GroupState:
        """State of a fresh subfield holding one cell."""

    @abc.abstractmethod
    def admit(self, state: GroupState, vmin: float,
              vmax: float) -> GroupState | None:
        """State after adding the cell, or None to start a new subfield."""


class CostBasedGrouping(GroupingPolicy):
    """The paper's cost function ``C = P / SI`` (§3.1.2).

    Parameters
    ----------
    unit:
        Additive constant of the interval-size convention
        ``I = max − min + unit``; the paper uses 1.
    avg_query:
        Additive average-query-extent term of the access probability
        ``P = L + avg_query``; 0 reproduces the paper's worked example,
        0.5 matches the normalized-space formula in the prose.
    """

    def __init__(self, unit: float = 1.0, avg_query: float = 0.0) -> None:
        if unit < 0 or avg_query < 0:
            raise ValueError("unit and avg_query must be non-negative")
        if unit == 0 and avg_query == 0:
            raise ValueError(
                "unit and avg_query cannot both be zero: a constant cell "
                "would have zero size and infinite cost")
        self.unit = unit
        self.avg_query = avg_query

    def cost(self, state: GroupState) -> float:
        """Cost ``C`` of a subfield in the given state."""
        lo, hi, si = state
        return (hi - lo + self.unit + self.avg_query) / si

    def open_group(self, vmin: float, vmax: float) -> GroupState:
        return (vmin, vmax, vmax - vmin + self.unit)

    def admit(self, state: GroupState, vmin: float,
              vmax: float) -> GroupState | None:
        lo, hi, si = state
        after = (min(lo, vmin), max(hi, vmax),
                 si + (vmax - vmin + self.unit))
        if self.cost(after) < self.cost(state):
            return after
        return None


class ThresholdGrouping(GroupingPolicy):
    """Fixed interval-size threshold (the Interval Quadtree criterion)."""

    def __init__(self, threshold: float, unit: float = 1.0) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self.unit = unit

    def open_group(self, vmin: float, vmax: float) -> GroupState:
        return (vmin, vmax, vmax - vmin + self.unit)

    def admit(self, state: GroupState, vmin: float,
              vmax: float) -> GroupState | None:
        lo, hi, si = state
        new_lo = min(lo, vmin)
        new_hi = max(hi, vmax)
        if new_hi - new_lo + self.unit <= self.threshold:
            return (new_lo, new_hi, si + (vmax - vmin + self.unit))
        return None


def group_cells(vmins: Sequence[float], vmaxs: Sequence[float],
                policy: GroupingPolicy) -> list[tuple[int, int]]:
    """Greedy single-pass grouping of linearized cells (paper §3.1.2).

    ``vmins``/``vmaxs`` are the cell intervals *in linearized order*.
    Returns inclusive ``(start, end)`` position ranges, one per subfield.
    """
    vmins = np.asarray(vmins, dtype=np.float64)
    vmaxs = np.asarray(vmaxs, dtype=np.float64)
    if vmins.shape != vmaxs.shape:
        raise ValueError("vmins and vmaxs must have the same length")
    n = len(vmins)
    if n == 0:
        return []
    # The greedy pass is pure float arithmetic; for the two built-in
    # policies an inlined loop over python floats (``.tolist()``) avoids
    # ~4 method calls and 2 tuple allocations per cell — the same
    # operations in the same order, so the grouping is identical.
    if type(policy) is CostBasedGrouping:
        return _group_cost_based(vmins.tolist(), vmaxs.tolist(),
                                 policy.unit, policy.avg_query)
    if type(policy) is ThresholdGrouping:
        return _group_threshold(vmins.tolist(), vmaxs.tolist(),
                                policy.threshold, policy.unit)
    groups: list[tuple[int, int]] = []
    start = 0
    state = policy.open_group(float(vmins[0]), float(vmaxs[0]))
    for k in range(1, n):
        admitted = policy.admit(state, float(vmins[k]), float(vmaxs[k]))
        if admitted is None:
            groups.append((start, k - 1))
            start = k
            state = policy.open_group(float(vmins[k]), float(vmaxs[k]))
        else:
            state = admitted
    groups.append((start, n - 1))
    return groups


def _group_cost_based(vmins: list[float], vmaxs: list[float],
                      unit: float, avg_query: float) -> list[tuple[int, int]]:
    """Inlined greedy pass for :class:`CostBasedGrouping`."""
    n = len(vmins)
    groups: list[tuple[int, int]] = []
    start = 0
    lo, hi = vmins[0], vmaxs[0]
    si = hi - lo + unit
    extra = unit + avg_query
    for k in range(1, n):
        vmin, vmax = vmins[k], vmaxs[k]
        new_lo = lo if lo < vmin else vmin
        new_hi = hi if hi > vmax else vmax
        new_si = si + (vmax - vmin + unit)
        if (new_hi - new_lo + extra) / new_si < (hi - lo + extra) / si:
            lo, hi, si = new_lo, new_hi, new_si
        else:
            groups.append((start, k - 1))
            start = k
            lo, hi = vmin, vmax
            si = vmax - vmin + unit
    groups.append((start, n - 1))
    return groups


def _group_threshold(vmins: list[float], vmaxs: list[float],
                     threshold: float, unit: float) -> list[tuple[int, int]]:
    """Inlined greedy pass for :class:`ThresholdGrouping`."""
    n = len(vmins)
    groups: list[tuple[int, int]] = []
    start = 0
    lo, hi = vmins[0], vmaxs[0]
    for k in range(1, n):
        vmin, vmax = vmins[k], vmaxs[k]
        new_lo = lo if lo < vmin else vmin
        new_hi = hi if hi > vmax else vmax
        if new_hi - new_lo + unit <= threshold:
            lo, hi = new_lo, new_hi
        else:
            groups.append((start, k - 1))
            start = k
            lo, hi = vmin, vmax
    groups.append((start, n - 1))
    return groups

"""Saving and loading built value indexes.

A grouped index (I-Hilbert, Interval Quadtree) is fully described by its
clustered cell file, its subfield list, and its R*-tree pages; all three
serialize to a directory so an index built once can be reloaded — field
data not required — and queried immediately.

Layout of the index directory::

    meta.json     dtype, counts, subfields, tree shape, field type
    data.pages    DiskManager snapshot of the cell record file
    tree.pages    DiskManager snapshot of the subfield R*-tree
    order.npy     the cell permutation (for provenance/debugging)
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..field.dem import DEMField
from ..field.tin import TINField
from ..field.volume import VolumeField
from ..storage import IOStats, RecordStore
from ..storage.snapshot import load_disk, save_disk
from .grouped import GroupedIntervalIndex
from .subfield import Subfield

#: Field classes reconstructible by name (record semantics only).
FIELD_TYPES = {
    "DEMField": DEMField,
    "TINField": TINField,
    "VolumeField": VolumeField,
}

_FORMAT_VERSION = 1


class PersistError(Exception):
    """Raised for malformed or incompatible index directories."""


def _dtype_from_descr(descr: list) -> np.dtype:
    """Rebuild a structured dtype from its JSON-roundtripped descr."""
    fields = []
    for entry in descr:
        if len(entry) == 2:
            fields.append((entry[0], entry[1]))
        else:
            fields.append((entry[0], entry[1], tuple(entry[2])))
    return np.dtype(fields)


def save_index(index: GroupedIntervalIndex, directory: str | Path) -> None:
    """Serialize a grouped index into ``directory`` (created if needed)."""
    field_name = index.field_type.__name__
    if field_name not in FIELD_TYPES:
        raise PersistError(
            f"cannot persist indexes over {field_name}: estimation "
            f"semantics would not be reconstructible")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if index.tree._dirty:
        index.tree.flush()
    save_disk(index.data_disk, directory / "data.pages")
    save_disk(index.index_disk, directory / "tree.pages")
    np.save(directory / "order.npy", index.order)
    meta = {
        "format": _FORMAT_VERSION,
        "method": index.name,
        "field_type": field_name,
        "record_dtype": index.store.dtype.descr,
        "record_count": len(index.store),
        "store_page_ids": list(index.store.page_ids),
        "subfields": [[sf.lo, sf.hi, sf.ptr_start, sf.ptr_end]
                      for sf in index.subfields],
        "tree": {
            "dim": index.tree.dim,
            "capacity": index.tree.capacity,
            "root_id": index.tree._root_id,
            "height": index.tree._height,
            "count": index.tree._count,
            "node_ids": sorted(index.tree._nodes),
        },
    }
    with open(directory / "meta.json", "w") as fh:
        json.dump(meta, fh, indent=1)


def load_index(directory: str | Path, cache_pages: int = 0,
               stats: IOStats | None = None) -> GroupedIntervalIndex:
    """Reload an index saved by :func:`save_index`.

    The returned object answers queries exactly like the original (same
    records, same subfields, same tree pages); it carries no in-memory
    field, so ``index.field`` is None.
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise PersistError(f"{directory}: no meta.json — not an index "
                           f"directory")
    with open(meta_path) as fh:
        meta = json.load(fh)
    if meta.get("format") != _FORMAT_VERSION:
        raise PersistError(
            f"{directory}: unsupported index format {meta.get('format')}")
    try:
        field_type = FIELD_TYPES[meta["field_type"]]
    except KeyError:
        raise PersistError(
            f"{directory}: unknown field type "
            f"{meta['field_type']!r}") from None

    index = GroupedIntervalIndex.__new__(GroupedIntervalIndex)
    index.name = meta["method"]
    index.field = None
    index.field_type = field_type
    index.stats = stats if stats is not None else IOStats()
    from ..obs.trace import NULL_TRACER
    index.tracer = NULL_TRACER

    # Cell record file.
    index.data_disk = load_disk(directory / "data.pages",
                                stats=index.stats, name="data")
    index.page_size = index.data_disk.page_size
    dtype = _dtype_from_descr(meta["record_dtype"])
    store = RecordStore.__new__(RecordStore)
    store.disk = index.data_disk
    store.dtype = dtype
    store.records_per_page = index.data_disk.page_size // dtype.itemsize
    from ..storage import BufferPool
    store.pool = BufferPool(index.data_disk, capacity=cache_pages)
    store._page_ids = list(meta["store_page_ids"])
    store._count = meta["record_count"]
    store._tail = np.empty(store.records_per_page, dtype=dtype)
    store._tail_len = store._count % store.records_per_page
    store._tail_has_page = store._tail_len > 0
    if store._tail_len:
        tail_page = store.read_page(len(store._page_ids) - 1)
        store._tail[:store._tail_len] = tail_page
    index.store = store

    # Subfields.
    index.order = np.load(directory / "order.npy")
    index.subfields = [
        Subfield(sf_id, lo, hi, int(start), int(end))
        for sf_id, (lo, hi, start, end) in enumerate(meta["subfields"])
    ]

    # Subfield R*-tree.
    from ..rstar import RStarTree
    from ..rstar.node import Node
    index.index_disk = load_disk(directory / "tree.pages",
                                 stats=index.stats, name="sf-tree")
    tree_meta = meta["tree"]
    tree = RStarTree.__new__(RStarTree)
    tree.dim = tree_meta["dim"]
    tree.disk = index.index_disk
    tree.capacity = tree_meta["capacity"]
    from ..rstar.tree import MIN_FILL_FRACTION, REINSERT_FRACTION
    tree.min_fill = max(2, int(MIN_FILL_FRACTION * tree.capacity))
    tree.reinsert_count = max(1, int(REINSERT_FRACTION * tree.capacity))
    tree.pool = BufferPool(index.index_disk, capacity=cache_pages)
    tree._nodes = {}
    for node_id in tree_meta["node_ids"]:
        data = index.index_disk._pages[node_id]
        tree._nodes[node_id] = Node.from_bytes(node_id, data, tree.dim)
    tree._root_id = tree_meta["root_id"]
    tree._height = tree_meta["height"]
    tree._count = tree_meta["count"]
    tree._dirty = False
    tree._reinserted_levels = set()
    index.tree = tree
    index.data_disk.stats.reset()
    return index

"""Saving and loading built value indexes, crash-safely.

A grouped index (I-Hilbert, Interval Quadtree) is fully described by its
clustered cell file, its subfield list, and its R*-tree pages; all three
serialize to a directory so an index built once can be reloaded — field
data not required — and queried immediately.

Layout of the index directory (format 2)::

    meta.json         manifest: dtype, counts, subfields, tree shape,
                      field type, and per-file SHA-256 checksums
    data-<g>.pages    DiskManager snapshot of the cell record file
    tree-<g>.pages    DiskManager snapshot of the subfield R*-tree
    order-<g>.npy     the cell permutation (for provenance/debugging)

``<g>`` is a generation number that increments on every save.  Data
files are written first under fresh generation names, fsynced, and only
then does ``meta.json`` move to the new generation via an atomic
write-to-temp + rename — the manifest rename *is* the commit point.  A
crash anywhere before it leaves the previous generation fully intact
(the half-written files are unreferenced orphans, garbage-collected by
the next save); a crash after it leaves the new generation committed.
Either way a reload sees one complete, checksummed index — never a torn
mixture.  ``python -m repro scrub`` verifies exactly these invariants
offline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..field.dem import DEMField
from ..field.tin import TINField
from ..field.volume import VolumeField
from ..storage import IOStats, RecordStore
from ..storage.faults import SimulatedCrash
from ..storage.scrub import file_sha256
from ..storage.snapshot import fsync_dir, load_disk, save_disk
from ..storage.wal import WriteAheadLog
from .cost import CostBasedGrouping, ThresholdGrouping

#: Field classes reconstructible by name (record semantics only).
FIELD_TYPES = {
    "DEMField": DEMField,
    "TINField": TINField,
    "VolumeField": VolumeField,
}

#: Format 2 = checksummed page frames + generational manifest commit.
_FORMAT_VERSION = 2

#: Crash points honoured by :func:`save_index`, in execution order.
SAVE_INDEX_CRASH_POINTS = ("data-written", "tree-written", "order-written",
                          "pre-commit", "post-commit")

#: Role → generation-stamped file name.
_ROLE_PATTERNS = {"data": "data-{g}.pages", "tree": "tree-{g}.pages",
                  "order": "order-{g}.npy"}


class PersistError(Exception):
    """Raised for malformed or incompatible index directories."""


def _dtype_from_descr(descr: list) -> np.dtype:
    """Rebuild a structured dtype from its JSON-roundtripped descr."""
    fields = []
    for entry in descr:
        if len(entry) == 2:
            fields.append((entry[0], entry[1]))
        else:
            fields.append((entry[0], entry[1], tuple(entry[2])))
    return np.dtype(fields)


def _maybe_crash(point: str, crash_point: str | None) -> None:
    if crash_point == point:
        raise SimulatedCrash(point)


def _read_meta(directory: Path) -> dict | None:
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        return None
    with open(meta_path) as fh:
        return json.load(fh)


def _manifest_entry(directory: Path, name: str) -> dict:
    path = directory / name
    return {"name": name, "sha256": file_sha256(path),
            "bytes": path.stat().st_size}


def _save_order(order: np.ndarray, path: Path) -> None:
    """Write the permutation array with the same fsync discipline as
    the page snapshots (content durability before the commit point)."""
    with open(path, "wb") as fh:
        np.save(fh, order)
        fh.flush()
        os.fsync(fh.fileno())


def _save_aggregate(models, path: Path) -> None:
    """Write the aggregate model arrays (same fsync discipline)."""
    with open(path, "wb") as fh:
        np.savez(fh, **models.to_arrays())
        fh.flush()
        os.fsync(fh.fileno())


def _grouping_to_meta(grouping) -> dict | None:
    """JSON form of the grouping policy's cost parameters, so a
    reloaded index can track staleness and compact with the same
    §3.1.2 convention the build used."""
    if isinstance(grouping, CostBasedGrouping):
        return {"type": "cost", "unit": grouping.unit,
                "avg_query": grouping.avg_query}
    if isinstance(grouping, ThresholdGrouping):
        return {"type": "threshold", "threshold": grouping.threshold,
                "unit": grouping.unit}
    return None


def _grouping_from_meta(entry: dict | None):
    if not entry:
        return None
    if entry.get("type") == "cost":
        return CostBasedGrouping(unit=entry["unit"],
                                 avg_query=entry["avg_query"])
    if entry.get("type") == "threshold":
        return ThresholdGrouping(entry["threshold"], unit=entry["unit"])
    return None


def _collect_garbage(directory: Path, keep: set[str]) -> None:
    """Remove generation files no manifest references (orphans from a
    superseded generation or an aborted save)."""
    for path in directory.iterdir():
        name = path.name
        if name in keep or name == "meta.json":
            continue
        if name.endswith((".pages", ".npy", ".npz", ".tmp")):
            path.unlink(missing_ok=True)


def save_index(index, directory: str | Path,
               crash_point: str | None = None) -> None:
    """Serialize a grouped index into ``directory`` (created if needed).

    Crash-safe: the previous save (if any) stays loadable until the new
    manifest lands atomically; see the module docstring for the
    protocol.  ``crash_point`` (tests only) aborts with
    :class:`~repro.storage.faults.SimulatedCrash` at a named step — one
    of :data:`SAVE_INDEX_CRASH_POINTS`.
    """
    if crash_point is not None and crash_point not in SAVE_INDEX_CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {crash_point!r}; expected one of "
            f"{SAVE_INDEX_CRASH_POINTS}")
    field_name = index.field_type.__name__
    if field_name not in FIELD_TYPES:
        raise PersistError(
            f"cannot persist indexes over {field_name}: estimation "
            f"semantics would not be reconstructible")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if index.tree._dirty:
        index.tree.flush()

    previous = _read_meta(directory)
    generation = (int(previous.get("generation", 0)) + 1
                  if previous else 0)
    names = {role: pattern.format(g=generation)
             for role, pattern in _ROLE_PATTERNS.items()}

    save_disk(index.data_disk, directory / names["data"])
    _maybe_crash("data-written", crash_point)
    save_disk(index.index_disk, directory / names["tree"])
    _maybe_crash("tree-written", crash_point)
    _save_order(index.order, directory / names["order"])
    _maybe_crash("order-written", crash_point)
    # Aggregate models are optional — only a fitted index writes the
    # ``agg`` generation file (and its manifest entry / meta block).
    models = getattr(index, "aggregate_models", None)
    if models is not None:
        names["agg"] = f"agg-{generation}.npz"
        _save_aggregate(models, directory / names["agg"])

    built_costs = getattr(index, "_built_costs", None)
    if built_costs is not None:
        built_costs = [float(c) for c in built_costs]
    meta = {
        "format": _FORMAT_VERSION,
        "generation": generation,
        "method": index.name,
        "field_type": field_name,
        "record_dtype": index.store.dtype.descr,
        "record_count": len(index.store),
        "store_page_ids": list(index.store.page_ids),
        "subfields": [[sf.lo, sf.hi, sf.ptr_start, sf.ptr_end]
                      for sf in index.subfields],
        "tree": {
            "dim": index.tree.dim,
            "capacity": index.tree.capacity,
            "root_id": index.tree._root_id,
            "height": index.tree._height,
            "count": index.tree._count,
            "node_ids": sorted(index.tree._nodes),
        },
        "grouping": _grouping_to_meta(getattr(index, "grouping", None)),
        "built_costs": built_costs,
        "files": {role: _manifest_entry(directory, name)
                  for role, name in names.items()},
    }
    if models is not None:
        meta["aggregate"] = {"degree": models.degree,
                             "weight": models.weight}
    _maybe_crash("pre-commit", crash_point)
    tmp = directory / "meta.json.tmp"
    with open(tmp, "w") as fh:
        json.dump(meta, fh, indent=1)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, directory / "meta.json")
    fsync_dir(directory)
    _maybe_crash("post-commit", crash_point)
    _collect_garbage(directory, keep=set(names.values()))
    # The committed generation contains every applied update, so this
    # save is a WAL checkpoint: truncate the log.  A crash between the
    # manifest commit and this truncation merely leaves batches to be
    # replayed redundantly on the next load — replay is idempotent.
    wal = getattr(index, "wal", None)
    if wal is not None:
        wal.checkpoint()


def load_index(directory: str | Path, cache_pages: int = 0,
               stats: IOStats | None = None, verify: bool = True,
               replay_wal: bool = True):
    """Reload an index saved by :func:`save_index`.

    The returned object answers queries exactly like the original (same
    records, same subfields, same tree pages); it carries no in-memory
    field, so ``index.field`` is None.  With ``verify=True`` (default)
    every file is checked against its manifest SHA-256 and every page
    frame against its checksum before the index is handed back, so
    on-disk corruption raises :class:`PersistError` instead of
    producing silently wrong answers.

    With ``replay_wal=True`` (default) a ``wal.log`` next to the
    manifest is opened and its pending batches — updates acknowledged
    after the saved generation committed — are re-applied before the
    index is returned; the log stays attached, so further updates keep
    being journaled.  ``replay_wal=False`` returns the checkpointed
    state as-is and leaves the log untouched.
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    if meta is None:
        raise PersistError(f"{directory}: no meta.json — not an index "
                           f"directory")
    if meta.get("format") != _FORMAT_VERSION:
        raise PersistError(
            f"{directory}: unsupported index format {meta.get('format')} "
            f"(format {_FORMAT_VERSION} adds checksummed page frames; "
            f"rebuild the index and save it again)")
    try:
        field_type = FIELD_TYPES[meta["field_type"]]
    except KeyError:
        raise PersistError(
            f"{directory}: unknown field type "
            f"{meta['field_type']!r}") from None
    files = meta["files"]
    for role, entry in files.items():
        path = directory / entry["name"]
        if not path.exists():
            raise PersistError(
                f"{directory}: missing {entry['name']} ({role} file)")
        if verify:
            size = path.stat().st_size
            if size != entry["bytes"]:
                raise PersistError(
                    f"{path}: {size} bytes, manifest says "
                    f"{entry['bytes']}")
            if file_sha256(path) != entry["sha256"]:
                raise PersistError(
                    f"{path}: whole-file checksum mismatch — run "
                    f"'python -m repro scrub {directory}' for details")

    from .grouped import GroupedIntervalIndex
    index = GroupedIntervalIndex.__new__(GroupedIntervalIndex)
    index.name = meta["method"]
    index.field = None
    index.field_type = field_type
    index.stats = stats if stats is not None else IOStats()
    index.maint_stats = IOStats()
    index.wal = None
    index._updated = False
    index._stat_cache = {}
    index.grouping = _grouping_from_meta(meta.get("grouping"))
    built_costs = meta.get("built_costs")
    if built_costs is not None:
        index._built_costs = [float(c) for c in built_costs]
    index.retry_policy = None
    index.disk_backend = "list"
    index.engine = "vectorized"
    index._fault_mode = "raise"
    index._query_faults = []
    from ..obs.trace import NULL_TRACER
    index.tracer = NULL_TRACER

    # Cell record file.
    from ..storage.snapshot import SnapshotError
    try:
        index.data_disk = load_disk(directory / files["data"]["name"],
                                    stats=index.stats, name="data",
                                    verify=verify)
    except SnapshotError as exc:
        raise PersistError(str(exc)) from exc
    index.page_size = index.data_disk.page_size
    dtype = _dtype_from_descr(meta["record_dtype"])
    store = RecordStore.__new__(RecordStore)
    store.disk = index.data_disk
    store.dtype = dtype
    store.records_per_page = (index.data_disk.usable_page_size
                              // dtype.itemsize)
    from ..storage import BufferPool
    store.pool = BufferPool(index.data_disk, capacity=cache_pages)
    store._page_ids = list(meta["store_page_ids"])
    store._count = meta["record_count"]
    store._tail = np.empty(store.records_per_page, dtype=dtype)
    store._tail_len = store._count % store.records_per_page
    store._tail_has_page = store._tail_len > 0
    if store._tail_len:
        tail_page = store.read_page(len(store._page_ids) - 1)
        store._tail[:store._tail_len] = tail_page
    index.store = store

    # Subfields.
    from .subfield import Subfield
    index.order = np.load(directory / files["order"]["name"])
    index.subfields = [
        Subfield(sf_id, lo, hi, int(start), int(end))
        for sf_id, (lo, hi, start, end) in enumerate(meta["subfields"])
    ]

    # Subfield R*-tree.
    from ..rstar import RStarTree
    from ..rstar.node import Node
    try:
        index.index_disk = load_disk(directory / files["tree"]["name"],
                                     stats=index.stats, name="sf-tree",
                                     verify=verify)
    except SnapshotError as exc:
        raise PersistError(str(exc)) from exc
    tree_meta = meta["tree"]
    tree = RStarTree.__new__(RStarTree)
    tree.dim = tree_meta["dim"]
    tree.disk = index.index_disk
    tree.capacity = tree_meta["capacity"]
    from ..rstar.tree import MIN_FILL_FRACTION, REINSERT_FRACTION
    tree.min_fill = max(2, int(MIN_FILL_FRACTION * tree.capacity))
    tree.reinsert_count = max(1, int(REINSERT_FRACTION * tree.capacity))
    tree.pool = BufferPool(index.index_disk, capacity=cache_pages)
    tree._nodes = {}
    for node_id in tree_meta["node_ids"]:
        data = index.index_disk.page_payload(node_id)
        tree._nodes[node_id] = Node.from_bytes(node_id, data, tree.dim)
    tree._root_id = tree_meta["root_id"]
    tree._height = tree_meta["height"]
    tree._count = tree_meta["count"]
    tree._dirty = False
    tree._reinserted_levels = set()
    index.tree = tree

    # Aggregate models (optional generation file; older manifests
    # simply have no "agg" role).  Loaded before WAL replay so pending
    # update batches refit the touched subfields like the live index.
    index.aggregate_models = None
    agg_entry = files.get("agg")
    if agg_entry is not None:
        from .aggregate import AggregateModelSet
        agg_meta = meta.get("aggregate", {})
        with np.load(directory / agg_entry["name"]) as arrays:
            index.aggregate_models = AggregateModelSet.from_arrays(
                arrays, degree=int(agg_meta.get("degree", 3)),
                weight=agg_meta.get("weight", "midpoint"))
        if index.aggregate_models.num_subfields != len(index.subfields):
            raise PersistError(
                f"{directory}: aggregate model file covers "
                f"{index.aggregate_models.num_subfields} subfields, "
                f"manifest has {len(index.subfields)}")

    # Recovery: re-apply updates acknowledged after the checkpoint.
    wal_path = directory / "wal.log"
    if replay_wal and wal_path.exists():
        from ..storage.wal import WalError
        try:
            wal = WriteAheadLog(wal_path)
        except WalError as exc:
            raise PersistError(str(exc)) from exc
        for batch in wal.pending:
            index._apply_update_batch(batch.cell_ids,
                                      batch.decode(index.store.dtype))
        index.wal = wal

    index.data_disk.stats.reset()
    index.maint_stats.reset()
    return index
